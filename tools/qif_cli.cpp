// qif — command-line front end for the framework.
//
//   qif workloads
//       List the canonical workload names.
//
//   qif run <target> [--noise W] [--instances N] [--scale S] [--seed K]
//           [--faults SPEC]
//       Run one scenario (solo, or under N looping copies of W) and print
//       completion time plus the per-op-type latency breakdown.  --faults
//       injects a fault plan (e.g. "slow:ost=0,start=2,dur=10,factor=4")
//       into every run and reports retry/timeout/failure counts.
//
//   qif campaign <io500|dlio|amrex|enzo|openpmd> [--richness R]
//                [--bins 2|2,5] [--seed K] [--jobs N] [--faults SPEC]
//                --out data.{csv,qds}
//       Build a labelled training dataset; the --out extension picks the
//       format (.qds = native binary, anything else = interop CSV).
//       --jobs N fans the campaign's scenario simulations across N worker
//       threads (output is bit-identical to --jobs 1).
//
//   qif train --data data.{csv,qds} --out model.txt [--classes C]
//             [--epochs E] [--jobs N]
//       Train the kernel-based model on a dataset (80/20 split) and save
//       the bundle; prints the held-out confusion matrix.  --jobs N
//       partitions the training GEMMs across N worker threads (the model
//       is bit-identical to --jobs 1).
//
//   qif eval --data data.{csv,qds} --model model.txt
//       Evaluate a saved bundle on a dataset.
//
//   qif dataset info <file>
//   qif dataset head <file> [--rows N]
//   qif dataset convert <in> <out>
//       Inspect or convert dataset files; formats are sniffed on read
//       (.qds magic vs CSV) and picked by extension on write.
//
//   qif dump-trace <target> [--scale S] [--seed K] --out trace.txt
//       Run the target solo and dump its DXT-style op trace.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atoi(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[a.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: qif <command> [options]\n"
               "  workloads                          list workload names\n"
               "  run <target> [--noise W] [--instances N] [--scale S] [--seed K]"
               " [--faults SPEC]\n"
               "  campaign <family> [--richness R] [--bins 2|2,5] [--seed K] [--jobs N]"
               " [--faults SPEC] --out F.{csv,qds}\n"
               "  train --data F.{csv,qds} --out model.txt [--classes C] [--epochs E]"
               " [--jobs N]\n"
               "  eval --data F.{csv,qds} --model model.txt\n"
               "  dataset info|head|convert <file> [out] [--rows N]\n"
               "  dump-trace <target> [--scale S] [--seed K] --out F.txt\n");
  return 2;
}

/// Loads a dataset file, sniffing .qds magic vs CSV.
monitor::Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return monitor::read_dataset_auto(in);
}

bool has_qds_extension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".qds") == 0;
}

/// Writes a dataset; the extension picks the format (.qds binary, else CSV).
void save_dataset(const std::string& path, const monitor::Dataset& ds) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  if (has_qds_extension(path)) {
    monitor::write_dataset_qds(out, ds);
  } else {
    monitor::write_dataset_csv(out, ds);
  }
}

int cmd_workloads() {
  for (const auto& w : workloads::known_workloads()) std::printf("%s\n", w.c_str());
  return 0;
}

/// Sums the fault-path counters a run left in its trace and prints them.
void print_fault_summary(const char* tag, const trace::TraceLog& trace) {
  long long retries = 0;
  long long timeouts = 0;
  long long failed = 0;
  for (const trace::OpRecord& rec : trace.records()) {
    retries += rec.retries;
    timeouts += rec.timeouts;
    failed += rec.failed ? 1 : 0;
  }
  std::printf("%s faults: %lld retries, %lld timeouts, %lld failed ops\n", tag,
              retries, timeouts, failed);
}

int cmd_run(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string target = args.positional[0];
  if (!workloads::is_known_workload(target)) {
    std::fprintf(stderr, "unknown workload: %s\n", target.c_str());
    return 1;
  }
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) cfg.faults = pfs::faults::parse_fault_plan(faults_spec);

  const auto solo = core::run_scenario(cfg);
  std::printf("solo: %.2f s timed phase (%.2f s total, %llu events)\n",
              sim::to_seconds(solo.target_body_duration()),
              sim::to_seconds(solo.target_completion),
              static_cast<unsigned long long>(solo.events_executed));
  if (!cfg.faults.empty()) print_fault_summary("solo", solo.trace);

  const std::string noise = args.get("noise", "");
  if (noise.empty()) return 0;
  if (!workloads::is_known_workload(noise)) {
    std::fprintf(stderr, "unknown workload: %s\n", noise.c_str());
    return 1;
  }
  core::InterferenceSpec spec;
  spec.workload = noise;
  spec.nodes = {2, 3, 4, 5, 6};
  spec.instances = args.get_int("instances", 15);
  spec.seed = 77;
  cfg.interference = spec;
  const auto mixed = core::run_scenario(cfg);
  std::printf("with %d x %s: %.2f s  -> slowdown %.2fx\n", spec.instances, noise.c_str(),
              sim::to_seconds(mixed.target_body_duration()),
              static_cast<double>(mixed.target_body_duration()) /
                  static_cast<double>(solo.target_body_duration()));
  if (!cfg.faults.empty()) print_fault_summary("noisy", mixed.trace);

  const auto matched = trace::TraceMatcher::match(solo.trace, mixed.trace, 0);
  std::map<pfs::OpType, std::pair<sim::RunningStats, sim::RunningStats>> by_type;
  for (const auto& m : matched) {
    auto& [b, n] = by_type[m.base.type];
    b.add(sim::to_millis(m.base.duration()));
    n.add(sim::to_millis(m.interference.duration()));
  }
  core::TextTable table;
  table.add_row({"op", "count", "solo ms", "noisy ms", "slowdown"});
  for (const auto& [type, st] : by_type) {
    const auto& [b, n] = st;
    table.add_row({pfs::op_name(type), std::to_string(b.count()), core::fmt(b.mean(), 3),
                   core::fmt(n.mean(), 3),
                   core::fmt(b.mean() > 0 ? n.mean() / b.mean() : 0, 2) + "x"});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  const std::string family = args.positional[0];
  core::DatasetOptions opts;
  opts.richness = args.get_double("richness", 1.0);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.verbose = true;
  if (args.get("bins", "2") == "2,5") opts.bin_thresholds = {2.0, 5.0};
  opts.runner = exec::campaign_runner(args.get_int("jobs", 1));
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) opts.faults = pfs::faults::parse_fault_plan(faults_spec);

  monitor::Dataset ds;
  if (family == "io500") {
    ds = core::build_io500_dataset(opts);
  } else if (family == "dlio") {
    ds = core::build_dlio_dataset(opts);
  } else if (family == "amrex" || family == "enzo" || family == "openpmd") {
    ds = core::build_app_dataset(family, opts);
  } else {
    std::fprintf(stderr, "unknown campaign family: %s\n", family.c_str());
    return 1;
  }
  save_dataset(args.get("out", ""), ds);
  const auto hist = ds.class_histogram();
  std::printf("wrote %zu windows to %s (classes:", ds.size(), args.get("out", "").c_str());
  for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
  std::printf(")\n");
  return 0;
}

int cmd_train(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("out") == 0) return usage();
  const monitor::Dataset ds = load_dataset(args.get("data", ""));
  auto [train, test] = ml::split_dataset(ds, 0.2, 17);
  core::TrainingServerConfig cfg;
  cfg.n_classes = args.get_int("classes", 2);
  cfg.train.max_epochs = args.get_int("epochs", cfg.train.max_epochs);
  cfg.train.jobs = args.get_int("jobs", 1);
  core::TrainingServer server(cfg);
  const ml::TrainResult tr = server.fit(train);
  std::printf("trained on %zu windows (best epoch %d, val macro-F1 %.3f)\n", train.size(),
              tr.best_epoch, tr.best_val_macro_f1);
  std::printf("%s", server.evaluate(test).to_string().c_str());
  std::ofstream out(args.get("out", ""));
  server.save(out);
  std::printf("model saved to %s\n", args.get("out", "").c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("model") == 0) return usage();
  std::ifstream min(args.get("model", ""));
  if (!min) {
    std::fprintf(stderr, "cannot open %s\n", args.get("model", "").c_str());
    return 1;
  }
  const monitor::Dataset ds = load_dataset(args.get("data", ""));
  core::TrainingServer server(core::TrainingServerConfig{});
  server.load(min);
  std::printf("%s", server.evaluate(ds).to_string().c_str());
  return 0;
}

int cmd_dataset(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const std::string& verb = args.positional[0];
  const std::string& path = args.positional[1];
  if (verb == "info") {
    const monitor::Dataset ds = load_dataset(path);
    const auto hist = ds.class_histogram();
    std::printf("%s: %zu windows, %d servers x %d features (row width %zu)\n",
                path.c_str(), ds.size(), ds.n_servers(), ds.dim(), ds.width());
    std::printf("classes:");
    for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
    std::printf("\n");
    if (!ds.empty()) {
      double deg_sum = 0.0;
      for (std::size_t i = 0; i < ds.size(); ++i) deg_sum += ds.degradation(i);
      std::printf("windows %lld..%lld, mean degradation %.3f\n",
                  static_cast<long long>(ds.window_index(0)),
                  static_cast<long long>(ds.window_index(ds.size() - 1)),
                  deg_sum / static_cast<double>(ds.size()));
    }
    return 0;
  }
  if (verb == "head") {
    const monitor::Dataset ds = load_dataset(path);
    const auto rows = static_cast<std::size_t>(args.get_int("rows", 5));
    std::ostringstream os;
    // Reuse the CSV writer on a head-sized copy so the column headers are
    // printed too.
    monitor::Dataset head;
    if (ds.n_servers() != 0) head.set_shape(ds.n_servers(), ds.dim());
    for (std::size_t i = 0; i < std::min(rows, ds.size()); ++i) {
      head.append_row(ds.window_index(i), ds.label(i), ds.degradation(i), ds.row(i));
    }
    monitor::write_dataset_csv(os, head);
    std::printf("%s", os.str().c_str());
    return 0;
  }
  if (verb == "convert") {
    if (args.positional.size() < 3) return usage();
    const std::string& out_path = args.positional[2];
    const monitor::Dataset ds = load_dataset(path);
    save_dataset(out_path, ds);
    std::printf("wrote %zu windows to %s (%s)\n", ds.size(), out_path.c_str(),
                has_qds_extension(out_path) ? "binary .qds" : "CSV");
    return 0;
  }
  return usage();
}

int cmd_dump_trace(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = args.positional[0];
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  const auto res = core::run_scenario(cfg);
  std::ofstream out(args.get("out", ""));
  monitor::write_dxt(out, res.trace);
  std::printf("wrote %zu op records to %s\n", res.trace.size(),
              args.get("out", "").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "dataset") return cmd_dataset(args);
    if (cmd == "dump-trace") return cmd_dump_trace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
