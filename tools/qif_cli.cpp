// qif — command-line front end for the framework.
//
//   qif workloads
//       List the canonical workload names.
//
//   qif run <target> [--noise W] [--instances N] [--scale S] [--seed K]
//           [--faults SPEC] [--lanes N] [--topology CxSxT]
//       Run one scenario (solo, or under N looping copies of W) and print
//       completion time plus the per-op-type latency breakdown.  --faults
//       injects a fault plan (e.g. "slow:ost=0,start=2,dur=10,factor=4")
//       into every run and reports retry/timeout/failure counts.
//       --topology replaces the 7x3x2 testbed shape with CLIENTS x OSS x
//       OSTS_PER_OSS (e.g. 1008x16x8 for a 128-OST cluster).  --lanes N
//       partitions the cluster into N per-OSS-group event lanes plus a
//       metadata lane (see DESIGN.md "Parallel event lanes"); the printed
//       trace fingerprint is bit-identical for every N >= 1, which is how
//       scripts assert the partitioning changed nothing.  N must be at
//       least 1 and at most the OSS count.
//
//   qif campaign <io500|dlio|amrex|enzo|openpmd> [--richness R]
//                [--bins 2|2,5] [--seed K] [--jobs N] [--faults SPEC]
//                [--compress] [--stream-out DIR] --out data.{csv,qds}
//       Build a labelled training dataset; the --out extension picks the
//       format (.qds = native binary, anything else = interop CSV).
//       --jobs N fans the campaign's scenario simulations across N worker
//       threads (output is bit-identical to --jobs 1).  --compress writes
//       the .qds column blocks LZ-compressed.  --stream-out DIR
//       additionally streams every case's windows to DIR/<family>.NNN.qds
//       the moment the case (and its ordered predecessors) finish, seals a
//       DIR/<family>.qdm manifest, and verifies the shards merge back
//       byte-identically to the in-RAM dataset.
//
//   qif train --data data.{csv,qds,qdm} --out model.txt [--classes C]
//             [--epochs E] [--jobs N] [--memory-budget MB]
//       Train the kernel-based model on a dataset (80/20 split) and save
//       the bundle; prints the held-out confusion matrix.  --jobs N
//       partitions the training GEMMs across N worker threads (the model
//       is bit-identical to --jobs 1).  A .qdm manifest streams its shards
//       through the chunked ingestion path (same model bytes as in-RAM);
//       --memory-budget caps resident shard pages in MiB.
//
//   qif eval --data data.{csv,qds,qdm} --model model.txt
//       Evaluate a saved bundle on a dataset.
//
//   qif dataset info <file>
//   qif dataset head <file> [--rows N]
//   qif dataset convert <in> <out> [--compress]
//       Inspect or convert dataset files; formats are sniffed on read
//       (.qds / .qdm magic vs CSV) and picked by extension on write.
//       Single .qds files are memory-mapped (zero-copy for uncompressed
//       version-2 images).
//
//   qif dataset shard <in> <out-prefix> [--rows-per-shard R | --shards N]
//                     [--compress]
//   qif dataset merge <in.qdm> <out>
//       Split a dataset into <prefix>.NNN.qds shards behind a
//       <prefix>.qdm manifest (deterministic row order), or stitch a
//       manifest back into one file.  shard -> merge round-trips the
//       dataset exactly.
//
//   qif dump-trace <target> [--scale S] [--seed K] [--lanes N]
//                  [--topology CxSxT] --out trace.txt
//       Run the target solo and dump its DXT-style op trace.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"
#include "qif/monitor/qds_file.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atoi(it->second.c_str());
  }
};

/// Options that take no value (presence == true).
bool is_flag_option(const std::string& name) { return name == "compress"; }

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0 && is_flag_option(a.substr(2))) {
      args.options[a.substr(2)] = "1";
    } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[a.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: qif <command> [options]\n"
               "  workloads                          list workload names\n"
               "  run <target> [--noise W] [--instances N] [--scale S] [--seed K]"
               " [--faults SPEC]\n"
               "      [--lanes N] [--topology CxSxT]\n"
               "        --lanes N        run on N parallel event lanes (1 <= N <= OSS"
               " count;\n"
               "                         trace fingerprint is identical for every N)\n"
               "        --topology CxSxT CLIENTS x OSS x OSTS_PER_OSS cluster shape\n"
               "                         (default 7x3x2 testbed; e.g. 1008x16x8)\n"
               "  campaign <family> [--richness R] [--bins 2|2,5] [--seed K] [--jobs N]"
               " [--faults SPEC] [--compress] [--stream-out DIR] --out F.{csv,qds}\n"
               "  train --data F.{csv,qds,qdm} --out model.txt [--classes C] [--epochs E]"
               " [--jobs N] [--memory-budget MB]\n"
               "  eval --data F.{csv,qds,qdm} --model model.txt\n"
               "  dataset info|head|convert <file> [out] [--rows N] [--compress]\n"
               "  dataset shard <in> <out-prefix> [--rows-per-shard R | --shards N]"
               " [--compress]\n"
               "  dataset merge <in.qdm> <out>\n"
               "  dump-trace <target> [--scale S] [--seed K] [--lanes N]"
               " [--topology CxSxT] --out F.txt\n");
  return 2;
}

/// Loads a dataset file, sniffing .qds magic vs CSV.
monitor::Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return monitor::read_dataset_auto(in);
}

/// Sniffs the leading bytes of `path` against a magic predicate.  An
/// empty or shorter-than-magic file is simply "not this format" here; the
/// actual loaders produce the precise error.
bool sniff_magic(const std::string& path, bool (*pred)(const char*, std::size_t)) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return pred(magic, static_cast<std::size_t>(in.gcount()));
}

bool is_manifest_file(const std::string& path) {
  return sniff_magic(path, monitor::is_qdm_magic);
}

bool is_qds_file(const std::string& path) {
  return sniff_magic(path, monitor::is_qds_magic);
}

bool has_qds_extension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".qds") == 0;
}

monitor::QdsWriteOptions qds_options(const Args& args) {
  monitor::QdsWriteOptions opts;
  if (args.options.count("compress") != 0) opts.codec = monitor::QdsCodec::kQlz;
  return opts;
}

/// Writes a dataset; the extension picks the format (.qds binary, else CSV).
void save_dataset(const std::string& path, const monitor::Dataset& ds,
                  const monitor::QdsWriteOptions& opts = {}) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  if (has_qds_extension(path)) {
    monitor::write_dataset_qds(out, ds, opts);
  } else {
    monitor::write_dataset_csv(out, ds);
  }
}

/// Loads any dataset source into an owned table: a .qdm manifest is
/// stitched from its shards, everything else goes through the sniffing
/// reader.  (The mmap fast path is used where the rows are consumed in
/// place — info/train/eval — not here, where a copy is the product.)
monitor::Dataset materialize_any(const std::string& path) {
  if (is_manifest_file(path)) {
    return monitor::ShardedDataset::open(path).materialize();
  }
  return load_dataset(path);
}

int cmd_workloads() {
  for (const auto& w : workloads::known_workloads()) std::printf("%s\n", w.c_str());
  return 0;
}

/// Applies the scenario-shaping options shared by `run` and `dump-trace`:
/// `--topology CxSxT` replaces the testbed cluster shape, and `--lanes N`
/// selects the parallel lane engine.  `--lanes 0` is rejected here — the
/// library's lanes == 0 means "classic single engine", which on the CLI is
/// spelled by omitting the flag, so an explicit 0 is a confused request
/// for a lane run with no lanes.  Lane counts above the OSS count are
/// rejected by the cluster layer (each data lane must own an OSS port);
/// its message reaches the user through the main() error path.
void apply_cluster_options(core::ScenarioConfig& cfg, const Args& args) {
  const std::string topo = args.get("topology", "");
  if (!topo.empty()) {
    int clients = 0;
    int oss = 0;
    int osts = 0;
    char extra = 0;
    if (std::sscanf(topo.c_str(), "%dx%dx%d%c", &clients, &oss, &osts, &extra) != 3 ||
        clients < 2 || oss < 1 || osts < 1) {
      throw std::runtime_error(
          "bad --topology '" + topo +
          "': expected CLIENTSxOSSxOSTS_PER_OSS with >= 2 clients, e.g. 1008x16x8");
    }
    cfg.cluster.n_client_nodes = clients;
    cfg.cluster.n_oss = oss;
    cfg.cluster.osts_per_oss = osts;
  }
  if (args.options.count("lanes") != 0) {
    const int lanes = args.get_int("lanes", 0);
    if (lanes < 1) {
      throw std::runtime_error(
          "--lanes " + args.get("lanes", "") +
          ": need at least 1 data lane (omit --lanes for the classic single engine)");
    }
    cfg.lanes = lanes;
  }
}

/// Sums the fault-path counters a run left in its trace and prints them.
void print_fault_summary(const char* tag, const trace::TraceLog& trace) {
  long long retries = 0;
  long long timeouts = 0;
  long long failed = 0;
  for (const trace::OpRecord& rec : trace.records()) {
    retries += rec.retries;
    timeouts += rec.timeouts;
    failed += rec.failed ? 1 : 0;
  }
  std::printf("%s faults: %lld retries, %lld timeouts, %lld failed ops\n", tag,
              retries, timeouts, failed);
}

int cmd_run(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string target = args.positional[0];
  if (!workloads::is_known_workload(target)) {
    std::fprintf(stderr, "unknown workload: %s\n", target.c_str());
    return 1;
  }
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  apply_cluster_options(cfg, args);
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) cfg.faults = pfs::faults::parse_fault_plan(faults_spec);

  const auto solo = core::run_scenario(cfg);
  std::printf("solo: %.2f s timed phase (%.2f s total, %llu events)\n",
              sim::to_seconds(solo.target_body_duration()),
              sim::to_seconds(solo.target_completion),
              static_cast<unsigned long long>(solo.events_executed));
  // The fingerprint line is what scripts diff to assert lane-count (and any
  // other supposedly-neutral knob) changed nothing about the simulation.
  std::printf("solo trace fp: %016llx\n",
              static_cast<unsigned long long>(trace::trace_fingerprint(solo.trace)));
  if (!cfg.faults.empty()) print_fault_summary("solo", solo.trace);

  const std::string noise = args.get("noise", "");
  if (noise.empty()) return 0;
  if (!workloads::is_known_workload(noise)) {
    std::fprintf(stderr, "unknown workload: %s\n", noise.c_str());
    return 1;
  }
  core::InterferenceSpec spec;
  spec.workload = noise;
  // Every node the target does not occupy hosts interference ({2..6} on
  // the default testbed shape).
  spec.nodes.clear();
  for (pfs::NodeId n = 2; n < cfg.cluster.n_client_nodes; ++n) spec.nodes.push_back(n);
  spec.instances = args.get_int("instances", 15);
  spec.seed = 77;
  cfg.interference = spec;
  const auto mixed = core::run_scenario(cfg);
  std::printf("with %d x %s: %.2f s  -> slowdown %.2fx\n", spec.instances, noise.c_str(),
              sim::to_seconds(mixed.target_body_duration()),
              static_cast<double>(mixed.target_body_duration()) /
                  static_cast<double>(solo.target_body_duration()));
  if (!cfg.faults.empty()) print_fault_summary("noisy", mixed.trace);

  const auto matched = trace::TraceMatcher::match(solo.trace, mixed.trace, 0);
  std::map<pfs::OpType, std::pair<sim::RunningStats, sim::RunningStats>> by_type;
  for (const auto& m : matched) {
    auto& [b, n] = by_type[m.base.type];
    b.add(sim::to_millis(m.base.duration()));
    n.add(sim::to_millis(m.interference.duration()));
  }
  core::TextTable table;
  table.add_row({"op", "count", "solo ms", "noisy ms", "slowdown"});
  for (const auto& [type, st] : by_type) {
    const auto& [b, n] = st;
    table.add_row({pfs::op_name(type), std::to_string(b.count()), core::fmt(b.mean(), 3),
                   core::fmt(n.mean(), 3),
                   core::fmt(b.mean() > 0 ? n.mean() / b.mean() : 0, 2) + "x"});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  const std::string family = args.positional[0];
  core::DatasetOptions opts;
  opts.richness = args.get_double("richness", 1.0);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.verbose = true;
  if (args.get("bins", "2") == "2,5") opts.bin_thresholds = {2.0, 5.0};
  const int jobs = args.get_int("jobs", 1);
  opts.runner = exec::campaign_runner(jobs);
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) opts.faults = pfs::faults::parse_fault_plan(faults_spec);

  // --stream-out: route every campaign through the parallel runner's
  // ordered case sink, so each case's windows hit a shard file the moment
  // the case (and its declaration-order predecessors) complete.  Campaigns
  // run one after another and the sink is serialized, so the single writer
  // sees chunks in exactly the stitched dataset's row order.
  const std::string stream_dir = args.get("stream-out", "");
  std::optional<monitor::ShardStreamWriter> stream;
  if (!stream_dir.empty()) {
    std::filesystem::create_directories(stream_dir);
    stream.emplace(stream_dir + "/" + family, qds_options(args));
    opts.runner = [&stream, jobs](const core::CampaignConfig& cc) {
      return exec::ParallelCampaignRunner(cc, jobs)
          .run([&stream](std::size_t, const core::CaseResult& cr) {
            stream->add(cr.shard);
          });
    };
  }

  monitor::Dataset ds;
  if (family == "io500") {
    ds = core::build_io500_dataset(opts);
  } else if (family == "dlio") {
    ds = core::build_dlio_dataset(opts);
  } else if (family == "amrex" || family == "enzo" || family == "openpmd") {
    ds = core::build_app_dataset(family, opts);
  } else {
    std::fprintf(stderr, "unknown campaign family: %s\n", family.c_str());
    return 1;
  }
  save_dataset(args.get("out", ""), ds, qds_options(args));
  const auto hist = ds.class_histogram();
  std::printf("wrote %zu windows to %s (classes:", ds.size(), args.get("out", "").c_str());
  for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
  std::printf(")\n");
  if (stream.has_value()) {
    const std::size_t n_shards = stream->n_shards();
    const std::string manifest = stream->finish();
    // Merge check: the streamed shards, stitched back through the manifest
    // reader, must serialize to the exact bytes of the in-RAM dataset.
    const monitor::Dataset merged = monitor::ShardedDataset::open(manifest).materialize();
    std::ostringstream in_ram;
    std::ostringstream from_shards;
    monitor::write_dataset_qds(in_ram, ds);
    monitor::write_dataset_qds(from_shards, merged);
    if (in_ram.str() != from_shards.str()) {
      std::fprintf(stderr,
                   "error: streamed shards in %s do not merge byte-identically to the"
                   " in-RAM dataset\n",
                   manifest.c_str());
      return 1;
    }
    std::printf("streamed %zu windows to %zu shard(s) behind %s"
                " (merge check: byte-identical)\n",
                stream->rows(), n_shards, manifest.c_str());
  }
  return 0;
}

int cmd_train(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("out") == 0) return usage();
  const std::string data = args.get("data", "");
  core::TrainingServerConfig cfg;
  cfg.n_classes = args.get_int("classes", 2);
  cfg.train.max_epochs = args.get_int("epochs", cfg.train.max_epochs);
  cfg.train.jobs = args.get_int("jobs", 1);
  core::TrainingServer server(cfg);

  ml::TrainResult tr;
  std::size_t n_train = 0;
  ml::ConfusionMatrix cm(cfg.n_classes);
  if (is_manifest_file(data)) {
    // Streaming path: shards stay on disk (mmap'ed, optionally under a
    // resident-page budget) and the chunked trainer reads rows in place.
    // split_rows + SubsetRows reproduce split_dataset's membership, so
    // the model bytes match the in-RAM path bit for bit.
    const std::size_t budget_mib =
        static_cast<std::size_t>(std::max(args.get_int("memory-budget", 0), 0));
    const monitor::ShardedDataset ds =
        monitor::ShardedDataset::open(data, budget_mib << 20);
    auto [train_idx, test_idx] = ml::split_rows(ds.size(), 0.2, 17);
    const monitor::SubsetRows train(ds, std::move(train_idx));
    const monitor::SubsetRows test(ds, std::move(test_idx));
    n_train = train.size();
    tr = server.fit_rows(train);
    cm = server.evaluate_rows(test);
  } else if (is_qds_file(data)) {
    // Single .qds files are mmap'ed; uncompressed version-2 images train
    // straight out of the page cache with zero copies.
    const monitor::MappedDataset mapped = monitor::map_dataset_qds(data);
    auto [train, test] = ml::split_dataset(mapped.table, 0.2, 17);
    n_train = train.size();
    tr = server.fit(train);
    cm = server.evaluate(test);
  } else {
    const monitor::Dataset ds = load_dataset(data);
    auto [train, test] = ml::split_dataset(ds, 0.2, 17);
    n_train = train.size();
    tr = server.fit(train);
    cm = server.evaluate(test);
  }
  std::printf("trained on %zu windows (best epoch %d, val macro-F1 %.3f)\n", n_train,
              tr.best_epoch, tr.best_val_macro_f1);
  std::printf("%s", cm.to_string().c_str());
  std::ofstream out(args.get("out", ""));
  server.save(out);
  std::printf("model saved to %s\n", args.get("out", "").c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("model") == 0) return usage();
  std::ifstream min(args.get("model", ""));
  if (!min) {
    std::fprintf(stderr, "cannot open %s\n", args.get("model", "").c_str());
    return 1;
  }
  const std::string data = args.get("data", "");
  core::TrainingServer server(core::TrainingServerConfig{});
  server.load(min);
  ml::ConfusionMatrix cm(server.config().n_classes);
  if (is_manifest_file(data)) {
    const monitor::ShardedDataset ds = monitor::ShardedDataset::open(data);
    cm = server.evaluate_rows(ds);
  } else if (is_qds_file(data)) {
    const monitor::MappedDataset mapped = monitor::map_dataset_qds(data);
    cm = server.evaluate(mapped.table);
  } else {
    const monitor::Dataset ds = load_dataset(data);
    cm = server.evaluate(ds);
  }
  std::printf("%s", cm.to_string().c_str());
  return 0;
}

/// `dataset info` body over any row source (in-RAM, mmap'ed, or sharded).
void print_dataset_info(const std::string& path, const monitor::RowAccess& ds,
                        const char* storage_note) {
  const auto hist = ds.class_histogram();
  std::printf("%s: %zu windows, %d servers x %d features (row width %zu)%s\n",
              path.c_str(), ds.size(), ds.n_servers(), ds.dim(), ds.width(),
              storage_note);
  std::printf("classes:");
  for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
  std::printf("\n");
  if (!ds.empty()) {
    double deg_sum = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) deg_sum += ds.degradation(i);
    std::printf("windows %lld..%lld, mean degradation %.3f\n",
                static_cast<long long>(ds.window_index(0)),
                static_cast<long long>(ds.window_index(ds.size() - 1)),
                deg_sum / static_cast<double>(ds.size()));
  }
}

int cmd_dataset(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const std::string& verb = args.positional[0];
  const std::string& path = args.positional[1];
  if (verb == "info") {
    if (is_manifest_file(path)) {
      const monitor::ShardedDataset ds = monitor::ShardedDataset::open(path);
      char note[64];
      std::snprintf(note, sizeof(note), " [%zu shards%s]", ds.n_shards(),
                    ds.zero_copy() ? ", mmap zero-copy" : "");
      print_dataset_info(path, ds, note);
    } else if (is_qds_file(path)) {
      const monitor::MappedDataset mapped = monitor::map_dataset_qds(path);
      const monitor::TableView view(mapped.table);
      const monitor::ViewRows rows(view);
      print_dataset_info(path, rows, mapped.zero_copy ? " [mmap zero-copy]" : " [mmap]");
    } else {
      const monitor::Dataset ds = load_dataset(path);
      const monitor::TableView view(ds);
      const monitor::ViewRows rows(view);
      print_dataset_info(path, rows, "");
    }
    return 0;
  }
  if (verb == "head") {
    const auto rows = static_cast<std::size_t>(args.get_int("rows", 5));
    const monitor::Dataset ds = materialize_any(path);
    std::ostringstream os;
    // Reuse the CSV writer on a head-sized copy so the column headers are
    // printed too.
    monitor::Dataset head;
    if (ds.n_servers() != 0) head.set_shape(ds.n_servers(), ds.dim());
    for (std::size_t i = 0; i < std::min(rows, ds.size()); ++i) {
      head.append_row(ds.window_index(i), ds.label(i), ds.degradation(i), ds.row(i));
    }
    monitor::write_dataset_csv(os, head);
    std::printf("%s", os.str().c_str());
    return 0;
  }
  if (verb == "convert") {
    if (args.positional.size() < 3) return usage();
    const std::string& out_path = args.positional[2];
    const monitor::Dataset ds = materialize_any(path);
    save_dataset(out_path, ds, qds_options(args));
    std::printf("wrote %zu windows to %s (%s)\n", ds.size(), out_path.c_str(),
                has_qds_extension(out_path) ? "binary .qds" : "CSV");
    return 0;
  }
  if (verb == "shard") {
    if (args.positional.size() < 3) return usage();
    const std::string& prefix = args.positional[2];
    const monitor::Dataset ds = materialize_any(path);
    if (ds.empty()) throw std::runtime_error("refusing to shard an empty dataset");
    std::size_t rows_per_shard = 0;
    if (args.options.count("shards") != 0) {
      const auto n_shards = static_cast<std::size_t>(std::max(args.get_int("shards", 1), 1));
      rows_per_shard = (ds.size() + n_shards - 1) / n_shards;
    } else {
      rows_per_shard =
          static_cast<std::size_t>(std::max(args.get_int("rows-per-shard", 65536), 1));
    }
    const std::string manifest =
        monitor::write_sharded_dataset(prefix, ds, rows_per_shard, qds_options(args));
    const std::size_t n_shards = (ds.size() + rows_per_shard - 1) / rows_per_shard;
    std::printf("wrote %zu windows to %zu shard(s) behind %s\n", ds.size(), n_shards,
                manifest.c_str());
    return 0;
  }
  if (verb == "merge") {
    if (args.positional.size() < 3) return usage();
    const std::string& out_path = args.positional[2];
    const monitor::Dataset ds = monitor::ShardedDataset::open(path).materialize();
    save_dataset(out_path, ds, qds_options(args));
    std::printf("merged %zu windows into %s\n", ds.size(), out_path.c_str());
    return 0;
  }
  return usage();
}

int cmd_dump_trace(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = args.positional[0];
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  apply_cluster_options(cfg, args);
  const auto res = core::run_scenario(cfg);
  std::ofstream out(args.get("out", ""));
  monitor::write_dxt(out, res.trace);
  std::printf("wrote %zu op records to %s\n", res.trace.size(),
              args.get("out", "").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "dataset") return cmd_dataset(args);
    if (cmd == "dump-trace") return cmd_dump_trace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
