// qif — command-line front end for the framework.
//
//   qif workloads [list]
//   qif workloads export <name> [--ranks N] [--seed K] [--scale S] [--out F.qwp]
//   qif workloads lint <file.qwp>
//       List the canonical workload names (`list` adds the parameterized
//       forms: trace:FILE, ckpt:SIZE,BW,MTTI, qwp:FILE).  `export`
//       serializes a named workload's per-rank programs as a checksummed
//       .qwp file; `lint` parses one and reports its shape.  Workload
//       names anywhere on the CLI accept the parameterized forms too, so
//       a dumped trace replays as a target or as interference:
//         qif run trace:run.dxt --replay-timing original
//
//   qif run <target> [--noise W] [--instances N] [--scale S] [--seed K]
//           [--faults SPEC] [--lanes N] [--topology CxSxT]
//           [--replay-timing original|asap|scale=X]
//       Run one scenario (solo, or under N looping copies of W) and print
//       completion time plus the per-op-type latency breakdown.  --faults
//       injects a fault plan (e.g. "slow:ost=0,start=2,dur=10,factor=4")
//       into every run and reports retry/timeout/failure counts.
//       --topology replaces the 7x3x2 testbed shape with CLIENTS x OSS x
//       OSTS_PER_OSS (e.g. 1008x16x8 for a 128-OST cluster).  --lanes N
//       partitions the cluster into N per-OSS-group event lanes plus a
//       metadata lane (see DESIGN.md "Parallel event lanes"); the printed
//       trace fingerprint is bit-identical for every N >= 1, which is how
//       scripts assert the partitioning changed nothing.  N must be at
//       least 1 and at most the OSS count.
//
//   qif campaign <io500|dlio|amrex|enzo|openpmd|custom> [--richness R]
//                [--workload W]
//                [--bins 2|2,5] [--seed K] [--jobs N] [--faults SPEC]
//                [--compress] [--stream-out DIR] --out data.{csv,qds}
//       Build a labelled training dataset; the --out extension picks the
//       format (.qds = native binary, anything else = interop CSV).
//       --jobs N fans the campaign's scenario simulations across N worker
//       threads (output is bit-identical to --jobs 1).  The `custom`
//       family labels an arbitrary --workload W (any registry name,
//       including trace:/ckpt:/qwp: forms) against the standard
//       interference sweep.  --compress writes
//       the .qds column blocks LZ-compressed.  --stream-out DIR
//       additionally streams every case's windows to DIR/<family>.NNN.qds
//       the moment the case (and its ordered predecessors) finish, seals a
//       DIR/<family>.qdm manifest, and verifies the shards merge back
//       byte-identically to the in-RAM dataset.
//
//   qif train --data data.{csv,qds,qdm} --out model.txt [--classes C]
//             [--epochs E] [--jobs N] [--memory-budget MB]
//       Train the kernel-based model on a dataset (80/20 split) and save
//       the bundle; prints the held-out confusion matrix.  --jobs N
//       partitions the training GEMMs across N worker threads (the model
//       is bit-identical to --jobs 1).  A .qdm manifest streams its shards
//       through the chunked ingestion path (same model bytes as in-RAM);
//       --memory-budget caps resident shard pages in MiB.
//
//   qif eval --data data.{csv,qds,qdm} --model model.txt
//       Evaluate a saved bundle on a dataset.
//
//   qif dataset info <file>
//   qif dataset head <file> [--rows N]
//   qif dataset convert <in> <out> [--compress]
//       Inspect or convert dataset files; formats are sniffed on read
//       (.qds / .qdm magic vs CSV) and picked by extension on write.
//       Single .qds files are memory-mapped (zero-copy for uncompressed
//       version-2 images).
//
//   qif dataset shard <in> <out-prefix> [--rows-per-shard R | --shards N]
//                     [--compress]
//   qif dataset merge <in.qdm> <out>
//       Split a dataset into <prefix>.NNN.qds shards behind a
//       <prefix>.qdm manifest (deterministic row order), or stitch a
//       manifest back into one file.  shard -> merge round-trips the
//       dataset exactly.
//
//   qif dump-trace <target> [--scale S] [--seed K] [--lanes N]
//                  [--topology CxSxT] --out trace.txt
//       Run the target solo and dump its DXT-style op trace.
//
//   qif serve bench [--model F | --model-dir D] [--producers N] [--requests R]
//                   [--max-batch B] [--max-delay-us U] [--ring CAP]
//                   [--inflight W] [--sync] [--swap-every-ms M] [--json]
//   qif serve verify [--model F | --model-dir D] [--requests R] [--producers N]
//                    [--max-batch B] [--json]
//   qif serve publish --model F --model-dir D
//   qif serve versions --model-dir D
//       Online-inference service front end.  `bench` floods the service
//       with N closed-loop producers (W in-flight requests each) and
//       reports predictions/sec plus p50/p99/p999 queue->reply latency;
//       --sync measures the single-row synchronous baseline instead, and
//       --swap-every-ms hot-swaps the model under load.  `verify` replays
//       every batched prediction through the N=1 sync path and asserts
//       bit-identical outputs (the batching-changes-nothing contract).
//       `publish` imports a text "qif-model" bundle (qif train output) or
//       a binary .qifm into the registry as v<N+1>.qifm.  Without a model
//       a synthetic bundle is generated (--arch kernel|attention,
//       --classes C, --seed K) so smoke runs need no training step.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"
#include "qif/monitor/qds_file.hpp"
#include "qif/serve/service.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/dxt.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/workloads/program_io.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atoi(it->second.c_str());
  }
};

/// Options that take no value (presence == true).
bool is_flag_option(const std::string& name) {
  return name == "compress" || name == "json" || name == "sync";
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0 && is_flag_option(a.substr(2))) {
      args.options[a.substr(2)] = "1";
    } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[a.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: qif <command> [options]\n"
               "  workloads [list]                   list workload names (+ param forms)\n"
               "  workloads export <name> [--ranks N] [--seed K] [--scale S]"
               " [--out F.qwp]\n"
               "  workloads lint <file.qwp>          parse + summarize a .qwp program\n"
               "  run <target> [--noise W] [--instances N] [--scale S] [--seed K]"
               " [--faults SPEC]\n"
               "      [--lanes N] [--topology CxSxT] [--mitigate POLICY]"
               " [--replay-timing original|asap|scale=X]\n"
               "        <target>/<W> accept trace:FILE, ckpt:SIZE,BW,MTTI and"
               " qwp:FILE forms\n"
               "        --lanes N        run on N parallel event lanes (1 <= N <= OSS"
               " count;\n"
               "                         trace fingerprint is identical for every N)\n"
               "        --topology CxSxT CLIENTS x OSS x OSTS_PER_OSS cluster shape\n"
               "                         (default 7x3x2 testbed; e.g. 1008x16x8)\n"
               "        --mitigate POLICY closed-loop mitigation: off |"
               " token[:k=v,...] | probe[:k=v,...]\n"
               "                         (token: rate/burst MiB, cut, flag ns-per-byte;"
               " probe: init/min/max/step,tol;\n"
               "                         common: epoch seconds, scope=noise|all)\n"
               "  campaign <family> [--richness R] [--bins 2|2,5] [--seed K] [--jobs N]"
               " [--faults SPEC] [--mitigate POLICY] [--json]\n"
               "      [--compress] [--stream-out DIR] --out F.{csv,qds}\n"
               "      family `custom` labels any --workload W (trace:/ckpt:/qwp: too)\n"
               "      --mitigate P runs on-vs-off twins over the same seeds and prints"
               " the comparison\n"
               "  train --data F.{csv,qds,qdm} --out model.txt [--classes C] [--epochs E]"
               " [--jobs N] [--memory-budget MB]\n"
               "  eval --data F.{csv,qds,qdm} --model model.txt\n"
               "  dataset info|head|convert <file> [out] [--rows N] [--compress]\n"
               "  dataset shard <in> <out-prefix> [--rows-per-shard R | --shards N]"
               " [--compress]\n"
               "  dataset merge <in.qdm> <out>\n"
               "  dump-trace <target> [--scale S] [--seed K] [--lanes N]"
               " [--topology CxSxT] --out F.txt\n"
               "      (a dump replays via `run trace:F.txt` — the closed loop)\n"
               "  serve bench [--model F | --model-dir D] [--producers N]"
               " [--requests R]\n"
               "      [--max-batch B] [--max-delay-us U] [--ring CAP] [--inflight W]"
               " [--sync]\n"
               "      [--swap-every-ms M] [--json]\n"
               "  serve verify [--model F | --model-dir D] [--requests R]"
               " [--producers N] [--max-batch B] [--json]\n"
               "  serve publish --model F --model-dir D\n"
               "  serve versions --model-dir D\n");
  return 2;
}

/// Loads a dataset file, sniffing .qds magic vs CSV.
monitor::Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return monitor::read_dataset_auto(in);
}

/// Sniffs the leading bytes of `path` against a magic predicate.  An
/// empty or shorter-than-magic file is simply "not this format" here; the
/// actual loaders produce the precise error.
bool sniff_magic(const std::string& path, bool (*pred)(const char*, std::size_t)) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return pred(magic, static_cast<std::size_t>(in.gcount()));
}

bool is_manifest_file(const std::string& path) {
  return sniff_magic(path, monitor::is_qdm_magic);
}

bool is_qds_file(const std::string& path) {
  return sniff_magic(path, monitor::is_qds_magic);
}

bool has_qds_extension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".qds") == 0;
}

monitor::QdsWriteOptions qds_options(const Args& args) {
  monitor::QdsWriteOptions opts;
  if (args.options.count("compress") != 0) opts.codec = monitor::QdsCodec::kQlz;
  return opts;
}

/// Writes a dataset; the extension picks the format (.qds binary, else CSV).
void save_dataset(const std::string& path, const monitor::Dataset& ds,
                  const monitor::QdsWriteOptions& opts = {}) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  if (has_qds_extension(path)) {
    monitor::write_dataset_qds(out, ds, opts);
  } else {
    monitor::write_dataset_csv(out, ds);
  }
}

/// Loads any dataset source into an owned table: a .qdm manifest is
/// stitched from its shards, everything else goes through the sniffing
/// reader.  (The mmap fast path is used where the rows are consumed in
/// place — info/train/eval — not here, where a copy is the product.)
monitor::Dataset materialize_any(const std::string& path) {
  if (is_manifest_file(path)) {
    return monitor::ShardedDataset::open(path).materialize();
  }
  return load_dataset(path);
}

int cmd_workloads(const Args& args) {
  if (args.positional.empty() || args.positional[0] == "list") {
    for (const auto& w : workloads::known_workloads()) std::printf("%s\n", w.c_str());
    if (!args.positional.empty()) {
      // Explicit `list` also shows the parameterized families.
      for (const auto& [prefix, help] : workloads::known_workload_prefixes()) {
        std::printf("%s:%s\n", prefix.c_str(), help.c_str());
      }
    }
    return 0;
  }
  const std::string& verb = args.positional[0];
  if (verb == "export") {
    if (args.positional.size() < 2) return usage();
    const std::string& name = args.positional[1];
    if (!workloads::is_known_workload(name)) {
      std::fprintf(stderr, "%s\n", workloads::workload_name_error(name).c_str());
      return 1;
    }
    const int n_ranks = std::max(args.get_int("ranks", 4), 1);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const double scale = args.get_double("scale", 1.0);
    workloads::WorkloadProgram prog;
    prog.workload = name;
    for (int r = 0; r < n_ranks; ++r) {
      prog.ranks.push_back(
          workloads::build_named_program(name, r, n_ranks, 0, seed, scale));
    }
    const std::string out_path = args.get("out", "");
    if (out_path.empty()) {
      std::ostringstream os;
      workloads::write_qwp(os, prog);
      std::printf("%s", os.str().c_str());
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot open " + out_path + " for writing");
      workloads::write_qwp(out, prog);
      std::printf("wrote %d-rank program for '%s' to %s\n", n_ranks, name.c_str(),
                  out_path.c_str());
    }
    return 0;
  }
  if (verb == "lint") {
    if (args.positional.size() < 2) return usage();
    const workloads::WorkloadProgram prog = workloads::read_qwp_file(args.positional[1]);
    std::size_t prologue_ops = 0;
    std::size_t body_ops = 0;
    for (const auto& r : prog.ranks) {
      prologue_ops += r.prologue.size();
      body_ops += r.body.size();
    }
    std::printf("%s: ok (workload '%s', %zu rank(s), %zu prologue + %zu body ops)\n",
                args.positional[1].c_str(), prog.workload.c_str(), prog.ranks.size(),
                prologue_ops, body_ops);
    return 0;
  }
  std::fprintf(stderr, "unknown workloads verb: %s (expected list, export or lint)\n",
               verb.c_str());
  return usage();
}

/// Applies `--replay-timing {original,asap,scale=X}` to a `trace:` workload
/// name that does not already carry an explicit `@policy` suffix.
std::string with_replay_timing(std::string name, const Args& args) {
  const std::string timing = args.get("replay-timing", "");
  if (timing.empty() || name.rfind("trace:", 0) != 0) return name;
  if (name.find('@', 6) != std::string::npos) return name;  // explicit suffix wins
  return name + "@" + timing;
}

/// Applies the scenario-shaping options shared by `run` and `dump-trace`:
/// `--topology CxSxT` replaces the testbed cluster shape, and `--lanes N`
/// selects the parallel lane engine.  `--lanes 0` is rejected here — the
/// library's lanes == 0 means "classic single engine", which on the CLI is
/// spelled by omitting the flag, so an explicit 0 is a confused request
/// for a lane run with no lanes.  Lane counts above the OSS count are
/// rejected by the cluster layer (each data lane must own an OSS port);
/// its message reaches the user through the main() error path.
void apply_cluster_options(core::ScenarioConfig& cfg, const Args& args) {
  const std::string topo = args.get("topology", "");
  if (!topo.empty()) {
    int clients = 0;
    int oss = 0;
    int osts = 0;
    char extra = 0;
    if (std::sscanf(topo.c_str(), "%dx%dx%d%c", &clients, &oss, &osts, &extra) != 3 ||
        clients < 2 || oss < 1 || osts < 1) {
      throw std::runtime_error(
          "bad --topology '" + topo +
          "': expected CLIENTSxOSSxOSTS_PER_OSS with >= 2 clients, e.g. 1008x16x8");
    }
    cfg.cluster.n_client_nodes = clients;
    cfg.cluster.n_oss = oss;
    cfg.cluster.osts_per_oss = osts;
  }
  if (args.options.count("lanes") != 0) {
    const int lanes = args.get_int("lanes", 0);
    if (lanes < 1) {
      throw std::runtime_error(
          "--lanes " + args.get("lanes", "") +
          ": need at least 1 data lane (omit --lanes for the classic single engine)");
    }
    cfg.lanes = lanes;
  }
}

/// Sums the fault-path counters a run left in its trace and prints them.
void print_fault_summary(const char* tag, const trace::TraceLog& trace) {
  long long retries = 0;
  long long timeouts = 0;
  long long failed = 0;
  for (const trace::OpRecord& rec : trace.records()) {
    retries += rec.retries;
    timeouts += rec.timeouts;
    failed += rec.failed ? 1 : 0;
  }
  std::printf("%s faults: %lld retries, %lld timeouts, %lld failed ops\n", tag,
              retries, timeouts, failed);
}

int cmd_run(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string target = with_replay_timing(args.positional[0], args);
  if (!workloads::is_known_workload(target)) {
    std::fprintf(stderr, "%s\n", workloads::workload_name_error(target).c_str());
    return 1;
  }
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  apply_cluster_options(cfg, args);
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) cfg.faults = pfs::faults::parse_fault_plan(faults_spec);
  cfg.mitigation = ctrl::parse_mitigation(args.get("mitigate", ""));

  const auto solo = core::run_scenario(cfg);
  std::printf("solo: %.2f s timed phase (%.2f s total, %llu events)\n",
              sim::to_seconds(solo.target_body_duration()),
              sim::to_seconds(solo.target_completion),
              static_cast<unsigned long long>(solo.events_executed));
  // The fingerprint line is what scripts diff to assert lane-count (and any
  // other supposedly-neutral knob) changed nothing about the simulation.
  std::printf("solo trace fp: %016llx\n",
              static_cast<unsigned long long>(trace::trace_fingerprint(solo.trace)));
  if (!cfg.faults.empty()) print_fault_summary("solo", solo.trace);

  const std::string noise = with_replay_timing(args.get("noise", ""), args);
  if (noise.empty()) return 0;
  if (!workloads::is_known_workload(noise)) {
    std::fprintf(stderr, "%s\n", workloads::workload_name_error(noise).c_str());
    return 1;
  }
  core::InterferenceSpec spec;
  spec.workload = noise;
  // Every node the target does not occupy hosts interference ({2..6} on
  // the default testbed shape).
  spec.nodes.clear();
  for (pfs::NodeId n = 2; n < cfg.cluster.n_client_nodes; ++n) spec.nodes.push_back(n);
  spec.instances = args.get_int("instances", 15);
  spec.seed = 77;
  cfg.interference = spec;
  const auto mixed = core::run_scenario(cfg);
  std::printf("with %d x %s: %.2f s  -> slowdown %.2fx\n", spec.instances, noise.c_str(),
              sim::to_seconds(mixed.target_body_duration()),
              static_cast<double>(mixed.target_body_duration()) /
                  static_cast<double>(solo.target_body_duration()));
  // Same diff anchor as the solo line: mitigated runs must fingerprint
  // identically at every --lanes and --jobs count.
  std::printf("noisy trace fp: %016llx\n",
              static_cast<unsigned long long>(trace::trace_fingerprint(mixed.trace)));
  if (!cfg.faults.empty()) print_fault_summary("noisy", mixed.trace);
  if (mixed.ctrl.active()) {
    std::printf("mitigation %s: %d controllers, %lld throttle waits, %.1f MiB"
                " throttled, %.3f s total delay, mean level %.2f, victim p99 %.3f ms\n",
                mixed.ctrl.policy.c_str(), mixed.ctrl.controllers,
                static_cast<long long>(mixed.ctrl.throttle_waits),
                static_cast<double>(mixed.ctrl.throttled_bytes) / (1 << 20),
                mixed.ctrl.throttle_delay_s, mixed.ctrl.mean_admission_level,
                mixed.ctrl.victim_p99_ms);
  }

  const auto matched = trace::TraceMatcher::match(solo.trace, mixed.trace, 0);
  std::map<pfs::OpType, std::pair<sim::RunningStats, sim::RunningStats>> by_type;
  for (const auto& m : matched) {
    auto& [b, n] = by_type[m.base.type];
    b.add(sim::to_millis(m.base.duration()));
    n.add(sim::to_millis(m.interference.duration()));
  }
  core::TextTable table;
  table.add_row({"op", "count", "solo ms", "noisy ms", "slowdown"});
  for (const auto& [type, st] : by_type) {
    const auto& [b, n] = st;
    table.add_row({pfs::op_name(type), std::to_string(b.count()), core::fmt(b.mean(), 3),
                   core::fmt(n.mean(), 3),
                   core::fmt(b.mean() > 0 ? n.mean() / b.mean() : 0, 2) + "x"});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}

/// One side's aggregate over every campaign outcome in a mitigation study.
struct MitigationAggregate {
  double deg_sum = 0.0;  ///< sampled-window-weighted Level_degrade
  long long deg_windows = 0;
  double p99_sum = 0.0;  ///< per-case victim p99 sum
  long long cases = 0;
  long long throttle_waits = 0;
  double throttle_delay_s = 0.0;

  void add(const core::CampaignResult& result) {
    for (const core::CaseOutcome& o : result.outcomes) {
      if (!o.ok()) continue;
      deg_sum += o.mean_degradation * static_cast<double>(o.sampled_windows);
      deg_windows += static_cast<long long>(o.sampled_windows);
      p99_sum += o.victim_p99_ms;
      ++cases;
      throttle_waits += o.throttle_waits;
      throttle_delay_s += o.throttle_delay_s;
    }
  }
  void merge(const MitigationAggregate& other) {
    deg_sum += other.deg_sum;
    deg_windows += other.deg_windows;
    p99_sum += other.p99_sum;
    cases += other.cases;
    throttle_waits += other.throttle_waits;
    throttle_delay_s += other.throttle_delay_s;
  }
  [[nodiscard]] double mean_deg() const {
    return deg_windows > 0 ? deg_sum / static_cast<double>(deg_windows) : 1.0;
  }
  [[nodiscard]] double mean_p99() const {
    return cases > 0 ? p99_sum / static_cast<double>(cases) : 0.0;
  }
};

int cmd_campaign(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  const std::string family = args.positional[0];
  core::DatasetOptions opts;
  opts.richness = args.get_double("richness", 1.0);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.verbose = true;
  if (args.get("bins", "2") == "2,5") opts.bin_thresholds = {2.0, 5.0};
  const int jobs = args.get_int("jobs", 1);
  opts.runner = exec::campaign_runner(jobs);
  const std::string faults_spec = args.get("faults", "");
  if (!faults_spec.empty()) opts.faults = pfs::faults::parse_fault_plan(faults_spec);

  // --stream-out: route every campaign through the parallel runner's
  // ordered case sink, so each case's windows hit a shard file the moment
  // the case (and its declaration-order predecessors) complete.  Campaigns
  // run one after another and the sink is serialized, so the single writer
  // sees chunks in exactly the stitched dataset's row order.
  const std::string stream_dir = args.get("stream-out", "");
  std::optional<monitor::ShardStreamWriter> stream;
  if (!stream_dir.empty()) {
    std::filesystem::create_directories(stream_dir);
    stream.emplace(stream_dir + "/" + family, qds_options(args));
    opts.runner = [&stream, jobs](const core::CampaignConfig& cc) {
      return exec::ParallelCampaignRunner(cc, jobs)
          .run([&stream](std::size_t, const core::CaseResult& cr) {
            stream->add(cr.shard);
          });
    };
  }

  std::string custom_workload;
  if (family == "custom") {
    custom_workload = with_replay_timing(args.get("workload", ""), args);
    if (custom_workload.empty()) {
      std::fprintf(stderr, "campaign custom needs --workload W\n");
      return 1;
    }
    if (!workloads::is_known_workload(custom_workload)) {
      std::fprintf(stderr, "%s\n", workloads::workload_name_error(custom_workload).c_str());
      return 1;
    }
  } else if (family != "io500" && family != "dlio" && family != "amrex" &&
             family != "enzo" && family != "openpmd") {
    std::fprintf(stderr, "unknown campaign family: %s\n", family.c_str());
    return 1;
  }
  const auto build_family = [&](const core::DatasetOptions& o) -> monitor::Dataset {
    if (family == "io500") return core::build_io500_dataset(o);
    if (family == "dlio") return core::build_dlio_dataset(o);
    if (family == "custom") return core::build_app_dataset(custom_workload, o);
    return core::build_app_dataset(family, o);
  };

  // --mitigate: on-vs-off twins over the same seeds.  The off pass runs
  // first (plain runner, nothing streamed or saved) purely for comparison;
  // the mitigated pass produces the dataset written to --out.
  const ctrl::MitigationConfig mitigation =
      ctrl::parse_mitigation(args.get("mitigate", ""));
  std::map<std::string, std::pair<MitigationAggregate, MitigationAggregate>> by_target;
  if (!mitigation.empty()) {
    core::DatasetOptions off_opts = opts;
    off_opts.runner = exec::campaign_runner(jobs);
    off_opts.on_result = [&by_target](const std::string& target,
                                      const core::CampaignResult& result) {
      by_target[target].first.add(result);
    };
    std::printf("mitigation study: off pass\n");
    (void)build_family(off_opts);
    std::printf("mitigation study: on pass (%s)\n", ctrl::to_spec(mitigation).c_str());
    opts.mitigation = mitigation;
    opts.on_result = [&by_target](const std::string& target,
                                  const core::CampaignResult& result) {
      by_target[target].second.add(result);
    };
  }

  const monitor::Dataset ds = build_family(opts);
  save_dataset(args.get("out", ""), ds, qds_options(args));
  const auto hist = ds.class_histogram();
  std::printf("wrote %zu windows to %s (classes:", ds.size(), args.get("out", "").c_str());
  for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
  std::printf(")\n");
  if (stream.has_value()) {
    const std::size_t n_shards = stream->n_shards();
    const std::string manifest = stream->finish();
    // Merge check: the streamed shards, stitched back through the manifest
    // reader, must serialize to the exact bytes of the in-RAM dataset.
    const monitor::Dataset merged = monitor::ShardedDataset::open(manifest).materialize();
    std::ostringstream in_ram;
    std::ostringstream from_shards;
    monitor::write_dataset_qds(in_ram, ds);
    monitor::write_dataset_qds(from_shards, merged);
    if (in_ram.str() != from_shards.str()) {
      std::fprintf(stderr,
                   "error: streamed shards in %s do not merge byte-identically to the"
                   " in-RAM dataset\n",
                   manifest.c_str());
      return 1;
    }
    std::printf("streamed %zu windows to %zu shard(s) behind %s"
                " (merge check: byte-identical)\n",
                stream->rows(), n_shards, manifest.c_str());
  }
  if (!mitigation.empty()) {
    core::TextTable table;
    table.add_row({"campaign", "deg off", "deg on", "victim p99 off", "victim p99 on"});
    MitigationAggregate off_all;
    MitigationAggregate on_all;
    for (const auto& [target, sides] : by_target) {
      table.add_row({target, core::fmt(sides.first.mean_deg(), 3),
                     core::fmt(sides.second.mean_deg(), 3),
                     core::fmt(sides.first.mean_p99(), 3),
                     core::fmt(sides.second.mean_p99(), 3)});
      off_all.merge(sides.first);
      on_all.merge(sides.second);
    }
    table.add_row({"ALL", core::fmt(off_all.mean_deg(), 3),
                   core::fmt(on_all.mean_deg(), 3), core::fmt(off_all.mean_p99(), 3),
                   core::fmt(on_all.mean_p99(), 3)});
    std::printf("\nmitigation on-vs-off (%s):\n%s", ctrl::to_spec(mitigation).c_str(),
                table.to_string().c_str());
    std::printf("mitigation totals (on): %lld throttle waits, %.3f s total delay\n",
                on_all.throttle_waits, on_all.throttle_delay_s);
    if (args.options.count("json") != 0) {
      std::printf(
          "{\"policy\":\"%s\",\"off_deg\":%.6f,\"on_deg\":%.6f,"
          "\"off_p99_ms\":%.6f,\"on_p99_ms\":%.6f,\"throttle_waits\":%lld,"
          "\"throttle_delay_s\":%.6f}\n",
          ctrl::to_spec(mitigation).c_str(), off_all.mean_deg(), on_all.mean_deg(),
          off_all.mean_p99(), on_all.mean_p99(), on_all.throttle_waits,
          on_all.throttle_delay_s);
    }
  }
  return 0;
}

int cmd_train(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("out") == 0) return usage();
  const std::string data = args.get("data", "");
  core::TrainingServerConfig cfg;
  cfg.n_classes = args.get_int("classes", 2);
  cfg.train.max_epochs = args.get_int("epochs", cfg.train.max_epochs);
  cfg.train.jobs = args.get_int("jobs", 1);
  core::TrainingServer server(cfg);

  ml::TrainResult tr;
  std::size_t n_train = 0;
  ml::ConfusionMatrix cm(cfg.n_classes);
  if (is_manifest_file(data)) {
    // Streaming path: shards stay on disk (mmap'ed, optionally under a
    // resident-page budget) and the chunked trainer reads rows in place.
    // split_rows + SubsetRows reproduce split_dataset's membership, so
    // the model bytes match the in-RAM path bit for bit.
    const std::size_t budget_mib =
        static_cast<std::size_t>(std::max(args.get_int("memory-budget", 0), 0));
    const monitor::ShardedDataset ds =
        monitor::ShardedDataset::open(data, budget_mib << 20);
    auto [train_idx, test_idx] = ml::split_rows(ds.size(), 0.2, 17);
    const monitor::SubsetRows train(ds, std::move(train_idx));
    const monitor::SubsetRows test(ds, std::move(test_idx));
    n_train = train.size();
    tr = server.fit_rows(train);
    cm = server.evaluate_rows(test);
  } else if (is_qds_file(data)) {
    // Single .qds files are mmap'ed; uncompressed version-2 images train
    // straight out of the page cache with zero copies.
    const monitor::MappedDataset mapped = monitor::map_dataset_qds(data);
    auto [train, test] = ml::split_dataset(mapped.table, 0.2, 17);
    n_train = train.size();
    tr = server.fit(train);
    cm = server.evaluate(test);
  } else {
    const monitor::Dataset ds = load_dataset(data);
    auto [train, test] = ml::split_dataset(ds, 0.2, 17);
    n_train = train.size();
    tr = server.fit(train);
    cm = server.evaluate(test);
  }
  std::printf("trained on %zu windows (best epoch %d, val macro-F1 %.3f)\n", n_train,
              tr.best_epoch, tr.best_val_macro_f1);
  std::printf("%s", cm.to_string().c_str());
  std::ofstream out(args.get("out", ""));
  server.save(out);
  std::printf("model saved to %s\n", args.get("out", "").c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.options.count("data") == 0 || args.options.count("model") == 0) return usage();
  std::ifstream min(args.get("model", ""));
  if (!min) {
    std::fprintf(stderr, "cannot open %s\n", args.get("model", "").c_str());
    return 1;
  }
  const std::string data = args.get("data", "");
  core::TrainingServer server(core::TrainingServerConfig{});
  server.load(min);
  ml::ConfusionMatrix cm(server.config().n_classes);
  if (is_manifest_file(data)) {
    const monitor::ShardedDataset ds = monitor::ShardedDataset::open(data);
    cm = server.evaluate_rows(ds);
  } else if (is_qds_file(data)) {
    const monitor::MappedDataset mapped = monitor::map_dataset_qds(data);
    cm = server.evaluate(mapped.table);
  } else {
    const monitor::Dataset ds = load_dataset(data);
    cm = server.evaluate(ds);
  }
  std::printf("%s", cm.to_string().c_str());
  return 0;
}

/// `dataset info` body over any row source (in-RAM, mmap'ed, or sharded).
void print_dataset_info(const std::string& path, const monitor::RowAccess& ds,
                        const char* storage_note) {
  const auto hist = ds.class_histogram();
  std::printf("%s: %zu windows, %d servers x %d features (row width %zu)%s\n",
              path.c_str(), ds.size(), ds.n_servers(), ds.dim(), ds.width(),
              storage_note);
  std::printf("classes:");
  for (std::size_t c = 0; c < hist.size(); ++c) std::printf(" %zu", hist[c]);
  std::printf("\n");
  if (!ds.empty()) {
    double deg_sum = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) deg_sum += ds.degradation(i);
    std::printf("windows %lld..%lld, mean degradation %.3f\n",
                static_cast<long long>(ds.window_index(0)),
                static_cast<long long>(ds.window_index(ds.size() - 1)),
                deg_sum / static_cast<double>(ds.size()));
  }
}

int cmd_dataset(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const std::string& verb = args.positional[0];
  const std::string& path = args.positional[1];
  if (verb == "info") {
    if (is_manifest_file(path)) {
      const monitor::ShardedDataset ds = monitor::ShardedDataset::open(path);
      char note[64];
      std::snprintf(note, sizeof(note), " [%zu shards%s]", ds.n_shards(),
                    ds.zero_copy() ? ", mmap zero-copy" : "");
      print_dataset_info(path, ds, note);
    } else if (is_qds_file(path)) {
      const monitor::MappedDataset mapped = monitor::map_dataset_qds(path);
      const monitor::TableView view(mapped.table);
      const monitor::ViewRows rows(view);
      print_dataset_info(path, rows, mapped.zero_copy ? " [mmap zero-copy]" : " [mmap]");
    } else {
      const monitor::Dataset ds = load_dataset(path);
      const monitor::TableView view(ds);
      const monitor::ViewRows rows(view);
      print_dataset_info(path, rows, "");
    }
    return 0;
  }
  if (verb == "head") {
    const auto rows = static_cast<std::size_t>(args.get_int("rows", 5));
    const monitor::Dataset ds = materialize_any(path);
    std::ostringstream os;
    // Reuse the CSV writer on a head-sized copy so the column headers are
    // printed too.
    monitor::Dataset head;
    if (ds.n_servers() != 0) head.set_shape(ds.n_servers(), ds.dim());
    for (std::size_t i = 0; i < std::min(rows, ds.size()); ++i) {
      head.append_row(ds.window_index(i), ds.label(i), ds.degradation(i), ds.row(i));
    }
    monitor::write_dataset_csv(os, head);
    std::printf("%s", os.str().c_str());
    return 0;
  }
  if (verb == "convert") {
    if (args.positional.size() < 3) return usage();
    const std::string& out_path = args.positional[2];
    const monitor::Dataset ds = materialize_any(path);
    save_dataset(out_path, ds, qds_options(args));
    std::printf("wrote %zu windows to %s (%s)\n", ds.size(), out_path.c_str(),
                has_qds_extension(out_path) ? "binary .qds" : "CSV");
    return 0;
  }
  if (verb == "shard") {
    if (args.positional.size() < 3) return usage();
    const std::string& prefix = args.positional[2];
    const monitor::Dataset ds = materialize_any(path);
    if (ds.empty()) throw std::runtime_error("refusing to shard an empty dataset");
    std::size_t rows_per_shard = 0;
    if (args.options.count("shards") != 0) {
      const auto n_shards = static_cast<std::size_t>(std::max(args.get_int("shards", 1), 1));
      rows_per_shard = (ds.size() + n_shards - 1) / n_shards;
    } else {
      rows_per_shard =
          static_cast<std::size_t>(std::max(args.get_int("rows-per-shard", 65536), 1));
    }
    const std::string manifest =
        monitor::write_sharded_dataset(prefix, ds, rows_per_shard, qds_options(args));
    const std::size_t n_shards = (ds.size() + rows_per_shard - 1) / rows_per_shard;
    std::printf("wrote %zu windows to %zu shard(s) behind %s\n", ds.size(), n_shards,
                manifest.c_str());
    return 0;
  }
  if (verb == "merge") {
    if (args.positional.size() < 3) return usage();
    const std::string& out_path = args.positional[2];
    const monitor::Dataset ds = monitor::ShardedDataset::open(path).materialize();
    save_dataset(out_path, ds, qds_options(args));
    std::printf("merged %zu windows into %s\n", ds.size(), out_path.c_str());
    return 0;
  }
  return usage();
}

int cmd_dump_trace(const Args& args) {
  if (args.positional.empty() || args.options.count("out") == 0) return usage();
  const std::string target = with_replay_timing(args.positional[0], args);
  if (!workloads::is_known_workload(target)) {
    std::fprintf(stderr, "%s\n", workloads::workload_name_error(target).c_str());
    return 1;
  }
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target.scale = args.get_double("scale", 1.0);
  cfg.monitors = false;
  apply_cluster_options(cfg, args);
  const auto res = core::run_scenario(cfg);
  std::ofstream out(args.get("out", ""));
  trace::write_dxt(out, res.trace);
  std::printf("wrote %zu op records to %s\n", res.trace.size(),
              args.get("out", "").c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// qif serve
// ---------------------------------------------------------------------------

std::int64_t serve_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Resolves the bundle to serve: an explicit file (binary .qifm sniffed by
/// magic, otherwise the text "qif-model" bundle `qif train` writes), the
/// newest valid registry version, or — with neither — a synthetic bundle
/// so smoke/latency runs need no training step.
serve::ServingModel resolve_serving_model(const Args& args) {
  const std::string path = args.get("model", "");
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    char magic[4] = {};
    in.read(magic, sizeof magic);
    in.seekg(0);
    if (in.gcount() == 4 && std::memcmp(magic, "QIFM", 4) == 0) {
      return serve::load_model(in);
    }
    return serve::import_text_model(in);
  }
  const std::string dir = args.get("model-dir", "");
  if (!dir.empty()) {
    serve::ModelRegistry registry(dir);
    if (registry.refresh() == 0) {
      throw std::runtime_error("no valid model version in " + dir);
    }
    return *registry.current();
  }
  // Synthetic bundle: untrained weights (deterministic by --seed) and an
  // identity standardizer — predictions are meaningless but the compute
  // path is the real one, which is all latency and identity runs need.
  serve::ServingModel model;
  model.n_classes = std::max(args.get_int("classes", 2), 2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string arch = args.get("arch", "kernel");
  if (arch == "attention") {
    ml::AttentionNetConfig cfg;
    cfg.n_classes = model.n_classes;
    cfg.seed = seed;
    model.kind = serve::ServingModel::Kind::kAttention;
    model.attention = ml::AttentionNet(cfg);
  } else if (arch == "kernel") {
    ml::KernelNetConfig cfg;
    cfg.n_classes = model.n_classes;
    cfg.seed = seed;
    model.kind = serve::ServingModel::Kind::kKernel;
    model.kernel = ml::KernelNet(cfg);
  } else {
    throw std::runtime_error("unknown --arch '" + arch + "' (kernel|attention)");
  }
  const auto d = static_cast<std::size_t>(model.per_server_dim());
  model.stdz = ml::Standardizer::from_moments(std::vector<double>(d, 0.0),
                                              std::vector<double>(d, 1.0));
  model.version = 1;
  return model;
}

void fill_synthetic_features(sim::Rng& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform(0.0, 4.0);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

struct BenchOutcome {
  std::vector<double> latencies_us;  // sorted after merge
  double wall_s = 0.0;
  std::uint64_t requests = 0;
  std::map<std::uint64_t, std::uint64_t> by_version;  // model version -> count
};

/// One closed-loop producer: keeps `inflight` requests in the air, reusing
/// its slots (and their feature buffers) until `n_requests` completed.
void run_producer(serve::InferenceService& service, std::size_t feat_dim,
                  std::size_t n_requests, std::size_t inflight, std::uint64_t seed,
                  int producer_id, BenchOutcome& out) {
  sim::Rng rng(sim::Rng::derive_seed(seed, "producer-" + std::to_string(producer_id)));
  std::deque<serve::Request> slots(inflight);
  std::vector<std::vector<double>> features(inflight, std::vector<double>(feat_dim));
  out.latencies_us.reserve(n_requests);
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::vector<bool> in_air(inflight, false);
  while (completed < n_requests) {
    bool progressed = false;
    for (std::size_t i = 0; i < inflight; ++i) {
      if (in_air[i]) {
        if (!slots[i].ready()) continue;
        out.latencies_us.push_back(
            static_cast<double>(slots[i].done_ns - slots[i].enqueue_ns) / 1e3);
        ++out.by_version[slots[i].model_version];
        in_air[i] = false;
        ++completed;
        progressed = true;
      }
      if (!in_air[i] && submitted < n_requests) {
        fill_synthetic_features(rng, features[i].data(), feat_dim);
        slots[i].reset();
        slots[i].features = features[i].data();
        slots[i].n_features = feat_dim;
        slots[i].enqueue_ns = serve_now_ns();
        service.submit(&slots[i]);
        in_air[i] = true;
        ++submitted;
        progressed = true;
      }
    }
    if (!progressed) std::this_thread::yield();
  }
}

BenchOutcome run_sync_bench(const serve::ServingModel& model, std::size_t n_requests,
                            std::uint64_t seed) {
  // The baseline the batched path is measured against: one request, one
  // forward, synchronously — exactly what a per-window OnlinePredictor
  // deployment does.
  const std::size_t feat = model.feature_dim();
  std::vector<double> features(feat);
  serve::PredictScratch scratch;
  serve::Request request;
  serve::Request* rp = &request;
  sim::Rng rng(sim::Rng::derive_seed(seed, "producer-0"));
  BenchOutcome out;
  out.latencies_us.reserve(n_requests);
  const auto t0 = serve_now_ns();
  for (std::size_t i = 0; i < n_requests; ++i) {
    fill_synthetic_features(rng, features.data(), feat);
    request.reset();
    request.features = features.data();
    request.n_features = feat;
    request.enqueue_ns = serve_now_ns();
    serve::predict_batch(model, &rp, 1, scratch);
    out.latencies_us.push_back(
        static_cast<double>(request.done_ns - request.enqueue_ns) / 1e3);
    ++out.by_version[request.model_version];
  }
  const auto t1 = serve_now_ns();
  out.wall_s = static_cast<double>(t1 - t0) / 1e9;
  out.requests = n_requests;
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  return out;
}

void print_bench_outcome(const char* mode, const BenchOutcome& o,
                         const serve::ServiceConfig* scfg, int producers,
                         std::uint64_t swaps, const serve::ServiceStats* stats,
                         bool json) {
  const double rps = o.wall_s > 0 ? static_cast<double>(o.requests) / o.wall_s : 0.0;
  const double mean =
      o.latencies_us.empty()
          ? 0.0
          : std::accumulate(o.latencies_us.begin(), o.latencies_us.end(), 0.0) /
                static_cast<double>(o.latencies_us.size());
  if (json) {
    std::printf("{\"mode\": \"%s\", \"producers\": %d, \"requests\": %llu", mode,
                producers, static_cast<unsigned long long>(o.requests));
    if (scfg != nullptr) {
      std::printf(", \"max_batch\": %zu, \"max_delay_us\": %lld, \"ring\": %zu",
                  scfg->max_batch, static_cast<long long>(scfg->max_delay_us),
                  scfg->ring_capacity);
    }
    std::printf(", \"wall_s\": %.6f, \"throughput_rps\": %.1f, \"mean_us\": %.2f"
                ", \"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f"
                ", \"max_us\": %.2f",
                o.wall_s, rps, mean, percentile(o.latencies_us, 0.50),
                percentile(o.latencies_us, 0.99), percentile(o.latencies_us, 0.999),
                o.latencies_us.empty() ? 0.0 : o.latencies_us.back());
    if (stats != nullptr) {
      const auto batches = stats->batches.load();
      std::printf(", \"batches\": %llu, \"mean_batch_rows\": %.2f"
                  ", \"full_batches\": %llu, \"timeout_batches\": %llu"
                  ", \"rejected\": %llu",
                  static_cast<unsigned long long>(batches),
                  batches > 0 ? static_cast<double>(stats->requests.load()) /
                                    static_cast<double>(batches)
                              : 0.0,
                  static_cast<unsigned long long>(stats->full_batches.load()),
                  static_cast<unsigned long long>(stats->timeout_batches.load()),
                  static_cast<unsigned long long>(stats->rejected.load()));
    }
    std::printf(", \"swaps\": %llu, \"by_version\": {",
                static_cast<unsigned long long>(swaps));
    bool first = true;
    for (const auto& [v, c] : o.by_version) {
      std::printf("%s\"%llu\": %llu", first ? "" : ", ",
                  static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(c));
      first = false;
    }
    std::printf("}}\n");
  } else {
    std::printf("%s: %llu requests in %.3f s -> %.0f predictions/s\n", mode,
                static_cast<unsigned long long>(o.requests), o.wall_s, rps);
    std::printf("latency us: mean %.1f  p50 %.1f  p99 %.1f  p999 %.1f  max %.1f\n",
                mean, percentile(o.latencies_us, 0.50), percentile(o.latencies_us, 0.99),
                percentile(o.latencies_us, 0.999),
                o.latencies_us.empty() ? 0.0 : o.latencies_us.back());
    if (stats != nullptr && stats->batches.load() > 0) {
      std::printf("batches: %llu (mean %.1f rows; %llu full, %llu timeout)\n",
                  static_cast<unsigned long long>(stats->batches.load()),
                  static_cast<double>(stats->requests.load()) /
                      static_cast<double>(stats->batches.load()),
                  static_cast<unsigned long long>(stats->full_batches.load()),
                  static_cast<unsigned long long>(stats->timeout_batches.load()));
    }
    if (swaps > 0) {
      std::printf("hot swaps under load: %llu (served by version:",
                  static_cast<unsigned long long>(swaps));
      for (const auto& [v, c] : o.by_version) {
        std::printf(" v%llu=%llu", static_cast<unsigned long long>(v),
                    static_cast<unsigned long long>(c));
      }
      std::printf(")\n");
    }
  }
}

int cmd_serve_bench(const Args& args) {
  const serve::ServingModel model = resolve_serving_model(args);
  const int producers = std::max(args.get_int("producers", 4), 1);
  const auto requests =
      static_cast<std::size_t>(std::max(args.get_int("requests", 20000), 1));
  const std::size_t per_producer =
      (requests + static_cast<std::size_t>(producers) - 1) /
      static_cast<std::size_t>(producers);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (args.options.count("sync") != 0) {
    const BenchOutcome o = run_sync_bench(model, requests, seed);
    print_bench_outcome("sync", o, nullptr, 1, 0, nullptr,
                        args.options.count("json") != 0);
    return 0;
  }
  serve::ServiceConfig scfg;
  scfg.ring_capacity = static_cast<std::size_t>(std::max(args.get_int("ring", 1024), 2));
  scfg.max_batch = static_cast<std::size_t>(std::max(args.get_int("max-batch", 32), 1));
  scfg.max_delay_us = std::max(args.get_int("max-delay-us", 200), 0);
  const auto inflight =
      static_cast<std::size_t>(std::max(args.get_int("inflight", 64), 1));
  const int swap_every_ms = std::max(args.get_int("swap-every-ms", 0), 0);

  // The service outlives the stats read below because run_batched_bench
  // joins everything before returning; stats are copied out via the
  // service inside.  Re-run with a local service to read stats:
  auto live = std::make_shared<const serve::ServingModel>(model);
  serve::InferenceService service(live, scfg);
  service.start();
  std::atomic<bool> swapping{swap_every_ms > 0};
  std::thread swapper;
  std::atomic<std::uint64_t> swaps{0};
  if (swap_every_ms > 0) {
    auto alt = std::make_shared<const serve::ServingModel>([&] {
      serve::ServingModel copy = model;
      copy.version = model.version + 1;
      return copy;
    }());
    swapper = std::thread([&service, &swapping, &swaps, live, alt, swap_every_ms] {
      bool use_alt = true;
      while (swapping.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(swap_every_ms));
        service.swap_model(use_alt ? alt : live);
        use_alt = !use_alt;
        swaps.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const std::size_t feat = model.feature_dim();
  std::vector<BenchOutcome> partial(static_cast<std::size_t>(producers));
  const auto t0 = serve_now_ns();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      run_producer(service, feat, per_producer, inflight, seed, p,
                   partial[static_cast<std::size_t>(p)]);
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = serve_now_ns();
  if (swapper.joinable()) {
    swapping.store(false, std::memory_order_release);
    swapper.join();
  }
  service.stop();

  BenchOutcome merged;
  merged.wall_s = static_cast<double>(t1 - t0) / 1e9;
  for (auto& p : partial) {
    merged.requests += p.latencies_us.size();
    merged.latencies_us.insert(merged.latencies_us.end(), p.latencies_us.begin(),
                               p.latencies_us.end());
    for (const auto& [v, c] : p.by_version) merged.by_version[v] += c;
  }
  std::sort(merged.latencies_us.begin(), merged.latencies_us.end());
  print_bench_outcome("batched", merged, &scfg, producers, swaps.load(),
                      &service.stats(), args.options.count("json") != 0);
  return 0;
}

int cmd_serve_verify(const Args& args) {
  const serve::ServingModel model = resolve_serving_model(args);
  const int producers = std::max(args.get_int("producers", 2), 1);
  const auto requests =
      static_cast<std::size_t>(std::max(args.get_int("requests", 2000), 1));
  const std::size_t per_producer =
      (requests + static_cast<std::size_t>(producers) - 1) /
      static_cast<std::size_t>(producers);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  serve::ServiceConfig scfg;
  scfg.max_batch = static_cast<std::size_t>(std::max(args.get_int("max-batch", 32), 1));
  scfg.max_delay_us = std::max(args.get_int("max-delay-us", 100), 0);

  // Batched pass: every request (and its feature row) is retained so the
  // sync replay below can recompute it on identical inputs.
  auto live = std::make_shared<const serve::ServingModel>(model);
  serve::InferenceService service(live, scfg);
  service.start();
  const std::size_t feat = model.feature_dim();
  const std::size_t total = per_producer * static_cast<std::size_t>(producers);
  std::deque<serve::Request> reqs(total);
  std::vector<std::vector<double>> features(total, std::vector<double>(feat));
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      sim::Rng rng(sim::Rng::derive_seed(seed, "producer-" + std::to_string(p)));
      const std::size_t base = static_cast<std::size_t>(p) * per_producer;
      for (std::size_t i = 0; i < per_producer; ++i) {
        fill_synthetic_features(rng, features[base + i].data(), feat);
        reqs[base + i].features = features[base + i].data();
        reqs[base + i].n_features = feat;
        reqs[base + i].enqueue_ns = serve_now_ns();
        service.submit(&reqs[base + i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& r : reqs) r.wait();
  service.stop();

  // Sync replay: the N=1 path on the same feature rows must reproduce
  // every batched output bit for bit.
  serve::PredictScratch scratch;
  serve::Request sync_req;
  serve::Request* rp = &sync_req;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < total; ++i) {
    sync_req.reset();
    sync_req.features = features[i].data();
    sync_req.n_features = feat;
    serve::predict_batch(model, &rp, 1, scratch);
    bool same = sync_req.predicted_class == reqs[i].predicted_class &&
                sync_req.probabilities.size() == reqs[i].probabilities.size() &&
                sync_req.server_scores.size() == reqs[i].server_scores.size();
    if (same) {
      same = std::memcmp(sync_req.probabilities.data(), reqs[i].probabilities.data(),
                         sync_req.probabilities.size() * sizeof(double)) == 0 &&
             std::memcmp(sync_req.server_scores.data(), reqs[i].server_scores.data(),
                         sync_req.server_scores.size() * sizeof(double)) == 0;
    }
    if (!same) ++mismatches;
  }
  const bool json = args.options.count("json") != 0;
  if (json) {
    std::printf("{\"mode\": \"verify\", \"requests\": %zu, \"producers\": %d"
                ", \"max_batch\": %zu, \"batches\": %llu, \"mismatches\": %zu"
                ", \"identical\": %s}\n",
                total, producers, scfg.max_batch,
                static_cast<unsigned long long>(service.stats().batches.load()),
                mismatches, mismatches == 0 ? "true" : "false");
  } else {
    std::printf("verified %zu batched predictions against the sync path: %s"
                " (%llu batches, %zu mismatches)\n",
                total, mismatches == 0 ? "bit-identical" : "MISMATCH",
                static_cast<unsigned long long>(service.stats().batches.load()),
                mismatches);
  }
  return mismatches == 0 ? 0 : 1;
}

int cmd_serve(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& mode = args.positional[0];
  if (mode == "bench") return cmd_serve_bench(args);
  if (mode == "verify") return cmd_serve_verify(args);
  if (mode == "publish") {
    if (args.options.count("model") == 0 || args.options.count("model-dir") == 0) {
      return usage();
    }
    const serve::ServingModel model = resolve_serving_model(args);
    serve::ModelRegistry registry(args.get("model-dir", ""));
    const std::uint64_t v = registry.publish(model);
    std::printf("published %s as v%llu.qifm in %s\n", args.get("model", "").c_str(),
                static_cast<unsigned long long>(v), args.get("model-dir", "").c_str());
    return 0;
  }
  if (mode == "versions") {
    if (args.options.count("model-dir") == 0) return usage();
    const serve::ModelRegistry registry(args.get("model-dir", ""));
    for (const auto v : registry.list_versions()) {
      std::printf("v%llu\n", static_cast<unsigned long long>(v));
    }
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (cmd == "workloads") return cmd_workloads(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "dataset") return cmd_dataset(args);
    if (cmd == "dump-trace") return cmd_dump_trace(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
