// Ablation A3: the paper's future-work architecture — attention pooling
// over server vectors — against the published kernel-based design.
//
// Attention pooling is permutation-invariant over servers by construction,
// so the "same load on different OSTs" robustness the kernel design *aims*
// for (shared per-server interpretation) holds exactly; the question is
// whether giving up slot identity costs in-distribution accuracy.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/ml/attention_net.hpp"
#include "qif/ml/kernel_net.hpp"
#include "qif/ml/metrics.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/ml/trainer.hpp"

using namespace qif;

namespace {

monitor::Dataset rotate_osts(const monitor::TableView& ds, int shift) {
  monitor::Dataset out = ds.materialize();
  const int n_osts = ds.n_servers() - 1;  // the MDT block (last) stays put
  const int dim = ds.dim();
  std::vector<double> rotated(out.width());
  for (std::size_t i = 0; i < out.size(); ++i) {
    double* row = out.row(i);
    std::copy(row, row + out.width(), rotated.begin());
    for (int o = 0; o < n_osts; ++o) {
      const int dst = (o + shift) % n_osts;
      std::copy(row + o * dim, row + (o + 1) * dim, rotated.begin() + dst * dim);
    }
    std::copy(rotated.begin(), rotated.end(), row);
  }
  return out;
}

// Shared manual training loop so both architectures get identical budgets.
template <typename Net>
void train_net(Net& net, const ml::Matrix& x, const std::vector<int>& y,
               const std::vector<double>& weights, int epochs) {
  sim::Rng rng(31);
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::int64_t t = 0;
  const std::size_t batch = 64;
  for (int e = 0; e < epochs; ++e) {
    for (std::size_t i = idx.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }
    for (std::size_t lo = 0; lo < idx.size(); lo += batch) {
      const std::size_t hi = std::min(idx.size(), lo + batch);
      ml::Matrix xb(hi - lo, x.cols());
      std::vector<int> yb(hi - lo);
      for (std::size_t k = lo; k < hi; ++k) {
        std::copy(x.row(idx[k]), x.row(idx[k]) + x.cols(), xb.row(k - lo));
        yb[k - lo] = y[idx[k]];
      }
      const ml::Matrix logits = net.forward(xb);
      auto [loss, d] = ml::SoftmaxXent::loss_and_grad(logits, yb, weights);
      net.backward(d);
      net.step(ml::AdamParams{}, ++t);
    }
  }
}

template <typename Net>
std::pair<double, double> evaluate_both(const Net& net, const ml::Matrix& xt,
                                        const std::vector<int>& yt,
                                        const ml::Matrix& xr,
                                        const std::vector<int>& yr) {
  ml::ConfusionMatrix cm(2), cr(2);
  cm.add_all(yt, net.predict(xt));
  cr.add_all(yr, net.predict(xr));
  return {cm.macro_f1(), cr.macro_f1()};
}

}  // namespace

int main(int argc, char** argv) {
  double richness = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
  }
  std::printf("=== Ablation: attention pooling (future work) vs kernel-based net ===\n");
  core::DatasetOptions opts;
  opts.richness = richness;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  auto [train, test] = ml::split_dataset(ds, 0.2, 37);
  const monitor::Dataset rotated = rotate_osts(test, 2);
  std::printf("windows: %zu train / %zu test\n\n", train.size(), test.size());

  ml::Standardizer stdz;
  stdz.fit(train);
  ml::Matrix x, xt, xr;
  std::vector<int> y, yt, yr;
  ml::gather_standardized(train, &stdz, x, y);
  ml::gather_standardized(test, &stdz, xt, yt);
  ml::gather_standardized(rotated, &stdz, xr, yr);
  const auto weights = ml::inverse_frequency_weights(train, 2);
  const int epochs = 40;

  ml::KernelNetConfig kc;
  kc.per_server_dim = ds.dim();
  kc.n_servers = ds.n_servers();
  kc.n_classes = 2;
  ml::KernelNet kernel(kc);
  train_net(kernel, x, y, weights, epochs);
  const auto [kf1, krot] = evaluate_both(kernel, xt, yt, xr, yr);

  ml::AttentionNetConfig ac;
  ac.per_server_dim = ds.dim();
  ac.n_servers = ds.n_servers();
  ac.n_classes = 2;
  ml::AttentionNet attention(ac);
  train_net(attention, x, y, weights, epochs);
  const auto [af1, arot] = evaluate_both(attention, xt, yt, xr, yr);

  std::printf("%-24s %12s %25s\n", "architecture", "test mF1", "rotated-OST test mF1");
  std::printf("%-24s %12.3f %25.3f\n", "kernel-based (paper)", kf1, krot);
  std::printf("%-24s %12.3f %25.3f\n", "attention pooling", af1, arot);
  std::printf("\nexpected: comparable in-distribution; attention pooling is exactly"
              "\ninvariant to OST permutation (rotated == unrotated score), while the"
              "\nkernel design's slot-indexed head can degrade.\n");
  return 0;
}
