// Extension E1: regression on the degradation level itself.
//
// The paper deliberately bins ("we do not try to predict the exact
// slowdown ratio as the exact ratio ... is often less important than
// knowing the I/O slowdown is in certain category").  This extension
// quantifies what that choice costs and buys: a one-output kernel network
// trained with squared error on log2(Level_degrade), evaluated as
//  (a) a regressor (median / p90 multiplicative error), and
//  (b) a classifier (thresholding the predicted level at 2x), against the
//      directly-trained binary classifier on the same windows.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

int main(int argc, char** argv) {
  double richness = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
  }
  std::printf("=== Extension: degradation regression vs. binned classification ===\n");
  core::DatasetOptions opts;
  opts.richness = richness;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  auto [train, test] = ml::split_dataset(ds, 0.2, 41);
  std::printf("windows: %zu train / %zu test\n\n", train.size(), test.size());

  ml::Standardizer stdz;
  stdz.fit(train);
  ml::Matrix x, xt;
  std::vector<int> y_unused, yt_unused;
  ml::gather_standardized(train, &stdz, x, y_unused);
  ml::gather_standardized(test, &stdz, xt, yt_unused);
  std::vector<double> target(train.size()), target_test(test.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    target[i] = std::log2(std::max(train.degradation(i), 1.0));
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    target_test[i] = std::log2(std::max(test.degradation(i), 1.0));
  }

  ml::KernelNetConfig kc;
  kc.per_server_dim = ds.dim();
  kc.n_servers = ds.n_servers();
  kc.n_classes = 1;  // regression head
  ml::KernelNet reg(kc);
  sim::Rng rng(43);
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::int64_t t = 0;
  const std::size_t batch = 64;
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (std::size_t i = idx.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }
    for (std::size_t lo = 0; lo < idx.size(); lo += batch) {
      const std::size_t hi = std::min(idx.size(), lo + batch);
      ml::Matrix xb(hi - lo, x.cols());
      std::vector<double> tb(hi - lo);
      for (std::size_t k = lo; k < hi; ++k) {
        std::copy(x.row(idx[k]), x.row(idx[k]) + x.cols(), xb.row(k - lo));
        tb[k - lo] = target[idx[k]];
      }
      const ml::Matrix pred = reg.forward(xb);
      auto [loss, d] = ml::SquaredError::loss_and_grad(pred, tb);
      reg.backward(d);
      reg.step(ml::AdamParams{}, ++t);
    }
  }

  // (a) Regression quality: multiplicative error in x-factor space.
  const ml::Matrix pred = reg.forward_inference(xt);
  std::vector<double> mult_err;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mult_err.push_back(std::abs(pred.at(i, 0) - target_test[i]));
  }
  std::sort(mult_err.begin(), mult_err.end());
  const double median = mult_err[mult_err.size() / 2];
  const double p90 = mult_err[mult_err.size() * 9 / 10];
  std::printf("regressor: |log2 error| median %.3f (within %.2fx), p90 %.3f"
              " (within %.2fx)\n",
              median, std::exp2(median), p90, std::exp2(p90));

  // (b) Regressor-as-classifier at the 2x threshold vs. the direct model.
  ml::ConfusionMatrix from_reg(2);
  for (std::size_t i = 0; i < test.size(); ++i) {
    from_reg.add(test.label(i), pred.at(i, 0) >= 1.0 ? 1 : 0);  // log2(2)=1
  }
  core::TrainingServerConfig cfg;
  cfg.n_classes = 2;
  core::TrainingServer direct(cfg);
  direct.fit(train);
  const ml::ConfusionMatrix from_cls = direct.evaluate(test);

  std::printf("\n%-34s %10s %10s\n", "binary decision (>=2x) via", "accuracy", "F1(+)");
  std::printf("%-34s %10.3f %10.3f\n", "thresholded regressor", from_reg.accuracy(),
              from_reg.binary_f1());
  std::printf("%-34s %10.3f %10.3f\n", "direct classifier (paper)", from_cls.accuracy(),
              from_cls.binary_f1());
  std::printf("\nexpected: the direct classifier wins at the decision boundary (it\n"
              "optimizes exactly that), while the regressor adds magnitude estimates\n"
              "the binned model cannot provide.\n");
  return 0;
}
