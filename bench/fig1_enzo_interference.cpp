// Reproduces Figure 1: per-operation I/O time of Enzo under different
// levels (a) and types (b) of background interference.
//
// The same op sequence (matched baseline <-> interference by rank +
// op index, exactly like the paper's Darshan DXT matching) is printed as
// aligned series over the first 50 seconds of the baseline execution, with
// the paper's moving-window smoothing.  Two properties must show:
//
//  (a) non-uniform impact — some ops barely move while others slow by an
//      order of magnitude under the *same* interference, and most (but not
//      all) impacted ops degrade more under more intense interference;
//  (b) type-dependent impact — data-intensive noise (ior-easy-write) and
//      metadata-intensive noise (mdt-easy-write) hurt *different* ops.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "qif/core/scenario.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/matcher.hpp"

using namespace qif;

namespace {

constexpr double kWindowSeconds = 50.0;  // the paper's analysis horizon

core::ScenarioConfig enzo_config(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(seed);
  cfg.target.workload = "enzo";
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = seed;
  cfg.target.scale = 8.0;  // enough timesteps to fill 50 s
  cfg.monitors = false;
  return cfg;
}

// Durations (ms) of the target's ops that *started* within the first 50 s
// of the baseline run, in (rank, op_index) order.
std::vector<double> series_ms(const std::vector<trace::MatchedOp>& matched, bool noisy) {
  std::vector<double> out;
  for (const auto& m : matched) {
    if (sim::to_seconds(m.base.start) > kWindowSeconds) continue;
    out.push_back(sim::to_millis(noisy ? m.interference.duration() : m.base.duration()));
  }
  return out;
}

void print_series(const std::string& title, const std::vector<std::string>& names,
                  const std::vector<std::vector<double>>& cols) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::printf("%-8s", "op_idx");
  for (const auto& n : names) std::printf(" %14s", n.c_str());
  std::printf("\n");
  std::size_t len = cols.front().size();
  for (const auto& c : cols) len = std::min(len, c.size());
  // Smooth like the paper, then downsample for a readable text figure.
  std::vector<std::vector<double>> smooth;
  smooth.reserve(cols.size());
  for (const auto& c : cols) smooth.push_back(sim::moving_average(c, 15));
  const std::size_t step = std::max<std::size_t>(1, len / 40);
  for (std::size_t i = 0; i < len; i += step) {
    std::printf("%-8zu", i);
    for (const auto& c : smooth) std::printf(" %14.3f", c[i]);
    std::printf("\n");
  }
}

void impact_summary(const char* label, const std::vector<trace::MatchedOp>& matched) {
  std::size_t unaffected = 0, mild = 0, severe = 0;
  sim::RunningStats ratio;
  for (const auto& m : matched) {
    if (sim::to_seconds(m.base.start) > kWindowSeconds) continue;
    const double r = static_cast<double>(std::max<sim::SimDuration>(
                         m.interference.duration(), 1)) /
                     static_cast<double>(std::max<sim::SimDuration>(m.base.duration(), 1));
    ratio.add(r);
    if (r < 1.5) ++unaffected;
    else if (r < 5.0) ++mild;
    else ++severe;
  }
  std::printf("%-28s ops=%4llu  ratio mean=%6.2f max=%8.1f  | <1.5x: %zu  1.5-5x: %zu"
              "  >5x: %zu   (non-uniform impact)\n",
              label, static_cast<unsigned long long>(ratio.count()), ratio.mean(),
              ratio.max(), unaffected, mild, severe);
}

}  // namespace

int main() {
  const std::uint64_t seed = 3;
  std::printf("=== Figure 1: Enzo per-op I/O time under interference ===\n");
  std::printf("(proxy Enzo run; first %.0f s of baseline; read/write/open/close/stat ops;"
              " moving-window smoothed)\n", kWindowSeconds);

  const auto baseline = core::run_scenario(enzo_config(seed));

  // (a) increasing amounts of ior-easy-write interference.
  std::vector<std::vector<double>> level_cols;
  std::vector<std::string> level_names = {"baseline_ms"};
  std::vector<trace::MatchedOp> matched_for_summary[3];
  {
    bool first = true;
    int idx = 0;
    for (const int instances : {2, 6, 15}) {
      core::ScenarioConfig cfg = enzo_config(seed);
      core::InterferenceSpec spec;
      spec.workload = "ior-easy-write";
      spec.nodes = {2, 3, 4, 5, 6};
      spec.instances = instances;
      spec.seed = 91;
      cfg.interference = spec;
      const auto run = core::run_scenario(cfg);
      const auto matched = trace::TraceMatcher::match(baseline.trace, run.trace, 0);
      if (first) {
        level_cols.push_back(series_ms(matched, /*noisy=*/false));
        first = false;
      }
      level_cols.push_back(series_ms(matched, /*noisy=*/true));
      level_names.push_back("ior-e-wr x" + std::to_string(instances));
      matched_for_summary[idx++] = matched;
    }
  }
  print_series("Figure 1(a): levels of data-write interference", level_names, level_cols);
  std::printf("\nimpact summaries (a):\n");
  impact_summary("ior-easy-write x2", matched_for_summary[0]);
  impact_summary("ior-easy-write x6", matched_for_summary[1]);
  impact_summary("ior-easy-write x15", matched_for_summary[2]);

  // (b) data-intensive vs. metadata-intensive interference.
  std::vector<std::vector<double>> type_cols;
  std::vector<std::string> type_names = {"baseline_ms"};
  std::vector<trace::MatchedOp> type_matched[2];
  {
    bool first = true;
    int idx = 0;
    for (const std::string noise : {"ior-easy-write", "mdt-easy-write"}) {
      core::ScenarioConfig cfg = enzo_config(seed);
      core::InterferenceSpec spec;
      spec.workload = noise;
      spec.nodes = {2, 3, 4, 5, 6};
      spec.instances = 15;
      spec.seed = 92;
      cfg.interference = spec;
      const auto run = core::run_scenario(cfg);
      const auto matched = trace::TraceMatcher::match(baseline.trace, run.trace, 0);
      if (first) {
        type_cols.push_back(series_ms(matched, false));
        first = false;
      }
      type_cols.push_back(series_ms(matched, true));
      type_names.push_back(noise);
      type_matched[idx++] = matched;
    }
  }
  print_series("Figure 1(b): data- vs metadata-intensive interference", type_names,
               type_cols);
  std::printf("\nimpact summaries (b):\n");
  impact_summary("data (ior-easy-write x15)", type_matched[0]);
  impact_summary("meta (mdt-easy-write x15)", type_matched[1]);

  // Count ops where the metadata noise hurt MORE than the data noise — the
  // paper's arrows in Fig. 1(b).
  {
    std::size_t meta_worse = 0, data_worse = 0, n = 0;
    const auto& a = type_matched[0];
    const auto& b = type_matched[1];
    const std::size_t len = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < len; ++i) {
      if (sim::to_seconds(a[i].base.start) > kWindowSeconds) continue;
      ++n;
      const auto da = a[i].interference.duration();
      const auto db = b[i].interference.duration();
      if (db > da * 3 / 2) ++meta_worse;
      if (da > db * 3 / 2) ++data_worse;
    }
    std::printf("\nof %zu matched ops: %zu hurt >1.5x more by metadata noise, %zu hurt"
                " >1.5x more by data noise\n", n, meta_worse, data_worse);
  }
  return 0;
}
