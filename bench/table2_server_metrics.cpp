// Reproduces Table II: the server-side metric catalogue, demonstrated live.
//
// Runs a mixed read/write/metadata load against the simulated cluster and
// prints, for every monitored server, one second's worth of each Table II
// metric (I/O speed, device sectors, read/write queue) exactly as the
// server-side monitor samples them, plus the window aggregates (sum, mean,
// std) the training server consumes.
#include <cstdio>

#include "qif/core/report.hpp"
#include "qif/monitor/schema.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/workloads/driver.hpp"

using namespace qif;

int main() {
  std::printf("=== Table II: server-side metrics, sampled live ===\n\n");
  std::printf("metric groups (paper Table II):\n"
              "  I/O speed      — completed read/write requests per window\n"
              "  device metrics — disk sectors read and written per window\n"
              "  read/write     — requests queued, merged requests, busy time,\n"
              "  queue            aggregate time-in-queue (weighted)\n\n");

  sim::Simulation simulation;
  pfs::ClusterConfig cc;
  cc.seed = 5;
  pfs::Cluster cluster(simulation, cc);
  monitor::ServerMonitor mon(cluster, /*window=*/5 * sim::kSecond);
  mon.start();

  // Mixed pressure: streaming writes, streaming reads, and a create storm.
  workloads::InterferenceDriver writes(cluster, "ior-easy-write", {0, 1}, 4,
                                       20 * sim::kSecond, 7, 1);
  workloads::InterferenceDriver reads(cluster, "ior-easy-read", {2, 3}, 4,
                                      20 * sim::kSecond, 8, 50);
  workloads::InterferenceDriver meta(cluster, "mdt-easy-write", {4}, 2,
                                     20 * sim::kSecond, 9, 100);
  writes.start();
  reads.start();
  meta.start();
  simulation.run_until(11 * sim::kSecond);

  const auto& names = monitor::MetricSchema::raw_server_metric_names();
  core::TextTable per_second;
  {
    std::vector<std::string> header = {"per-second sample"};
    for (int s = 0; s < cluster.n_servers(); ++s) {
      header.push_back(s == cluster.mdt_server_index() ? "mdt" : "ost" + std::to_string(s));
    }
    per_second.add_row(std::move(header));
  }
  for (int m = 0; m < monitor::MetricSchema::kRawServerMetrics; ++m) {
    std::vector<std::string> row = {names[static_cast<std::size_t>(m)]};
    for (int s = 0; s < cluster.n_servers(); ++s) {
      row.push_back(core::fmt(mon.last_sample(s)[static_cast<std::size_t>(m)], 2));
    }
    per_second.add_row(std::move(row));
  }
  std::printf("latest per-second deltas (t = 11 s):\n%s\n", per_second.to_string().c_str());

  // Window aggregates for window 1 (5-10 s) on one busy OST and the MDT.
  std::printf("window aggregates (window 1 = seconds 5..10), as fed to the model:\n");
  for (const int s : {0, cluster.mdt_server_index()}) {
    std::printf("  server %s:\n",
                s == cluster.mdt_server_index() ? "mdt" : ("ost" + std::to_string(s)).c_str());
    const auto* w = mon.window_data(1, s);
    for (int m = 0; m < monitor::MetricSchema::kRawServerMetrics; ++m) {
      if (w == nullptr) break;
      const auto& st = w->metrics[static_cast<std::size_t>(m)];
      std::printf("    %-22s sum=%14.2f mean=%12.2f std=%12.2f\n",
                  names[static_cast<std::size_t>(m)].c_str(), st.sum(), st.mean(),
                  st.stddev());
    }
  }

  monitor::MetricSchema schema;
  std::printf("\nfull per-server feature vector layout (%d features):\n", schema.dim());
  for (int i = 0; i < schema.dim(); ++i) {
    std::printf("  [%2d] %-34s group=%s\n", i, schema.at(i).name.c_str(),
                monitor::group_name(schema.at(i).group));
  }
  return 0;
}
