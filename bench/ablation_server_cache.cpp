// Ablation A4: how much of Table I's read-back behaviour the server
// page-cache model carries.
//
// Without the cache (cold reads), mdt-hard-read as a *target* is far too
// sensitive to data noise (~2.2-2.7x vs. the paper's 1.06-1.39x), because
// its 3901-byte read-backs always hit the media.  With the testbed-default
// 4 GiB/OST cache those reads are RAM hits and the cells land on the
// paper's values; pure streaming reads (data nobody wrote this run) do not
// move at all.  This is why the cache is enabled in
// core::testbed_cluster_config().
#include <cstdio>
#include <string>

#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"

using namespace qif;

namespace {

double slowdown(const std::string& target, double target_scale, const std::string& noise,
                std::int64_t cache_bytes) {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(1);
  cfg.cluster.read_cache.capacity_bytes = cache_bytes;
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 1;
  cfg.target.scale = target_scale;
  cfg.monitors = false;
  const double solo = sim::to_seconds(core::run_scenario(cfg).target_body_duration());
  core::InterferenceSpec spec;
  spec.workload = noise;
  spec.nodes = {2, 3, 4, 5, 6};
  spec.instances = 15;
  spec.seed = 77;
  cfg.interference = spec;
  const double noisy = sim::to_seconds(core::run_scenario(cfg).target_body_duration());
  return noisy / solo;
}

}  // namespace

int main() {
  std::printf("=== Ablation: server read-cache model vs Table I deviations ===\n\n");
  const std::int64_t kCache = 4ll << 30;  // a realistic RAM share per OST

  core::TextTable table;
  table.add_row({"cell (target <- noise)", "cache off", "cache on (default)", "paper"});
  struct Cell {
    const char* target;
    double scale;
    const char* noise;
    const char* paper;
  };
  const Cell cells[] = {
      {"mdt-hard-read", 2.0, "ior-easy-read", "1.058"},
      {"mdt-hard-read", 2.0, "ior-hard-read", "1.394"},
      {"mdt-hard-read", 2.0, "ior-easy-write", "1.009"},
      {"ior-easy-read", 1.0, "mdt-hard-read", "10.895"},
      {"ior-easy-read", 1.0, "ior-easy-read", "29.304"},
  };
  for (const Cell& c : cells) {
    const double cold = slowdown(c.target, c.scale, c.noise, 0);
    const double cached = slowdown(c.target, c.scale, c.noise, kCache);
    table.add_row({std::string(c.target) + " <- " + c.noise, core::fmt(cold, 3),
                   core::fmt(cached, 3), c.paper});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected: with the page cache, mdt-hard-read's read-backs become RAM\n"
              "hits and its sensitivity to data noise collapses toward the paper's\n"
              "~1.0-1.4x, while pure streaming cells (last row) barely move — they\n"
              "read data nobody wrote this run.\n");
  return 0;
}
