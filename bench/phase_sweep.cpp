// The paper's §II headline sentence, reproduced directly:
//
//   "an application that chronologically runs the 7 benchmarks one by one
//    will experience slowdown ranging from 1.0x to 40.9x under the same
//    ior-hard-write workload."
//
// This bench runs one application that executes the 7 IO500 tasks as
// consecutive phases (the "io500-suite" workload), alone and under a
// single fixed background workload, and reports the per-phase slowdown
// range — the quantitative argument for *per-window* interference
// prediction instead of uniform treatment.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/exec/thread_pool.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

int main(int argc, char** argv) {
  std::string noise = "ior-easy-write";
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--noise") == 0 && i + 1 < argc) noise = argv[++i];
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
  }
  std::printf("=== Phase sweep: one application, seven I/O phases, one noise ===\n");
  std::printf("(the io500-suite workload under %s; paper: 1.0x-40.9x spread)\n\n",
              noise.c_str());

  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(2);
  cfg.target.workload = "io500-suite";
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 2;
  cfg.target.scale = 0.5;
  cfg.monitors = false;
  cfg.horizon = 1200 * sim::kSecond;

  core::ScenarioConfig noisy_cfg = cfg;
  core::InterferenceSpec spec;
  spec.workload = noise;
  spec.nodes = {2, 3, 4, 5, 6};
  spec.instances = 15;
  spec.seed = 7;
  noisy_cfg.interference = spec;

  // The solo and noisy runs are independent simulations; with --jobs > 1
  // they execute concurrently.
  core::ScenarioResult results[2];
  const core::ScenarioConfig* configs[2] = {&cfg, &noisy_cfg};
  exec::ThreadPool pool(jobs);
  pool.for_each_index(2, [&](std::size_t i) { results[i] = core::run_scenario(*configs[i]); });
  const auto& solo = results[0];
  const auto& mixed = results[1];

  // Phase boundaries are identifiable from the op sequence itself: each
  // IO500 task works under its own directory prefix, so bucket matched
  // ops by phase via the per-rank op index ranges recorded at build time.
  // Simpler and robust: bucket by the op's position in each rank's
  // sequence using the phase op counts from the generator.
  const auto matched = trace::TraceMatcher::match(solo.trace, mixed.trace, 0);
  const auto phase_names = workloads::io500_tasks();
  const auto ranges = workloads::io500_suite_phase_ranges(
      /*n_ranks=*/4, /*seed=*/cfg.target.seed, cfg.target.scale);

  std::map<int, std::pair<double, double>> phase_time;  // phase -> (base, noisy)
  for (const auto& m : matched) {
    // Find the phase whose per-rank op-index range contains this op.
    int phase = -1;
    for (std::size_t p = 0; p < ranges.size(); ++p) {
      if (m.base.op_index >= ranges[p].first && m.base.op_index < ranges[p].second) {
        phase = static_cast<int>(p);
        break;
      }
    }
    if (phase < 0) continue;
    auto& [b, n] = phase_time[phase];
    b += sim::to_seconds(m.base.duration());
    n += sim::to_seconds(m.interference.duration());
  }

  core::TextTable table;
  table.add_row({"phase", "solo I/O time (s)", "noisy I/O time (s)", "slowdown"});
  double min_slow = 1e9, max_slow = 0.0;
  for (const auto& [phase, t] : phase_time) {
    const auto& [b, n] = t;
    const double slow = b > 0 ? n / b : 1.0;
    min_slow = std::min(min_slow, slow);
    max_slow = std::max(max_slow, slow);
    table.add_row({phase_names[static_cast<std::size_t>(phase)], core::fmt(b, 2),
                   core::fmt(n, 2), core::fmt(slow, 2) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("one application, one background workload: per-phase slowdown spans"
              " %.1fx to %.1fx\n(the paper's motivating spread was 1.0x-40.9x under"
              " ior-hard-write)\n", min_slow, max_slow);
  return 0;
}
