// Ablation A2 (DESIGN.md): which metric groups carry the signal?
//
// Retrains the binary IO500 model with one feature group zeroed out at a
// time — the client-side block (§III-A) and each Table II server-side
// group — and reports the test macro-F1 damage.  This quantifies the
// paper's design claim that *both* application-side request patterns and
// server-side queue state are needed to predict interference impact.
#include <cstdio>
#include <cstring>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/schema.hpp"

using namespace qif;

namespace {

monitor::Dataset mask_group(const monitor::TableView& ds,
                            const std::vector<int>& drop_indices) {
  monitor::Dataset out = ds.materialize();
  for (std::size_t i = 0; i < out.size(); ++i) {
    double* row = out.row(i);
    for (int server = 0; server < out.n_servers(); ++server) {
      for (const int f : drop_indices) {
        row[static_cast<std::size_t>(server * out.dim() + f)] = 0.0;
      }
    }
  }
  return out;
}

double train_eval(const monitor::TableView& train, const monitor::TableView& test) {
  core::TrainingServerConfig cfg;
  cfg.n_classes = 2;
  core::TrainingServer server(cfg);
  server.fit(train);
  return server.evaluate(test).macro_f1();
}

}  // namespace

int main(int argc, char** argv) {
  double richness = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
  }
  std::printf("=== Ablation: feature-group importance (binary IO500 model) ===\n");
  core::DatasetOptions opts;
  opts.richness = richness;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  auto [train, test] = ml::split_dataset(ds, 0.2, 31);
  std::printf("windows: %zu train / %zu test\n\n", train.size(), test.size());

  const monitor::MetricSchema schema;
  const std::vector<monitor::FeatureGroup> groups = {
      monitor::FeatureGroup::kClient, monitor::FeatureGroup::kIoSpeed,
      monitor::FeatureGroup::kDevice, monitor::FeatureGroup::kQueue};
  const double full = train_eval(train, test);
  std::printf("%-28s macro-F1 %6.3f   delta %+6.3f\n", "all features", full, 0.0);

  // Knockout direction: how much does losing one group cost?
  for (const auto group : groups) {
    const auto idx = schema.group_indices(group);
    const monitor::Dataset masked_train = mask_group(train, idx);
    const monitor::Dataset masked_test = mask_group(test, idx);
    const double f1 = train_eval(masked_train, masked_test);
    std::printf("drop %-23s macro-F1 %6.3f   delta %+6.3f\n",
                monitor::group_name(group), f1, f1 - full);
  }
  std::printf("\n");

  // Sufficiency direction: how far does one group get on its own?
  for (const auto keep : groups) {
    std::vector<int> drop_idx;
    for (const auto group : groups) {
      if (group == keep) continue;
      const auto idx = schema.group_indices(group);
      drop_idx.insert(drop_idx.end(), idx.begin(), idx.end());
    }
    const monitor::Dataset masked_train = mask_group(train, drop_idx);
    const monitor::Dataset masked_test = mask_group(test, drop_idx);
    const double f1 = train_eval(masked_train, masked_test);
    std::printf("keep only %-18s macro-F1 %6.3f   delta %+6.3f\n",
                monitor::group_name(keep), f1, f1 - full);
  }
  std::printf("\nexpected: single-group knockouts barely move the score — the signal is"
              "\nredundant across groups (queue pressure shows up in client I/O times"
              "\nand in server counters alike).  The sufficiency direction separates"
              "\nthem: the client-side block alone nearly suffices (the app feels the"
              "\npressure it suffers), while raw device counters alone lose the most.\n");
  return 0;
}
