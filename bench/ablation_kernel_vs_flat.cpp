// Ablation A1 (DESIGN.md): the kernel-based architecture vs. a flat MLP.
//
// The paper chose the kernel design "to account for the fact that some
// applications may only utilize a subset of OSTs or target different ones
// in multiple runs": one shared dense network interprets any server's
// vector.  The ablation trains (a) the kernel-based network and (b) a flat
// MLP over the concatenated vectors with no weight sharing, on the same
// IO500 windows, and compares:
//   1. test macro-F1,
//   2. robustness when the test windows' OST vectors are rotated — i.e.
//      the same load lands on *different* servers than in training.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

namespace {

/// Reinterprets a per-server view as flat vectors: one "server" of width
/// n_servers * dim.  Same block, reshaped — no copy of the features.
monitor::Dataset flatten(const monitor::TableView& ds) {
  monitor::Dataset out = ds.materialize();
  out.reshape(1, ds.n_servers() * ds.dim());
  return out;
}

/// Rotates the OST blocks of every row by `shift` (the MDT block, last,
/// stays in place): the workload that hit OSTs {0,1} now appears on
/// {shift, shift+1}, emulating a run that targeted different servers.
monitor::Dataset rotate_osts(const monitor::TableView& ds, int shift) {
  monitor::Dataset out = ds.materialize();
  const int n_osts = ds.n_servers() - 1;
  const int dim = ds.dim();
  std::vector<double> rotated(out.width());
  for (std::size_t i = 0; i < out.size(); ++i) {
    double* row = out.row(i);
    std::copy(row, row + out.width(), rotated.begin());
    for (int o = 0; o < n_osts; ++o) {
      const int dst = (o + shift) % n_osts;
      std::copy(row + o * dim, row + (o + 1) * dim, rotated.begin() + dst * dim);
    }
    std::copy(rotated.begin(), rotated.end(), row);
  }
  return out;
}

struct Scores {
  double test_f1 = 0.0;
  double rotated_f1 = 0.0;
};

Scores run(const monitor::TableView& train, const monitor::TableView& test,
           const monitor::TableView& rotated_test) {
  core::TrainingServerConfig cfg;
  cfg.n_classes = 2;
  core::TrainingServer server(cfg);
  server.fit(train);
  Scores sc;
  sc.test_f1 = server.evaluate(test).macro_f1();
  sc.rotated_f1 = server.evaluate(rotated_test).macro_f1();
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  double richness = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
  }
  std::printf("=== Ablation: kernel-based network vs flat MLP ===\n");
  core::DatasetOptions opts;
  opts.richness = richness;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  auto [train, test] = ml::split_dataset(ds, 0.2, 29);
  const monitor::Dataset rotated = rotate_osts(test, 3);
  std::printf("windows: %zu train / %zu test\n\n", train.size(), test.size());

  const Scores kernel = run(train, test, rotated);
  const monitor::Dataset flat_train = flatten(train);
  const monitor::Dataset flat_test = flatten(test);
  const monitor::Dataset flat_rotated = flatten(rotated);
  const Scores flat = run(flat_train, flat_test, flat_rotated);

  std::printf("%-22s %12s %25s\n", "architecture", "test mF1", "rotated-OST test mF1");
  std::printf("%-22s %12.3f %25.3f\n", "kernel-based (shared)", kernel.test_f1,
              kernel.rotated_f1);
  std::printf("%-22s %12.3f %25.3f\n", "flat MLP", flat.test_f1, flat.rotated_f1);
  std::printf("\nexpected: comparable scores in distribution — the kernel design's"
              "\nadvantage is structural, not raw accuracy: the flat MLP spends ~%dx"
              "\nmore first-layer parameters for the same windows, and only the shared"
              "\nkernel generalizes to cluster shapes it was not trained on (it can be"
              "\napplied to any number of servers; the flat head cannot).\n",
              train.n_servers());
  return 0;
}
