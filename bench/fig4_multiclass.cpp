// Reproduces Figure 4: 3-class interference-severity prediction on IO500.
//
// Bin thresholds {2, 5} follow the paper (and Lu et al.'s Perseus
// taxonomy): class 0 = mild (< 2x), class 1 = moderate (2-5x), class 2 =
// severe (>= 5x).  "the amount of classification bins is configurable ...
// we minimally adjusted the output layer of our proposed model architecture
// to three output nodes" — here that is literally `n_classes = 3`.
// Expected shape: a strong diagonal, with the best-represented class
// slightly ahead in precision/recall.
#include <cstdio>
#include <cstring>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

int main(int argc, char** argv) {
  double richness = 3.0;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
  }
  std::printf("=== Figure 4: multi-class (mild/moderate/severe) prediction on IO500 ===\n");

  core::DatasetOptions opts;
  opts.bin_thresholds = {2.0, 5.0};
  opts.richness = richness;
  opts.verbose = true;
  opts.runner = exec::campaign_runner(jobs);
  std::printf("collecting IO500 campaign (bins {2, 5})...\n");
  const monitor::Dataset ds = core::build_io500_dataset(opts);

  auto [train, test] = ml::split_dataset(ds, 0.2, /*seed=*/19);
  const auto hist = train.class_histogram();
  std::printf("\ntrain: %zu samples (", train.size());
  for (std::size_t c = 0; c < hist.size(); ++c) {
    std::printf("%sclass%zu=%zu", c ? ", " : "", c, hist[c]);
  }
  std::printf(")  test: %zu samples\n", test.size());

  core::TrainingServerConfig cfg;
  cfg.n_classes = 3;  // the paper's "minimal adjustment"
  core::TrainingServer server(cfg);
  const ml::TrainResult tr = server.fit(train);
  const ml::ConfusionMatrix cm = server.evaluate(test);
  std::printf("trained (best epoch %d, val macro-F1 %.3f)\n", tr.best_epoch,
              tr.best_val_macro_f1);
  std::printf("%s", cm.to_string({"mild <2x", "moderate 2-5x", "severe >=5x"}).c_str());
  return 0;
}
