// Reproduces Figure 5: binary interference prediction for the three real
// HPC applications — AMReX, Enzo (data-intensive) and OpenPMD
// (metadata-intensive) — using the paper's protocol of one quiet run plus
// runs with increasing amounts of concurrent IO500 instances.
//
// Expected shape: AMReX and Enzo models perform well (strong diagonal);
// OpenPMD is visibly weaker — the paper attributes this to its small
// sample count, which our proxy reproduces (short metadata-bound runs
// yield few labelled windows).
#include <cstdio>
#include <cstring>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

int main(int argc, char** argv) {
  double richness = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
  }
  std::printf("=== Figure 5: real-application interference prediction ===\n");

  for (const char* app : {"amrex", "enzo", "openpmd"}) {
    core::DatasetOptions opts;
    opts.bin_thresholds = {2.0};
    // OpenPMD keeps the paper's handicap: few samples.
    opts.richness = std::strcmp(app, "openpmd") == 0 ? 0.25 : richness;
    opts.verbose = true;
    std::printf("\ncollecting %s campaign...\n", app);
    const monitor::Dataset ds = core::build_app_dataset(app, opts);

    auto [train, test] = ml::split_dataset(ds, 0.2, /*seed=*/23);
    const auto hist = train.class_histogram();
    std::printf("=== %s ===\ntrain: %zu samples (", app, train.size());
    for (std::size_t c = 0; c < hist.size(); ++c) {
      std::printf("%sclass%zu=%zu", c ? ", " : "", c, hist[c]);
    }
    std::printf(")  test: %zu samples\n", test.size());
    if (train.empty() || test.empty()) {
      std::printf("not enough windows collected — skipping\n");
      continue;
    }

    core::TrainingServerConfig cfg;
    cfg.n_classes = 2;
    core::TrainingServer server(cfg);
    const ml::TrainResult tr = server.fit(train);
    const ml::ConfusionMatrix cm = server.evaluate(test);
    std::printf("trained (best epoch %d, val macro-F1 %.3f)\n", tr.best_epoch,
                tr.best_val_macro_f1);
    std::printf("%s", cm.to_string({"<2x", ">=2x"}).c_str());
    std::printf("positive-class F1 = %.3f\n", cm.binary_f1());
  }
  std::printf("\nexpected: amrex/enzo strong; openpmd weaker (small dataset, as in the"
              " paper)\n");
  return 0;
}
