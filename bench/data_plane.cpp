// Window data-plane benchmark: the FeatureTable pipeline stages that the
// columnar refactor targets.
//
//   data_plane [--richness R]...     (default: --richness 1 --richness 4)
//              [--streaming-rows N] [--streaming-budget-mib M]
//
// For each richness it builds the IO500 campaign dataset once, then times
//   assemble:  the campaign build itself (scenario -> labelled table)
//   append:    block-appending the table into a reserve-once destination
//   split:     the 80/20 index-view split (zero-copy TableViews)
//   csv/qds:   save + load through both persistence paths (memory streams,
//              so the numbers compare parse cost, not disk)
//   mmap:      map_dataset_qds over a real file — validate + borrow in
//              place, no payload copy
//   qlz:       the compressed .qds path (save/load + on-disk bytes)
// and prints one JSON object to stdout; scripts/bench_data.sh wraps this
// into BENCH_data.json.  The headline number is load_speedup_qds_vs_csv:
// the binary reader is O(read) where CSV re-parses every cell.
//
// --streaming-rows N adds a "streaming" leg: a synthetic N-row dataset is
// written shard by shard (never fully resident), then trained through the
// chunked ShardedDataset path under --streaming-budget-mib; peak RSS
// (ru_maxrss) is reported so the fixed-footprint claim is checkable.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"
#include "qif/monitor/qds_file.hpp"
#include "qif/sim/rng.hpp"

using namespace qif;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// Best-of-3 wall time of `fn` in milliseconds.
template <typename Fn>
double best_ms(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double t = ms_since(t0);
    if (t < best) best = t;
  }
  return best;
}

struct StageTimes {
  std::size_t windows = 0;
  double assemble_ms = 0.0;
  double append_ms = 0.0;
  double split_ms = 0.0;
  double csv_save_ms = 0.0;
  double csv_load_ms = 0.0;
  double qds_save_ms = 0.0;
  double qds_load_ms = 0.0;
  double qds_mmap_load_ms = 0.0;
  double qlz_save_ms = 0.0;
  double qlz_load_ms = 0.0;
  std::size_t csv_bytes = 0;
  std::size_t qds_bytes = 0;
  std::size_t qlz_bytes = 0;
  bool mmap_zero_copy = false;
};

StageTimes run_richness(double richness) {
  StageTimes t;
  core::DatasetOptions opts;
  opts.richness = richness;

  const auto t0 = std::chrono::steady_clock::now();
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  t.assemble_ms = ms_since(t0);
  t.windows = ds.size();

  t.append_ms = best_ms([&] {
    monitor::Dataset dst;
    dst.set_shape(ds.n_servers(), ds.dim());
    dst.reserve(ds.size());
    dst.append(ds);
  });

  t.split_ms = best_ms([&] {
    auto [train, test] = ml::split_dataset(ds, 0.2, 17);
    if (train.size() + test.size() != ds.size()) std::abort();
  });

  std::string csv_text, qds_text;
  t.csv_save_ms = best_ms([&] {
    std::ostringstream os;
    monitor::write_dataset_csv(os, ds);
    csv_text = os.str();
  });
  t.qds_save_ms = best_ms([&] {
    std::ostringstream os;
    monitor::write_dataset_qds(os, ds);
    qds_text = os.str();
  });
  t.csv_bytes = csv_text.size();
  t.qds_bytes = qds_text.size();

  t.csv_load_ms = best_ms([&] {
    std::istringstream is(csv_text);
    const monitor::Dataset loaded = monitor::read_dataset_csv(is);
    if (loaded.size() != ds.size()) std::abort();
  });
  t.qds_load_ms = best_ms([&] {
    std::istringstream is(qds_text);
    const monitor::Dataset loaded = monitor::read_dataset_qds(is);
    if (loaded.size() != ds.size()) std::abort();
  });

  // Mmap leg: a real file, so the number includes open+map+full validation
  // — everything except the copy the buffered reader pays on top.
  const std::string mmap_path = "bench_data_plane.tmp.qds";
  {
    std::ofstream os(mmap_path, std::ios::binary | std::ios::trunc);
    os.write(qds_text.data(), static_cast<std::streamsize>(qds_text.size()));
  }
  t.qds_mmap_load_ms = best_ms([&] {
    const monitor::MappedDataset mapped = monitor::map_dataset_qds(mmap_path);
    if (mapped.table.size() != ds.size()) std::abort();
    t.mmap_zero_copy = mapped.zero_copy;
  });
  std::remove(mmap_path.c_str());

  // Compressed leg: per-block qlz, which is what fixes ".qds bigger than
  // the CSV it replaced" — blocks that will not shrink stay raw.
  std::string qlz_text;
  monitor::QdsWriteOptions qlz_opts;
  qlz_opts.codec = monitor::QdsCodec::kQlz;
  t.qlz_save_ms = best_ms([&] {
    std::ostringstream os;
    monitor::write_dataset_qds(os, ds, qlz_opts);
    qlz_text = os.str();
  });
  t.qlz_bytes = qlz_text.size();
  t.qlz_load_ms = best_ms([&] {
    std::istringstream is(qlz_text);
    const monitor::Dataset loaded = monitor::read_dataset_qds(is);
    if (loaded.size() != ds.size()) std::abort();
  });
  return t;
}

struct StreamingTimes {
  std::size_t rows = 0;
  std::size_t shards = 0;
  std::size_t budget_mib = 0;
  std::size_t disk_bytes = 0;
  double write_ms = 0.0;
  double train_ms = 0.0;
  double peak_rss_mib = 0.0;
};

/// Writes an N-row synthetic sharded dataset chunk by chunk — at no point
/// is more than one shard resident — then trains through the chunked
/// RowAccess path under a page budget.  This is the 10M-window acceptance
/// scenario: dataset bytes >> budget >> any single shard.
StreamingTimes run_streaming(std::size_t rows, std::size_t budget_mib) {
  StreamingTimes out;
  out.rows = rows;
  out.budget_mib = budget_mib;
  constexpr std::size_t kRowsPerShard = 1 << 17;
  constexpr int kDim = 5;
  const std::string prefix = "bench_streaming.tmp";

  const auto t0 = std::chrono::steady_clock::now();
  monitor::Manifest m;
  m.n_servers = 1;
  m.dim = kDim;
  m.rows = rows;
  sim::Rng rng(4242);
  for (std::size_t lo = 0, k = 0; lo < rows; lo += kRowsPerShard, ++k) {
    const std::size_t hi = std::min(lo + kRowsPerShard, rows);
    monitor::Dataset chunk(1, kDim);
    chunk.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const int label = static_cast<int>(i % 2);
      double* f = chunk.append_row(static_cast<std::int64_t>(i), label, 1.0 + label);
      for (int j = 0; j < kDim; ++j) {
        f[j] = rng.uniform(-1.0, 1.0) + (label == 1 && j == 0 ? 2.0 : 0.0);
      }
    }
    std::ostringstream image;
    monitor::write_dataset_qds(image, chunk);
    const std::string bytes = std::move(image).str();
    std::string num = std::to_string(k);
    if (num.size() < 3) num.insert(0, 3 - num.size(), '0');
    const std::string name = prefix + "." + num + ".qds";
    std::ofstream os(name, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) std::abort();
    out.disk_bytes += bytes.size();
    m.shards.push_back(
        {hi - lo, name, monitor::qds_image_checksum(bytes.data(), bytes.size())});
  }
  const std::string manifest_path = prefix + ".qdm";
  monitor::write_manifest_file(manifest_path, m);
  out.write_ms = ms_since(t0);
  out.shards = m.shards.size();

  {
    const monitor::ShardedDataset sharded =
        monitor::ShardedDataset::open(manifest_path, budget_mib << 20);
    core::TrainingServerConfig cfg;
    cfg.train.max_epochs = 2;
    const auto t1 = std::chrono::steady_clock::now();
    core::TrainingServer server(cfg);
    (void)server.fit_rows(sharded);
    out.train_ms = ms_since(t1);
  }

  struct rusage ru = {};
  getrusage(RUSAGE_SELF, &ru);
  out.peak_rss_mib = static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux

  for (const monitor::ShardInfo& s : m.shards) std::remove(s.file.c_str());
  std::remove(manifest_path.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> richnesses;
  std::size_t streaming_rows = 0;
  std::size_t streaming_budget_mib = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richnesses.push_back(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--streaming-rows") == 0 && i + 1 < argc) {
      streaming_rows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--streaming-budget-mib") == 0 && i + 1 < argc) {
      streaming_budget_mib = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  // A streaming-only invocation skips the campaign legs: peak RSS is a
  // whole-process number, so the fixed-footprint claim needs a clean slate.
  if (richnesses.empty() && streaming_rows == 0) richnesses = {1.0, 4.0};

  std::printf("{\n");
  for (std::size_t r = 0; r < richnesses.size(); ++r) {
    std::fprintf(stderr, "richness %.3g: building campaign dataset...\n",
                 richnesses[r]);
    const StageTimes t = run_richness(richnesses[r]);
    std::printf("  \"richness_%g\": {\n", richnesses[r]);
    std::printf("    \"windows\": %zu,\n", t.windows);
    std::printf("    \"assemble_ms\": %.3f,\n", t.assemble_ms);
    std::printf("    \"append_ms\": %.4f,\n", t.append_ms);
    std::printf("    \"split_ms\": %.4f,\n", t.split_ms);
    std::printf("    \"csv_save_ms\": %.3f,\n", t.csv_save_ms);
    std::printf("    \"csv_load_ms\": %.3f,\n", t.csv_load_ms);
    std::printf("    \"qds_save_ms\": %.3f,\n", t.qds_save_ms);
    std::printf("    \"qds_load_ms\": %.3f,\n", t.qds_load_ms);
    std::printf("    \"qds_mmap_load_ms\": %.3f,\n", t.qds_mmap_load_ms);
    std::printf("    \"qds_mmap_zero_copy\": %s,\n", t.mmap_zero_copy ? "true" : "false");
    std::printf("    \"qlz_save_ms\": %.3f,\n", t.qlz_save_ms);
    std::printf("    \"qlz_load_ms\": %.3f,\n", t.qlz_load_ms);
    std::printf("    \"csv_bytes\": %zu,\n", t.csv_bytes);
    std::printf("    \"qds_bytes\": %zu,\n", t.qds_bytes);
    std::printf("    \"qlz_bytes\": %zu,\n", t.qlz_bytes);
    std::printf("    \"qlz_ratio_vs_csv\": %.3f,\n",
                t.csv_bytes > 0 ? static_cast<double>(t.qlz_bytes) / t.csv_bytes : 0.0);
    std::printf("    \"load_speedup_qds_vs_csv\": %.2f,\n",
                t.qds_load_ms > 0 ? t.csv_load_ms / t.qds_load_ms : 0.0);
    std::printf("    \"load_speedup_mmap_vs_buffered\": %.2f\n",
                t.qds_mmap_load_ms > 0 ? t.qds_load_ms / t.qds_mmap_load_ms : 0.0);
    const bool more = r + 1 < richnesses.size() || streaming_rows > 0;
    std::printf("  }%s\n", more ? "," : "");
  }
  if (streaming_rows > 0) {
    std::fprintf(stderr, "streaming: %zu rows under %zu MiB budget...\n",
                 streaming_rows, streaming_budget_mib);
    const StreamingTimes s = run_streaming(streaming_rows, streaming_budget_mib);
    std::printf("  \"streaming\": {\n");
    std::printf("    \"rows\": %zu,\n", s.rows);
    std::printf("    \"shards\": %zu,\n", s.shards);
    std::printf("    \"disk_bytes\": %zu,\n", s.disk_bytes);
    std::printf("    \"budget_mib\": %zu,\n", s.budget_mib);
    std::printf("    \"write_ms\": %.1f,\n", s.write_ms);
    std::printf("    \"train_ms\": %.1f,\n", s.train_ms);
    std::printf("    \"peak_rss_mib\": %.1f\n", s.peak_rss_mib);
    std::printf("  }\n");
  }
  std::printf("}\n");
  return 0;
}
