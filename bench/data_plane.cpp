// Window data-plane benchmark: the FeatureTable pipeline stages that the
// columnar refactor targets.
//
//   data_plane [--richness R]...     (default: --richness 1 --richness 4)
//
// For each richness it builds the IO500 campaign dataset once, then times
//   assemble:  the campaign build itself (scenario -> labelled table)
//   append:    block-appending the table into a reserve-once destination
//   split:     the 80/20 index-view split (zero-copy TableViews)
//   csv/qds:   save + load through both persistence paths (memory streams,
//              so the numbers compare parse cost, not disk)
// and prints one JSON object to stdout; scripts/bench_data.sh wraps this
// into BENCH_data.json.  The headline number is load_speedup_qds_vs_csv:
// the binary reader is O(read) where CSV re-parses every cell.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "qif/core/datasets.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"

using namespace qif;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// Best-of-3 wall time of `fn` in milliseconds.
template <typename Fn>
double best_ms(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double t = ms_since(t0);
    if (t < best) best = t;
  }
  return best;
}

struct StageTimes {
  std::size_t windows = 0;
  double assemble_ms = 0.0;
  double append_ms = 0.0;
  double split_ms = 0.0;
  double csv_save_ms = 0.0;
  double csv_load_ms = 0.0;
  double qds_save_ms = 0.0;
  double qds_load_ms = 0.0;
  std::size_t csv_bytes = 0;
  std::size_t qds_bytes = 0;
};

StageTimes run_richness(double richness) {
  StageTimes t;
  core::DatasetOptions opts;
  opts.richness = richness;

  const auto t0 = std::chrono::steady_clock::now();
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  t.assemble_ms = ms_since(t0);
  t.windows = ds.size();

  t.append_ms = best_ms([&] {
    monitor::Dataset dst;
    dst.set_shape(ds.n_servers(), ds.dim());
    dst.reserve(ds.size());
    dst.append(ds);
  });

  t.split_ms = best_ms([&] {
    auto [train, test] = ml::split_dataset(ds, 0.2, 17);
    if (train.size() + test.size() != ds.size()) std::abort();
  });

  std::string csv_text, qds_text;
  t.csv_save_ms = best_ms([&] {
    std::ostringstream os;
    monitor::write_dataset_csv(os, ds);
    csv_text = os.str();
  });
  t.qds_save_ms = best_ms([&] {
    std::ostringstream os;
    monitor::write_dataset_qds(os, ds);
    qds_text = os.str();
  });
  t.csv_bytes = csv_text.size();
  t.qds_bytes = qds_text.size();

  t.csv_load_ms = best_ms([&] {
    std::istringstream is(csv_text);
    const monitor::Dataset loaded = monitor::read_dataset_csv(is);
    if (loaded.size() != ds.size()) std::abort();
  });
  t.qds_load_ms = best_ms([&] {
    std::istringstream is(qds_text);
    const monitor::Dataset loaded = monitor::read_dataset_qds(is);
    if (loaded.size() != ds.size()) std::abort();
  });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> richnesses;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richnesses.push_back(std::atof(argv[++i]));
    }
  }
  if (richnesses.empty()) richnesses = {1.0, 4.0};

  std::printf("{\n");
  for (std::size_t r = 0; r < richnesses.size(); ++r) {
    std::fprintf(stderr, "richness %.3g: building campaign dataset...\n",
                 richnesses[r]);
    const StageTimes t = run_richness(richnesses[r]);
    std::printf("  \"richness_%g\": {\n", richnesses[r]);
    std::printf("    \"windows\": %zu,\n", t.windows);
    std::printf("    \"assemble_ms\": %.3f,\n", t.assemble_ms);
    std::printf("    \"append_ms\": %.4f,\n", t.append_ms);
    std::printf("    \"split_ms\": %.4f,\n", t.split_ms);
    std::printf("    \"csv_save_ms\": %.3f,\n", t.csv_save_ms);
    std::printf("    \"csv_load_ms\": %.3f,\n", t.csv_load_ms);
    std::printf("    \"qds_save_ms\": %.3f,\n", t.qds_save_ms);
    std::printf("    \"qds_load_ms\": %.3f,\n", t.qds_load_ms);
    std::printf("    \"csv_bytes\": %zu,\n", t.csv_bytes);
    std::printf("    \"qds_bytes\": %zu,\n", t.qds_bytes);
    std::printf("    \"load_speedup_qds_vs_csv\": %.2f\n",
                t.qds_load_ms > 0 ? t.csv_load_ms / t.qds_load_ms : 0.0);
    std::printf("  }%s\n", r + 1 < richnesses.size() ? "," : "");
  }
  std::printf("}\n");
  return 0;
}
