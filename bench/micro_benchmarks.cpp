// Microbenchmarks (google-benchmark) for the framework's hot paths:
// the event engine, the contended-resource models, the monitor sampling
// path, the network training step, and a small end-to-end scenario.
// These bound the cost of the paper's "real-time monitoring and modelling
// capabilities at the scale of HPC systems".
#include <benchmark/benchmark.h>

#include "qif/core/scenario.hpp"
#include "qif/ml/kernel_net.hpp"
#include "qif/ml/nn.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/disk.hpp"
#include "qif/sim/fair_link.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/workloads/driver.hpp"

using namespace qif;

namespace {

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      s.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(s.run_all());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngine)->Arg(1000)->Arg(100000);

void BM_FairLink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    sim::FairLink link(s, 1e9);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      link.transfer(1 << 20, [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FairLink)->Arg(64)->Arg(512);

void BM_DiskSequential(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    pfs::DiskModel disk(s, {}, 1);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      disk.submit(false, static_cast<std::int64_t>(i) << 20, 1 << 20, [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskSequential)->Arg(256);

void BM_DiskInterleavedStreams(benchmark::State& state) {
  // Two far-apart streams: the seek-storm case.
  for (auto _ : state) {
    sim::Simulation s;
    pfs::DiskModel disk(s, {}, 1);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      const std::int64_t base = (i % 2 == 0) ? 0 : (512ll << 30);
      disk.submit(false, base + (static_cast<std::int64_t>(i / 2) << 20), 1 << 20,
                  [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskInterleavedStreams)->Arg(256);

void BM_ServerMonitorSample(benchmark::State& state) {
  sim::Simulation s;
  pfs::ClusterConfig cc;
  pfs::Cluster cluster(s, cc);
  for (auto _ : state) {
    for (int srv = 0; srv < cluster.n_servers(); ++srv) {
      benchmark::DoNotOptimize(cluster.server_counters(srv));
    }
  }
  state.SetItemsProcessed(state.iterations() * cluster.n_servers());
}
BENCHMARK(BM_ServerMonitorSample);

void BM_KernelNetTrainStep(benchmark::State& state) {
  ml::KernelNetConfig cfg;
  cfg.per_server_dim = 37;
  cfg.n_servers = 7;
  cfg.n_classes = 2;
  ml::KernelNet net(cfg);
  const std::size_t batch = 64;
  ml::Matrix x(batch, 7 * 37);
  sim::Rng rng(3);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 2);
  std::int64_t t = 0;
  for (auto _ : state) {
    const ml::Matrix logits = net.forward(x);
    auto [loss, grad] = ml::SoftmaxXent::loss_and_grad(logits, y, {});
    net.backward(grad);
    net.step({}, ++t);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_KernelNetTrainStep);

void BM_KernelNetInference(benchmark::State& state) {
  ml::KernelNetConfig cfg;
  ml::KernelNet net(cfg);
  ml::Matrix x(1, 7 * 37);
  sim::Rng rng(4);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelNetInference);

void BM_EndToEndScenario(benchmark::State& state) {
  for (auto _ : state) {
    core::ScenarioConfig cfg;
    cfg.cluster = core::testbed_cluster_config(11);
    cfg.target.workload = "ior-easy-write";
    cfg.target.nodes = {0};
    cfg.target.procs_per_node = 2;
    cfg.target.seed = 11;
    cfg.target.scale = 0.25;
    cfg.monitors = true;
    const auto res = core::run_scenario(cfg);
    benchmark::DoNotOptimize(res.events_executed);
  }
}
BENCHMARK(BM_EndToEndScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
