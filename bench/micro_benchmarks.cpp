// Microbenchmarks (google-benchmark) for the framework's hot paths:
// the event engine, the contended-resource models, the monitor sampling
// path, the network training step, and a small end-to-end scenario.
// These bound the cost of the paper's "real-time monitoring and modelling
// capabilities at the scale of HPC systems".
#include <benchmark/benchmark.h>

#include "qif/core/scenario.hpp"
#include "qif/exec/thread_pool.hpp"
#include "qif/ml/gemm.hpp"
#include "qif/ml/kernel_net.hpp"
#include "qif/ml/nn.hpp"
#include "qif/ml/trainer.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/disk.hpp"
#include "qif/sim/fair_link.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/workloads/driver.hpp"

using namespace qif;

namespace {

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      s.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(s.run_all());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngine)->Arg(1000)->Arg(100000);

// The FairLink pattern: every new arrival cancels the pending completion
// event and re-arms it.  With the tombstone engine each cancelled event
// also pays an O(cancelled) sweep at pop time, so this loop was quadratic;
// the pooled heap makes cancel a true O(log n) removal.
void BM_EventEngineCancelChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    const int n = static_cast<int>(state.range(0));
    sim::EventId pending = sim::kInvalidEvent;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      s.cancel(pending);
      pending = s.schedule_at(i + n, [&fired] { ++fired; });
    }
    s.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngineCancelChurn)->Arg(1000)->Arg(16384);

// Timeout-teardown pattern: many armed timeouts that never fire (they are
// cancelled before their deadline), interleaved with real work events.
void BM_EventEngineTimeouts(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::EventId> timeouts;
    timeouts.reserve(static_cast<std::size_t>(n));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      timeouts.push_back(s.schedule_at(1'000'000 + i, [&fired] { ++fired; }));
      s.schedule_at(i, [&fired] { ++fired; });
    }
    for (const auto id : timeouts) s.cancel(id);
    benchmark::DoNotOptimize(s.run_all());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_EventEngineTimeouts)->Arg(1000)->Arg(16384);

void BM_FairLink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    sim::FairLink link(s, 1e9);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      link.transfer(1 << 20, [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FairLink)->Arg(64)->Arg(512);

void BM_DiskSequential(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    pfs::DiskModel disk(s, {}, 1);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      disk.submit(false, static_cast<std::int64_t>(i) << 20, 1 << 20, [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskSequential)->Arg(256);

void BM_DiskInterleavedStreams(benchmark::State& state) {
  // Two far-apart streams: the seek-storm case.
  for (auto _ : state) {
    sim::Simulation s;
    pfs::DiskModel disk(s, {}, 1);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      const std::int64_t base = (i % 2 == 0) ? 0 : (512ll << 30);
      disk.submit(false, base + (static_cast<std::int64_t>(i / 2) << 20), 1 << 20,
                  [&done] { ++done; });
    }
    s.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskInterleavedStreams)->Arg(256);

void BM_ServerMonitorSample(benchmark::State& state) {
  sim::Simulation s;
  pfs::ClusterConfig cc;
  pfs::Cluster cluster(s, cc);
  for (auto _ : state) {
    for (int srv = 0; srv < cluster.n_servers(); ++srv) {
      benchmark::DoNotOptimize(cluster.server_counters(srv));
    }
  }
  state.SetItemsProcessed(state.iterations() * cluster.n_servers());
}
BENCHMARK(BM_ServerMonitorSample);

void BM_KernelNetTrainStep(benchmark::State& state) {
  ml::KernelNetConfig cfg;
  cfg.per_server_dim = 37;
  cfg.n_servers = 7;
  cfg.n_classes = 2;
  ml::KernelNet net(cfg);
  const std::size_t batch = 64;
  ml::Matrix x(batch, 7 * 37);
  sim::Rng rng(3);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 2);
  std::int64_t t = 0;
  for (auto _ : state) {
    const ml::Matrix logits = net.forward(x);
    auto [loss, grad] = ml::SoftmaxXent::loss_and_grad(logits, y, {});
    net.backward(grad);
    net.step({}, ++t);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_KernelNetTrainStep);

void BM_KernelNetInference(benchmark::State& state) {
  ml::KernelNetConfig cfg;
  ml::KernelNet net(cfg);
  ml::Matrix x(1, 7 * 37);
  sim::Rng rng(4);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelNetInference);

// --- GEMM microbenchmarks -------------------------------------------------
//
// BM_GemmNaive replays the pre-blocking triple loop (including its
// `aik == 0.0` skip) so the blocked/parallel numbers below are measured
// against the implementation they replaced.  Shapes are the trainer's hot
// GEMMs: (B*S, D) x (D, H) for the shared kernel MLP at batch 64 with
// 7 servers, plus one larger square-ish shape where blocking pays most.

ml::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  ml::Matrix m(r, c);
  sim::Rng rng(seed);
  for (auto& v : m.data()) v = rng.normal(0, 1);
  return m;
}

void naive_matmul(const ml::Matrix& a, const ml::Matrix& b, ml::Matrix& c) {
  c = ml::Matrix(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

void set_gflops(benchmark::State& state) {
  const double flops = 2.0 * static_cast<double>(state.range(0)) *
                       static_cast<double>(state.range(1)) *
                       static_cast<double>(state.range(2));
  state.counters["GFLOPS"] =
      benchmark::Counter(flops * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_GemmNaive(benchmark::State& state) {
  const auto a = random_matrix(state.range(0), state.range(1), 21);
  const auto b = random_matrix(state.range(1), state.range(2), 22);
  ml::Matrix c;
  for (auto _ : state) {
    naive_matmul(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  set_gflops(state);
}

void BM_GemmBlocked(benchmark::State& state) {
  const auto a = random_matrix(state.range(0), state.range(1), 21);
  const auto b = random_matrix(state.range(1), state.range(2), 22);
  ml::Matrix c;
  for (auto _ : state) {
    ml::gemm_nn(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  set_gflops(state);
}

void BM_GemmParallel(benchmark::State& state) {
  exec::ThreadPool pool(4);
  const auto a = random_matrix(state.range(0), state.range(1), 21);
  const auto b = random_matrix(state.range(1), state.range(2), 22);
  ml::Matrix c;
  for (auto _ : state) {
    ml::gemm_nn(a, b, c, /*accumulate=*/false, &pool);
    benchmark::DoNotOptimize(c.data().data());
  }
  set_gflops(state);
}

// (B*S, D, H): trainer kernel-layer shapes at batch 64, 7 servers, then a
// larger shape representative of wider hidden layers.
// UseRealTime throughout: the parallel variant does its work on pool
// threads, which the default CPU-time clock (main thread only) misses.
#define QIF_GEMM_SHAPES \
  ->Args({448, 37, 64})->Args({448, 64, 32})->Args({1024, 128, 128})->UseRealTime()
BENCHMARK(BM_GemmNaive) QIF_GEMM_SHAPES;
BENCHMARK(BM_GemmBlocked) QIF_GEMM_SHAPES;
BENCHMARK(BM_GemmParallel) QIF_GEMM_SHAPES;
#undef QIF_GEMM_SHAPES

// One full training epoch (minibatch Adam + validation eval) on a
// campaign-sized dataset: 7 servers x 37 features, 512 windows.
void BM_TrainerEpoch(benchmark::State& state) {
  monitor::Dataset ds(7, 37);
  sim::Rng rng(31);
  for (std::size_t i = 0; i < 512; ++i) {
    const int label = static_cast<int>(i % 2);
    double* row = ds.append_row(static_cast<std::int64_t>(i), label, label ? 4.0 : 1.0);
    for (std::size_t j = 0; j < ds.width(); ++j) row[j] = rng.normal(0, 1);
  }
  ml::TrainConfig tc;
  tc.max_epochs = 1;
  tc.jobs = static_cast<int>(state.range(0));
  const ml::Trainer trainer(tc);
  for (auto _ : state) {
    ml::KernelNetConfig nc;
    nc.per_server_dim = 37;
    nc.n_servers = 7;
    nc.n_classes = 2;
    ml::KernelNet net(nc);
    ml::Standardizer stdz;
    const auto result = trainer.train(net, stdz, ds);
    benchmark::DoNotOptimize(result.history.data());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_TrainerEpoch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EndToEndScenario(benchmark::State& state) {
  for (auto _ : state) {
    core::ScenarioConfig cfg;
    cfg.cluster = core::testbed_cluster_config(11);
    cfg.target.workload = "ior-easy-write";
    cfg.target.nodes = {0};
    cfg.target.procs_per_node = 2;
    cfg.target.seed = 11;
    cfg.target.scale = 0.25;
    cfg.monitors = true;
    const auto res = core::run_scenario(cfg);
    benchmark::DoNotOptimize(res.events_executed);
  }
}
BENCHMARK(BM_EndToEndScenario)->Unit(benchmark::kMillisecond);

// Campaign wall-clock proxy: one labelled-window pair the way a campaign
// produces it — a target workload with concurrent interference instances,
// monitors on.  This is the loop the paper's 11k+ IO500 and 23k DLIO
// windows come out of, i.e. the permanent hot path.
void BM_CampaignScenario(benchmark::State& state) {
  for (auto _ : state) {
    core::ScenarioConfig cfg;
    cfg.cluster = core::testbed_cluster_config(11);
    cfg.target.workload = "ior-easy-write";
    cfg.target.nodes = {0, 1};
    cfg.target.procs_per_node = 2;
    cfg.target.seed = 11;
    cfg.target.scale = 0.25;
    core::InterferenceSpec bg;
    bg.workload = "ior-easy-read";
    bg.nodes = {2, 3};
    bg.instances = 2;
    bg.scale = 0.25;
    cfg.interference = bg;
    cfg.monitors = true;
    const auto res = core::run_scenario(cfg);
    benchmark::DoNotOptimize(res.events_executed);
  }
}
BENCHMARK(BM_CampaignScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
