// Reproduces Figure 3: binary (>= 2x slowdown or not) confusion matrices
// for models trained and tested on the IO500 and DLIO benchmark datasets.
//
// The protocol follows the paper: collect labelled windows from benchmark
// campaigns, randomly reserve 20% of the windows as a test set, train the
// kernel-based network on the rest, and report the test confusion matrix.
// Expected shape: high accuracy with few false positives/negatives and
// positive-class F1 above 0.9 on both datasets; IO500 skews positive
// (~75%) and DLIO skews negative (~20% positive) as in the paper.
#include <cstdio>
#include <cstring>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

namespace {

void run_dataset(const char* name, const monitor::Dataset& ds) {
  auto [train, test] = ml::split_dataset(ds, 0.2, /*seed=*/17);
  const auto train_hist = train.class_histogram();
  const auto test_hist = test.class_histogram();
  std::printf("\n=== %s ===\n", name);
  std::printf("train: %zu samples (", train.size());
  for (std::size_t c = 0; c < train_hist.size(); ++c) {
    std::printf("%sclass%zu=%zu", c ? ", " : "", c, train_hist[c]);
  }
  std::printf(")  test: %zu samples (", test.size());
  for (std::size_t c = 0; c < test_hist.size(); ++c) {
    std::printf("%sclass%zu=%zu", c ? ", " : "", c, test_hist[c]);
  }
  std::printf(")\n");

  core::TrainingServerConfig cfg;
  cfg.n_classes = 2;
  cfg.train.max_epochs = 150;
  cfg.train.patience = 25;
  cfg.train.adam.lr = 2e-3;
  core::TrainingServer server(cfg);
  const ml::TrainResult tr = server.fit(train);
  const ml::ConfusionMatrix cm = server.evaluate(test);
  std::printf("trained %d epochs (best %d, val macro-F1 %.3f)\n",
              tr.history.empty() ? 0 : tr.history.back().epoch, tr.best_epoch,
              tr.best_val_macro_f1);
  std::printf("%s", cm.to_string({"<2x", ">=2x"}).c_str());
  std::printf("positive-class F1 = %.3f  (paper: 'F1 scores exceeding 90%%')\n",
              cm.binary_f1());
}

}  // namespace

int main(int argc, char** argv) {
  double richness = 3.0;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--richness") == 0 && i + 1 < argc) {
      richness = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
  }
  std::printf("=== Figure 3: binary interference prediction on benchmark datasets ===\n");
  std::printf("(campaign richness %.1f, %d job(s); pass --richness N / --jobs N)\n",
              richness, jobs);

  core::DatasetOptions opts;
  opts.bin_thresholds = {2.0};
  opts.richness = richness;
  opts.verbose = true;
  opts.runner = exec::campaign_runner(jobs);

  std::printf("\ncollecting IO500 campaign...\n");
  const monitor::Dataset io500 = core::build_io500_dataset(opts);
  run_dataset("Figure 3(a): IO500", io500);

  std::printf("\ncollecting DLIO campaign...\n");
  const monitor::Dataset dlio = core::build_dlio_dataset(opts);
  run_dataset("Figure 3(b): DLIO (Unet3d + BERT)", dlio);
  return 0;
}
