// Reproduces Table I: the 7x7 IO500 cross-interference slowdown matrix.
//
// Methodology mirrors the paper: each of the 7 IO500 tasks runs standalone
// to get its baseline completion time, then once per background task with
// 3 concurrent instances of that task kept active on separate compute
// nodes for the whole run.  The cell (row=target task, col=noise task) is
// the target's completion-time slowdown.  (The paper averages 3 repeats;
// pass --repeats N to do the same; default 1 keeps the bench fast.)
//
// Every (target, noise, repeat) cell is an independent simulation, so the
// whole matrix fans out across a thread pool: pass --jobs N to use N
// workers.  Values are bit-identical for any job count.
//
// Expected shape (not exact values — our substrate is a simulator):
//   * read targets crushed by read noise, nearly untouched by data writes
//   * write targets slowed several-fold by read noise (flusher starvation)
//   * mdt-easy-write (pure namespace) insensitive to data noise
//   * mdt-hard-write (small data tails) crushed by ior write noise
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/exec/thread_pool.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

namespace {

// Per-task op-count scale so every task's standalone run lands in a
// comparable 8-20 simulated-second band (the IO500 "stonewall" spirit).
double task_scale(const std::string& task) {
  static const std::map<std::string, double> kScale = {
      {"ior-easy-read", 1.0},  {"ior-hard-read", 1.0},  {"mdt-hard-read", 2.0},
      {"ior-easy-write", 1.5}, {"ior-hard-write", 4.0}, {"mdt-easy-write", 8.0},
      {"mdt-hard-write", 6.0},
  };
  return kScale.at(task);
}

core::ScenarioConfig make_config(const std::string& target, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(seed);
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = seed;
  cfg.target.scale = task_scale(target);
  cfg.monitors = false;  // Table I only needs completion times
  cfg.horizon = 600 * sim::kSecond;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 1;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) repeats = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
  }
  if (repeats < 1) repeats = 1;
  if (jobs < 1) jobs = 1;

  const auto& tasks = workloads::io500_tasks();
  const std::size_t n_tasks = tasks.size();
  const auto n_repeats = static_cast<std::size_t>(repeats);
  std::printf("=== Table I: IO500 task slowdown under cross-application interference ===\n");
  std::printf("rows: standalone task; columns: background task (3 concurrent instances"
              " on separate nodes); %d repeat(s), %d job(s)\n\n", repeats, jobs);

  exec::ThreadPool pool(jobs);
  const auto wall_start = std::chrono::steady_clock::now();

  // Baselines: one independent simulation per (task, repeat).
  std::vector<double> base_time(n_tasks * n_repeats);
  pool.for_each_index(base_time.size(), [&](std::size_t i) {
    const std::size_t t = i / n_repeats;
    const auto r = static_cast<std::uint64_t>(i % n_repeats);
    const auto res = core::run_scenario(make_config(tasks[t], 1 + r));
    base_time[i] = sim::to_seconds(res.target_body_duration());
  });
  std::map<std::string, double> baseline;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    double total = 0.0;
    for (std::size_t r = 0; r < n_repeats; ++r) total += base_time[t * n_repeats + r];
    baseline[tasks[t]] = total / repeats;
    std::printf("baseline %-16s %7.2f s\n", tasks[t].c_str(), baseline[tasks[t]]);
  }
  std::printf("\n");

  // Cells: one independent simulation per (target, noise, repeat).
  std::vector<double> cell_time(n_tasks * n_tasks * n_repeats);
  pool.for_each_index(cell_time.size(), [&](std::size_t i) {
    const std::size_t t = i / (n_tasks * n_repeats);
    const std::size_t n = (i / n_repeats) % n_tasks;
    const auto r = static_cast<std::uint64_t>(i % n_repeats);
    core::ScenarioConfig cfg = make_config(tasks[t], 1 + r);
    core::InterferenceSpec spec;
    spec.workload = tasks[n];
    spec.nodes = {2, 3, 4, 5, 6};
    spec.instances = 15;  // the paper's 3 concurrent runs on each noise node
    spec.scale = 1.0;
    spec.seed = 77 + r;
    cfg.interference = spec;
    const auto res = core::run_scenario(cfg);
    cell_time[i] = sim::to_seconds(res.target_body_duration());
  });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  core::TextTable table;
  {
    std::vector<std::string> header = {"target \\ noise"};
    for (const auto& t : tasks) header.push_back(t);
    table.add_row(std::move(header));
  }
  for (std::size_t t = 0; t < n_tasks; ++t) {
    std::vector<std::string> row = {tasks[t]};
    for (std::size_t n = 0; n < n_tasks; ++n) {
      double total = 0.0;
      for (std::size_t r = 0; r < n_repeats; ++r) {
        total += cell_time[(t * n_tasks + n) * n_repeats + r];
      }
      row.push_back(core::fmt(total / repeats / baseline[tasks[t]], 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("simulated %zu scenarios in %.2f s wall clock (%d worker%s)\n\n",
              base_time.size() + cell_time.size(), wall_seconds, jobs,
              jobs == 1 ? "" : "s");

  std::printf("paper's Table I for comparison:\n"
              "                 ior-e-rd ior-h-rd mdt-h-rd ior-e-wr ior-h-wr mdt-e-wr mdt-h-wr\n"
              "ior-easy-read      29.304   10.722   10.895    1.004    1.285    1.002    1.003\n"
              "ior-hard-read       5.747   15.156    5.789    3.593    1.000    3.394    0.998\n"
              "mdt-hard-read       1.058    1.394    1.199    1.009    1.010    2.106    3.961\n"
              "ior-easy-write      4.384    1.047    0.976    2.720    5.012    1.802    3.032\n"
              "ior-hard-write      3.383    0.956    1.291    2.946    4.252    1.273    1.586\n"
              "mdt-easy-write      1.441    1.018    1.022    1.044    1.032    1.465    1.539\n"
              "mdt-hard-write     11.145    4.211    1.190   26.219   40.923    1.480    1.496\n");
  return 0;
}
