// Reproduces Table I: the 7x7 IO500 cross-interference slowdown matrix.
//
// Methodology mirrors the paper: each of the 7 IO500 tasks runs standalone
// to get its baseline completion time, then once per background task with
// 3 concurrent instances of that task kept active on separate compute
// nodes for the whole run.  The cell (row=target task, col=noise task) is
// the target's completion-time slowdown.  (The paper averages 3 repeats;
// pass --repeats N to do the same; default 1 keeps the bench fast.)
//
// Expected shape (not exact values — our substrate is a simulator):
//   * read targets crushed by read noise, nearly untouched by data writes
//   * write targets slowed several-fold by read noise (flusher starvation)
//   * mdt-easy-write (pure namespace) insensitive to data noise
//   * mdt-hard-write (small data tails) crushed by ior write noise
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

namespace {

// Per-task op-count scale so every task's standalone run lands in a
// comparable 8-20 simulated-second band (the IO500 "stonewall" spirit).
double task_scale(const std::string& task) {
  static const std::map<std::string, double> kScale = {
      {"ior-easy-read", 1.0},  {"ior-hard-read", 1.0},  {"mdt-hard-read", 2.0},
      {"ior-easy-write", 1.5}, {"ior-hard-write", 4.0}, {"mdt-easy-write", 8.0},
      {"mdt-hard-write", 6.0},
  };
  return kScale.at(task);
}

core::ScenarioConfig make_config(const std::string& target, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(seed);
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = seed;
  cfg.target.scale = task_scale(target);
  cfg.monitors = false;  // Table I only needs completion times
  cfg.horizon = 600 * sim::kSecond;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) repeats = std::atoi(argv[++i]);
  }

  const auto& tasks = workloads::io500_tasks();
  std::printf("=== Table I: IO500 task slowdown under cross-application interference ===\n");
  std::printf("rows: standalone task; columns: background task (3 concurrent instances"
              " on separate nodes); %d repeat(s)\n\n", repeats);

  // Baselines.
  std::map<std::string, double> baseline;
  for (const auto& t : tasks) {
    double total = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto res = core::run_scenario(make_config(t, 1 + static_cast<std::uint64_t>(r)));
      total += sim::to_seconds(res.target_body_duration());
    }
    baseline[t] = total / repeats;
    std::printf("baseline %-16s %7.2f s\n", t.c_str(), baseline[t]);
  }
  std::printf("\n");

  core::TextTable table;
  {
    std::vector<std::string> header = {"target \\ noise"};
    for (const auto& t : tasks) header.push_back(t);
    table.add_row(std::move(header));
  }
  for (const auto& target : tasks) {
    std::vector<std::string> row = {target};
    for (const auto& noise : tasks) {
      double total = 0.0;
      for (int r = 0; r < repeats; ++r) {
        core::ScenarioConfig cfg = make_config(target, 1 + static_cast<std::uint64_t>(r));
        core::InterferenceSpec spec;
        spec.workload = noise;
        spec.nodes = {2, 3, 4, 5, 6};
        spec.instances = 15;  // the paper's 3 concurrent runs on each noise node
        spec.scale = 1.0;
        spec.seed = 77 + static_cast<std::uint64_t>(r);
        cfg.interference = spec;
        const auto res = core::run_scenario(cfg);
        total += sim::to_seconds(res.target_body_duration());
      }
      row.push_back(core::fmt(total / repeats / baseline[target], 3));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
    std::printf("row done: %s\n", target.c_str());
  }
  std::printf("\n%s\n", table.to_string().c_str());

  std::printf("paper's Table I for comparison:\n"
              "                 ior-e-rd ior-h-rd mdt-h-rd ior-e-wr ior-h-wr mdt-e-wr mdt-h-wr\n"
              "ior-easy-read      29.304   10.722   10.895    1.004    1.285    1.002    1.003\n"
              "ior-hard-read       5.747   15.156    5.789    3.593    1.000    3.394    0.998\n"
              "mdt-hard-read       1.058    1.394    1.199    1.009    1.010    2.106    3.961\n"
              "ior-easy-write      4.384    1.047    0.976    2.720    5.012    1.802    3.032\n"
              "ior-hard-write      3.383    0.956    1.291    2.946    4.252    1.273    1.586\n"
              "mdt-easy-write      1.441    1.018    1.022    1.044    1.032    1.465    1.539\n"
              "mdt-hard-write     11.145    4.211    1.190   26.219   40.923    1.480    1.496\n");
  return 0;
}
