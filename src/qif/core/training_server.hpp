// Training server (paper §III-C): owns the model bundle — the kernel-based
// network plus the fitted standardizer — trains it offline on a labelled
// dataset, and serves predictions afterwards.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qif/ml/kernel_net.hpp"
#include "qif/ml/metrics.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/ml/trainer.hpp"
#include "qif/monitor/features.hpp"

namespace qif::core {

struct TrainingServerConfig {
  int n_classes = 2;               ///< 2 = binary (>=2x), 3 = mild/moderate/severe
  std::vector<int> kernel_hidden = {64, 32};
  std::vector<int> head_hidden = {32};
  /// Trainer knobs; `train.jobs > 1` fans the training GEMMs across a
  /// thread pool with bit-identical results (a pure throughput knob).
  ml::TrainConfig train{};
  std::uint64_t seed = 7;
};

class TrainingServer {
 public:
  explicit TrainingServer(TrainingServerConfig config) : config_(std::move(config)) {}

  /// Trains a fresh model on `train_ds` (shape taken from the view; a
  /// FeatureTable converts implicitly).
  ml::TrainResult fit(const monitor::TableView& train_ds);

  /// Streaming variant: trains from any RowAccess source (e.g. a
  /// monitor::ShardedDataset) with chunked ingestion.  Same seeds, same
  /// algorithm — the model bytes are bit-identical to fit() on the
  /// equivalent in-RAM view.
  ml::TrainResult fit_rows(const monitor::RowAccess& rows);

  /// Confusion matrix of the current model on a held-out set.
  [[nodiscard]] ml::ConfusionMatrix evaluate(const monitor::TableView& test_ds) const;

  /// Streaming evaluation over a RowAccess source (chunked gathers).
  [[nodiscard]] ml::ConfusionMatrix evaluate_rows(const monitor::RowAccess& rows) const;

  /// Class prediction for one window's flattened features.
  [[nodiscard]] int predict(std::vector<double> features) const;
  /// Softmax probabilities for one window's flattened features.
  [[nodiscard]] std::vector<double> predict_proba(std::vector<double> features) const;
  /// Per-server kernel scores (which server the model attributes pressure to).
  [[nodiscard]] std::vector<double> server_scores(std::vector<double> features) const;

  [[nodiscard]] const ml::KernelNet& net() const { return net_; }
  [[nodiscard]] const ml::Standardizer& standardizer() const { return stdz_; }
  [[nodiscard]] const TrainingServerConfig& config() const { return config_; }

  /// Deployment guard: throws std::runtime_error naming both widths when
  /// the loaded model's per-server feature width disagrees with the
  /// serving schema's (e.g. a 40-wide fault-features model against the
  /// 37-wide healthy layout).  `schema_dim == 0` disables the check.
  void validate_feature_width(int schema_dim) const;

  void save(std::ostream& os) const;
  /// Parses a "qif-model 1" bundle.  `expected_dim`, when nonzero, runs
  /// validate_feature_width on the result before accepting it — a width
  /// mismatch throws and leaves this object unchanged.
  void load(std::istream& is, int expected_dim = 0);

 private:
  TrainingServerConfig config_;
  ml::KernelNet net_;
  ml::Standardizer stdz_;
};

}  // namespace qif::core
