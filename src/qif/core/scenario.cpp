#include "qif/core/scenario.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::core {

pfs::ClusterConfig testbed_cluster_config(std::uint64_t seed) {
  pfs::ClusterConfig cfg;
  cfg.n_client_nodes = 7;
  cfg.n_oss = 3;
  cfg.osts_per_oss = 2;
  cfg.seed = seed;
  // Server page cache: the testbed machines carry 32-140 GB of RAM, so
  // recently written small files are read back from memory.  4 GiB per OST
  // models that OSS cache share (bench/ablation_server_cache measures how
  // this moves the read-back cells of Table I onto the paper's values).
  cfg.read_cache.capacity_bytes = 4ll << 30;
  // The MDT device serves latency-critical journal commits; starving them
  // behind inode-read storms would stall every create on the cluster, so
  // its write turns are far more generous than an OST's, and there are no
  // streaming readers to anticipate.
  cfg.mdt_disk.write_starve_limit = 20 * sim::kMillisecond;
  cfg.mdt_disk.write_turn_time = 10 * sim::kMillisecond;
  cfg.mdt_disk.anticipation_hold = 0;
  // Remaining fields keep their defaults, which already encode the paper's
  // hardware: 1 GB/s ports, 7200 rpm SATA disks, 1 MiB RPCs.
  return cfg;
}

/// Default per-RPC deadline for fault-injected runs whose config leaves the
/// timeout machinery unconfigured: long enough that healthy contention never
/// trips it (worst-case queueing in the paper's scenarios is well under a
/// second), short enough that a stalled OST turns into timeouts within the
/// monitor's window scale.
constexpr sim::SimDuration kDefaultFaultRpcDeadline = 5 * sim::kSecond;

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (config.lanes < 0) {
    throw std::invalid_argument("scenario: lanes must be >= 0 (got " +
                                std::to_string(config.lanes) +
                                "; 0 = classic single engine)");
  }
  const bool lane_mode = config.lanes >= 1;
  pfs::ClusterConfig cluster_config = config.cluster;
  if (!config.faults.empty() && cluster_config.client.rpc_deadline <= 0) {
    cluster_config.client.rpc_deadline = kDefaultFaultRpcDeadline;
  }
  // The lookahead is the fabric propagation latency: every cross-lane
  // interaction rides at least one network hop, except the zero-delay
  // note_size edge which the lane group's stage ordering covers.
  std::optional<sim::Simulation> simulation;
  std::optional<sim::LaneGroup> lane_group;
  std::optional<pfs::Cluster> cluster_storage;
  if (lane_mode) {
    lane_group.emplace(config.lanes, cluster_config.network.latency);
    cluster_storage.emplace(*lane_group, cluster_config);
  } else {
    simulation.emplace();
    cluster_storage.emplace(*simulation, cluster_config);
  }
  pfs::Cluster& cluster = *cluster_storage;
  const auto now_fn = [&]() {
    return lane_mode ? lane_group->now() : simulation->now();
  };
  const auto run_until = [&](sim::SimTime until) {
    return lane_mode ? lane_group->run_until(until) : simulation->run_until(until);
  };
  const auto pending = [&]() {
    return lane_mode ? lane_group->pending() : simulation->pending();
  };

  // Arm the fault plan before any workload starts so episodes starting at
  // t=0 are honoured.  The injector seeds its own RNG stream from the
  // cluster seed, so faulted runs stay exactly as reproducible as healthy
  // ones.
  std::optional<pfs::faults::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(cluster, config.faults,
                     sim::Rng::derive_seed(cluster_config.seed, "faults"));
  }

  // Arm mitigation before any workload starts so every client the job
  // layer creates passes through the gate factory.  Declared after the
  // cluster (destroyed first; its dtor uninstalls the factory).
  std::optional<ctrl::Mitigator> mitigator;
  if (!config.mitigation.empty()) {
    mitigator.emplace(cluster, config.mitigation);
  }

  // Monitors attach before any workload starts so window 0 is complete.
  std::optional<monitor::ClientMonitor> client_mon;
  std::optional<monitor::ServerMonitor> server_mon;
  if (config.monitors) {
    client_mon.emplace(/*job=*/0, config.window, cluster.n_servers(),
                       cluster.mdt_server_index());
    if (!lane_mode) {
      // Classic mode streams records into the monitor as they complete; in
      // lane mode the per-lane shards are merged post-run and replayed
      // below (observe() is a pure per-record fold, so replaying the merged
      // trace yields the same aggregates).
      cluster.trace_log().set_observer(
          [&m = *client_mon](const trace::OpRecord& rec) { m.observe(rec); });
    }
    server_mon.emplace(cluster, config.window);
    server_mon->start();
  }

  workloads::JobSpec target = config.target;
  target.job = 0;
  workloads::JobInstance target_job(cluster, target, /*loop=*/false);

  std::optional<workloads::InterferenceDriver> driver;
  if (config.interference.has_value()) {
    const InterferenceSpec& spec = *config.interference;
    driver.emplace(cluster, spec.workload, spec.nodes, spec.instances, config.horizon,
                   spec.seed, /*job_base=*/1, spec.scale);
    driver->start();
  }

  ScenarioResult result;
  // The completion flag is written on the target job's own engine (a worker
  // thread in lane mode) and read by this loop between windows; the lane
  // group's barrier orders those accesses.  The completion *time* comes
  // from the job itself, which stamps it on its own lane's clock.
  target_job.start([&] { result.target_finished = true; });

  // Step in window-sized chunks so we stop promptly once the target is
  // done; interference loops would otherwise keep the event queue alive
  // forever.
  while (!result.target_finished && now_fn() < config.horizon) {
    const sim::SimTime next = now_fn() + config.window;
    const std::uint64_t ran = run_until(next);
    if (ran == 0 && pending() == 0) break;  // everything drained
  }
  // Let the server monitor close the final (partial) window's samples.
  if (server_mon.has_value()) {
    run_until(((now_fn() / config.window) + 1) * config.window);
    server_mon->stop();
  }

  result.target_completion = target_job.completion_time();
  result.target_body_start = target_job.body_start_time();
  result.events_executed =
      lane_mode ? lane_group->events_executed() : simulation->events_executed();
  if (lane_mode) {
    result.trace = cluster.merged_trace();
    if (client_mon.has_value()) {
      for (const trace::OpRecord& rec : result.trace.records()) client_mon->observe(rec);
    }
  } else {
    result.trace = cluster.trace_log();
  }
  if (mitigator.has_value()) {
    result.ctrl = mitigator->report(result.trace, config.window);
  }
  if (config.monitors) {
    // Fault-injected runs widen every per-server vector with the fault
    // block; healthy runs keep the exact historical 37-wide layout.
    const bool with_faults = !config.faults.empty();
    result.n_servers = cluster.n_servers();
    result.dim = with_faults ? monitor::MetricSchema::kPerServerDimFaults
                             : monitor::MetricSchema::kPerServerDim;
    monitor::FeatureAssembler assembler(*client_mon, *server_mon, cluster.n_servers(),
                                        with_faults);
    const std::vector<std::int64_t> windows = client_mon->window_indices();
    result.window_features.set_shape(result.n_servers, result.dim);
    result.window_features.reserve(windows.size());
    // window_indices() is ascending, so the table's window column stays
    // sorted and the campaign join can binary-search it.
    for (const std::int64_t w : windows) {
      assembler.fill_window(w, result.window_features.append_row(w, 0, 1.0));
    }
  }
  return result;
}

}  // namespace qif::core
