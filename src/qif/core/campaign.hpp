// Training-data campaigns (paper §III-D).
//
// "We collect high-quality labelled data by executing an application in the
// presence and absence of additional I/O workloads running on other
// computing nodes."  A campaign runs the target workload once per seed as a
// baseline, then once per interference case; matches the two traces op by
// op; computes per-window degradation labels; and joins them with the
// interference run's monitor features into a labelled dataset.
//
// The work decomposes into pure per-task functions (baseline runs and case
// runs) with no shared mutable state: every scenario owns its own
// sim::Simulation and derived RNG seed.  The free functions below are that
// task surface; Campaign::run() is the sequential driver over them, and
// qif::exec::ParallelCampaignRunner fans the same tasks across a thread
// pool with bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qif/core/scenario.hpp"
#include "qif/monitor/features.hpp"
#include "qif/trace/labeler.hpp"

namespace qif::core {

/// One interference case: which background workload, how many concurrent
/// instances ("levels of interference"), and the seed that varies both the
/// target run and the background phase alignment.
struct CaseSpec {
  std::string interference_workload;  ///< empty = quiet case (negatives)
  int instances = 3;
  double intensity_scale = 1.0;
  std::uint64_t seed = 1;
};

struct CampaignConfig {
  std::string target_workload;
  int target_nodes = 2;            ///< leading nodes host the target...
  int target_procs_per_node = 2;
  double target_scale = 1.0;
  std::vector<CaseSpec> cases;     ///< ...remaining nodes host interference
  pfs::ClusterConfig cluster;      ///< topology template (seed overridden per run)
  sim::SimDuration window = sim::kSecond;
  sim::SimDuration horizon = 240 * sim::kSecond;
  std::vector<double> bin_thresholds = {2.0};  ///< {2} binary, {2,5} 3-class
  std::size_t min_ops_per_window = 1;
  /// Fault-injection schedule applied to every *case* run (the monitored,
  /// possibly-degraded executions).  Baseline runs always stay healthy: the
  /// label denominator is "this workload on an undisturbed cluster", so a
  /// degraded-OST case is measured against the same healthy yardstick as a
  /// contended one.  Empty = the historical healthy campaign, bit-identical
  /// to pre-fault builds.
  pfs::faults::FaultPlan faults;
  /// Mitigation policy armed on every *case* run (the fault-plan pattern:
  /// baselines stay untouched, so labels keep the same healthy yardstick).
  /// Empty = the historical unmitigated campaign, byte-identical to
  /// pre-mitigation builds.
  ctrl::MitigationConfig mitigation;
};

struct CaseOutcome {
  CaseSpec spec;
  std::size_t matched_ops = 0;
  std::size_t windows = 0;          ///< labelled windows
  std::size_t sampled_windows = 0;  ///< labelled windows that also had features
  /// Mean Level_degrade over the sampled windows (the windows that became
  /// dataset samples), 1.0 when no window was sampled.
  double mean_degradation = 0.0;
  /// p99 of the target job's op latencies in this case run (ms; computed
  /// for every case, mitigated or not, so on-vs-off twins compare directly).
  double victim_p99_ms = 0.0;
  // -- mitigation telemetry (zero when the case ran unmitigated) -----------
  std::int64_t throttle_waits = 0;
  std::int64_t throttled_bytes = 0;
  double throttle_delay_s = 0.0;
  double mean_admission_level = 0.0;
  bool target_finished = false;
  std::string error;                ///< non-empty when this case failed
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// One case's contribution: its bookkeeping plus its dataset shard.
struct CaseResult {
  CaseOutcome outcome;
  monitor::Dataset shard;
};

/// A whole campaign's output with the outcomes in case-declaration order.
struct CampaignResult {
  monitor::Dataset dataset;
  std::vector<CaseOutcome> outcomes;
};

/// A baseline run's detached trace, or the error that prevented it.
struct CampaignBaseline {
  trace::TraceLog trace;
  std::string error;  ///< non-empty when the baseline scenario failed
};

/// Scenario config for the quiet baseline run of one target seed.
[[nodiscard]] ScenarioConfig campaign_baseline_config(const CampaignConfig& config,
                                                      std::uint64_t seed);

/// Scenario config for one interference case.
[[nodiscard]] ScenarioConfig campaign_case_config(const CampaignConfig& config,
                                                  const CaseSpec& cs);

/// Distinct baseline seeds referenced by the campaign's cases, in
/// first-appearance order.
[[nodiscard]] std::vector<std::uint64_t> campaign_baseline_seeds(
    const CampaignConfig& config);

/// Runs one baseline scenario; a throwing scenario is reported in `error`
/// instead of propagating.  Thread-safe: touches no shared state.
[[nodiscard]] CampaignBaseline run_campaign_baseline(const CampaignConfig& config,
                                                     std::uint64_t seed);

/// Matches an already-run case scenario against its baseline trace, labels
/// the windows and joins them with the captured features.  Pure; exposed
/// separately so the degradation accounting is unit-testable.
[[nodiscard]] CaseResult join_case_result(const CampaignConfig& config,
                                          const CaseSpec& cs,
                                          const trace::TraceLog& base_trace,
                                          const ScenarioResult& run);

/// Runs one case end to end against a precomputed baseline.  A throwing
/// scenario (or a failed baseline) is reported per-case via
/// CaseOutcome::error instead of aborting the campaign.  Thread-safe.
[[nodiscard]] CaseResult run_campaign_case(const CampaignConfig& config,
                                           const CaseSpec& cs,
                                           const CampaignBaseline& baseline);

/// Assembles per-case results (in declaration order) into one campaign
/// result: outcomes in order, successful shards block-appended into a
/// reserve-once dataset (O(shards) heap allocations regardless of window
/// count).  Shared by the sequential driver below and
/// exec::ParallelCampaignRunner's stitch phase.
[[nodiscard]] CampaignResult stitch_case_results(std::vector<CaseResult> cases);

/// Sequential driver: baselines first (each seed once), then every case in
/// declaration order.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

/// On-vs-off mitigation twins over the same seeds.
struct MitigationStudy {
  CampaignResult off;  ///< config with the policy cleared
  CampaignResult on;   ///< config as given (mitigation armed on case runs)
};

/// Runs the campaign twice — once with mitigation stripped, once with
/// `config.mitigation` armed — sharing each seed's baseline, so the two
/// sides differ in nothing but the controllers.  Throws std::invalid_argument
/// when config.mitigation is empty (there would be no "on" side).
[[nodiscard]] MitigationStudy run_mitigation_study(const CampaignConfig& config);

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Runs every case sequentially and returns the accumulated labelled
  /// dataset.  (For the parallel path see exec::ParallelCampaignRunner,
  /// whose output is bit-identical.)
  [[nodiscard]] monitor::Dataset run();

  [[nodiscard]] const std::vector<CaseOutcome>& outcomes() const { return outcomes_; }
  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  std::vector<CaseOutcome> outcomes_;
};

}  // namespace qif::core
