// Training-data campaigns (paper §III-D).
//
// "We collect high-quality labelled data by executing an application in the
// presence and absence of additional I/O workloads running on other
// computing nodes."  A campaign runs the target workload once per seed as a
// baseline, then once per interference case; matches the two traces op by
// op; computes per-window degradation labels; and joins them with the
// interference run's monitor features into a labelled dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qif/core/scenario.hpp"
#include "qif/monitor/features.hpp"
#include "qif/trace/labeler.hpp"

namespace qif::core {

/// One interference case: which background workload, how many concurrent
/// instances ("levels of interference"), and the seed that varies both the
/// target run and the background phase alignment.
struct CaseSpec {
  std::string interference_workload;  ///< empty = quiet case (negatives)
  int instances = 3;
  double intensity_scale = 1.0;
  std::uint64_t seed = 1;
};

struct CampaignConfig {
  std::string target_workload;
  int target_nodes = 2;            ///< leading nodes host the target...
  int target_procs_per_node = 2;
  double target_scale = 1.0;
  std::vector<CaseSpec> cases;     ///< ...remaining nodes host interference
  pfs::ClusterConfig cluster;      ///< topology template (seed overridden per run)
  sim::SimDuration window = sim::kSecond;
  sim::SimDuration horizon = 240 * sim::kSecond;
  std::vector<double> bin_thresholds = {2.0};  ///< {2} binary, {2,5} 3-class
  std::size_t min_ops_per_window = 1;
};

struct CaseOutcome {
  CaseSpec spec;
  std::size_t matched_ops = 0;
  std::size_t windows = 0;
  double mean_degradation = 0.0;
  bool target_finished = false;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Runs every case and returns the accumulated labelled dataset.
  [[nodiscard]] monitor::Dataset run();

  [[nodiscard]] const std::vector<CaseOutcome>& outcomes() const { return outcomes_; }
  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  [[nodiscard]] workloads::JobSpec target_spec(std::uint64_t seed) const;
  [[nodiscard]] std::vector<pfs::NodeId> interference_nodes() const;

  CampaignConfig config_;
  std::vector<CaseOutcome> outcomes_;
};

}  // namespace qif::core
