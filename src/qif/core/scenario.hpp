// Scenario runner: one complete simulated execution.
//
// A scenario is the unit of the paper's data-collection methodology: a
// *target workload* (job 0, the application being monitored) runs on its
// own compute nodes, optionally with an interference driver keeping
// background instances alive on the remaining nodes, while the client- and
// server-side monitors sample.  The result carries everything later stages
// need — the full DXT trace and the per-window feature table — with no
// references into the (torn down) cluster.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qif/ctrl/mitigator.hpp"
#include "qif/monitor/features.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/faults.hpp"
#include "qif/trace/op_record.hpp"
#include "qif/workloads/driver.hpp"

namespace qif::core {

struct InterferenceSpec {
  std::string workload;
  std::vector<pfs::NodeId> nodes;  ///< must be disjoint from the target's nodes
  int instances = 3;               ///< concurrent looping copies (paper: 3)
  double scale = 1.0;
  std::uint64_t seed = 99;
};

struct ScenarioConfig {
  pfs::ClusterConfig cluster;
  workloads::JobSpec target;       ///< job id is forced to 0
  std::optional<InterferenceSpec> interference;
  sim::SimDuration window = sim::kSecond;   ///< monitor window size
  sim::SimDuration horizon = 600 * sim::kSecond;  ///< hard stop
  bool monitors = true;            ///< baseline runs can skip monitoring
  /// Fault-injection schedule.  Empty (the default) means a healthy run:
  /// no injector is constructed, no client timeout machinery is armed, and
  /// the simulation is bit-identical to a pre-fault build.  Non-empty plans
  /// arm the injector and (unless the cluster config already sets one)
  /// enable a default client RPC deadline so stalls surface as timeouts.
  pfs::faults::FaultPlan faults;
  /// Parallel event lanes.  0 (default) runs the classic single-engine
  /// path — byte-identical to every pre-lane build, which is what the
  /// golden-trace pins lock down.  N >= 1 partitions the cluster into N
  /// data lanes (clients and OSS groups in contiguous blocks) plus a
  /// dedicated metadata lane, each with its own event engine, synchronized
  /// by conservative barrier windows with the fabric latency as lookahead
  /// (see sim/lanes.hpp).  Within the lane family traces, features,
  /// completion times, and events_executed are bit-identical for every N
  /// (lanes=1 is the sequential reference; it runs on the driver thread).
  /// The lane family's same-instant cross-entity tie-break is
  /// entity-ordered (see sim/simulation.hpp), so it is internally
  /// consistent but intentionally not byte-identical to the classic
  /// engine.  Throws std::invalid_argument for lanes < 0 or lanes > n_oss,
  /// and for job specs whose nodes would span lanes.
  int lanes = 0;
  /// Closed-loop interference mitigation (qif::ctrl).  Empty policy (the
  /// default) constructs nothing — no admission gates, no controller ticks,
  /// no extra RNG streams — so unmitigated runs stay byte-identical to
  /// pre-mitigation builds.  A non-empty policy arms one controller per
  /// gated client (scope decides whether job 0 is gated) with decision
  /// epochs on the simulation clock; mitigated traces are bit-identical at
  /// every --lanes count.
  ctrl::MitigationConfig mitigation;
};

struct ScenarioResult {
  trace::TraceLog trace;           ///< all jobs' op records
  /// Per-window flattened per-server feature vectors (only windows where
  /// the target did I/O); empty when monitors were disabled.  One row per
  /// window, appended in ascending window order (so window lookups are a
  /// binary search over the window_index column); labels/degradations in
  /// this table are placeholders — the campaign join supplies real ones.
  monitor::FeatureTable window_features;
  int n_servers = 0;
  int dim = 0;
  bool target_finished = false;
  sim::SimTime target_completion = 0;  ///< valid when target_finished
  /// Start of the target's timed (body) phase — setup prologues such as
  /// pre-creating a read phase's files are excluded from slowdown ratios,
  /// matching how IO500 times each phase separately.
  sim::SimTime target_body_start = 0;
  /// completion - body start, the timed-phase duration.
  [[nodiscard]] sim::SimDuration target_body_duration() const {
    return target_completion - target_body_start;
  }
  std::uint64_t events_executed = 0;
  /// Mitigation telemetry (policy string, throttle totals, per-window
  /// controller columns, victim p99).  Inactive/default when the scenario
  /// ran without mitigation.
  ctrl::MitigationReport ctrl;
};

/// Runs one scenario to target completion (or the horizon) and returns the
/// detached results.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// The paper's testbed topology: 7 client nodes, 3 OSS x 2 OST, 1 MDS/MDT,
/// 1 GB/s links, 7200 rpm SATA disks.
[[nodiscard]] pfs::ClusterConfig testbed_cluster_config(std::uint64_t seed = 42);

}  // namespace qif::core
