// Online prediction path.
//
// "After training, the model is deployed in the same training server and
// receives time window metrics from both the server-side and client-side
// monitors in the same per-server vector format at runtime."
//
// The OnlinePredictor wires live monitors to a deployed model: at every
// closed window it assembles the per-server vectors and publishes a
// prediction (class, probabilities, per-server kernel scores) to a user
// callback — the hook an adaptive I/O middleware or scheduler would
// consume.  Construction snapshots the TrainingServer's bundle into a
// serve::ServingModel, and every window runs through
// serve::predict_batch with one request: the single-cluster deployment
// is literally the serving layer's N=1 case, so its predictions are
// bit-identical to what `qif serve` computes for the same features.
//
// Long scenarios used to grow `history_` without bound (one Prediction
// per window, forever); it is now a bounded ring (history_capacity) and
// the per-window output vectors are reused instead of reallocated.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qif/core/training_server.hpp"
#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/features.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/serve/batcher.hpp"
#include "qif/sim/sampler.hpp"

namespace qif::core {

struct Prediction {
  std::int64_t window_index = 0;
  int predicted_class = 0;
  std::vector<double> probabilities;   ///< per class
  std::vector<double> server_scores;   ///< per monitored server
  bool had_activity = false;           ///< target issued I/O in this window
};

struct OnlinePredictorConfig {
  /// Retained predictions.  A week-long scenario with 1 s windows emits
  /// ~600k predictions; the ring keeps the most recent `history_capacity`
  /// instead of all of them.  Must be positive.
  std::size_t history_capacity = 4096;
};

class OnlinePredictor {
 public:
  using Callback = std::function<void(const Prediction&)>;

  /// Publishes a prediction at the close of every monitor window.
  /// Snapshots the server's trained bundle (the deployment step) and
  /// validates its feature width against the live monitors' schema —
  /// throws std::runtime_error naming both widths on a mismatch.
  OnlinePredictor(pfs::Cluster& cluster, const TrainingServer& server,
                  const monitor::ClientMonitor& client_mon,
                  const monitor::ServerMonitor& server_mon, Callback on_prediction,
                  OnlinePredictorConfig config = {});

  void start() { ticker_.start(); }
  void stop() { ticker_.stop(); }

  /// The most recent `history_capacity` predictions.  Until the ring
  /// wraps the vector is oldest-first; after that entries are in ring
  /// order — use `window_index` to order them, and history_total() to
  /// detect eviction.
  [[nodiscard]] const std::vector<Prediction>& history() const { return history_; }
  /// Total predictions ever emitted, including evicted ones.
  [[nodiscard]] std::uint64_t history_total() const { return history_total_; }

 private:
  void on_window_close(std::int64_t window_index);

  serve::ServingModel model_;  ///< deployment snapshot of the trained bundle
  const monitor::ClientMonitor& client_mon_;
  monitor::FeatureAssembler assembler_;
  Callback on_prediction_;
  sim::Sampler ticker_;
  OnlinePredictorConfig config_;

  // Per-window working set, reused every window (capacity stays warm).
  std::vector<double> features_;
  serve::Request request_;
  serve::PredictScratch scratch_;
  Prediction current_;

  std::vector<Prediction> history_;  // ring once size() == history_capacity
  std::size_t next_slot_ = 0;
  std::uint64_t history_total_ = 0;
};

}  // namespace qif::core
