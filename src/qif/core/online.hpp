// Online prediction path.
//
// "After training, the model is deployed in the same training server and
// receives time window metrics from both the server-side and client-side
// monitors in the same per-server vector format at runtime."
//
// The OnlinePredictor wires live monitors to a trained TrainingServer: at
// every closed window it assembles the per-server vectors and publishes a
// prediction (class, probabilities, per-server kernel scores) to a user
// callback — the hook an adaptive I/O middleware or scheduler would consume.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qif/core/training_server.hpp"
#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/features.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/sim/sampler.hpp"

namespace qif::core {

struct Prediction {
  std::int64_t window_index = 0;
  int predicted_class = 0;
  std::vector<double> probabilities;   ///< per class
  std::vector<double> server_scores;   ///< per monitored server
  bool had_activity = false;           ///< target issued I/O in this window
};

class OnlinePredictor {
 public:
  using Callback = std::function<void(const Prediction&)>;

  /// Publishes a prediction at the close of every monitor window.
  OnlinePredictor(pfs::Cluster& cluster, const TrainingServer& server,
                  const monitor::ClientMonitor& client_mon,
                  const monitor::ServerMonitor& server_mon, Callback on_prediction);

  void start() { ticker_.start(); }
  void stop() { ticker_.stop(); }

  [[nodiscard]] const std::vector<Prediction>& history() const { return history_; }

 private:
  void on_window_close(std::int64_t window_index);

  const TrainingServer& server_;
  const monitor::ClientMonitor& client_mon_;
  monitor::FeatureAssembler assembler_;
  Callback on_prediction_;
  sim::Sampler ticker_;
  std::vector<Prediction> history_;
};

}  // namespace qif::core
