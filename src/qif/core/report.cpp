#include "qif/core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qif::core {

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (const std::size_t w : widths) total += w + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
  }
  return os.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_rate(double bytes_per_second) {
  const char* units[] = {"B/s", "KiB/s", "MiB/s", "GiB/s"};
  int u = 0;
  double v = bytes_per_second;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return fmt(v, 1) + " " + units[u];
}

}  // namespace qif::core
