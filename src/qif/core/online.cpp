#include "qif/core/online.hpp"

namespace qif::core {

OnlinePredictor::OnlinePredictor(pfs::Cluster& cluster, const TrainingServer& server,
                                 const monitor::ClientMonitor& client_mon,
                                 const monitor::ServerMonitor& server_mon,
                                 Callback on_prediction)
    : server_(server),
      client_mon_(client_mon),
      assembler_(client_mon, server_mon, cluster.n_servers()),
      on_prediction_(std::move(on_prediction)),
      // Fire just after each window boundary so both monitors have closed it.
      ticker_(cluster.sim(), client_mon.window(), [this](std::uint64_t tick) {
        on_window_close(static_cast<std::int64_t>(tick) - 1);
      }) {}

void OnlinePredictor::on_window_close(std::int64_t window_index) {
  Prediction p;
  p.window_index = window_index;
  p.had_activity = client_mon_.cell(window_index, 0) != nullptr;
  std::vector<double> features = assembler_.window_features(window_index);
  p.predicted_class = server_.predict(features);
  p.probabilities = server_.predict_proba(features);
  p.server_scores = server_.server_scores(std::move(features));
  history_.push_back(p);
  if (on_prediction_) on_prediction_(history_.back());
}

}  // namespace qif::core
