#include "qif/core/online.hpp"

#include <stdexcept>

namespace qif::core {

OnlinePredictor::OnlinePredictor(pfs::Cluster& cluster, const TrainingServer& server,
                                 const monitor::ClientMonitor& client_mon,
                                 const monitor::ServerMonitor& server_mon,
                                 Callback on_prediction, OnlinePredictorConfig config)
    : client_mon_(client_mon),
      assembler_(client_mon, server_mon, cluster.n_servers()),
      on_prediction_(std::move(on_prediction)),
      // Fire just after each window boundary so both monitors have closed it.
      ticker_(cluster.sim(), client_mon.window(), [this](std::uint64_t tick) {
        on_window_close(static_cast<std::int64_t>(tick) - 1);
      }),
      config_(config) {
  if (config_.history_capacity == 0) {
    throw std::invalid_argument("online predictor: history_capacity must be positive");
  }
  // Deployment snapshot: the serving bundle this predictor will run, with
  // the width check a real deployment would do (a 40-wide fault-features
  // model must not silently misread a 37-wide live stream).
  model_.kind = serve::ServingModel::Kind::kKernel;
  model_.kernel = server.net();
  model_.stdz = server.standardizer();
  model_.n_classes = server.config().n_classes;
  model_.validate_feature_width(assembler_.dim());
  features_.resize(model_.feature_dim());
  history_.reserve(config_.history_capacity);
}

void OnlinePredictor::on_window_close(std::int64_t window_index) {
  current_.window_index = window_index;
  current_.had_activity = client_mon_.cell(window_index, 0) != nullptr;
  assembler_.fill_window(window_index, features_.data());

  // The serving layer's N=1 case: one request, one batch.  Output vectors
  // live in current_ and are reused (resized, capacity warm) every window.
  request_.reset();
  request_.features = features_.data();
  request_.n_features = features_.size();
  serve::Request* rp = &request_;
  serve::predict_batch(model_, &rp, 1, scratch_);
  current_.predicted_class = request_.predicted_class;
  current_.probabilities = request_.probabilities;
  current_.server_scores = request_.server_scores;

  // Bounded history: plain append until the capacity is reached, then a
  // wrapping overwrite (vector assignment reuses each slot's capacity).
  Prediction* slot = nullptr;
  if (history_.size() < config_.history_capacity) {
    history_.push_back(current_);
    slot = &history_.back();
  } else {
    history_[next_slot_] = current_;
    slot = &history_[next_slot_];
    next_slot_ = (next_slot_ + 1) % config_.history_capacity;
  }
  ++history_total_;
  if (on_prediction_) on_prediction_(*slot);
}

}  // namespace qif::core
