#include "qif/core/training_server.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::core {

ml::TrainResult TrainingServer::fit(const monitor::TableView& train_ds) {
  if (train_ds.empty()) throw std::invalid_argument("cannot train on an empty dataset");
  const monitor::ViewRows rows(train_ds);
  return fit_rows(rows);
}

ml::TrainResult TrainingServer::fit_rows(const monitor::RowAccess& rows) {
  if (rows.empty()) throw std::invalid_argument("cannot train on an empty dataset");
  ml::KernelNetConfig net_cfg;
  net_cfg.per_server_dim = rows.dim();
  net_cfg.n_servers = rows.n_servers();
  net_cfg.n_classes = config_.n_classes;
  net_cfg.kernel_hidden = config_.kernel_hidden;
  net_cfg.head_hidden = config_.head_hidden;
  net_cfg.seed = config_.seed;
  net_ = ml::KernelNet(net_cfg);

  ml::TrainConfig tc = config_.train;
  tc.seed = sim::Rng::derive_seed(config_.seed, "train");
  const ml::Trainer trainer(tc);
  return trainer.train_rows(net_, stdz_, rows);
}

ml::ConfusionMatrix TrainingServer::evaluate(const monitor::TableView& test_ds) const {
  return ml::Trainer::evaluate(net_, stdz_, test_ds);
}

ml::ConfusionMatrix TrainingServer::evaluate_rows(const monitor::RowAccess& rows) const {
  return ml::Trainer::evaluate_rows(net_, stdz_, rows);
}

int TrainingServer::predict(std::vector<double> features) const {
  stdz_.transform(features);
  return net_.predict(ml::MatView(features.data(), 1, features.size()))[0];
}

std::vector<double> TrainingServer::predict_proba(std::vector<double> features) const {
  stdz_.transform(features);
  const ml::Matrix p = ml::SoftmaxXent::softmax(
      net_.forward_inference(ml::MatView(features.data(), 1, features.size())));
  return {p.row(0), p.row(0) + p.cols()};
}

std::vector<double> TrainingServer::server_scores(std::vector<double> features) const {
  stdz_.transform(features);
  return net_.server_scores(features);
}

void TrainingServer::save(std::ostream& os) const {
  os << "qif-model 1\n" << config_.n_classes << '\n';
  net_.save(os);
  stdz_.save(os);
}

void TrainingServer::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "qif-model") {
    throw std::runtime_error("not a qif model bundle");
  }
  if (!(is >> config_.n_classes) || config_.n_classes < 2) {
    throw std::runtime_error("model bundle: bad class count");
  }
  net_.load(is);
  stdz_.load(is);
}

}  // namespace qif::core
