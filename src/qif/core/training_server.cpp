#include "qif/core/training_server.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::core {

ml::TrainResult TrainingServer::fit(const monitor::TableView& train_ds) {
  if (train_ds.empty()) throw std::invalid_argument("cannot train on an empty dataset");
  const monitor::ViewRows rows(train_ds);
  return fit_rows(rows);
}

ml::TrainResult TrainingServer::fit_rows(const monitor::RowAccess& rows) {
  if (rows.empty()) throw std::invalid_argument("cannot train on an empty dataset");
  ml::KernelNetConfig net_cfg;
  net_cfg.per_server_dim = rows.dim();
  net_cfg.n_servers = rows.n_servers();
  net_cfg.n_classes = config_.n_classes;
  net_cfg.kernel_hidden = config_.kernel_hidden;
  net_cfg.head_hidden = config_.head_hidden;
  net_cfg.seed = config_.seed;
  net_ = ml::KernelNet(net_cfg);

  ml::TrainConfig tc = config_.train;
  tc.seed = sim::Rng::derive_seed(config_.seed, "train");
  const ml::Trainer trainer(tc);
  return trainer.train_rows(net_, stdz_, rows);
}

ml::ConfusionMatrix TrainingServer::evaluate(const monitor::TableView& test_ds) const {
  return ml::Trainer::evaluate(net_, stdz_, test_ds);
}

ml::ConfusionMatrix TrainingServer::evaluate_rows(const monitor::RowAccess& rows) const {
  return ml::Trainer::evaluate_rows(net_, stdz_, rows);
}

int TrainingServer::predict(std::vector<double> features) const {
  stdz_.transform(features);
  return net_.predict(ml::MatView(features.data(), 1, features.size()))[0];
}

std::vector<double> TrainingServer::predict_proba(std::vector<double> features) const {
  stdz_.transform(features);
  const ml::Matrix p = ml::SoftmaxXent::softmax(
      net_.forward_inference(ml::MatView(features.data(), 1, features.size())));
  return {p.row(0), p.row(0) + p.cols()};
}

std::vector<double> TrainingServer::server_scores(std::vector<double> features) const {
  stdz_.transform(features);
  return net_.server_scores(features);
}

void TrainingServer::save(std::ostream& os) const {
  os << "qif-model 1\n" << config_.n_classes << '\n';
  net_.save(os);
  stdz_.save(os);
}

void TrainingServer::validate_feature_width(int schema_dim) const {
  if (schema_dim != 0 && net_.config().per_server_dim != schema_dim) {
    throw std::runtime_error(
        "model/schema feature-width mismatch: model has " +
        std::to_string(net_.config().per_server_dim) +
        " features per server, serving schema has " + std::to_string(schema_dim));
  }
}

void TrainingServer::load(std::istream& is, int expected_dim) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "qif-model") {
    throw std::runtime_error("not a qif model bundle");
  }
  // Parse into locals first: a rejected bundle (parse error OR width
  // mismatch) must leave the currently deployed model untouched.
  int n_classes = 0;
  if (!(is >> n_classes) || n_classes < 2) {
    throw std::runtime_error("model bundle: bad class count");
  }
  ml::KernelNet net;
  ml::Standardizer stdz;
  net.load(is);
  stdz.load(is);
  if (expected_dim != 0 && net.config().per_server_dim != expected_dim) {
    throw std::runtime_error(
        "model/schema feature-width mismatch: model has " +
        std::to_string(net.config().per_server_dim) +
        " features per server, serving schema has " + std::to_string(expected_dim));
  }
  config_.n_classes = n_classes;
  net_ = std::move(net);
  stdz_ = std::move(stdz);
}

}  // namespace qif::core
