#include "qif/core/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "qif/core/scenario.hpp"

namespace qif::core {
namespace {

// Per-task op-count scale placing every standalone run in a comparable
// 8-30 simulated-second band.
double standard_scale(const std::string& workload) {
  if (workload == "ior-easy-read") return 3.0;
  if (workload == "ior-hard-read") return 1.0;
  if (workload == "mdt-hard-read") return 2.0;
  if (workload == "ior-easy-write") return 3.0;
  if (workload == "ior-hard-write") return 4.0;
  if (workload == "mdt-easy-write") return 8.0;
  if (workload == "mdt-hard-write") return 1.5;
  if (workload == "dlio-unet3d") return 4.0;
  if (workload == "dlio-bert") return 6.0;
  if (workload == "enzo") return 6.0;
  if (workload == "amrex") return 3.0;
  if (workload == "openpmd") return 1.0;
  return 1.0;
}

int scaled_cases(int base, double richness) {
  return std::max(1, static_cast<int>(std::lround(base * richness)));
}

monitor::Dataset run_campaign_for_target(const std::string& target,
                                         const std::vector<CaseSpec>& cases,
                                         const DatasetOptions& options) {
  CampaignConfig cc;
  cc.target_workload = target;
  cc.target_nodes = 2;
  cc.target_procs_per_node = 2;
  cc.target_scale = standard_scale(target);
  cc.cases = cases;
  cc.cluster = testbed_cluster_config(options.seed);
  cc.bin_thresholds = options.bin_thresholds;
  cc.min_ops_per_window = options.min_ops_per_window;
  cc.faults = options.faults;
  cc.mitigation = options.mitigation;
  CampaignResult result = options.runner ? options.runner(cc) : run_campaign(cc);
  if (options.on_result) options.on_result(target, result);
  if (options.verbose) {
    std::size_t windows = 0;
    std::size_t failed = 0;
    for (const auto& o : result.outcomes) {
      windows += o.windows;
      if (!o.ok()) ++failed;
    }
    std::printf("  campaign %-14s: %2zu cases, %4zu windows", target.c_str(),
                result.outcomes.size(), windows);
    if (failed > 0) std::printf(", %zu FAILED", failed);
    std::printf("\n");
    std::fflush(stdout);
  }
  return std::move(result.dataset);
}

}  // namespace

monitor::Dataset build_io500_dataset(const DatasetOptions& options) {
  const std::vector<std::string> noises = {"ior-easy-read", "ior-easy-write",
                                           "mdt-hard-write"};
  monitor::Dataset all;
  std::uint64_t seed = options.seed;
  for (const auto& target : workloads::io500_tasks()) {
    std::vector<CaseSpec> cases;
    const int reps = scaled_cases(1, options.richness);
    for (int r = 0; r < reps; ++r) {
      // Quiet runs provide the "no interference" class.
      cases.push_back({"", 0, 1.0, ++seed});
      for (const auto& noise : noises) {
        for (const int instances : {6, 15}) {
          cases.push_back({noise, instances, 1.0, ++seed});
        }
      }
    }
    all.append(run_campaign_for_target(target, cases, options));
  }
  return all;
}

monitor::Dataset build_dlio_dataset(const DatasetOptions& options) {
  monitor::Dataset all;
  DatasetOptions opts = options;
  // Loader I/O is bursty: a window often holds one or two sample reads,
  // and a single-op Level_degrade is label noise at the 2x boundary.
  opts.min_ops_per_window = std::max<std::size_t>(options.min_ops_per_window, 3);
  std::uint64_t seed = options.seed + 1000;
  for (const std::string target : {"dlio-unet3d", "dlio-bert"}) {
    std::vector<CaseSpec> cases;
    const int reps = scaled_cases(1, options.richness);
    for (int r = 0; r < reps; ++r) {
      // Loader think-time plus metadata-only or light background noise
      // rarely doubles I/O latency, so the class balance skews negative as
      // in the paper (~20% positive).
      for (std::uint64_t q = 0; q < 4; ++q) cases.push_back({"", 0, 1.0, ++seed});
      cases.push_back({"mdt-easy-write", 6, 1.0, ++seed});
      cases.push_back({"mdt-easy-write", 15, 1.0, ++seed});
      cases.push_back({"ior-easy-write", 2, 1.0, ++seed});
      cases.push_back({"ior-easy-read", 2, 1.0, ++seed});
      cases.push_back({"ior-easy-read", 8, 1.0, ++seed});
      cases.push_back({"ior-hard-read", 15, 1.0, ++seed});
    }
    all.append(run_campaign_for_target(target, cases, opts));
  }
  return all;
}

monitor::Dataset build_app_dataset(const std::string& app, const DatasetOptions& options) {
  // The paper's protocol: "each application was run once without
  // interference ... and then repeated three times with increasing amounts
  // of concurrent instances of IO500 launched on each of the other nodes".
  monitor::Dataset all;
  std::uint64_t seed = options.seed + 2000;
  const std::vector<std::string> noises = {"ior-easy-write", "ior-easy-read",
                                           "mdt-hard-write"};
  std::vector<CaseSpec> cases;
  const int reps = scaled_cases(2, options.richness);
  for (int r = 0; r < reps; ++r) {
    cases.push_back({"", 0, 1.0, ++seed});
    for (std::size_t n = 0; n < noises.size(); ++n) {
      for (const int instances : {5, 10, 15}) {
        cases.push_back({noises[n], instances, 1.0, ++seed});
      }
    }
  }
  all.append(run_campaign_for_target(app, cases, options));
  return all;
}

}  // namespace qif::core
