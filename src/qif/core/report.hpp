// Plain-text reporting helpers shared by the benches: aligned tables (the
// stand-in for the paper's tables/heatmaps) and small format utilities.
#pragma once

#include <string>
#include <vector>

namespace qif::core {

class TextTable {
 public:
  /// First row added is the header.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("2.72", "40.92").
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// "12.3 MiB/s"-style byte-rate formatting.
[[nodiscard]] std::string fmt_rate(double bytes_per_second);

}  // namespace qif::core
