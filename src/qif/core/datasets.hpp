// Standard training-data campaigns for the paper's three dataset families:
// IO500 (Figure 3a / Figure 4), DLIO (Figure 3b) and the real-application
// proxies AMReX / Enzo / OpenPMD (Figure 5).
//
// Scale note: the paper collected 11,638 (IO500) and 18,426 (DLIO) training
// windows over long testbed sessions; these campaigns generate a few
// thousand windows with the same class-balance character (IO500 majority
// positive, DLIO majority negative, OpenPMD small) so a full bench run
// stays in CPU-minutes.  `DatasetOptions::richness` scales the number of
// cases for users who want paper-sized datasets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qif/core/campaign.hpp"
#include "qif/monitor/features.hpp"

namespace qif::core {

/// How a dataset builder executes one campaign.  The default (a null
/// function) is the sequential core::run_campaign; exec::campaign_runner(N)
/// supplies a thread-pool-backed runner with bit-identical output.  The
/// hook keeps qif_core free of any dependency on qif_exec.
using CampaignRunFn = std::function<CampaignResult(const CampaignConfig&)>;

struct DatasetOptions {
  std::vector<double> bin_thresholds = {2.0};  ///< {2} binary; {2,5} 3-class
  double richness = 1.0;    ///< multiplies the number of campaign cases
  std::uint64_t seed = 42;
  bool verbose = false;     ///< print per-campaign progress to stdout
  /// Windows with fewer matched ops are dropped (Level_degrade over one or
  /// two ops is mostly noise; bursty loaders like DLIO need this).
  std::size_t min_ops_per_window = 1;
  CampaignRunFn runner;     ///< null = run campaigns sequentially
  /// Fault plan injected into every campaign's case runs (baselines stay
  /// healthy).  Empty = the historical healthy datasets.
  pfs::faults::FaultPlan faults;
  /// Mitigation policy armed on every campaign's case runs (baselines stay
  /// untouched).  Empty = the historical unmitigated datasets.
  ctrl::MitigationConfig mitigation;
  /// Called after each campaign finishes with the target workload's name
  /// and its full result (outcomes + dataset shard) — the CLI's mitigation
  /// study aggregates on-vs-off comparisons through this.
  std::function<void(const std::string& target, const CampaignResult& result)> on_result;
};

/// Windows from all 7 IO500 tasks under quiet/read/write/metadata noise at
/// two intensities.  Majority interference-positive, like the paper's
/// 8,647 / 2,991 split.
[[nodiscard]] monitor::Dataset build_io500_dataset(const DatasetOptions& options);

/// Windows from DLIO Unet3d + BERT loader runs.  Think-time structure makes
/// most windows negative, like the paper's 3,702 / 14,724 split.
[[nodiscard]] monitor::Dataset build_dlio_dataset(const DatasetOptions& options);

/// Windows for one application proxy ("amrex", "enzo", "openpmd"):
/// 1 quiet case plus runs with increasing amounts of concurrent IO500
/// interference, following the paper's real-application protocol.
/// OpenPMD's short metadata-bound runs yield few samples by construction.
[[nodiscard]] monitor::Dataset build_app_dataset(const std::string& app,
                                                 const DatasetOptions& options);

}  // namespace qif::core
