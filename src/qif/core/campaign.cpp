#include "qif/core/campaign.hpp"

#include <exception>
#include <map>
#include <utility>

#include "qif/trace/matcher.hpp"

namespace qif::core {
namespace {

workloads::JobSpec target_spec(const CampaignConfig& config, std::uint64_t seed) {
  workloads::JobSpec spec;
  spec.workload = config.target_workload;
  for (int n = 0; n < config.target_nodes; ++n) spec.nodes.push_back(n);
  spec.procs_per_node = config.target_procs_per_node;
  spec.job = 0;
  spec.seed = seed;
  spec.scale = config.target_scale;
  return spec;
}

std::vector<pfs::NodeId> interference_nodes(const CampaignConfig& config) {
  std::vector<pfs::NodeId> nodes;
  for (int n = config.target_nodes; n < config.cluster.n_client_nodes; ++n) {
    nodes.push_back(n);
  }
  return nodes;
}

}  // namespace

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

ScenarioConfig campaign_baseline_config(const CampaignConfig& config,
                                        std::uint64_t seed) {
  ScenarioConfig base;
  base.cluster = config.cluster;
  base.cluster.seed =
      sim::Rng::derive_seed(config.cluster.seed, "base" + std::to_string(seed));
  base.target = target_spec(config, seed);
  base.window = config.window;
  base.horizon = config.horizon;
  base.monitors = false;  // baseline only needs the trace
  return base;
}

ScenarioConfig campaign_case_config(const CampaignConfig& config, const CaseSpec& cs) {
  ScenarioConfig sc;
  sc.cluster = config.cluster;
  sc.cluster.seed = sim::Rng::derive_seed(
      config.cluster.seed, "case" + std::to_string(cs.seed) + cs.interference_workload);
  sc.target = target_spec(config, cs.seed);
  sc.window = config.window;
  sc.horizon = config.horizon;
  sc.monitors = true;
  if (!cs.interference_workload.empty()) {
    InterferenceSpec spec;
    spec.workload = cs.interference_workload;
    spec.nodes = interference_nodes(config);
    spec.instances = cs.instances;
    spec.scale = cs.intensity_scale;
    spec.seed = sim::Rng::derive_seed(cs.seed, "noise" + cs.interference_workload);
    sc.interference = spec;
  }
  return sc;
}

std::vector<std::uint64_t> campaign_baseline_seeds(const CampaignConfig& config) {
  std::vector<std::uint64_t> seeds;
  for (const CaseSpec& cs : config.cases) {
    bool seen = false;
    for (const std::uint64_t s : seeds) seen = seen || s == cs.seed;
    if (!seen) seeds.push_back(cs.seed);
  }
  return seeds;
}

CampaignBaseline run_campaign_baseline(const CampaignConfig& config,
                                       std::uint64_t seed) {
  CampaignBaseline baseline;
  try {
    baseline.trace = run_scenario(campaign_baseline_config(config, seed)).trace;
  } catch (const std::exception& e) {
    baseline.error = e.what();
  } catch (...) {
    baseline.error = "unknown error";
  }
  return baseline;
}

CaseResult join_case_result(const CampaignConfig& config, const CaseSpec& cs,
                            const trace::TraceLog& base_trace,
                            const ScenarioResult& run) {
  trace::LabelerConfig lbl_cfg;
  lbl_cfg.window = config.window;
  lbl_cfg.bin_thresholds = config.bin_thresholds;
  lbl_cfg.min_ops_per_window = config.min_ops_per_window;
  const trace::Labeler labeler(lbl_cfg);

  trace::MatchStats mstats;
  const auto matched = trace::TraceMatcher::match(base_trace, run.trace, /*job=*/0, &mstats);
  const auto labels = labeler.label(matched);

  CaseResult result;
  result.outcome.spec = cs;
  result.outcome.matched_ops = mstats.matched;
  result.outcome.windows = labels.size();
  result.outcome.target_finished = run.target_finished;

  result.shard.n_servers = run.n_servers;
  result.shard.dim = run.dim;
  double deg_sum = 0.0;
  for (const trace::WindowLabel& lbl : labels) {
    const auto it = run.window_features.find(lbl.window_index);
    if (it == run.window_features.end()) continue;  // no features captured
    monitor::Sample s;
    s.window_index = lbl.window_index;
    s.features = it->second;
    s.label = lbl.label;
    s.degradation = lbl.degradation;
    result.shard.samples.push_back(std::move(s));
    deg_sum += lbl.degradation;
  }
  // Average only over the windows actually summed: dividing by
  // labels.size() while skipping feature-less windows biased the headline
  // degradation number low.  labels.size() is still reported as `windows`.
  result.outcome.sampled_windows = result.shard.samples.size();
  result.outcome.mean_degradation =
      result.shard.samples.empty()
          ? 1.0
          : deg_sum / static_cast<double>(result.shard.samples.size());
  return result;
}

CaseResult run_campaign_case(const CampaignConfig& config, const CaseSpec& cs,
                             const CampaignBaseline& baseline) {
  CaseResult result;
  result.outcome.spec = cs;
  if (!baseline.error.empty()) {
    result.outcome.error = "baseline failed: " + baseline.error;
    return result;
  }
  try {
    const ScenarioResult run = run_scenario(campaign_case_config(config, cs));
    return join_case_result(config, cs, baseline.trace, run);
  } catch (const std::exception& e) {
    result.outcome.error = e.what();
  } catch (...) {
    result.outcome.error = "unknown error";
  }
  return result;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  std::map<std::uint64_t, CampaignBaseline> baselines;
  for (const std::uint64_t seed : campaign_baseline_seeds(config)) {
    baselines.emplace(seed, run_campaign_baseline(config, seed));
  }
  result.outcomes.reserve(config.cases.size());
  for (const CaseSpec& cs : config.cases) {
    CaseResult cr = run_campaign_case(config, cs, baselines.at(cs.seed));
    if (cr.outcome.ok()) result.dataset.append(cr.shard);
    result.outcomes.push_back(std::move(cr.outcome));
  }
  return result;
}

monitor::Dataset Campaign::run() {
  CampaignResult result = run_campaign(config_);
  outcomes_ = std::move(result.outcomes);
  return std::move(result.dataset);
}

}  // namespace qif::core
