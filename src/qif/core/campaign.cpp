#include "qif/core/campaign.hpp"

#include <map>

#include "qif/trace/matcher.hpp"

namespace qif::core {

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

workloads::JobSpec Campaign::target_spec(std::uint64_t seed) const {
  workloads::JobSpec spec;
  spec.workload = config_.target_workload;
  for (int n = 0; n < config_.target_nodes; ++n) spec.nodes.push_back(n);
  spec.procs_per_node = config_.target_procs_per_node;
  spec.job = 0;
  spec.seed = seed;
  spec.scale = config_.target_scale;
  return spec;
}

std::vector<pfs::NodeId> Campaign::interference_nodes() const {
  std::vector<pfs::NodeId> nodes;
  for (int n = config_.target_nodes; n < config_.cluster.n_client_nodes; ++n) {
    nodes.push_back(n);
  }
  return nodes;
}

monitor::Dataset Campaign::run() {
  monitor::Dataset dataset;
  outcomes_.clear();

  // Baselines depend only on the target seed; cache them across cases.
  std::map<std::uint64_t, trace::TraceLog> baselines;
  auto baseline_for = [&](std::uint64_t seed) -> const trace::TraceLog& {
    auto it = baselines.find(seed);
    if (it == baselines.end()) {
      ScenarioConfig base;
      base.cluster = config_.cluster;
      base.cluster.seed = sim::Rng::derive_seed(config_.cluster.seed,
                                                "base" + std::to_string(seed));
      base.target = target_spec(seed);
      base.window = config_.window;
      base.horizon = config_.horizon;
      base.monitors = false;  // baseline only needs the trace
      it = baselines.emplace(seed, run_scenario(base).trace).first;
    }
    return it->second;
  };

  trace::LabelerConfig lbl_cfg;
  lbl_cfg.window = config_.window;
  lbl_cfg.bin_thresholds = config_.bin_thresholds;
  lbl_cfg.min_ops_per_window = config_.min_ops_per_window;
  const trace::Labeler labeler(lbl_cfg);

  for (const CaseSpec& cs : config_.cases) {
    const trace::TraceLog& base_trace = baseline_for(cs.seed);

    ScenarioConfig sc;
    sc.cluster = config_.cluster;
    sc.cluster.seed = sim::Rng::derive_seed(config_.cluster.seed,
                                            "case" + std::to_string(cs.seed) +
                                                cs.interference_workload);
    sc.target = target_spec(cs.seed);
    sc.window = config_.window;
    sc.horizon = config_.horizon;
    sc.monitors = true;
    if (!cs.interference_workload.empty()) {
      InterferenceSpec spec;
      spec.workload = cs.interference_workload;
      spec.nodes = interference_nodes();
      spec.instances = cs.instances;
      spec.scale = cs.intensity_scale;
      spec.seed = sim::Rng::derive_seed(cs.seed, "noise" + cs.interference_workload);
      sc.interference = spec;
    }
    const ScenarioResult run = run_scenario(sc);

    trace::MatchStats mstats;
    const auto matched = trace::TraceMatcher::match(base_trace, run.trace, /*job=*/0, &mstats);
    const auto labels = labeler.label(matched);

    CaseOutcome outcome;
    outcome.spec = cs;
    outcome.matched_ops = mstats.matched;
    outcome.windows = labels.size();
    outcome.target_finished = run.target_finished;
    double deg_sum = 0.0;

    monitor::Dataset case_ds;
    case_ds.n_servers = run.n_servers;
    case_ds.dim = run.dim;
    for (const trace::WindowLabel& lbl : labels) {
      const auto it = run.window_features.find(lbl.window_index);
      if (it == run.window_features.end()) continue;  // no features captured
      monitor::Sample s;
      s.window_index = lbl.window_index;
      s.features = it->second;
      s.label = lbl.label;
      s.degradation = lbl.degradation;
      case_ds.samples.push_back(std::move(s));
      deg_sum += lbl.degradation;
    }
    outcome.mean_degradation =
        labels.empty() ? 1.0 : deg_sum / static_cast<double>(labels.size());
    outcomes_.push_back(outcome);
    dataset.append(case_ds);
  }
  return dataset;
}

}  // namespace qif::core
