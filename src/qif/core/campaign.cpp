#include "qif/core/campaign.hpp"

#include <exception>
#include <map>
#include <stdexcept>
#include <utility>

#include "qif/trace/matcher.hpp"

namespace qif::core {
namespace {

workloads::JobSpec target_spec(const CampaignConfig& config, std::uint64_t seed) {
  workloads::JobSpec spec;
  spec.workload = config.target_workload;
  for (int n = 0; n < config.target_nodes; ++n) spec.nodes.push_back(n);
  spec.procs_per_node = config.target_procs_per_node;
  spec.job = 0;
  spec.seed = seed;
  spec.scale = config.target_scale;
  return spec;
}

std::vector<pfs::NodeId> interference_nodes(const CampaignConfig& config) {
  std::vector<pfs::NodeId> nodes;
  for (int n = config.target_nodes; n < config.cluster.n_client_nodes; ++n) {
    nodes.push_back(n);
  }
  return nodes;
}

}  // namespace

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

ScenarioConfig campaign_baseline_config(const CampaignConfig& config,
                                        std::uint64_t seed) {
  ScenarioConfig base;
  base.cluster = config.cluster;
  base.cluster.seed =
      sim::Rng::derive_seed(config.cluster.seed, "base" + std::to_string(seed));
  base.target = target_spec(config, seed);
  base.window = config.window;
  base.horizon = config.horizon;
  base.monitors = false;  // baseline only needs the trace
  return base;
}

ScenarioConfig campaign_case_config(const CampaignConfig& config, const CaseSpec& cs) {
  ScenarioConfig sc;
  sc.cluster = config.cluster;
  sc.cluster.seed = sim::Rng::derive_seed(
      config.cluster.seed, "case" + std::to_string(cs.seed) + cs.interference_workload);
  sc.target = target_spec(config, cs.seed);
  sc.window = config.window;
  sc.horizon = config.horizon;
  sc.monitors = true;
  sc.faults = config.faults;  // cases run degraded; baselines stay healthy
  sc.mitigation = config.mitigation;  // likewise: controllers gate cases only
  if (!cs.interference_workload.empty()) {
    InterferenceSpec spec;
    spec.workload = cs.interference_workload;
    spec.nodes = interference_nodes(config);
    spec.instances = cs.instances;
    spec.scale = cs.intensity_scale;
    spec.seed = sim::Rng::derive_seed(cs.seed, "noise" + cs.interference_workload);
    sc.interference = spec;
  }
  return sc;
}

std::vector<std::uint64_t> campaign_baseline_seeds(const CampaignConfig& config) {
  std::vector<std::uint64_t> seeds;
  for (const CaseSpec& cs : config.cases) {
    bool seen = false;
    for (const std::uint64_t s : seeds) seen = seen || s == cs.seed;
    if (!seen) seeds.push_back(cs.seed);
  }
  return seeds;
}

CampaignBaseline run_campaign_baseline(const CampaignConfig& config,
                                       std::uint64_t seed) {
  CampaignBaseline baseline;
  try {
    baseline.trace = run_scenario(campaign_baseline_config(config, seed)).trace;
  } catch (const std::exception& e) {
    baseline.error = e.what();
  } catch (...) {
    baseline.error = "unknown error";
  }
  return baseline;
}

CaseResult join_case_result(const CampaignConfig& config, const CaseSpec& cs,
                            const trace::TraceLog& base_trace,
                            const ScenarioResult& run) {
  trace::LabelerConfig lbl_cfg;
  lbl_cfg.window = config.window;
  lbl_cfg.bin_thresholds = config.bin_thresholds;
  lbl_cfg.min_ops_per_window = config.min_ops_per_window;
  const trace::Labeler labeler(lbl_cfg);

  trace::MatchStats mstats;
  const auto matched = trace::TraceMatcher::match(base_trace, run.trace, /*job=*/0, &mstats);
  const auto labels = labeler.label(matched);

  CaseResult result;
  result.outcome.spec = cs;
  result.outcome.matched_ops = mstats.matched;
  result.outcome.windows = labels.size();
  result.outcome.target_finished = run.target_finished;
  result.outcome.victim_p99_ms = ctrl::Mitigator::victim_p99_ms(run.trace);
  result.outcome.throttle_waits = run.ctrl.throttle_waits;
  result.outcome.throttled_bytes = run.ctrl.throttled_bytes;
  result.outcome.throttle_delay_s = run.ctrl.throttle_delay_s;
  result.outcome.mean_admission_level = run.ctrl.mean_admission_level;

  if (run.n_servers > 0) {
    result.shard.set_shape(run.n_servers, run.dim);
    result.shard.reserve(labels.size());
  }
  double deg_sum = 0.0;
  for (const trace::WindowLabel& lbl : labels) {
    // The scenario emits windows in ascending order, so the lookup is a
    // binary search over the window_index column.
    const std::size_t pos = run.window_features.find_window_sorted(lbl.window_index);
    if (pos == monitor::FeatureTable::npos) continue;  // no features captured
    result.shard.append_row(lbl.window_index, lbl.label, lbl.degradation,
                            run.window_features.row(pos));
    deg_sum += lbl.degradation;
  }
  // Average only over the windows actually summed: dividing by
  // labels.size() while skipping feature-less windows biased the headline
  // degradation number low.  labels.size() is still reported as `windows`.
  result.outcome.sampled_windows = result.shard.size();
  result.outcome.mean_degradation =
      result.shard.empty() ? 1.0
                           : deg_sum / static_cast<double>(result.shard.size());
  return result;
}

CaseResult run_campaign_case(const CampaignConfig& config, const CaseSpec& cs,
                             const CampaignBaseline& baseline) {
  CaseResult result;
  result.outcome.spec = cs;
  if (!baseline.error.empty()) {
    result.outcome.error = "baseline failed: " + baseline.error;
    return result;
  }
  try {
    const ScenarioResult run = run_scenario(campaign_case_config(config, cs));
    return join_case_result(config, cs, baseline.trace, run);
  } catch (const std::exception& e) {
    result.outcome.error = e.what();
  } catch (...) {
    result.outcome.error = "unknown error";
  }
  return result;
}

CampaignResult stitch_case_results(std::vector<CaseResult> cases) {
  CampaignResult result;
  // Reserve-once block assembly: size the table from the shards, adopt the
  // first successful shard's shape, then append each shard as one block
  // copy.  The whole stitch is O(shards) heap allocations, independent of
  // how many windows the campaign produced.
  std::size_t total_rows = 0;
  for (const CaseResult& cr : cases) {
    if (!cr.outcome.ok()) continue;
    total_rows += cr.shard.size();
    if (result.dataset.n_servers() == 0 && cr.shard.n_servers() != 0) {
      result.dataset.set_shape(cr.shard.n_servers(), cr.shard.dim());
    }
  }
  result.dataset.reserve(total_rows);
  result.outcomes.reserve(cases.size());
  for (CaseResult& cr : cases) {
    if (cr.outcome.ok()) result.dataset.append(cr.shard);
    result.outcomes.push_back(std::move(cr.outcome));
  }
  return result;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  std::map<std::uint64_t, CampaignBaseline> baselines;
  for (const std::uint64_t seed : campaign_baseline_seeds(config)) {
    baselines.emplace(seed, run_campaign_baseline(config, seed));
  }
  std::vector<CaseResult> cases;
  cases.reserve(config.cases.size());
  for (const CaseSpec& cs : config.cases) {
    cases.push_back(run_campaign_case(config, cs, baselines.at(cs.seed)));
  }
  return stitch_case_results(std::move(cases));
}

MitigationStudy run_mitigation_study(const CampaignConfig& config) {
  if (config.mitigation.empty()) {
    throw std::invalid_argument(
        "run_mitigation_study: config.mitigation is off; nothing to compare");
  }
  // Baselines depend on neither faults nor mitigation; run each seed's once
  // and share it between the twins.
  std::map<std::uint64_t, CampaignBaseline> baselines;
  for (const std::uint64_t seed : campaign_baseline_seeds(config)) {
    baselines.emplace(seed, run_campaign_baseline(config, seed));
  }
  CampaignConfig off_config = config;
  off_config.mitigation = ctrl::MitigationConfig{};
  const auto run_side = [&baselines](const CampaignConfig& cc) {
    std::vector<CaseResult> cases;
    cases.reserve(cc.cases.size());
    for (const CaseSpec& cs : cc.cases) {
      cases.push_back(run_campaign_case(cc, cs, baselines.at(cs.seed)));
    }
    return stitch_case_results(std::move(cases));
  };
  MitigationStudy study;
  study.off = run_side(off_config);
  study.on = run_side(config);
  return study;
}

monitor::Dataset Campaign::run() {
  CampaignResult result = run_campaign(config_);
  outcomes_ = std::move(result.outcomes);
  return std::move(result.dataset);
}

}  // namespace qif::core
