#include "qif/monitor/server_monitor.hpp"

#include <cassert>

namespace qif::monitor {

ServerMonitor::ServerMonitor(pfs::Cluster& cluster, sim::SimDuration window,
                             sim::SimDuration sample_period)
    : cluster_(cluster),
      window_(window),
      sample_period_(sample_period),
      samples_per_window_(window / sample_period) {
  assert(window % sample_period == 0 && "window must be a multiple of the sample period");
  const auto n = static_cast<std::size_t>(cluster_.n_servers());
  prev_counters_.resize(n);
  last_sample_.resize(n);
  for (int s = 0; s < cluster_.n_servers(); ++s) {
    prev_counters_[static_cast<std::size_t>(s)] = cluster_.server_counters(s);
  }
  if (cluster_.lane_mode()) {
    // One sampling chain per server, on the engine of the lane that owns
    // it.  A server's counters are thus only read from the lane whose
    // events mutate them; prev_counters_/last_sample_ are shared vectors
    // but every slot belongs to exactly one lane.  Each chain ticks under
    // its server's entity context so the tick keys — and the tick-vs-
    // workload interleaving at exact sample instants — do not depend on
    // the partition.
    for (int s = 0; s < cluster_.n_servers(); ++s) {
      auto ss = std::make_unique<ServerSampler>();
      ss->server = s;
      const bool is_ost = s < cluster_.n_osts();
      ss->ctx = cluster_.ctx_of_port(is_ost ? cluster_.oss_port(s) : cluster_.mds_port());
      ss->sim = is_ost ? &cluster_.sim_for_ost(s) : &cluster_.lanes()->meta();
      ServerSampler* raw = ss.get();
      ss->sampler = std::make_unique<sim::Sampler>(
          *ss->sim, sample_period_,
          [this, raw](std::uint64_t t) { on_server_tick(*raw, t); });
      server_samplers_.push_back(std::move(ss));
    }
  } else {
    sampler_ = std::make_unique<sim::Sampler>(cluster_.sim(), sample_period_,
                                              [this](std::uint64_t t) { on_tick(t); });
  }
}

void ServerMonitor::start() {
  if (sampler_) sampler_->start();
  for (auto& ss : server_samplers_) {
    // Setup-time scheduling: the chain's first tick must be minted under
    // the server's entity context so its key is partition-independent.
    ss->sim->set_context(ss->ctx);
    ss->sampler->start();
  }
}

void ServerMonitor::stop() {
  if (sampler_) sampler_->stop();
  // Merge every server's private window aggregates into the shared map (the
  // run is over; nothing samples concurrently anymore).  Idempotent: the
  // per-server maps are drained by the merge.
  for (auto& ss : server_samplers_) {
    ss->sampler->stop();
    for (auto& [w, cell] : ss->windows) {
      auto it = windows_.find(w);
      if (it == windows_.end()) {
        it = windows_
                 .emplace(w, std::vector<ServerWindow>(
                                 static_cast<std::size_t>(cluster_.n_servers())))
                 .first;
      }
      it->second[static_cast<std::size_t>(ss->server)] = cell;
    }
    ss->windows.clear();
    ss->cached_window = -1;
    ss->cached_cell = nullptr;
  }
}

void ServerMonitor::sample_into(int server, ServerWindow& cell) {
  const auto cur = cluster_.server_counters(server);
  auto& prev = prev_counters_[static_cast<std::size_t>(server)];
  auto& agg = cell.metrics;
  for (int m = 0; m < MetricSchema::kRawServerMetrics; ++m) {
    double delta = static_cast<double>(cur[static_cast<std::size_t>(m)] -
                                       prev[static_cast<std::size_t>(m)]);
    // Tick-valued metrics are reported in seconds so feature magnitudes
    // stay comparable across the vector.
    if (m >= 7) delta *= 1e-9;
    agg[static_cast<std::size_t>(m)].add(delta);
    last_sample_[static_cast<std::size_t>(server)][static_cast<std::size_t>(m)] = delta;
  }
  prev = cur;
}

void ServerMonitor::on_tick(std::uint64_t tick) {
  // Sample at t = k * period closes the second (k-1)*period .. k*period,
  // which belongs to window (k-1) / samples_per_window.
  const std::int64_t w =
      static_cast<std::int64_t>(tick - 1) / samples_per_window_;
  if (w != cached_window_ || cached_cells_ == nullptr) {
    auto it = windows_.find(w);
    if (it == windows_.end()) {
      it = windows_.emplace(w, std::vector<ServerWindow>(
                                   static_cast<std::size_t>(cluster_.n_servers())))
               .first;
    }
    cached_window_ = w;
    cached_cells_ = &it->second;
  }
  for (int s = 0; s < cluster_.n_servers(); ++s) {
    sample_into(s, (*cached_cells_)[static_cast<std::size_t>(s)]);
  }
}

void ServerMonitor::on_server_tick(ServerSampler& ss, std::uint64_t tick) {
  const std::int64_t w =
      static_cast<std::int64_t>(tick - 1) / samples_per_window_;
  if (w != ss.cached_window || ss.cached_cell == nullptr) {
    ss.cached_window = w;
    ss.cached_cell = &ss.windows[w];
  }
  sample_into(ss.server, *ss.cached_cell);
}

const std::vector<ServerWindow>* ServerMonitor::window_cells(
    std::int64_t window_index) const {
  const auto it = windows_.find(window_index);
  return it == windows_.end() ? nullptr : &it->second;
}

const ServerWindow* ServerMonitor::window_data(std::int64_t window_index, int server) const {
  const std::vector<ServerWindow>* cells = window_cells(window_index);
  return cells == nullptr ? nullptr : &(*cells)[static_cast<std::size_t>(server)];
}

std::vector<std::int64_t> ServerMonitor::window_indices() const {
  std::vector<std::int64_t> out;
  out.reserve(windows_.size());
  for (const auto& [w, v] : windows_) {
    (void)v;
    out.push_back(w);
  }
  return out;
}

void ServerMonitor::fill_features(std::int64_t window_index, int server, double* out) const {
  fill_features_from(window_data(window_index, server), out);
}

void ServerMonitor::fill_features_from(const ServerWindow* sw, double* out) {
  for (int m = 0; m < MetricSchema::kRawServerMetrics; ++m) {
    const int base = m * MetricSchema::kAggregatesPerMetric;
    if (sw == nullptr) {
      out[base] = out[base + 1] = out[base + 2] = 0.0;
    } else {
      const auto& st = sw->metrics[static_cast<std::size_t>(m)];
      out[base] = st.sum();
      out[base + 1] = st.mean();
      out[base + 2] = st.stddev();
    }
  }
}

std::array<double, MetricSchema::kRawServerMetrics> ServerMonitor::last_sample(
    int server) const {
  return last_sample_[static_cast<std::size_t>(server)];
}

}  // namespace qif::monitor
