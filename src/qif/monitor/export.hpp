// Trace and dataset export.
//
// The paper's artifact ships collected data as text files consumed by
// Python scripts; these exporters provide the same interop surface:
//  * FeatureTable -> CSV with a header naming every per-server feature
//    (the Darshan-DXT-flavoured op dump lives in qif/trace/dxt.hpp),
// plus a reader.  CSV is the *interop* path; the native dataset
// artifact is the versioned binary `.qds` format below, which round-trips
// the columnar FeatureTable byte-exactly and loads in O(read).
//
// .qds layout (all integers little-endian on every supported target —
// values are written in native byte order and the format is not intended
// as a cross-endian interchange file).  Both versions share the header
// field offsets; version 2 is the default writer output.
//
// Common header:
//
//   offset  size  field
//   0       8     magic "qif.qds\n"
//   8       4     u32 version (1 or 2)
//   12      8     u64 metric-schema layout hash (0 when dim is custom)
//   20      4     i32 n_servers
//   24      4     i32 dim
//   28      8     u64 row count N
//
// Version 1 (legacy, still read and writable via QdsWriteOptions):
//
//   36      8N    i64 window_index column
//   ...     4N    i32 label column
//   ...     8N    f64 degradation column
//   ...     8NW   f64 feature block, row-major, W = n_servers*dim
//   tail    8     u64 FNV-1a checksum (folded 8 bytes at a time, byte-wise
//                 tail) over everything after the magic
//
// Version 2 (block format — mmap-friendly and optionally compressed):
//
//   36      4     u32 flags (bit 0: at least one block is compressed;
//                 all other bits reserved, must be zero)
//   40      8     u64 header checksum: FNV-1a over bytes [8, 40)
//   48      ...   4 column blocks, in order: window_index (i64),
//                 label (i32), degradation (f64), features (f64)
//
// Each block is a 32-byte header followed by an 8-byte-aligned payload:
//
//   +0      4     u32 kind (0..3, must match the block's position)
//   +4      4     u32 codec (0 = raw, 1 = qlz; see qlz.hpp)
//   +8      8     u64 raw (uncompressed) byte count — must equal the
//                 size implied by the file header's N and shape
//   +16     8     u64 stored (on-disk) byte count
//   +24     8     u64 block checksum: FNV-1a over the 24 header bytes
//                 above, then the stored payload bytes
//   +32     ...   payload, zero-padded to the next 8-byte boundary
//                 (pad bytes are verified zero on read)
//
// The 48-byte file header and 32-byte block headers keep every raw
// payload 8-aligned relative to the file start, so a page-aligned mmap of
// an uncompressed v2 file can hand out column pointers directly — the
// zero-copy path behind map_dataset_qds() in qds_file.hpp.  The reader
// checks the exact file size against the declared blocks, so truncation
// and trailing garbage are rejected before any allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "qif/ctrl/mitigator.hpp"
#include "qif/monitor/features.hpp"
#include "qif/pfs/types.hpp"

namespace qif::monitor {

// The DXT trace dump moved to qif/trace/dxt.hpp (write_dxt/read_dxt): one
// strict parser shared by this export surface and trace replay.

/// Writes the dataset as CSV: window_index, label, degradation, then one
/// column per (server, feature) named like "s0.cli_n_read".
void write_dataset_csv(std::ostream& os, const Dataset& ds);

/// Reads a CSV produced by write_dataset_csv.  Throws std::runtime_error
/// on malformed cells (strict from_chars/strtod parsing — garbage no
/// longer decays to 0), inconsistent width, or a bad header.
[[nodiscard]] Dataset read_dataset_csv(std::istream& is);

/// Writes a mitigation report's per-window controller columns as CSV:
/// window, throttle_waits, throttled_bytes, throttle_delay_s,
/// mean_admission_level, flagged_controllers, victim_p99_ms — one row per
/// monitor window the controllers (or the victim job) touched.
void write_ctrl_windows_csv(std::ostream& os, const ctrl::MitigationReport& report);

/// Per-block storage codec for `.qds` version 2.
enum class QdsCodec : std::uint32_t {
  kRaw = 0,
  kQlz = 1,  // LZ4-style block compression, see qlz.hpp
};

/// Writer knobs for write_dataset_qds.  `codec` is a *request*: each block
/// is stored raw whenever compression would not make it strictly smaller,
/// so incompressible feature blocks never pay an expansion penalty.
/// Version 1 ignores the codec (the legacy layout has no block framing).
struct QdsWriteOptions {
  std::uint32_t version = 2;
  QdsCodec codec = QdsCodec::kRaw;
};

/// Writes the versioned binary `.qds` dataset (see format table above).
/// Throws std::runtime_error when the stream fails.
void write_dataset_qds(std::ostream& os, const Dataset& ds,
                       const QdsWriteOptions& options = {});

/// Reads a `.qds` dataset (either version).  Throws std::runtime_error on
/// bad magic, unsupported version, schema-hash mismatch, truncation,
/// trailing garbage, or a checksum mismatch.
[[nodiscard]] Dataset read_dataset_qds(std::istream& is);

/// Fully-validated view over a complete in-memory `.qds` image.  When the
/// image is version 2 with every block stored raw (and the base pointer is
/// suitably aligned, which any mmap is), the column pointers alias the
/// image directly and `zero_copy` is true; otherwise the pointers are null
/// and the caller must materialize via parse_dataset_qds.
struct QdsImageView {
  std::uint32_t version = 0;
  int n_servers = 0;
  int dim = 0;
  std::size_t rows = 0;
  bool zero_copy = false;
  const std::int64_t* window_index = nullptr;
  const std::int32_t* label = nullptr;
  const double* degradation = nullptr;
  const double* features = nullptr;
};

/// Validates every byte of an in-memory `.qds` image (header, shape,
/// per-block checksums, padding, exact size) and reports whether it can be
/// consumed in place.  Throws std::runtime_error with the same taxonomy as
/// read_dataset_qds — this *is* the reader's validation pass.
[[nodiscard]] QdsImageView inspect_dataset_qds(const char* data, std::size_t n);

/// Materializes an owned Dataset from a complete in-memory `.qds` image
/// (decompressing blocks as needed).  Same validation as inspect.
[[nodiscard]] Dataset parse_dataset_qds(const char* data, std::size_t n);

/// True when the 8 bytes at `bytes` are the `.qds` magic.
[[nodiscard]] bool is_qds_magic(const char* bytes, std::size_t n);

/// Whole-buffer checksum in the format's hash (word-folded FNV-1a).  Used
/// by the `.qdm` manifest to pin each shard file's exact bytes.
[[nodiscard]] std::uint64_t qds_image_checksum(const void* data, std::size_t n);

/// Sniffs the stream's leading bytes and dispatches to the `.qds` or CSV
/// reader.  Requires a seekable stream (files, stringstreams).  An empty
/// or shorter-than-magic stream throws a dedicated "empty/truncated
/// dataset" error instead of falling through to the CSV parser.
[[nodiscard]] Dataset read_dataset_auto(std::istream& is);

}  // namespace qif::monitor
