// Trace and dataset export.
//
// The paper's artifact ships collected data as text files consumed by
// Python scripts; these exporters provide the same interop surface:
//  * TraceLog -> a Darshan-DXT-flavoured text dump (one op per line),
//  * Dataset  -> CSV with a header naming every per-server feature,
// plus a CSV reader so externally produced window datasets can be trained
// on with the same TrainingServer.
#pragma once

#include <iosfwd>
#include <string>

#include "qif/monitor/features.hpp"
#include "qif/pfs/types.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::monitor {

/// Writes one op per line:
///   job rank op_index type offset bytes start_ns end_ns targets...
/// with a `# DXT` comment header.  Stable, diffable, grep-friendly.
void write_dxt(std::ostream& os, const trace::TraceLog& log);

/// Reads a dump produced by write_dxt.  Throws std::runtime_error on
/// malformed input.
[[nodiscard]] trace::TraceLog read_dxt(std::istream& is);

/// Writes the dataset as CSV: window_index, label, degradation, then one
/// column per (server, feature) named like "s0.cli_n_read".
void write_dataset_csv(std::ostream& os, const Dataset& ds);

/// Reads a CSV produced by write_dataset_csv.  Throws std::runtime_error
/// on malformed input or inconsistent width.
[[nodiscard]] Dataset read_dataset_csv(std::istream& is);

}  // namespace qif::monitor
