// Trace and dataset export.
//
// The paper's artifact ships collected data as text files consumed by
// Python scripts; these exporters provide the same interop surface:
//  * TraceLog -> a Darshan-DXT-flavoured text dump (one op per line),
//  * FeatureTable -> CSV with a header naming every per-server feature,
// plus readers for both.  CSV is the *interop* path; the native dataset
// artifact is the versioned binary `.qds` format below, which round-trips
// the columnar FeatureTable byte-exactly and loads in O(read).
//
// .qds layout (all integers little-endian on every supported target —
// values are written in native byte order and the format is not intended
// as a cross-endian interchange file):
//
//   offset  size  field
//   0       8     magic "qif.qds\n"
//   8       4     u32 version (currently 1)
//   12      8     u64 metric-schema layout hash (0 when dim is custom)
//   20      4     i32 n_servers
//   24      4     i32 dim
//   28      8     u64 row count N
//   36      8N    i64 window_index column
//   ...     4N    i32 label column
//   ...     8N    f64 degradation column
//   ...     8NW   f64 feature block, row-major, W = n_servers*dim
//   tail    8     u64 FNV-1a checksum (folded 8 bytes at a time, byte-wise
//                 tail) over everything after the magic
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "qif/monitor/features.hpp"
#include "qif/pfs/types.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::monitor {

/// Writes one op per line:
///   job rank op_index type offset bytes start_ns end_ns targets...
/// with a `# DXT` comment header.  Stable, diffable, grep-friendly.
void write_dxt(std::ostream& os, const trace::TraceLog& log);

/// Reads a dump produced by write_dxt.  Throws std::runtime_error on
/// malformed input (including trailing garbage on a line).
[[nodiscard]] trace::TraceLog read_dxt(std::istream& is);

/// Writes the dataset as CSV: window_index, label, degradation, then one
/// column per (server, feature) named like "s0.cli_n_read".
void write_dataset_csv(std::ostream& os, const Dataset& ds);

/// Reads a CSV produced by write_dataset_csv.  Throws std::runtime_error
/// on malformed cells (strict from_chars/strtod parsing — garbage no
/// longer decays to 0), inconsistent width, or a bad header.
[[nodiscard]] Dataset read_dataset_csv(std::istream& is);

/// Writes the versioned binary `.qds` dataset (see format table above).
/// Throws std::runtime_error when the stream fails.
void write_dataset_qds(std::ostream& os, const Dataset& ds);

/// Reads a `.qds` dataset.  Throws std::runtime_error on bad magic,
/// unsupported version, schema-hash mismatch, truncation, or a checksum
/// mismatch.
[[nodiscard]] Dataset read_dataset_qds(std::istream& is);

/// True when the 8 bytes at `bytes` are the `.qds` magic.
[[nodiscard]] bool is_qds_magic(const char* bytes, std::size_t n);

/// Sniffs the stream's leading bytes and dispatches to the `.qds` or CSV
/// reader.  Requires a seekable stream (files, stringstreams).
[[nodiscard]] Dataset read_dataset_auto(std::istream& is);

}  // namespace qif::monitor
