// Feature schema for the per-server vectors.
//
// Each monitored server (every OST, then the MDT) contributes one vector
// per time window, laid out as:
//
//   [ client-side features targeting this server (10)
//   | client fault-path features (3, only on fault-injected runs)
//   | server-side window aggregates: sum, mean, std of each of the 9
//     once-per-second raw counters (27) ]
//
// for a total of 37 features (40 with fault injection).  The layout is
// identical for every server — the contract the paper's kernel-based
// network relies on ("applies the same dense network to each of the
// server's vectors").
//
// The fault block (cli_retries / cli_timeouts / cli_failed_ops) exists only
// when a run carries a non-empty FaultPlan: healthy runs keep the exact
// 37-wide layout (and layout hash) they always had, so pre-fault `.qds`
// and CSV artifacts stay byte-identical and loadable.
//
// Feature groups are tagged so the feature-ablation bench can zero out a
// whole group (client, I/O-speed, device, queue) and measure the damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qif::monitor {

/// Table II grouping plus the client-side group from §III-A.
enum class FeatureGroup : std::uint8_t {
  kClient = 0,   ///< client-side monitor metrics (paper §III-A)
  kIoSpeed,      ///< delivered read/write completions (Table II row 1)
  kDevice,       ///< disk sector counters (Table II row 2)
  kQueue,        ///< read/write queue metrics (Table II row 3)
};

struct FeatureInfo {
  std::string name;
  FeatureGroup group;
};

class MetricSchema {
 public:
  static constexpr int kClientFeatures = 10;
  static constexpr int kFaultFeatures = 3;  // retries, timeouts, failed ops
  static constexpr int kRawServerMetrics = 9;
  static constexpr int kAggregatesPerMetric = 3;  // sum, mean, std
  static constexpr int kServerFeatures = kRawServerMetrics * kAggregatesPerMetric;
  static constexpr int kPerServerDim = kClientFeatures + kServerFeatures;
  static constexpr int kPerServerDimFaults = kPerServerDim + kFaultFeatures;

  explicit MetricSchema(bool with_fault_features = false);

  [[nodiscard]] int dim() const { return static_cast<int>(features_.size()); }
  [[nodiscard]] bool with_fault_features() const { return with_fault_features_; }
  [[nodiscard]] const std::vector<FeatureInfo>& features() const { return features_; }
  [[nodiscard]] const FeatureInfo& at(int i) const { return features_[static_cast<std::size_t>(i)]; }

  /// Indices of all features in a group (for ablation masking).
  [[nodiscard]] std::vector<int> group_indices(FeatureGroup g) const;

  /// Names of the 9 raw per-second server counters, in cluster order.
  [[nodiscard]] static const std::vector<std::string>& raw_server_metric_names();

  /// FNV-1a hash over every feature's name and group, in layout order.
  /// Stamped into `.qds` dataset headers so a file written against a
  /// different metric layout is rejected at load instead of silently
  /// training on permuted columns.
  [[nodiscard]] std::uint64_t layout_hash() const;

 private:
  std::vector<FeatureInfo> features_;
  bool with_fault_features_ = false;
};

const char* group_name(FeatureGroup g);

}  // namespace qif::monitor
