#include "qif/monitor/qlz.hpp"

#include <cstring>
#include <stdexcept>

namespace qif::monitor {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr int kHashBits = 13;
constexpr std::size_t kMaxOffset = 0xffff;

[[nodiscard]] std::uint32_t load32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] std::uint32_t hash32(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("qlz: ") + what);
}

/// Emits one sequence: `lit_n` literals from `lit`, then (unless this is
/// the terminal literals-only sequence, `match_n == 0`) a match of
/// `match_n >= kMinMatch` bytes at back-`offset`.  Returns false when the
/// output capacity would be exceeded.
bool emit_sequence(const unsigned char* lit, std::size_t lit_n, std::size_t offset,
                   std::size_t match_n, unsigned char* dst, std::size_t dst_cap,
                   std::size_t& out) {
  const std::size_t lit_token = lit_n < 15 ? lit_n : 15;
  const std::size_t match_extra = match_n == 0 ? 0 : match_n - kMinMatch;
  const std::size_t match_token = match_n == 0 ? 0 : (match_extra < 15 ? match_extra : 15);
  // Worst-case byte count for this sequence: token + length extensions +
  // literals + offset.
  std::size_t need = 1 + lit_n + (lit_n >= 15 ? 1 + (lit_n - 15) / 255 : 0);
  if (match_n != 0) need += 2 + (match_extra >= 15 ? 1 + (match_extra - 15) / 255 : 0);
  if (out + need > dst_cap) return false;

  dst[out++] = static_cast<unsigned char>((lit_token << 4) | match_token);
  if (lit_token == 15) {
    std::size_t rest = lit_n - 15;
    while (rest >= 255) {
      dst[out++] = 255;
      rest -= 255;
    }
    dst[out++] = static_cast<unsigned char>(rest);
  }
  std::memcpy(dst + out, lit, lit_n);
  out += lit_n;
  if (match_n == 0) return true;
  dst[out++] = static_cast<unsigned char>(offset & 0xff);
  dst[out++] = static_cast<unsigned char>((offset >> 8) & 0xff);
  if (match_token == 15) {
    std::size_t rest = match_extra - 15;
    while (rest >= 255) {
      dst[out++] = 255;
      rest -= 255;
    }
    dst[out++] = static_cast<unsigned char>(rest);
  }
  return true;
}

}  // namespace

std::size_t qlz_max_compressed_size(std::size_t n) {
  // One terminal literals-only sequence: token + ceil((n-15)/255)+1
  // extension bytes + the literals themselves.
  return n + n / 255 + 16;
}

std::size_t qlz_compress(const void* src_v, std::size_t n, void* dst_v,
                         std::size_t dst_cap) {
  const auto* src = static_cast<const unsigned char*>(src_v);
  auto* dst = static_cast<unsigned char*>(dst_v);
  std::size_t out = 0;

  if (n < kMinMatch + 1) {
    return emit_sequence(src, n, 0, 0, dst, dst_cap, out) ? out : 0;
  }

  // Greedy single-probe hash chain over 4-byte windows.  Positions near
  // the end are never match anchors: the last kMinMatch bytes must be
  // emitted as literals so the decompressor's terminal-sequence rule holds.
  std::uint32_t table[1u << kHashBits];
  std::memset(table, 0, sizeof table);  // 0 = "empty" (position 0 never probed first)

  const std::size_t last_anchor = n - kMinMatch;  // exclusive upper bound for matches
  std::size_t pos = 0;
  std::size_t lit_start = 0;
  while (pos < last_anchor) {
    const std::uint32_t h = hash32(load32(src + pos));
    const std::size_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0 && pos - cand <= kMaxOffset && load32(src + cand) == load32(src + pos)) {
      // Extend the match, stopping short of the mandatory literal tail
      // (the final kMinMatch bytes must be emitted as literals).
      const std::size_t limit = last_anchor - pos;
      std::size_t len = kMinMatch;
      while (len < limit && src[cand + len] == src[pos + len]) ++len;
      if (len <= limit && len >= kMinMatch) {
        if (!emit_sequence(src + lit_start, pos - lit_start, pos - cand, len, dst,
                           dst_cap, out)) {
          return 0;
        }
        pos += len;
        lit_start = pos;
        continue;
      }
    }
    ++pos;
  }
  // Terminal literals-only sequence (always at least kMinMatch bytes).
  if (!emit_sequence(src + lit_start, n - lit_start, 0, 0, dst, dst_cap, out)) return 0;
  return out;
}

void qlz_decompress(const void* src_v, std::size_t n, void* dst_v, std::size_t raw_n) {
  const auto* src = static_cast<const unsigned char*>(src_v);
  auto* dst = static_cast<unsigned char*>(dst_v);
  std::size_t in = 0;
  std::size_t out = 0;

  if (raw_n == 0) {
    if (n != 1 || src[0] != 0) fail("empty stream must be a single zero token");
    return;
  }

  while (true) {
    if (in >= n) fail("truncated stream: missing token");
    const unsigned token = src[in++];
    // Literals.
    std::size_t lit = token >> 4;
    if (lit == 15) {
      unsigned char ext;
      do {
        if (in >= n) fail("truncated literal length");
        ext = src[in++];
        lit += ext;
        if (lit > raw_n) fail("literal run exceeds declared size");
      } while (ext == 255);
    }
    if (in + lit > n) fail("literal run exceeds stream");
    if (out + lit > raw_n) fail("output overrun on literals");
    std::memcpy(dst + out, src + in, lit);
    in += lit;
    out += lit;

    if (in == n) {
      // Terminal sequence: literals only, must land exactly on raw_n.
      if ((token & 0x0f) != 0) fail("terminal sequence declares a match");
      if (out != raw_n) fail("stream ends before declared size");
      return;
    }

    // Match.
    if (in + 2 > n) fail("truncated match offset");
    const std::size_t offset = src[in] | (static_cast<std::size_t>(src[in + 1]) << 8);
    in += 2;
    if (offset == 0 || offset > out) fail("match offset out of range");
    std::size_t match = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) {
      unsigned char ext;
      do {
        if (in >= n) fail("truncated match length");
        ext = src[in++];
        match += ext;
        if (match > raw_n) fail("match run exceeds declared size");
      } while (ext == 255);
    }
    if (out + match > raw_n) fail("output overrun on match");
    // Byte-by-byte copy: overlapping matches (offset < match) replicate.
    for (std::size_t k = 0; k < match; ++k) {
      dst[out + k] = dst[out + k - offset];
    }
    out += match;
  }
}

}  // namespace qif::monitor
