// Client-side monitor (paper §III-A).
//
// Consumes per-op trace records for one monitored application ("target
// workload") as they complete and aggregates them per (time window,
// target server): counts of read/write/metadata requests, byte sums,
// actual I/O time, and the derived throughput and IOPS.  This is the role
// of the paper's modified Darshan + SHM buffer + MPI aggregator, collapsed
// into one deterministic in-process component.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "qif/monitor/schema.hpp"
#include "qif/pfs/types.hpp"
#include "qif/sim/time.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::monitor {

/// Aggregated client-side metrics for one (window, server) cell.
struct ClientWindow {
  std::int64_t n_read = 0;
  std::int64_t n_write = 0;
  std::int64_t n_meta = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_write = 0;
  double io_time_s = 0.0;  ///< summed op durations attributed to this server
  // Fault-path counters (all zero on healthy runs).
  std::int64_t retries = 0;
  std::int64_t timeouts = 0;
  std::int64_t failed_ops = 0;

  [[nodiscard]] std::int64_t n_total() const { return n_read + n_write + n_meta; }
  [[nodiscard]] std::int64_t bytes_total() const { return bytes_read + bytes_write; }
};

class ClientMonitor {
 public:
  /// Aggregates ops of `job` into windows of `window` length across
  /// `n_servers` monitored servers.  `mdt_server_index` resolves the
  /// kMdtTarget sentinel (pass Cluster::mdt_server_index()).
  ClientMonitor(std::int32_t job, sim::SimDuration window, int n_servers,
                int mdt_server_index);

  /// Streaming entry point; attach via TraceLog::set_observer.  Ops of
  /// other jobs are ignored.
  void observe(const trace::OpRecord& rec);

  /// Fills the client-side slice of a per-server feature vector.
  /// `out` must have room for MetricSchema::kClientFeatures doubles.
  void fill_features(std::int64_t window_index, int server, double* out) const;

  /// Fills the fault-path slice (retries, timeouts, failed ops) of a
  /// per-server feature vector.  `out` must have room for
  /// MetricSchema::kFaultFeatures doubles.
  void fill_fault_features(std::int64_t window_index, int server, double* out) const;

  /// Cell-based fill variants for the assembly hot path: the assembler
  /// resolves a window's cell row once and fills every server from it,
  /// instead of paying one map lookup per (window, server).
  static void fill_features_from(const ClientWindow& c, sim::SimDuration window,
                                 double* out);
  static void fill_fault_features_from(const ClientWindow& c, double* out);

  /// All per-server cells of one window (n_servers entries), or nullptr
  /// when the window saw no ops.
  [[nodiscard]] const std::vector<ClientWindow>* window_cells(
      std::int64_t window_index) const;

  [[nodiscard]] const ClientWindow* cell(std::int64_t window_index, int server) const;
  [[nodiscard]] std::vector<std::int64_t> window_indices() const;
  [[nodiscard]] sim::SimDuration window() const { return window_; }
  [[nodiscard]] int n_servers() const { return n_servers_; }
  [[nodiscard]] std::int64_t ops_observed() const { return ops_observed_; }

 private:
  std::int32_t job_;
  sim::SimDuration window_;
  int n_servers_;
  int mdt_server_index_;
  std::int64_t ops_observed_ = 0;
  // window index -> per-server cells
  std::map<std::int64_t, std::vector<ClientWindow>> windows_;
  // Hot-path state for observe(): ops cluster heavily by window, so the
  // current window's cell row is cached (map nodes are stable, so the
  // pointer survives later inserts), and the per-op resolved-target list
  // reuses one scratch buffer instead of allocating per op.
  std::int64_t cached_window_ = -1;
  std::vector<ClientWindow>* cached_cells_ = nullptr;
  std::vector<int> scratch_targets_;
};

}  // namespace qif::monitor
