#include "qif/monitor/export.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "qif/monitor/schema.hpp"

namespace qif::monitor {

void write_dxt(std::ostream& os, const trace::TraceLog& log) {
  os << "# DXT qif 1\n";
  os << "# job rank op_index type offset bytes start_ns end_ns targets...\n";
  for (const trace::OpRecord& r : log.records()) {
    os << r.job << ' ' << r.rank << ' ' << r.op_index << ' ' << pfs::op_name(r.type)
       << ' ' << r.offset << ' ' << r.bytes << ' ' << r.start << ' ' << r.end;
    for (const auto t : r.targets) os << ' ' << t;
    os << '\n';
  }
}

namespace {

pfs::OpType op_from_name(const std::string& name) {
  for (int i = 0; i < pfs::kNumOpTypes; ++i) {
    const auto t = static_cast<pfs::OpType>(i);
    if (name == pfs::op_name(t)) return t;
  }
  throw std::runtime_error("unknown op type in DXT dump: " + name);
}

}  // namespace

trace::TraceLog read_dxt(std::istream& is) {
  trace::TraceLog log;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    trace::OpRecord r;
    std::string type;
    if (!(ls >> r.job >> r.rank >> r.op_index >> type >> r.offset >> r.bytes >> r.start >>
          r.end)) {
      throw std::runtime_error("malformed DXT line: " + line);
    }
    r.type = op_from_name(type);
    std::int32_t target = 0;
    while (ls >> target) r.targets.push_back(target);
    log.record(std::move(r));
  }
  return log;
}

void write_dataset_csv(std::ostream& os, const Dataset& ds) {
  os.precision(17);
  const MetricSchema schema;
  os << "window_index,label,degradation";
  for (int s = 0; s < ds.n_servers; ++s) {
    for (int f = 0; f < ds.dim; ++f) {
      os << ",s" << s << '.';
      // Feature names are known when dim matches the standard schema;
      // otherwise fall back to positional names.
      if (ds.dim == schema.dim()) {
        os << schema.at(f).name;
      } else {
        os << 'f' << f;
      }
    }
  }
  os << '\n';
  for (const auto& sample : ds.samples) {
    os << sample.window_index << ',' << sample.label << ',' << sample.degradation;
    for (const double v : sample.features) os << ',' << v;
    os << '\n';
  }
}

Dataset read_dataset_csv(std::istream& is) {
  Dataset ds;
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty dataset CSV");
  // Infer the shape from the header: count "sK." prefixes and the highest K.
  std::size_t n_features = 0;
  int max_server = -1;
  {
    std::istringstream hs(line);
    std::string cell;
    int col = 0;
    while (std::getline(hs, cell, ',')) {
      if (col++ < 3) continue;
      ++n_features;
      if (cell.size() > 1 && cell[0] == 's') {
        max_server = std::max(max_server, std::atoi(cell.c_str() + 1));
      }
    }
  }
  if (n_features == 0 || max_server < 0) {
    throw std::runtime_error("dataset CSV header has no feature columns");
  }
  ds.n_servers = max_server + 1;
  if (n_features % static_cast<std::size_t>(ds.n_servers) != 0) {
    throw std::runtime_error("dataset CSV feature count not divisible by servers");
  }
  ds.dim = static_cast<int>(n_features / static_cast<std::size_t>(ds.n_servers));

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    Sample s;
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("malformed CSV row");
    s.window_index = std::atoll(cell.c_str());
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("malformed CSV row");
    s.label = std::atoi(cell.c_str());
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("malformed CSV row");
    s.degradation = std::atof(cell.c_str());
    s.features.reserve(n_features);
    while (std::getline(ls, cell, ',')) s.features.push_back(std::atof(cell.c_str()));
    if (s.features.size() != n_features) {
      throw std::runtime_error("dataset CSV row width mismatch");
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

}  // namespace qif::monitor
