#include "qif/monitor/export.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "qif/monitor/schema.hpp"

namespace qif::monitor {
namespace {

// Parse-failure location carried into every reader diagnostic: fuzz-found
// rejections must name the exact line and column, not just the bad bytes.
// `line` is 1-based; `column` is the 1-based field index (CSV/DXT fields,
// not characters).
[[noreturn]] void fail_cell(const char* what, std::string_view cell, std::int64_t line,
                            std::int64_t column) {
  throw std::runtime_error(std::string("malformed ") + what + " cell: '" +
                           std::string(cell) + "' at line " + std::to_string(line) +
                           ", column " + std::to_string(column));
}

// Strict cell parsers: every byte of the cell must be consumed, so a
// corrupted "12x7" or empty cell throws instead of silently becoming 0
// (the old atoll/atoi/atof behaviour).
template <typename Int>
Int parse_int_cell(std::string_view cell, const char* what, std::int64_t line,
                   std::int64_t column) {
  Int value{};
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    fail_cell(what, cell, line, column);
  }
  return value;
}

double parse_double_cell(std::string_view cell, const char* what, std::int64_t line,
                         std::int64_t column) {
  // strtod + end-pointer check: from_chars<double> is used nowhere else in
  // the tree and strtod matches the writer's formatting exactly.
  const std::string buf(cell);
  if (buf.empty()) {
    throw std::runtime_error(std::string("empty ") + what + " cell at line " +
                             std::to_string(line) + ", column " + std::to_string(column));
  }
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    fail_cell(what, cell, line, column);
  }
  return value;
}

}  // namespace

void write_dxt(std::ostream& os, const trace::TraceLog& log) {
  os << "# DXT qif 1\n";
  os << "# job rank op_index type offset bytes start_ns end_ns targets...\n";
  for (const trace::OpRecord& r : log.records()) {
    os << r.job << ' ' << r.rank << ' ' << r.op_index << ' ' << pfs::op_name(r.type)
       << ' ' << r.offset << ' ' << r.bytes << ' ' << r.start << ' ' << r.end;
    for (const auto t : r.targets) os << ' ' << t;
    os << '\n';
  }
}

namespace {

pfs::OpType op_from_name(std::string_view name, std::int64_t line, std::int64_t column) {
  for (int i = 0; i < pfs::kNumOpTypes; ++i) {
    const auto t = static_cast<pfs::OpType>(i);
    if (name == pfs::op_name(t)) return t;
  }
  throw std::runtime_error("unknown op type in DXT dump: '" + std::string(name) +
                           "' at line " + std::to_string(line) + ", column " +
                           std::to_string(column));
}

/// Whitespace tokenizer over one line that knows which 1-based field it is
/// on, so every parse failure can be located exactly.
struct FieldCursor {
  std::string_view line;
  std::int64_t line_no;
  std::size_t pos = 0;
  std::int64_t column = 0;  // of the most recently returned token

  /// Next whitespace-delimited token; empty when the line is exhausted.
  std::string_view next() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t begin = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > begin) ++column;
    return line.substr(begin, pos - begin);
  }

  template <typename Int>
  Int next_int(const char* what) {
    const std::string_view tok = next();
    if (tok.empty()) {
      throw std::runtime_error(std::string("missing ") + what + " field at line " +
                               std::to_string(line_no) + ", column " +
                               std::to_string(column + 1));
    }
    return parse_int_cell<Int>(tok, what, line_no, column);
  }
};

}  // namespace

trace::TraceLog read_dxt(std::istream& is) {
  trace::TraceLog log;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    FieldCursor fields{line, line_no};
    trace::OpRecord r;
    r.job = fields.next_int<std::int32_t>("DXT job");
    r.rank = fields.next_int<pfs::Rank>("DXT rank");
    r.op_index = fields.next_int<std::int64_t>("DXT op_index");
    const std::string_view type = fields.next();
    if (type.empty()) {
      throw std::runtime_error("missing DXT op type field at line " +
                               std::to_string(line_no) + ", column " +
                               std::to_string(fields.column + 1));
    }
    r.type = op_from_name(type, line_no, fields.column);
    r.offset = fields.next_int<std::int64_t>("DXT offset");
    r.bytes = fields.next_int<std::int64_t>("DXT bytes");
    r.start = fields.next_int<sim::SimTime>("DXT start");
    r.end = fields.next_int<sim::SimTime>("DXT end");
    // Every remaining token is a target server id; "1 2 x" must throw with
    // the position of "x", not drop it.
    for (std::string_view tok = fields.next(); !tok.empty(); tok = fields.next()) {
      r.targets.push_back(
          parse_int_cell<std::int32_t>(tok, "DXT target", line_no, fields.column));
    }
    log.record(std::move(r));
  }
  return log;
}

void write_dataset_csv(std::ostream& os, const Dataset& ds) {
  os.precision(17);
  // Pick the schema variant matching the table's per-server width, so both
  // healthy (37) and fault-injected (40) datasets get named columns.
  const MetricSchema schema(ds.dim() == MetricSchema::kPerServerDimFaults);
  os << "window_index,label,degradation";
  for (int s = 0; s < ds.n_servers(); ++s) {
    for (int f = 0; f < ds.dim(); ++f) {
      os << ",s" << s << '.';
      // Feature names are known when dim matches the standard schema;
      // otherwise fall back to positional names.
      if (ds.dim() == schema.dim()) {
        os << schema.at(f).name;
      } else {
        os << 'f' << f;
      }
    }
  }
  os << '\n';
  const std::size_t width = ds.width();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    os << ds.window_index(i) << ',' << ds.label(i) << ',' << ds.degradation(i);
    const double* row = ds.row(i);
    for (std::size_t j = 0; j < width; ++j) os << ',' << row[j];
    os << '\n';
  }
}

Dataset read_dataset_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty dataset CSV");
  // Infer the shape from the header: count "sK." prefixes and the highest K.
  std::size_t n_features = 0;
  int max_server = -1;
  {
    std::istringstream hs(line);
    std::string cell;
    std::int64_t col = 0;
    while (std::getline(hs, cell, ',')) {
      if (++col <= 3) continue;
      ++n_features;
      const auto dot = cell.find('.');
      if (cell.size() > 1 && cell[0] == 's' && dot != std::string::npos && dot > 1) {
        max_server = std::max(max_server, parse_int_cell<int>({cell.data() + 1, dot - 1},
                                                              "CSV header server", 1, col));
      }
    }
  }
  if (n_features == 0 || max_server < 0) {
    throw std::runtime_error("dataset CSV header has no feature columns");
  }
  const int n_servers = max_server + 1;
  if (n_features % static_cast<std::size_t>(n_servers) != 0) {
    throw std::runtime_error("dataset CSV feature count not divisible by servers");
  }
  Dataset ds(n_servers, static_cast<int>(n_features / static_cast<std::size_t>(n_servers)));

  std::int64_t line_no = 1;  // the header was line 1
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::int64_t col = 0;
    const auto next_cell = [&]() {
      if (!std::getline(ls, cell, ',')) {
        throw std::runtime_error("truncated CSV row at line " + std::to_string(line_no) +
                                 ", column " + std::to_string(col + 1));
      }
      ++col;
    };
    next_cell();
    const auto window = parse_int_cell<std::int64_t>(cell, "CSV window_index", line_no, col);
    next_cell();
    const auto label = parse_int_cell<int>(cell, "CSV label", line_no, col);
    next_cell();
    const auto degradation = parse_double_cell(cell, "CSV degradation", line_no, col);
    double* row = ds.append_row(window, label, degradation);
    std::size_t j = 0;
    while (std::getline(ls, cell, ',')) {
      ++col;
      if (j >= n_features) {
        throw std::runtime_error("dataset CSV row width mismatch at line " +
                                 std::to_string(line_no) + ", column " + std::to_string(col));
      }
      row[j++] = parse_double_cell(cell, "CSV feature", line_no, col);
    }
    if (j != n_features) {
      throw std::runtime_error("dataset CSV row width mismatch at line " +
                               std::to_string(line_no) + ", column " + std::to_string(col));
    }
  }
  return ds;
}

namespace {

constexpr char kQdsMagic[8] = {'q', 'i', 'f', '.', 'q', 'd', 's', '\n'};
constexpr std::uint32_t kQdsVersion = 1;

/// Stream checksum: FNV-1a folded 8 bytes at a time (one xor-multiply per
/// word instead of per byte), byte-wise over the tail.  Word-wise so the
/// checksum pass stays negligible next to the column reads — the reader
/// hashes every payload byte of multi-megabyte files.
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void write_raw(std::ostream& os, const void* data, std::size_t n, std::uint64_t& hash) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  hash = fnv1a(data, n, hash);
}

void read_raw(std::istream& is, void* data, std::size_t n, std::uint64_t& hash,
              const char* what) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw std::runtime_error(std::string("truncated .qds dataset (") + what + ")");
  }
  hash = fnv1a(data, n, hash);
}

/// Schema hash stamped into headers: the canonical MetricSchema hash when
/// the per-server width matches the healthy (37) or fault-injected (40)
/// layout, 0 (unchecked) for custom widths such as the flat-net ablation's
/// reshaped tables.
std::uint64_t header_schema_hash(int dim) {
  if (dim == MetricSchema::kPerServerDim) return MetricSchema().layout_hash();
  if (dim == MetricSchema::kPerServerDimFaults) {
    return MetricSchema(/*with_fault_features=*/true).layout_hash();
  }
  return 0;
}

}  // namespace

bool is_qds_magic(const char* bytes, std::size_t n) {
  return n >= sizeof(kQdsMagic) && std::memcmp(bytes, kQdsMagic, sizeof(kQdsMagic)) == 0;
}

void write_dataset_qds(std::ostream& os, const Dataset& ds) {
  os.write(kQdsMagic, sizeof(kQdsMagic));
  std::uint64_t hash = 14695981039346656037ull;
  const std::uint32_t version = kQdsVersion;
  const std::uint64_t schema_hash = header_schema_hash(ds.dim());
  const std::int32_t n_servers = ds.n_servers();
  const std::int32_t dim = ds.dim();
  const std::uint64_t rows = ds.size();
  write_raw(os, &version, sizeof(version), hash);
  write_raw(os, &schema_hash, sizeof(schema_hash), hash);
  write_raw(os, &n_servers, sizeof(n_servers), hash);
  write_raw(os, &dim, sizeof(dim), hash);
  write_raw(os, &rows, sizeof(rows), hash);
  write_raw(os, ds.window_index_column().data(), ds.size() * sizeof(std::int64_t), hash);
  write_raw(os, ds.label_column().data(), ds.size() * sizeof(std::int32_t), hash);
  write_raw(os, ds.degradation_column().data(), ds.size() * sizeof(double), hash);
  write_raw(os, ds.feature_block().data(), ds.feature_block().size() * sizeof(double), hash);
  os.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  if (!os) throw std::runtime_error("failed writing .qds dataset");
}

Dataset read_dataset_qds(std::istream& is) {
  char magic[sizeof(kQdsMagic)] = {};
  is.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(is.gcount()) != sizeof(magic) ||
      !is_qds_magic(magic, sizeof(magic))) {
    throw std::runtime_error("not a .qds dataset (bad magic)");
  }
  std::uint64_t hash = 14695981039346656037ull;
  std::uint32_t version = 0;
  std::uint64_t schema_hash = 0;
  std::int32_t n_servers = 0;
  std::int32_t dim = 0;
  std::uint64_t rows = 0;
  read_raw(is, &version, sizeof(version), hash, "version");
  if (version != kQdsVersion) {
    throw std::runtime_error(".qds dataset: unsupported version " + std::to_string(version));
  }
  read_raw(is, &schema_hash, sizeof(schema_hash), hash, "schema hash");
  read_raw(is, &n_servers, sizeof(n_servers), hash, "n_servers");
  read_raw(is, &dim, sizeof(dim), hash, "dim");
  read_raw(is, &rows, sizeof(rows), hash, "row count");
  if (n_servers < 0 || dim < 0 || (n_servers == 0) != (dim == 0)) {
    throw std::runtime_error(".qds dataset: corrupt header shape");
  }
  if (schema_hash != 0 && schema_hash != header_schema_hash(dim)) {
    throw std::runtime_error(".qds dataset: metric-schema hash mismatch");
  }
  const auto width = static_cast<std::uint64_t>(n_servers) * static_cast<std::uint64_t>(dim);
  if ((n_servers == 0 && rows != 0) ||
      (width != 0 && rows > std::numeric_limits<std::uint64_t>::max() / width / sizeof(double))) {
    throw std::runtime_error(".qds dataset: corrupt header row count");
  }
  // When the stream is seekable, bound the declared payload against the
  // real stream size *before* allocating columns: a bit-flipped
  // n_servers/dim/rows would otherwise drive a multi-gigabyte allocation
  // (or OOM crash) ahead of the truncation checks.  Exactness also rejects
  // trailing garbage, which the sequential reads would silently ignore.
  if (const auto cur = is.tellg(); cur != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const auto stream_end = is.tellg();
    is.seekg(cur);
    if (!is || stream_end == std::istream::pos_type(-1) || stream_end < cur) {
      throw std::runtime_error(".qds dataset: stream seek failed");
    }
    const auto have = static_cast<std::uint64_t>(stream_end - cur);
    // 128-bit so a hostile rows * width cannot wrap the comparison.
    const auto need = static_cast<unsigned __int128>(rows) *
                          (sizeof(std::int64_t) + sizeof(std::int32_t) + sizeof(double) +
                           static_cast<unsigned __int128>(width) * sizeof(double)) +
                      sizeof(std::uint64_t);
    if (static_cast<unsigned __int128>(have) != need) {
      throw std::runtime_error(have < need
                                   ? "truncated .qds dataset (declared payload exceeds file)"
                                   : ".qds dataset: trailing garbage after payload");
    }
  }

  static_assert(sizeof(int) == sizeof(std::int32_t), "label column is stored as i32");
  std::vector<std::int64_t> windows(rows);
  std::vector<int> labels(rows);
  std::vector<double> degradations(rows);
  std::vector<double> features(rows * width);
  read_raw(is, windows.data(), rows * sizeof(std::int64_t), hash, "window column");
  read_raw(is, labels.data(), rows * sizeof(std::int32_t), hash, "label column");
  read_raw(is, degradations.data(), rows * sizeof(double), hash, "degradation column");
  read_raw(is, features.data(), features.size() * sizeof(double), hash, "feature block");
  std::uint64_t stored = 0;
  is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(is.gcount()) != sizeof(stored)) {
    throw std::runtime_error("truncated .qds dataset (checksum)");
  }
  if (stored != hash) throw std::runtime_error(".qds dataset: checksum mismatch");
  return Dataset::from_columns(n_servers, dim, std::move(windows), std::move(labels),
                               std::move(degradations), std::move(features));
}

Dataset read_dataset_auto(std::istream& is) {
  char magic[sizeof(kQdsMagic)] = {};
  is.read(magic, sizeof(magic));
  const auto got = static_cast<std::size_t>(is.gcount());
  if (got == sizeof(magic) && is_qds_magic(magic, sizeof(magic))) {
    is.clear();
    is.seekg(0);
    if (!is) throw std::runtime_error("dataset stream is not seekable");
    return read_dataset_qds(is);
  }
  is.clear();
  is.seekg(0);
  if (!is) throw std::runtime_error("dataset stream is not seekable");
  return read_dataset_csv(is);
}

}  // namespace qif::monitor
