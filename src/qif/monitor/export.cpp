#include "qif/monitor/export.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "qif/monitor/qlz.hpp"
#include "qif/monitor/schema.hpp"
#include "qif/trace/text_cursor.hpp"

namespace qif::monitor {

// The strict cell parsers (full-consumption from_chars/strtod with
// line/column diagnostics) are shared with the DXT and .qwp readers; the
// DXT dump itself moved to qif/trace/dxt.hpp so trace replay and the
// export surface parse one grammar with one parser.
using trace::parse_double_cell;
using trace::parse_int_cell;

void write_dataset_csv(std::ostream& os, const Dataset& ds) {
  os.precision(17);
  // Pick the schema variant matching the table's per-server width, so both
  // healthy (37) and fault-injected (40) datasets get named columns.
  const MetricSchema schema(ds.dim() == MetricSchema::kPerServerDimFaults);
  os << "window_index,label,degradation";
  for (int s = 0; s < ds.n_servers(); ++s) {
    for (int f = 0; f < ds.dim(); ++f) {
      os << ",s" << s << '.';
      // Feature names are known when dim matches the standard schema;
      // otherwise fall back to positional names.
      if (ds.dim() == schema.dim()) {
        os << schema.at(f).name;
      } else {
        os << 'f' << f;
      }
    }
  }
  os << '\n';
  const std::size_t width = ds.width();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    os << ds.window_index(i) << ',' << ds.label(i) << ',' << ds.degradation(i);
    const double* row = ds.row(i);
    for (std::size_t j = 0; j < width; ++j) os << ',' << row[j];
    os << '\n';
  }
}

void write_ctrl_windows_csv(std::ostream& os, const ctrl::MitigationReport& report) {
  os.precision(17);
  os << "window,throttle_waits,throttled_bytes,throttle_delay_s,"
        "mean_admission_level,flagged_controllers,victim_p99_ms\n";
  for (const ctrl::WindowCtrl& w : report.windows) {
    os << w.window_index << ',' << w.throttle_waits << ',' << w.throttled_bytes << ','
       << w.throttle_delay_s << ',' << w.mean_admission_level << ','
       << w.flagged_controllers << ',' << w.victim_p99_ms << '\n';
  }
}

Dataset read_dataset_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty dataset CSV");
  // Infer the shape from the header: count "sK." prefixes and the highest K.
  std::size_t n_features = 0;
  int max_server = -1;
  {
    std::istringstream hs(line);
    std::string cell;
    std::int64_t col = 0;
    while (std::getline(hs, cell, ',')) {
      if (++col <= 3) continue;
      ++n_features;
      const auto dot = cell.find('.');
      if (cell.size() > 1 && cell[0] == 's' && dot != std::string::npos && dot > 1) {
        max_server = std::max(max_server, parse_int_cell<int>({cell.data() + 1, dot - 1},
                                                              "CSV header server", 1, col));
      }
    }
  }
  if (n_features == 0 || max_server < 0) {
    throw std::runtime_error("dataset CSV header has no feature columns");
  }
  const int n_servers = max_server + 1;
  if (n_features % static_cast<std::size_t>(n_servers) != 0) {
    throw std::runtime_error("dataset CSV feature count not divisible by servers");
  }
  Dataset ds(n_servers, static_cast<int>(n_features / static_cast<std::size_t>(n_servers)));

  std::int64_t line_no = 1;  // the header was line 1
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::int64_t col = 0;
    const auto next_cell = [&]() {
      if (!std::getline(ls, cell, ',')) {
        throw std::runtime_error("truncated CSV row at line " + std::to_string(line_no) +
                                 ", column " + std::to_string(col + 1));
      }
      ++col;
    };
    next_cell();
    const auto window = parse_int_cell<std::int64_t>(cell, "CSV window_index", line_no, col);
    next_cell();
    const auto label = parse_int_cell<int>(cell, "CSV label", line_no, col);
    next_cell();
    const auto degradation = parse_double_cell(cell, "CSV degradation", line_no, col);
    double* row = ds.append_row(window, label, degradation);
    std::size_t j = 0;
    while (std::getline(ls, cell, ',')) {
      ++col;
      if (j >= n_features) {
        throw std::runtime_error("dataset CSV row width mismatch at line " +
                                 std::to_string(line_no) + ", column " + std::to_string(col));
      }
      row[j++] = parse_double_cell(cell, "CSV feature", line_no, col);
    }
    if (j != n_features) {
      throw std::runtime_error("dataset CSV row width mismatch at line " +
                               std::to_string(line_no) + ", column " + std::to_string(col));
    }
  }
  return ds;
}

namespace {

constexpr char kQdsMagic[8] = {'q', 'i', 'f', '.', 'q', 'd', 's', '\n'};
constexpr std::uint32_t kQdsVersionLegacy = 1;
constexpr std::uint32_t kQdsVersionBlocks = 2;
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::size_t kQdsV2HeaderSize = 48;
constexpr std::size_t kQdsBlockHeaderSize = 32;
constexpr std::uint32_t kQdsFlagCompressed = 1u;

/// Stream checksum: FNV-1a folded 8 bytes at a time (one xor-multiply per
/// word instead of per byte), byte-wise over the tail.  Word-wise so the
/// checksum pass stays negligible next to the column reads — the reader
/// hashes every payload byte of multi-megabyte files.
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void write_raw(std::ostream& os, const void* data, std::size_t n, std::uint64_t& hash) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  hash = fnv1a(data, n, hash);
}

/// Schema hash stamped into headers: the canonical MetricSchema hash when
/// the per-server width matches the healthy (37) or fault-injected (40)
/// layout, 0 (unchecked) for custom widths such as the flat-net ablation's
/// reshaped tables.
std::uint64_t header_schema_hash(int dim) {
  if (dim == MetricSchema::kPerServerDim) return MetricSchema().layout_hash();
  if (dim == MetricSchema::kPerServerDimFaults) {
    return MetricSchema(/*with_fault_features=*/true).layout_hash();
  }
  return 0;
}

template <typename T>
[[nodiscard]] T load_at(const char* data, std::size_t offset) {
  T v;
  std::memcpy(&v, data + offset, sizeof v);
  return v;
}

template <typename T>
void append_value(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// One column block of a validated image: `stored` points into the image,
/// `raw_bytes` is the decompressed size implied by the file header.
struct QdsBlockRef {
  std::uint32_t codec = 0;
  const char* stored = nullptr;
  std::size_t stored_bytes = 0;
  std::size_t raw_bytes = 0;
};

struct QdsValidated {
  std::uint32_t version = 0;
  int n_servers = 0;
  int dim = 0;
  std::size_t rows = 0;
  std::size_t width = 0;
  bool all_raw = false;
  QdsBlockRef blocks[4];  // window_index, label, degradation, features
};

/// Validates a complete in-memory `.qds` image: magic, header sanity,
/// every checksum, exact size (no truncation, no trailing garbage), block
/// framing and padding.  This is the single validation pass behind both
/// the buffered reader and the mmap path, so both reject corruption with
/// the identical error taxonomy.
QdsValidated validate_qds_image(const char* data, std::size_t n) {
  if (!is_qds_magic(data, n)) {
    throw std::runtime_error("not a .qds dataset (bad magic)");
  }
  if (n < 36) throw std::runtime_error("truncated .qds dataset (header)");
  QdsValidated v;
  v.version = load_at<std::uint32_t>(data, 8);
  if (v.version != kQdsVersionLegacy && v.version != kQdsVersionBlocks) {
    throw std::runtime_error(".qds dataset: unsupported version " +
                             std::to_string(v.version));
  }
  const auto schema_hash = load_at<std::uint64_t>(data, 12);
  const auto n_servers = load_at<std::int32_t>(data, 20);
  const auto dim = load_at<std::int32_t>(data, 24);
  const auto rows = load_at<std::uint64_t>(data, 28);
  if (n_servers < 0 || dim < 0 || (n_servers == 0) != (dim == 0)) {
    throw std::runtime_error(".qds dataset: corrupt header shape");
  }
  if (schema_hash != 0 && schema_hash != header_schema_hash(dim)) {
    throw std::runtime_error(".qds dataset: metric-schema hash mismatch");
  }
  const auto width = static_cast<std::uint64_t>(n_servers) * static_cast<std::uint64_t>(dim);
  if ((n_servers == 0 && rows != 0) ||
      (width != 0 &&
       rows > std::numeric_limits<std::uint64_t>::max() / width / sizeof(double))) {
    throw std::runtime_error(".qds dataset: corrupt header row count");
  }
  v.n_servers = n_servers;
  v.dim = dim;
  v.rows = static_cast<std::size_t>(rows);
  v.width = static_cast<std::size_t>(width);
  const std::uint64_t col_bytes[4] = {rows * sizeof(std::int64_t), rows * sizeof(std::int32_t),
                                      rows * sizeof(double), rows * width * sizeof(double)};

  if (v.version == kQdsVersionLegacy) {
    // Legacy layout: contiguous columns, one trailing checksum over
    // everything after the magic.  The exact-size comparison (128-bit so a
    // hostile rows*width cannot wrap it) rejects truncation AND trailing
    // garbage before any allocation.
    unsigned __int128 need = 36 + sizeof(std::uint64_t);
    for (const std::uint64_t c : col_bytes) need += c;
    if (static_cast<unsigned __int128>(n) != need) {
      throw std::runtime_error(static_cast<unsigned __int128>(n) < need
                                   ? "truncated .qds dataset (declared payload exceeds file)"
                                   : ".qds dataset: trailing garbage after payload");
    }
    // The word-folded FNV is chunk-boundary sensitive and the v1 writer
    // hashes field by field, then column by column — reproduce exactly
    // that sequence or every legacy file reads as corrupt.
    std::uint64_t hash = kFnvBasis;
    hash = fnv1a(data + 8, 4, hash);    // version
    hash = fnv1a(data + 12, 8, hash);   // schema hash
    hash = fnv1a(data + 20, 4, hash);   // n_servers
    hash = fnv1a(data + 24, 4, hash);   // dim
    hash = fnv1a(data + 28, 8, hash);   // rows
    {
      std::size_t off = 36;
      for (const std::uint64_t c : col_bytes) {
        hash = fnv1a(data + off, static_cast<std::size_t>(c), hash);
        off += static_cast<std::size_t>(c);
      }
    }
    if (hash != load_at<std::uint64_t>(data, n - sizeof(std::uint64_t))) {
      throw std::runtime_error(".qds dataset: checksum mismatch");
    }
    std::size_t offset = 36;
    for (int k = 0; k < 4; ++k) {
      const auto bytes = static_cast<std::size_t>(col_bytes[k]);
      v.blocks[k] = {0, data + offset, bytes, bytes};
      offset += bytes;
    }
    v.all_raw = true;  // raw but misaligned — never zero-copy (see inspect)
    return v;
  }

  // Version 2: header checksum, then four self-checksummed blocks.
  if (n < kQdsV2HeaderSize) throw std::runtime_error("truncated .qds dataset (header)");
  const auto flags = load_at<std::uint32_t>(data, 36);
  if ((flags & ~kQdsFlagCompressed) != 0) {
    throw std::runtime_error(".qds dataset: unknown header flags");
  }
  if (fnv1a(data + 8, 32, kFnvBasis) != load_at<std::uint64_t>(data, 40)) {
    throw std::runtime_error(".qds dataset: header checksum mismatch");
  }
  // Pre-allocation guard: with compression a block's raw size legitimately
  // exceeds the file size, but qlz expands at most ~255x, so a total
  // declared raw payload beyond 256x the image is a forged header — reject
  // it before the materializing caller allocates columns.
  unsigned __int128 total_raw = 0;
  for (const std::uint64_t c : col_bytes) total_raw += c;
  if (total_raw > static_cast<unsigned __int128>(n) * 256 + 4096) {
    throw std::runtime_error("truncated .qds dataset (declared payload exceeds file)");
  }
  std::size_t offset = kQdsV2HeaderSize;
  bool any_compressed = false;
  for (std::uint32_t k = 0; k < 4; ++k) {
    if (n - offset < kQdsBlockHeaderSize) {
      throw std::runtime_error("truncated .qds dataset (block header)");
    }
    const auto kind = load_at<std::uint32_t>(data, offset);
    const auto codec = load_at<std::uint32_t>(data, offset + 4);
    const auto raw_bytes = load_at<std::uint64_t>(data, offset + 8);
    const auto stored_bytes = load_at<std::uint64_t>(data, offset + 16);
    const auto checksum = load_at<std::uint64_t>(data, offset + 24);
    if (kind != k) throw std::runtime_error(".qds dataset: block order mismatch");
    if (codec > static_cast<std::uint32_t>(QdsCodec::kQlz)) {
      throw std::runtime_error(".qds dataset: unknown block codec");
    }
    if (raw_bytes != col_bytes[k]) {
      throw std::runtime_error(".qds dataset: block size mismatch");
    }
    if (codec == 0 ? stored_bytes != raw_bytes : stored_bytes >= raw_bytes) {
      throw std::runtime_error(".qds dataset: block size mismatch");
    }
    if (stored_bytes > n - offset - kQdsBlockHeaderSize) {
      throw std::runtime_error("truncated .qds dataset (block payload)");
    }
    const char* payload = data + offset + kQdsBlockHeaderSize;
    std::uint64_t h = fnv1a(data + offset, 24, kFnvBasis);
    h = fnv1a(payload, static_cast<std::size_t>(stored_bytes), h);
    if (h != checksum) throw std::runtime_error(".qds dataset: checksum mismatch");
    const std::size_t pad = (8 - static_cast<std::size_t>(stored_bytes) % 8) % 8;
    if (pad > n - offset - kQdsBlockHeaderSize - static_cast<std::size_t>(stored_bytes)) {
      throw std::runtime_error("truncated .qds dataset (block padding)");
    }
    for (std::size_t b = 0; b < pad; ++b) {
      // Pad bytes sit outside the checksummed payload, so a flip there
      // must still be caught: they are defined to be zero.
      if (payload[stored_bytes + b] != 0) {
        throw std::runtime_error(".qds dataset: nonzero block padding");
      }
    }
    if (codec != 0) any_compressed = true;
    v.blocks[k] = {codec, payload, static_cast<std::size_t>(stored_bytes),
                   static_cast<std::size_t>(raw_bytes)};
    offset += kQdsBlockHeaderSize + static_cast<std::size_t>(stored_bytes) + pad;
  }
  if (((flags & kQdsFlagCompressed) != 0) != any_compressed) {
    throw std::runtime_error(".qds dataset: header flags mismatch");
  }
  if (offset != n) throw std::runtime_error(".qds dataset: trailing garbage after payload");
  v.all_raw = !any_compressed;
  return v;
}

void materialize_block(const QdsBlockRef& block, void* dst) {
  if (block.codec == 0) {
    std::memcpy(dst, block.stored, block.raw_bytes);
  } else {
    qlz_decompress(block.stored, block.stored_bytes, dst, block.raw_bytes);
  }
}

template <typename T>
[[nodiscard]] bool aligned_for(const char* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0;
}

/// Reads the rest of the stream into a string: sized read when seekable,
/// rdbuf drain otherwise.
std::string slurp_stream(std::istream& is) {
  if (const auto cur = is.tellg(); cur != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(cur);
    if (is && end != std::istream::pos_type(-1) && end >= cur) {
      std::string out(static_cast<std::size_t>(end - cur), '\0');
      is.read(out.data(), static_cast<std::streamsize>(out.size()));
      if (static_cast<std::size_t>(is.gcount()) != out.size()) {
        throw std::runtime_error("truncated .qds dataset (stream read)");
      }
      return out;
    }
    is.clear();
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

void write_dataset_qds_v1(std::ostream& os, const Dataset& ds) {
  os.write(kQdsMagic, sizeof(kQdsMagic));
  std::uint64_t hash = kFnvBasis;
  const std::uint32_t version = kQdsVersionLegacy;
  const std::uint64_t schema_hash = header_schema_hash(ds.dim());
  const std::int32_t n_servers = ds.n_servers();
  const std::int32_t dim = ds.dim();
  const std::uint64_t rows = ds.size();
  write_raw(os, &version, sizeof(version), hash);
  write_raw(os, &schema_hash, sizeof(schema_hash), hash);
  write_raw(os, &n_servers, sizeof(n_servers), hash);
  write_raw(os, &dim, sizeof(dim), hash);
  write_raw(os, &rows, sizeof(rows), hash);
  write_raw(os, ds.window_index_data(), ds.size() * sizeof(std::int64_t), hash);
  write_raw(os, ds.label_data(), ds.size() * sizeof(std::int32_t), hash);
  write_raw(os, ds.degradation_data(), ds.size() * sizeof(double), hash);
  write_raw(os, ds.feature_data(), ds.size() * ds.width() * sizeof(double), hash);
  os.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
}

/// Appends one v2 block (header + payload + zero padding), compressing
/// when requested AND strictly smaller.
void append_block_v2(std::string& out, std::uint32_t kind, const void* raw,
                     std::size_t raw_bytes, QdsCodec want, bool& any_compressed) {
  std::vector<char> compressed;
  std::uint32_t codec = 0;
  const char* stored = static_cast<const char*>(raw);
  std::size_t stored_bytes = raw_bytes;
  if (want == QdsCodec::kQlz && raw_bytes >= 64) {
    compressed.resize(raw_bytes - 1);  // capacity < raw: only keep a strict win
    if (const std::size_t c = qlz_compress(raw, raw_bytes, compressed.data(),
                                           compressed.size())) {
      codec = static_cast<std::uint32_t>(QdsCodec::kQlz);
      stored = compressed.data();
      stored_bytes = c;
      any_compressed = true;
    }
  }
  char header[24];
  std::memcpy(header, &kind, sizeof kind);
  std::memcpy(header + 4, &codec, sizeof codec);
  const std::uint64_t raw64 = raw_bytes;
  const std::uint64_t stored64 = stored_bytes;
  std::memcpy(header + 8, &raw64, sizeof raw64);
  std::memcpy(header + 16, &stored64, sizeof stored64);
  std::uint64_t checksum = fnv1a(header, sizeof header, kFnvBasis);
  checksum = fnv1a(stored, stored_bytes, checksum);
  out.append(header, sizeof header);
  append_value(out, checksum);
  out.append(stored, stored_bytes);
  out.append((8 - stored_bytes % 8) % 8, '\0');
}

}  // namespace

bool is_qds_magic(const char* bytes, std::size_t n) {
  return n >= sizeof(kQdsMagic) && std::memcmp(bytes, kQdsMagic, sizeof(kQdsMagic)) == 0;
}

std::uint64_t qds_image_checksum(const void* data, std::size_t n) {
  return fnv1a(data, n, kFnvBasis);
}

void write_dataset_qds(std::ostream& os, const Dataset& ds, const QdsWriteOptions& options) {
  static_assert(sizeof(int) == sizeof(std::int32_t), "label column is stored as i32");
  if (options.version == kQdsVersionLegacy) {
    write_dataset_qds_v1(os, ds);
    if (!os) throw std::runtime_error("failed writing .qds dataset");
    return;
  }
  if (options.version != kQdsVersionBlocks) {
    throw std::runtime_error(".qds dataset: unsupported version " +
                             std::to_string(options.version));
  }
  const std::size_t rows = ds.size();
  std::string blocks;
  blocks.reserve(rows * (sizeof(std::int64_t) + sizeof(std::int32_t) + sizeof(double) +
                         ds.width() * sizeof(double)) +
                 4 * kQdsBlockHeaderSize);
  bool any_compressed = false;
  append_block_v2(blocks, 0, ds.window_index_data(), rows * sizeof(std::int64_t),
                  options.codec, any_compressed);
  append_block_v2(blocks, 1, ds.label_data(), rows * sizeof(std::int32_t), options.codec,
                  any_compressed);
  append_block_v2(blocks, 2, ds.degradation_data(), rows * sizeof(double), options.codec,
                  any_compressed);
  append_block_v2(blocks, 3, ds.feature_data(), rows * ds.width() * sizeof(double),
                  options.codec, any_compressed);

  std::string header(kQdsMagic, sizeof(kQdsMagic));
  append_value(header, kQdsVersionBlocks);
  append_value(header, header_schema_hash(ds.dim()));
  append_value(header, static_cast<std::int32_t>(ds.n_servers()));
  append_value(header, static_cast<std::int32_t>(ds.dim()));
  append_value(header, static_cast<std::uint64_t>(rows));
  append_value(header, any_compressed ? kQdsFlagCompressed : 0u);
  append_value(header, fnv1a(header.data() + 8, 32, kFnvBasis));

  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(blocks.data(), static_cast<std::streamsize>(blocks.size()));
  if (!os) throw std::runtime_error("failed writing .qds dataset");
}

QdsImageView inspect_dataset_qds(const char* data, std::size_t n) {
  const QdsValidated v = validate_qds_image(data, n);
  QdsImageView view;
  view.version = v.version;
  view.n_servers = v.n_servers;
  view.dim = v.dim;
  view.rows = v.rows;
  // Zero-copy needs raw v2 blocks (v1 columns are raw too, but the 36-byte
  // header leaves them misaligned) and an 8-aligned base — true for any
  // mmap, not necessarily for an arbitrary heap buffer.
  view.zero_copy = v.version == kQdsVersionBlocks && v.all_raw &&
                   aligned_for<std::int64_t>(v.blocks[0].stored) &&
                   aligned_for<std::int32_t>(v.blocks[1].stored) &&
                   aligned_for<double>(v.blocks[2].stored) &&
                   aligned_for<double>(v.blocks[3].stored);
  if (view.zero_copy) {
    view.window_index = reinterpret_cast<const std::int64_t*>(v.blocks[0].stored);
    view.label = reinterpret_cast<const std::int32_t*>(v.blocks[1].stored);
    view.degradation = reinterpret_cast<const double*>(v.blocks[2].stored);
    view.features = reinterpret_cast<const double*>(v.blocks[3].stored);
  }
  return view;
}

Dataset parse_dataset_qds(const char* data, std::size_t n) {
  const QdsValidated v = validate_qds_image(data, n);
  std::vector<std::int64_t> windows(v.rows);
  std::vector<int> labels(v.rows);
  std::vector<double> degradations(v.rows);
  std::vector<double> features(v.rows * v.width);
  materialize_block(v.blocks[0], windows.data());
  materialize_block(v.blocks[1], labels.data());
  materialize_block(v.blocks[2], degradations.data());
  materialize_block(v.blocks[3], features.data());
  return Dataset::from_columns(v.n_servers, v.dim, std::move(windows), std::move(labels),
                               std::move(degradations), std::move(features));
}

Dataset read_dataset_qds(std::istream& is) {
  const std::string image = slurp_stream(is);
  return parse_dataset_qds(image.data(), image.size());
}

Dataset read_dataset_auto(std::istream& is) {
  char magic[sizeof(kQdsMagic)] = {};
  is.read(magic, sizeof(magic));
  const auto got = static_cast<std::size_t>(is.gcount());
  // A zero-byte or shorter-than-magic stream is neither format: say so
  // directly instead of letting the CSV parser report a garbage cell.
  if (got == 0) throw std::runtime_error("empty dataset (no bytes to read)");
  if (got < sizeof(magic)) {
    throw std::runtime_error("truncated dataset: " + std::to_string(got) +
                             " byte(s) is shorter than any dataset header");
  }
  is.clear();
  is.seekg(0);
  if (!is) throw std::runtime_error("dataset stream is not seekable");
  if (is_qds_magic(magic, sizeof(magic))) return read_dataset_qds(is);
  return read_dataset_csv(is);
}

}  // namespace qif::monitor
