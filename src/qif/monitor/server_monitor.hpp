// Server-side monitor (paper §III-B, Table II).
//
// One independent sampling process per monitored server: every simulated
// second it reads the server's cumulative counters, forms the per-second
// delta, and folds it into the current window's sum/mean/std aggregates —
// "All metrics in this section are recorded once every second and a sum,
// mean, and standard deviation over all seconds in a given time window are
// calculated."
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "qif/monitor/schema.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/sim/sampler.hpp"
#include "qif/sim/stats.hpp"

namespace qif::monitor {

/// Finished window aggregates for one server: per raw metric, the window's
/// sum / mean / std over its per-second samples.
struct ServerWindow {
  std::array<sim::RunningStats, MetricSchema::kRawServerMetrics> metrics;
};

class ServerMonitor {
 public:
  /// Samples every `sample_period` (1 s in the paper) and closes a window
  /// every `window` (must be a multiple of the sample period).
  ServerMonitor(pfs::Cluster& cluster, sim::SimDuration window,
                sim::SimDuration sample_period = sim::kSecond);

  /// Begins sampling; idempotent.
  void start();
  void stop();

  /// Fills the server-side slice of the per-server feature vector for a
  /// closed window.  `out` must hold MetricSchema::kServerFeatures doubles.
  /// Unknown windows yield zeros (server was idle / run ended first).
  void fill_features(std::int64_t window_index, int server, double* out) const;

  /// Cell-based fill for the assembly hot path: resolve the window's cell
  /// row once via window_cells(), then fill each server from its cell.
  /// `sw == nullptr` writes zeros (idle window).
  static void fill_features_from(const ServerWindow* sw, double* out);

  /// All per-server aggregates of one window, or nullptr when no sample
  /// landed in that window.
  [[nodiscard]] const std::vector<ServerWindow>* window_cells(
      std::int64_t window_index) const;

  [[nodiscard]] const ServerWindow* window_data(std::int64_t window_index, int server) const;
  [[nodiscard]] std::vector<std::int64_t> window_indices() const;
  [[nodiscard]] sim::SimDuration window() const { return window_; }

  /// Last per-second deltas observed for `server` (for the Table II bench
  /// and live dashboards).
  [[nodiscard]] std::array<double, MetricSchema::kRawServerMetrics> last_sample(
      int server) const;

 private:
  void on_tick(std::uint64_t tick);

  pfs::Cluster& cluster_;
  sim::SimDuration window_;
  sim::SimDuration sample_period_;
  std::int64_t samples_per_window_;
  std::unique_ptr<sim::Sampler> sampler_;

  std::vector<std::array<std::int64_t, pfs::Cluster::kNumRawCounters>> prev_counters_;
  std::vector<std::array<double, MetricSchema::kRawServerMetrics>> last_sample_;
  // window index -> per-server aggregates
  std::map<std::int64_t, std::vector<ServerWindow>> windows_;
  // Hot-path cache for on_tick(): consecutive ticks land in the same
  // window, so the current row is resolved once per window instead of one
  // map lookup per tick (map nodes are pointer-stable across inserts).
  std::int64_t cached_window_ = -1;
  std::vector<ServerWindow>* cached_cells_ = nullptr;
};

}  // namespace qif::monitor
