// Server-side monitor (paper §III-B, Table II).
//
// One independent sampling process per monitored server: every simulated
// second it reads the server's cumulative counters, forms the per-second
// delta, and folds it into the current window's sum/mean/std aggregates —
// "All metrics in this section are recorded once every second and a sum,
// mean, and standard deviation over all seconds in a given time window are
// calculated."
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "qif/monitor/schema.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/sim/sampler.hpp"
#include "qif/sim/stats.hpp"

namespace qif::monitor {

/// Finished window aggregates for one server: per raw metric, the window's
/// sum / mean / std over its per-second samples.
struct ServerWindow {
  std::array<sim::RunningStats, MetricSchema::kRawServerMetrics> metrics;
};

class ServerMonitor {
 public:
  /// Samples every `sample_period` (1 s in the paper) and closes a window
  /// every `window` (must be a multiple of the sample period).
  ///
  /// On a lane-partitioned cluster each *server* gets its own sampling
  /// chain on the engine of the lane that owns it — a server's counters are
  /// only ever read from the lane that mutates them — and the per-server
  /// window aggregates are merged into the shared map at stop().  The
  /// chains tick under the server's entity context (simulation.hpp), so
  /// their event keys, and therefore how ticks interleave with same-instant
  /// workload events, are identical for every lane count.
  ServerMonitor(pfs::Cluster& cluster, sim::SimDuration window,
                sim::SimDuration sample_period = sim::kSecond);

  /// Begins sampling; idempotent.
  void start();
  void stop();

  /// Fills the server-side slice of the per-server feature vector for a
  /// closed window.  `out` must hold MetricSchema::kServerFeatures doubles.
  /// Unknown windows yield zeros (server was idle / run ended first).
  void fill_features(std::int64_t window_index, int server, double* out) const;

  /// Cell-based fill for the assembly hot path: resolve the window's cell
  /// row once via window_cells(), then fill each server from its cell.
  /// `sw == nullptr` writes zeros (idle window).
  static void fill_features_from(const ServerWindow* sw, double* out);

  /// All per-server aggregates of one window, or nullptr when no sample
  /// landed in that window.
  [[nodiscard]] const std::vector<ServerWindow>* window_cells(
      std::int64_t window_index) const;

  [[nodiscard]] const ServerWindow* window_data(std::int64_t window_index, int server) const;
  [[nodiscard]] std::vector<std::int64_t> window_indices() const;
  [[nodiscard]] sim::SimDuration window() const { return window_; }

  /// Last per-second deltas observed for `server` (for the Table II bench
  /// and live dashboards).
  [[nodiscard]] std::array<double, MetricSchema::kRawServerMetrics> last_sample(
      int server) const;

 private:
  /// One server's sampling chain (lane mode only), on the engine of the
  /// lane owning the server, filling a private per-server window map.
  struct ServerSampler {
    int server = 0;
    std::uint32_t ctx = 0;  // the server's entity context
    sim::Simulation* sim = nullptr;
    std::unique_ptr<sim::Sampler> sampler;
    std::map<std::int64_t, ServerWindow> windows;
    std::int64_t cached_window = -1;
    ServerWindow* cached_cell = nullptr;
  };

  void on_tick(std::uint64_t tick);
  void on_server_tick(ServerSampler& ss, std::uint64_t tick);
  /// One server's per-second delta folded into its window cell.
  void sample_into(int server, ServerWindow& cell);

  pfs::Cluster& cluster_;
  sim::SimDuration window_;
  sim::SimDuration sample_period_;
  std::int64_t samples_per_window_;
  std::unique_ptr<sim::Sampler> sampler_;       // classic mode
  std::vector<std::unique_ptr<ServerSampler>> server_samplers_;  // lane mode

  std::vector<std::array<std::int64_t, pfs::Cluster::kNumRawCounters>> prev_counters_;
  std::vector<std::array<double, MetricSchema::kRawServerMetrics>> last_sample_;
  // window index -> per-server aggregates
  std::map<std::int64_t, std::vector<ServerWindow>> windows_;
  // Hot-path cache for on_tick(): consecutive ticks land in the same
  // window, so the current row is resolved once per window instead of one
  // map lookup per tick (map nodes are pointer-stable across inserts).
  std::int64_t cached_window_ = -1;
  std::vector<ServerWindow>* cached_cells_ = nullptr;
};

}  // namespace qif::monitor
