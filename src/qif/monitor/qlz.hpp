// qlz — a tiny LZ4-style block codec for `.qds` column blocks.
//
// Byte-oriented LZ77 with the classic LZ4 sequence framing: a token byte
// (high nibble = literal count, low nibble = match length - 4, 15 = "more
// length bytes follow"), the literals, a 16-bit little-endian back offset,
// then any extra match-length bytes.  The final sequence is literals-only.
// No entropy stage, so both directions run at memory speed — the point is
// cheap on-disk shrinkage of highly repetitive monitor columns (zero runs,
// repeated window strides), not maximum ratio.
//
// The decompressor is written for hostile input: every read and write is
// bounds-checked against the declared sizes and any violation throws
// std::runtime_error.  It is fuzzed directly (random bytes) and through
// the `.qds` corruption harness under AddressSanitizer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qif::monitor {

/// Worst-case compressed size for `n` input bytes (incompressible data
/// plus framing overhead).
[[nodiscard]] std::size_t qlz_max_compressed_size(std::size_t n);

/// Compresses `src[0..n)` into `dst` (capacity `dst_cap`).  Returns the
/// compressed size, or 0 when the output would not fit in `dst_cap` —
/// callers use a `dst_cap` smaller than `n` to mean "store raw unless
/// compression actually wins".
[[nodiscard]] std::size_t qlz_compress(const void* src, std::size_t n, void* dst,
                                       std::size_t dst_cap);

/// Decompresses exactly `raw_n` bytes out of `src[0..n)` into `dst`.
/// Throws std::runtime_error on any malformed stream: truncated sequence,
/// offset past the start, or output over/underrun.  Never reads or writes
/// out of bounds.
void qlz_decompress(const void* src, std::size_t n, void* dst, std::size_t raw_n);

}  // namespace qif::monitor
