// Per-server feature vector assembly (the "Training Server" input format).
//
// "There will be one vector for each storage server and each vector
// consists of one time window worth of client-side metrics targeting the
// given server and server-side metrics collected from the server."
#pragma once

#include <cstdint>
#include <vector>

#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/schema.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/trace/labeler.hpp"

namespace qif::monitor {

/// One training/evaluation sample: all per-server vectors of one window,
/// flattened server-major, plus its degradation label.
struct Sample {
  std::int64_t window_index = 0;
  std::vector<double> features;  ///< n_servers * MetricSchema::kPerServerDim
  int label = 0;                 ///< degradation bin
  double degradation = 1.0;      ///< raw Level_degrade
};

struct Dataset {
  int n_servers = 0;
  int dim = 0;  ///< per-server vector width
  std::vector<Sample> samples;

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }
  /// Sample count per class (histogram sized to the max label + 1).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;
  /// Appends another dataset with identical shape.
  void append(const Dataset& other);
};

class FeatureAssembler {
 public:
  FeatureAssembler(const ClientMonitor& client, const ServerMonitor& server, int n_servers)
      : client_(client), server_(server), n_servers_(n_servers) {}

  /// Features of one window: n_servers per-server vectors, flattened.
  [[nodiscard]] std::vector<double> window_features(std::int64_t window_index) const;

  /// Joins monitor windows with degradation labels into a dataset.  Only
  /// windows that carry a label (i.e. contained matched target-workload
  /// ops) become samples, mirroring the paper's labelling process.
  [[nodiscard]] Dataset assemble(const std::vector<trace::WindowLabel>& labels) const;

 private:
  const ClientMonitor& client_;
  const ServerMonitor& server_;
  int n_servers_;
};

}  // namespace qif::monitor
