// Columnar window feature storage (the "Training Server" input format).
//
// "There will be one vector for each storage server and each vector
// consists of one time window worth of client-side metrics targeting the
// given server and server-side metrics collected from the server."
//
// Every stage of the pipeline — monitors, campaign shards, split,
// standardization, the GEMM trainer, persistence — shares one columnar
// FeatureTable: a single contiguous row-major feature block of shape
// N x (n_servers * dim) plus parallel window_index / label / degradation
// columns.  Rows never live in per-window vectors; a campaign shard is one
// block copy, and the trainer reads minibatches straight out of the block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/schema.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/trace/labeler.hpp"

namespace qif::monitor {

/// Columnar dataset: one contiguous feature block + parallel per-row
/// columns.  The shape (n_servers, dim) is fixed once rows exist; all
/// mutation goes through append_row/append, which grow every column in
/// lockstep so the parallel-array invariant cannot be broken from outside.
///
/// A table either *owns* its columns (the default) or *borrows* them from
/// an external image via from_borrowed() — the zero-copy mmap path, where
/// the columns live inside a mapped `.qds` file.  A borrowed table is
/// read-only: every mutating member throws std::logic_error, as do the
/// vector-returning column accessors (use the *_data() pointers, which
/// work for both storage modes).  The borrower must keep the backing image
/// alive for the table's lifetime (MappedDataset in qds_file.hpp pairs the
/// two).
class FeatureTable {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  FeatureTable() = default;
  FeatureTable(int n_servers, int dim) { set_shape(n_servers, dim); }

  [[nodiscard]] int n_servers() const { return n_servers_; }
  [[nodiscard]] int dim() const { return dim_; }
  /// Flattened row width: n_servers * dim.
  [[nodiscard]] std::size_t width() const {
    return static_cast<std::size_t>(n_servers_) * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] std::size_t size() const {
    return borrowed_ ? borrowed_rows_ : window_index_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// True when the columns alias external storage (see from_borrowed).
  [[nodiscard]] bool borrowed() const { return borrowed_; }

  /// Sets the shape.  Throws std::invalid_argument when rows already exist
  /// with a different shape, or when exactly one of n_servers/dim is zero.
  void set_shape(int n_servers, int dim);
  /// Reinterprets the existing block with a new factorization of the same
  /// row width (e.g. (S, D) -> (1, S*D) for the flat-net ablation).
  /// Throws std::invalid_argument when the widths differ.
  void reshape(int n_servers, int dim);
  /// Reserves capacity in every column for `rows` total rows.
  void reserve(std::size_t rows);
  void clear();

  // Column access as vectors (owned tables only — throws std::logic_error
  // on a borrowed table; prefer the *_data() pointers below).
  [[nodiscard]] const std::vector<double>& feature_block() const {
    require_owned("feature_block");
    return features_;
  }
  [[nodiscard]] std::vector<double>& mutable_feature_block() {
    require_owned("mutable_feature_block");
    return features_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& window_index_column() const {
    require_owned("window_index_column");
    return window_index_;
  }
  [[nodiscard]] const std::vector<int>& label_column() const {
    require_owned("label_column");
    return label_;
  }
  [[nodiscard]] const std::vector<double>& degradation_column() const {
    require_owned("degradation_column");
    return degradation_;
  }

  // Column access as raw pointers (length size(); valid for owned and
  // borrowed storage alike — the canonical way to read columns).
  [[nodiscard]] const double* feature_data() const {
    return borrowed_ ? b_features_ : features_.data();
  }
  [[nodiscard]] const std::int64_t* window_index_data() const {
    return borrowed_ ? b_window_index_ : window_index_.data();
  }
  [[nodiscard]] const int* label_data() const {
    return borrowed_ ? b_label_ : label_.data();
  }
  [[nodiscard]] const double* degradation_data() const {
    return borrowed_ ? b_degradation_ : degradation_.data();
  }

  // Row access.
  [[nodiscard]] const double* row(std::size_t i) const { return feature_data() + i * width(); }
  [[nodiscard]] double* row(std::size_t i) {
    require_owned("row (mutable)");
    return features_.data() + i * width();
  }
  [[nodiscard]] std::int64_t window_index(std::size_t i) const {
    return window_index_data()[i];
  }
  [[nodiscard]] int label(std::size_t i) const { return label_data()[i]; }
  [[nodiscard]] double degradation(std::size_t i) const { return degradation_data()[i]; }
  /// One row's features copied out (interop convenience; the hot paths
  /// read row() in place).
  [[nodiscard]] std::vector<double> row_vector(std::size_t i) const {
    return {row(i), row(i) + width()};
  }

  /// Appends one row and returns a pointer to its (uninitialized) feature
  /// storage for the caller to fill.  Throws std::invalid_argument when no
  /// shape is set.
  double* append_row(std::int64_t window_index, int label, double degradation);
  /// Appends one row, copying `features` (width() doubles).
  void append_row(std::int64_t window_index, int label, double degradation,
                  const double* features);
  /// Appends another table with identical shape (adopting its shape when
  /// this table has none).  Throws std::invalid_argument on mismatch.
  void append(const FeatureTable& other);

  /// Assembles a table from whole columns (the `.qds` loader path: each
  /// column is read as one block and moved in).  Throws
  /// std::invalid_argument when the column lengths disagree.
  [[nodiscard]] static FeatureTable from_columns(int n_servers, int dim,
                                                 std::vector<std::int64_t> window_index,
                                                 std::vector<int> label,
                                                 std::vector<double> degradation,
                                                 std::vector<double> features);

  /// Wraps external column storage without copying (the mmap zero-copy
  /// path).  The caller owns the backing memory and must keep it alive
  /// and unchanged for the table's lifetime; `features` must hold
  /// rows * n_servers * dim doubles and the other columns `rows` entries.
  /// The resulting table is read-only (see class comment).
  [[nodiscard]] static FeatureTable from_borrowed(int n_servers, int dim, std::size_t rows,
                                                  const std::int64_t* window_index,
                                                  const std::int32_t* label,
                                                  const double* degradation,
                                                  const double* features);

  /// Index of the row carrying `w`, assuming window_index_column() is
  /// ascending (true for monitor-assembled tables); npos when absent.
  [[nodiscard]] std::size_t find_window_sorted(std::int64_t w) const;

  /// Sample count per class (histogram sized to the max label + 1).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  void require_owned(const char* what) const;

  int n_servers_ = 0;
  int dim_ = 0;
  std::vector<double> features_;          ///< size() * width(), row-major
  std::vector<std::int64_t> window_index_;
  std::vector<int> label_;
  std::vector<double> degradation_;
  // Borrowed (zero-copy) storage; the vectors above stay empty.
  bool borrowed_ = false;
  std::size_t borrowed_rows_ = 0;
  const std::int64_t* b_window_index_ = nullptr;
  const int* b_label_ = nullptr;
  const double* b_degradation_ = nullptr;
  const double* b_features_ = nullptr;
};

/// The historical name: every layer that consumed monitor::Dataset now
/// consumes the columnar table.
using Dataset = FeatureTable;

/// Non-owning, index-based view of a FeatureTable's rows.  Views are what
/// split_dataset returns: membership lives in a row-index vector, the
/// feature block is never copied.  A view built straight from a table (the
/// implicit conversion) is an identity view and stores no indices at all.
/// Views compose: splitting a view yields views into the same table.
class TableView {
 public:
  TableView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a table is its own view.
  TableView(const FeatureTable& table) : table_(&table), identity_(true) {}
  TableView(const FeatureTable&& table) = delete;  // no views of temporaries
  TableView(const FeatureTable& table, std::vector<std::size_t> rows)
      : table_(&table), rows_(std::move(rows)) {}
  TableView(const FeatureTable&& table, std::vector<std::size_t> rows) = delete;

  [[nodiscard]] const FeatureTable* table() const { return table_; }
  [[nodiscard]] bool identity() const { return identity_; }
  [[nodiscard]] std::size_t size() const {
    if (identity_) return table_->size();
    return rows_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] int n_servers() const { return table_ != nullptr ? table_->n_servers() : 0; }
  [[nodiscard]] int dim() const { return table_ != nullptr ? table_->dim() : 0; }
  [[nodiscard]] std::size_t width() const { return table_ != nullptr ? table_->width() : 0; }

  /// Underlying table row index of view row k.
  [[nodiscard]] std::size_t base_row(std::size_t k) const { return identity_ ? k : rows_[k]; }
  [[nodiscard]] const double* row(std::size_t k) const { return table_->row(base_row(k)); }
  [[nodiscard]] std::int64_t window_index(std::size_t k) const {
    return table_->window_index(base_row(k));
  }
  [[nodiscard]] int label(std::size_t k) const { return table_->label(base_row(k)); }
  [[nodiscard]] double degradation(std::size_t k) const {
    return table_->degradation(base_row(k));
  }
  [[nodiscard]] std::vector<double> row_vector(std::size_t k) const {
    return table_->row_vector(base_row(k));
  }

  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Copies the viewed rows into a standalone table (view order preserved).
  [[nodiscard]] FeatureTable materialize() const;

 private:
  const FeatureTable* table_ = nullptr;
  bool identity_ = false;
  std::vector<std::size_t> rows_;
};

/// Random access to dataset rows without committing to a storage layout —
/// the streaming-ingestion seam.  An in-RAM TableView (ViewRows), a subset
/// of another source (SubsetRows), and a sharded on-disk dataset
/// (ShardedDataset in qds_file.hpp) all implement it, so the trainer's
/// chunked path runs identically over all three.  row(i) returns a pointer
/// that stays valid only until the next row() call on the same source
/// (shard-backed sources may drop pages between calls); callers consume a
/// row before fetching the next.
class RowAccess {
 public:
  virtual ~RowAccess() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual int n_servers() const = 0;
  [[nodiscard]] virtual int dim() const = 0;
  [[nodiscard]] virtual const double* row(std::size_t i) const = 0;
  [[nodiscard]] virtual std::int64_t window_index(std::size_t i) const = 0;
  [[nodiscard]] virtual int label(std::size_t i) const = 0;
  [[nodiscard]] virtual double degradation(std::size_t i) const = 0;

  [[nodiscard]] std::size_t width() const {
    return static_cast<std::size_t>(n_servers()) * static_cast<std::size_t>(dim());
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Sample count per class (histogram sized to the max label + 1).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;
  /// Copies every row into a standalone table (source order preserved).
  [[nodiscard]] FeatureTable materialize() const;
};

/// RowAccess over a TableView.  Keeps a reference — the view (and its
/// table) must outlive the adapter.
class ViewRows final : public RowAccess {
 public:
  explicit ViewRows(const TableView& view) : view_(&view) {}

  [[nodiscard]] std::size_t size() const override { return view_->size(); }
  [[nodiscard]] int n_servers() const override { return view_->n_servers(); }
  [[nodiscard]] int dim() const override { return view_->dim(); }
  [[nodiscard]] const double* row(std::size_t i) const override { return view_->row(i); }
  [[nodiscard]] std::int64_t window_index(std::size_t i) const override {
    return view_->window_index(i);
  }
  [[nodiscard]] int label(std::size_t i) const override { return view_->label(i); }
  [[nodiscard]] double degradation(std::size_t i) const override {
    return view_->degradation(i);
  }

 private:
  const TableView* view_;
};

/// RowAccess over an index subset of another RowAccess (what split_rows
/// produces for streaming sources).  Keeps a reference to the base.
class SubsetRows final : public RowAccess {
 public:
  SubsetRows(const RowAccess& base, std::vector<std::size_t> rows)
      : base_(&base), rows_(std::move(rows)) {}

  [[nodiscard]] std::size_t size() const override { return rows_.size(); }
  [[nodiscard]] int n_servers() const override { return base_->n_servers(); }
  [[nodiscard]] int dim() const override { return base_->dim(); }
  [[nodiscard]] const double* row(std::size_t i) const override {
    return base_->row(rows_[i]);
  }
  [[nodiscard]] std::int64_t window_index(std::size_t i) const override {
    return base_->window_index(rows_[i]);
  }
  [[nodiscard]] int label(std::size_t i) const override { return base_->label(rows_[i]); }
  [[nodiscard]] double degradation(std::size_t i) const override {
    return base_->degradation(rows_[i]);
  }
  [[nodiscard]] const std::vector<std::size_t>& rows() const { return rows_; }

 private:
  const RowAccess* base_;
  std::vector<std::size_t> rows_;
};

class FeatureAssembler {
 public:
  /// `with_fault_features` widens every per-server vector with the client
  /// fault-path block (retries/timeouts/failed ops) — set on fault-injected
  /// runs only, so healthy datasets keep the historical 37-wide layout.
  FeatureAssembler(const ClientMonitor& client, const ServerMonitor& server, int n_servers,
                   bool with_fault_features = false)
      : client_(client),
        server_(server),
        n_servers_(n_servers),
        with_fault_features_(with_fault_features) {}

  /// Per-server vector width under this assembler's layout.
  [[nodiscard]] int dim() const {
    return with_fault_features_ ? MetricSchema::kPerServerDimFaults
                                : MetricSchema::kPerServerDim;
  }

  /// Writes one window's features (n_servers per-server vectors, flattened
  /// server-major) into `out`, which must hold n_servers * dim().
  void fill_window(std::int64_t window_index, double* out) const;

  /// Features of one window as a fresh vector (online/predictor path).
  [[nodiscard]] std::vector<double> window_features(std::int64_t window_index) const;

  /// Joins monitor windows with degradation labels into a table.  Only
  /// windows that carry a label (i.e. contained matched target-workload
  /// ops) become rows, mirroring the paper's labelling process.  One
  /// reserve, zero per-window allocations.
  [[nodiscard]] FeatureTable assemble(const std::vector<trace::WindowLabel>& labels) const;

 private:
  const ClientMonitor& client_;
  const ServerMonitor& server_;
  int n_servers_;
  bool with_fault_features_ = false;
};

}  // namespace qif::monitor
