// File-backed `.qds` access: memory-mapped single files and sharded
// multi-file datasets behind a manifest.
//
// Mmap lifecycle: map_dataset_qds() opens and maps the whole file
// read-only, validates every byte (the same validation pass as the
// buffered reader — header, per-block checksums, padding, exact size),
// then either *borrows* the column payloads in place (version-2 images
// whose blocks are all raw — their payloads are 8-aligned by
// construction) or materializes an owned table (version-1 or compressed
// images).  The returned MappedDataset pairs the table with a
// shared_ptr<MappedFile> keepalive, so the mapping cannot outlive its
// consumers; dropping the MappedDataset unmaps.
//
// Manifest (`.qdm`) schema — strict line-oriented text:
//
//   qif.qdm 1
//   shape <n_servers> <dim> <total_rows>
//   shard <rows> <fnv64-hex> <filename>
//   ...
//   end
//
// <fnv64-hex> is the shard file's whole-image checksum (16 lowercase hex
// digits of qds_image_checksum), verified against the mapped bytes on
// open — without it, a corrupted file name could alias to a DIFFERENT
// valid shard of the same shape and serve the wrong rows silently.
// Shard filenames are relative to the manifest's directory and may not
// contain whitespace.  The trailing `end` line (and required final
// newline) make truncation detectable; the shard row counts must sum to
// <total_rows>; every shard header is re-validated against the manifest
// shape when opened.  Shard order in the manifest IS the dataset row
// order (deterministic, like stitch_case_results), so shard → merge
// round-trips byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "qif/monitor/export.hpp"
#include "qif/monitor/features.hpp"

namespace qif::monitor {

/// RAII read-only memory mapping of a whole file (mmap/munmap).  Throws
/// std::runtime_error when the file cannot be opened, stat'ed, or mapped.
/// A zero-byte file maps to data() == nullptr, size() == 0.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Tells the kernel the resident pages are no longer needed
  /// (madvise(MADV_DONTNEED) — on a read-only file mapping this discards
  /// clean pages, so they re-fault from disk on next touch).  The data
  /// stays valid; this only bounds RSS.
  void drop_pages() const;

 private:
  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A dataset loaded from one `.qds` file via mmap.  `zero_copy` reports
/// whether the table borrows the mapping in place (v2, all blocks raw) or
/// was materialized (v1 / compressed).  The table must not outlive `file`;
/// keep the whole struct together.
struct MappedDataset {
  FeatureTable table;
  bool zero_copy = false;
  std::shared_ptr<MappedFile> file;  ///< null when the table owns its columns

  void drop_pages() const {
    if (file != nullptr) file->drop_pages();
  }
};

/// Maps and validates one `.qds` file (see file comment for the
/// lifecycle).  Throws std::runtime_error on I/O failure or any corruption
/// — identical taxonomy to read_dataset_qds.
[[nodiscard]] MappedDataset map_dataset_qds(const std::string& path);

/// One manifest entry: a shard's row count, its file name (relative to
/// the manifest's directory), and its whole-file checksum.
struct ShardInfo {
  std::size_t rows = 0;
  std::string file;
  std::uint64_t checksum = 0;  ///< qds_image_checksum of the shard file
};

/// Parsed `.qdm` manifest.
struct Manifest {
  int n_servers = 0;
  int dim = 0;
  std::size_t rows = 0;
  std::vector<ShardInfo> shards;
};

/// True when the leading bytes are the `.qdm` manifest magic ("qif.qdm ").
[[nodiscard]] bool is_qdm_magic(const char* bytes, std::size_t n);

/// Strict manifest parser: bad magic, malformed lines, a missing `end`,
/// duplicate/unknown keywords, or row counts that do not sum to the
/// declared total all throw std::runtime_error.
[[nodiscard]] Manifest read_manifest(std::istream& is);
[[nodiscard]] Manifest read_manifest_file(const std::string& path);

void write_manifest(std::ostream& os, const Manifest& m);
void write_manifest_file(const std::string& path, const Manifest& m);

/// Splits `ds` into shards of `rows_per_shard` rows (the last shard takes
/// the remainder), written as `<prefix>.NNN.qds` next to a `<prefix>.qdm`
/// manifest.  Row order is preserved exactly.  Returns the manifest path.
std::string write_sharded_dataset(const std::string& prefix, const TableView& ds,
                                  std::size_t rows_per_shard,
                                  const QdsWriteOptions& options = {});

/// Incremental producer of a sharded dataset: add() streams each chunk to
/// disk as `<prefix>.NNN.qds` the moment it arrives (a long campaign's
/// windows hit disk case by case instead of accumulating in RAM), and
/// finish() seals the `<prefix>.qdm` manifest.  Chunk arrival order IS the
/// dataset row order, so streaming the per-case shards of a campaign in
/// declaration order produces a dataset byte-identical to the in-RAM
/// stitch (write_sharded_dataset is this class driven by one loop).
///
/// Empty chunks are skipped (they would add manifest entries without
/// rows); all non-empty chunks must share one shape.  finish() with zero
/// total rows throws — a manifest needs a concrete shape.  add() after
/// finish(), or finish() twice, is a logic error and throws.
class ShardStreamWriter {
 public:
  explicit ShardStreamWriter(std::string prefix, QdsWriteOptions options = {});

  /// Writes `chunk` as the next shard file.  Throws on shape mismatch or
  /// I/O failure.
  void add(const TableView& chunk);

  /// Writes the manifest and returns its path.
  std::string finish();

  [[nodiscard]] std::size_t rows() const { return manifest_.rows; }
  [[nodiscard]] std::size_t n_shards() const { return manifest_.shards.size(); }

 private:
  std::string prefix_;
  std::string stem_;  ///< manifest stores shard basenames
  QdsWriteOptions options_;
  Manifest manifest_;
  bool finished_ = false;
};

/// A sharded dataset opened for streaming access: every shard is mapped
/// (zero-copy when its file allows) and rows are addressed globally in
/// manifest order.  Implements RowAccess, so the chunked trainer consumes
/// it directly.
///
/// `memory_budget_bytes` (0 = unlimited) bounds the resident set: row()
/// accounting tracks bytes touched through the mappings, and when the
/// running total passes the budget the file-backed pages are dropped
/// (madvise(MADV_DONTNEED)) and the counter resets.  Pages re-fault on
/// next touch, trading I/O for a bounded RSS — the knob that lets a 10M-
/// window dataset train in a fixed footprint.
class ShardedDataset final : public RowAccess {
 public:
  [[nodiscard]] static ShardedDataset open(const std::string& manifest_path,
                                           std::size_t memory_budget_bytes = 0);

  [[nodiscard]] std::size_t size() const override { return rows_; }
  [[nodiscard]] int n_servers() const override { return n_servers_; }
  [[nodiscard]] int dim() const override { return dim_; }
  [[nodiscard]] const double* row(std::size_t i) const override;
  [[nodiscard]] std::int64_t window_index(std::size_t i) const override;
  [[nodiscard]] int label(std::size_t i) const override;
  [[nodiscard]] double degradation(std::size_t i) const override;

  [[nodiscard]] std::size_t n_shards() const { return shards_.size(); }
  [[nodiscard]] const FeatureTable& shard(std::size_t k) const { return shards_[k].table; }
  /// Global row index of shard k's first row.
  [[nodiscard]] std::size_t shard_offset(std::size_t k) const { return offsets_[k]; }
  /// True when every shard is consumed zero-copy from its mapping.
  [[nodiscard]] bool zero_copy() const;

  /// Drops file-backed pages of every mapped shard (see class comment).
  void drop_pages() const;

 private:
  /// Shard index holding global row i (cached: epoch sweeps are mostly
  /// sequential, so the common case is a single comparison).
  [[nodiscard]] std::size_t shard_for(std::size_t i) const;
  /// Budget accounting for an access about to be read at `addr`: counts
  /// distinct pages touched (see the implementation comment).  `slot` 0 is
  /// the feature column, 1 the meta columns — separate last-page caches so
  /// interleaved row()/label() reads still dedupe.
  void charge(const void* addr, std::size_t slot) const;

  int n_servers_ = 0;
  int dim_ = 0;
  std::size_t rows_ = 0;
  std::vector<MappedDataset> shards_;
  std::vector<std::size_t> offsets_;  ///< per-shard first global row, plus total
  std::size_t memory_budget_bytes_ = 0;
  mutable std::size_t last_shard_ = 0;
  mutable std::size_t touched_bytes_ = 0;
  mutable std::uintptr_t last_page_[2] = {0, 0};  ///< dedupes same-page charges
};

}  // namespace qif::monitor
