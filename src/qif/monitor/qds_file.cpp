#include "qif/monitor/qds_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace qif::monitor {
namespace {

[[noreturn]] void fail_file(const std::string& path, const char* what) {
  throw std::runtime_error(path + ": " + what + " (" + std::strerror(errno) + ")");
}

}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail_file(path, "cannot open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_file(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ != 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail_file(path, "cannot mmap");
    }
    data_ = static_cast<const char*>(p);
  }
  ::close(fd);  // the mapping keeps the file alive
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    path_ = std::move(other.path_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::drop_pages() const {
  if (data_ == nullptr) return;
  // Best-effort: a failing madvise only means the pages stay resident.
  (void)::madvise(const_cast<char*>(data_), size_, MADV_DONTNEED);
}

MappedDataset map_dataset_qds(const std::string& path) {
  auto file = std::make_shared<MappedFile>(path);
  const QdsImageView view = inspect_dataset_qds(file->data(), file->size());
  MappedDataset out;
  if (view.zero_copy) {
    out.table = FeatureTable::from_borrowed(view.n_servers, view.dim, view.rows,
                                            view.window_index, view.label,
                                            view.degradation, view.features);
    out.zero_copy = true;
    out.file = std::move(file);
  } else {
    // v1 or compressed: materialize from the mapping, then let it unmap.
    out.table = parse_dataset_qds(file->data(), file->size());
  }
  return out;
}

namespace {

constexpr char kQdmMagicLine[] = "qif.qdm 1";

[[noreturn]] void fail_manifest(const char* what) {
  throw std::runtime_error(std::string(".qdm manifest: ") + what);
}

template <typename Int>
Int parse_manifest_int(std::string_view token, const char* what) {
  Int value{};
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail_manifest(what);
  }
  return value;
}

/// Splits a line on single spaces; empty tokens (doubled/leading/trailing
/// spaces) are kept so malformed spacing is rejected, not normalized.
std::vector<std::string_view> split_line(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t sp = line.find(' ', begin);
    if (sp == std::string_view::npos) {
      out.push_back(line.substr(begin));
      return out;
    }
    out.push_back(line.substr(begin, sp - begin));
    begin = sp + 1;
  }
}

}  // namespace

bool is_qdm_magic(const char* bytes, std::size_t n) {
  // "qif.qdm " — enough to distinguish from .qds and CSV in 8 bytes.
  return n >= 8 && std::memcmp(bytes, "qif.qdm ", 8) == 0;
}

namespace {

/// Parses exactly 16 lowercase hex digits (the manifest's checksum field).
std::uint64_t parse_manifest_hex(std::string_view token) {
  if (token.size() != 16) fail_manifest("malformed shard checksum");
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                         value, 16);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail_manifest("malformed shard checksum");
  }
  // from_chars already rejects uppercase and signs for unsigned parses;
  // the explicit alphabet check pins the grammar to exactly [0-9a-f]{16}.
  for (const char c : token) {
    if ((c < '0' || c > '9') && (c < 'a' || c > 'f')) {
      fail_manifest("malformed shard checksum");
    }
  }
  return value;
}

std::string format_manifest_hex(std::uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace

Manifest read_manifest(std::istream& is) {
  // Slurped so the trailing newline is checkable: getline would silently
  // accept a final line with its terminator truncated away.
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = std::move(buf).str();
  if (text.empty() || text.back() != '\n') {
    fail_manifest("truncated (missing final newline)");
  }
  std::vector<std::string_view> lines;
  std::size_t begin = 0;
  const std::string_view all(text);
  while (begin < all.size()) {
    const std::size_t nl = all.find('\n', begin);
    lines.push_back(all.substr(begin, nl - begin));
    begin = nl + 1;
  }
  if (lines.empty() || lines[0] != kQdmMagicLine) fail_manifest("bad magic line");
  if (lines.size() < 2) fail_manifest("truncated (missing shape line)");
  const auto shape = split_line(lines[1]);
  if (shape.size() != 4 || shape[0] != "shape") fail_manifest("malformed shape line");
  Manifest m;
  m.n_servers = parse_manifest_int<int>(shape[1], "malformed n_servers");
  m.dim = parse_manifest_int<int>(shape[2], "malformed dim");
  m.rows = parse_manifest_int<std::size_t>(shape[3], "malformed row count");
  if (m.n_servers < 0 || m.dim < 0 || (m.n_servers == 0) != (m.dim == 0)) {
    fail_manifest("invalid shape");
  }
  bool saw_end = false;
  std::size_t total = 0;
  for (std::size_t k = 2; k < lines.size(); ++k) {
    if (saw_end) fail_manifest("trailing garbage after end line");
    if (lines[k] == "end") {
      saw_end = true;
      continue;
    }
    const auto tokens = split_line(lines[k]);
    if (tokens.size() != 4 || tokens[0] != "shard") fail_manifest("malformed shard line");
    ShardInfo shard;
    shard.rows = parse_manifest_int<std::size_t>(tokens[1], "malformed shard row count");
    shard.checksum = parse_manifest_hex(tokens[2]);
    shard.file = std::string(tokens[3]);
    if (shard.file.empty()) fail_manifest("empty shard file name");
    if (shard.file.front() == '/' || shard.file.find("..") != std::string::npos) {
      fail_manifest("shard file name must be a plain relative path");
    }
    total += shard.rows;
    if (total < shard.rows || total > m.rows) {
      fail_manifest("shard row counts exceed declared total");
    }
    m.shards.push_back(std::move(shard));
  }
  if (!saw_end) fail_manifest("truncated (missing end line)");
  if (total != m.rows) fail_manifest("shard row counts do not sum to declared total");
  return m;
}

Manifest read_manifest_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error(path + ": cannot open manifest");
  return read_manifest(is);
}

void write_manifest(std::ostream& os, const Manifest& m) {
  os << kQdmMagicLine << '\n';
  os << "shape " << m.n_servers << ' ' << m.dim << ' ' << m.rows << '\n';
  for (const ShardInfo& shard : m.shards) {
    if (shard.file.find(' ') != std::string::npos) {
      fail_manifest("shard file name contains a space");
    }
    os << "shard " << shard.rows << ' ' << format_manifest_hex(shard.checksum) << ' '
       << shard.file << '\n';
  }
  os << "end\n";
  if (!os) fail_manifest("write failed");
}

void write_manifest_file(const std::string& path, const Manifest& m) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error(path + ": cannot create manifest");
  write_manifest(os, m);
}

ShardStreamWriter::ShardStreamWriter(std::string prefix, QdsWriteOptions options)
    : prefix_(std::move(prefix)),
      stem_(std::filesystem::path(prefix_).filename().string()),  // manifest
                                                                  // stores basenames
      options_(options) {
  if (stem_.empty() || stem_.find(' ') != std::string::npos) {
    throw std::invalid_argument("ShardStreamWriter: bad prefix");
  }
}

void ShardStreamWriter::add(const TableView& chunk) {
  if (finished_) throw std::logic_error("ShardStreamWriter: add() after finish()");
  if (chunk.empty()) return;
  if (manifest_.rows == 0) {
    manifest_.n_servers = chunk.n_servers();
    manifest_.dim = chunk.dim();
  } else if (chunk.n_servers() != manifest_.n_servers || chunk.dim() != manifest_.dim) {
    throw std::invalid_argument("ShardStreamWriter: chunk shape mismatch");
  }
  std::string num = std::to_string(manifest_.shards.size());
  if (num.size() < 3) num.insert(0, 3 - num.size(), '0');
  const std::string path = prefix_ + "." + num + ".qds";
  // Serialize in memory first: the manifest pins each shard's exact
  // bytes, so the checksum must cover what actually hits the disk.
  std::ostringstream image;
  if (chunk.identity()) {
    write_dataset_qds(image, *chunk.table(), options_);
  } else {
    write_dataset_qds(image, chunk.materialize(), options_);
  }
  const std::string bytes = std::move(image).str();
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error(path + ": cannot create shard");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error(path + ": shard write failed");
  manifest_.shards.push_back(
      {chunk.size(), stem_ + "." + num + ".qds",
       qds_image_checksum(bytes.data(), bytes.size())});
  manifest_.rows += chunk.size();
}

std::string ShardStreamWriter::finish() {
  if (finished_) throw std::logic_error("ShardStreamWriter: finish() twice");
  if (manifest_.rows == 0) {
    throw std::runtime_error("ShardStreamWriter: no rows streamed — nothing to seal");
  }
  finished_ = true;
  const std::string manifest_path = prefix_ + ".qdm";
  write_manifest_file(manifest_path, manifest_);
  return manifest_path;
}

std::string write_sharded_dataset(const std::string& prefix, const TableView& ds,
                                  std::size_t rows_per_shard,
                                  const QdsWriteOptions& options) {
  if (rows_per_shard == 0) {
    throw std::invalid_argument("write_sharded_dataset: rows_per_shard must be positive");
  }
  ShardStreamWriter writer(prefix, options);
  const std::size_t n_shards = (ds.size() + rows_per_shard - 1) / rows_per_shard;
  for (std::size_t k = 0; k < n_shards; ++k) {
    const std::size_t lo = k * rows_per_shard;
    const std::size_t hi = std::min(lo + rows_per_shard, ds.size());
    Dataset chunk(ds.n_servers(), ds.dim());
    chunk.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      chunk.append_row(ds.window_index(i), ds.label(i), ds.degradation(i), ds.row(i));
    }
    writer.add(chunk);
  }
  return writer.finish();
}

ShardedDataset ShardedDataset::open(const std::string& manifest_path,
                                    std::size_t memory_budget_bytes) {
  const Manifest m = read_manifest_file(manifest_path);
  const std::filesystem::path dir = std::filesystem::path(manifest_path).parent_path();
  ShardedDataset out;
  out.n_servers_ = m.n_servers;
  out.dim_ = m.dim;
  out.rows_ = m.rows;
  out.memory_budget_bytes_ = memory_budget_bytes;
  out.shards_.reserve(m.shards.size());
  out.offsets_.reserve(m.shards.size() + 1);
  std::size_t offset = 0;
  for (const ShardInfo& info : m.shards) {
    // Map first, then pin the file's exact bytes against the manifest's
    // checksum BEFORE interpreting them: a corrupted name or swapped file
    // could otherwise alias to a different valid shard of the same shape.
    auto file = std::make_shared<MappedFile>((dir / info.file).string());
    if (qds_image_checksum(file->data(), file->size()) != info.checksum) {
      throw std::runtime_error(info.file + ": shard bytes disagree with manifest checksum");
    }
    MappedDataset shard;
    const QdsImageView view = inspect_dataset_qds(file->data(), file->size());
    if (view.zero_copy) {
      shard.table = FeatureTable::from_borrowed(view.n_servers, view.dim, view.rows,
                                                view.window_index, view.label,
                                                view.degradation, view.features);
      shard.zero_copy = true;
      shard.file = std::move(file);
    } else {
      shard.table = parse_dataset_qds(file->data(), file->size());
    }
    if (shard.table.n_servers() != m.n_servers || shard.table.dim() != m.dim) {
      throw std::runtime_error(info.file + ": shard shape disagrees with manifest");
    }
    if (shard.table.size() != info.rows) {
      throw std::runtime_error(info.file + ": shard row count disagrees with manifest");
    }
    // Checksum + block validation just faulted in this whole shard; under
    // a budget, release the pages now so opening an N-shard dataset costs
    // one shard of RSS, not the whole file.
    if (memory_budget_bytes != 0) shard.drop_pages();
    out.offsets_.push_back(offset);
    offset += info.rows;
    out.shards_.push_back(std::move(shard));
  }
  out.offsets_.push_back(offset);
  return out;
}

std::size_t ShardedDataset::shard_for(std::size_t i) const {
  if (offsets_[last_shard_] <= i && i < offsets_[last_shard_ + 1]) return last_shard_;
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  last_shard_ = static_cast<std::size_t>(it - offsets_.begin()) - 1;
  return last_shard_;
}

void ShardedDataset::charge(const void* addr, std::size_t slot) const {
  if (memory_budget_bytes_ == 0) return;
  // Page-granular accounting: an access faults whole pages, so byte
  // counting would let a shuffled epoch (one page per random row) make
  // most of the file resident before the counter reaches the budget.
  // Charging per distinct page is exact for sequential sweeps and the
  // right order of magnitude for random access.  The feature column and
  // the meta columns dedupe through separate slots — a gather loop
  // alternates row(i)/label(i), which would defeat a single last-page.
  constexpr std::uintptr_t kPageShift = 12;
  const auto page = reinterpret_cast<std::uintptr_t>(addr) >> kPageShift;
  if (page == last_page_[slot]) return;
  last_page_[slot] = page;
  const std::size_t row_bytes = width() * sizeof(double);
  touched_bytes_ += std::max<std::size_t>(row_bytes, std::size_t{1} << kPageShift);
  if (touched_bytes_ >= memory_budget_bytes_) {
    drop_pages();
    touched_bytes_ = 0;
  }
}

const double* ShardedDataset::row(std::size_t i) const {
  const std::size_t k = shard_for(i);
  const double* r = shards_[k].table.row(i - offsets_[k]);
  charge(r, 0);
  return r;
}

std::int64_t ShardedDataset::window_index(std::size_t i) const {
  const std::size_t k = shard_for(i);
  const std::int64_t* p = shards_[k].table.window_index_data() + (i - offsets_[k]);
  charge(p, 1);
  return *p;
}

int ShardedDataset::label(std::size_t i) const {
  const std::size_t k = shard_for(i);
  const int* p = shards_[k].table.label_data() + (i - offsets_[k]);
  charge(p, 1);
  return *p;
}

double ShardedDataset::degradation(std::size_t i) const {
  const std::size_t k = shard_for(i);
  const double* p = shards_[k].table.degradation_data() + (i - offsets_[k]);
  charge(p, 1);
  return *p;
}

bool ShardedDataset::zero_copy() const {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const MappedDataset& s) { return s.zero_copy; });
}

void ShardedDataset::drop_pages() const {
  for (const MappedDataset& shard : shards_) shard.drop_pages();
}

}  // namespace qif::monitor
