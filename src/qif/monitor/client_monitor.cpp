#include "qif/monitor/client_monitor.hpp"

#include <algorithm>

namespace qif::monitor {

ClientMonitor::ClientMonitor(std::int32_t job, sim::SimDuration window, int n_servers,
                             int mdt_server_index)
    : job_(job), window_(window), n_servers_(n_servers), mdt_server_index_(mdt_server_index) {}

void ClientMonitor::observe(const trace::OpRecord& rec) {
  if (rec.job != job_) return;
  ++ops_observed_;
  // Ops are bucketed by *start* time, matching the labeler, so a window's
  // features and its label describe the same set of requests.
  const std::int64_t w = rec.start / window_;
  if (w != cached_window_ || cached_cells_ == nullptr) {
    auto it = windows_.find(w);
    if (it == windows_.end()) {
      it = windows_.emplace(w, std::vector<ClientWindow>(static_cast<std::size_t>(n_servers_)))
               .first;
    }
    cached_window_ = w;
    cached_cells_ = &it->second;
  }
  auto& cells = *cached_cells_;

  std::vector<int>& servers = scratch_targets_;
  servers.clear();
  servers.reserve(rec.targets.size());
  for (std::int32_t t : rec.targets) {
    const int s = t == trace::kMdtTarget ? mdt_server_index_ : t;
    if (s >= 0 && s < n_servers_) servers.push_back(s);
  }
  if (servers.empty()) return;

  // Bytes are split evenly over the op's target servers (the record does
  // not carry per-extent splits); durations are attributed in full to each
  // target since the op overlapped all of them.
  const std::int64_t bytes_share =
      rec.bytes / static_cast<std::int64_t>(servers.size());
  const double dur_s = sim::to_seconds(rec.duration());
  for (int s : servers) {
    ClientWindow& c = cells[static_cast<std::size_t>(s)];
    switch (rec.type) {
      case pfs::OpType::kRead:
        c.n_read += 1;
        c.bytes_read += bytes_share;
        break;
      case pfs::OpType::kWrite:
        c.n_write += 1;
        c.bytes_write += bytes_share;
        break;
      default:
        c.n_meta += 1;
        break;
    }
    c.io_time_s += dur_s;
    // Fault counters attribute in full to every target, like durations: a
    // timed-out op was stuck on all the servers it straddled.
    c.retries += rec.retries;
    c.timeouts += rec.timeouts;
    c.failed_ops += rec.failed ? 1 : 0;
  }
}

const std::vector<ClientWindow>* ClientMonitor::window_cells(
    std::int64_t window_index) const {
  const auto it = windows_.find(window_index);
  return it == windows_.end() ? nullptr : &it->second;
}

const ClientWindow* ClientMonitor::cell(std::int64_t window_index, int server) const {
  const std::vector<ClientWindow>* cells = window_cells(window_index);
  return cells == nullptr ? nullptr : &(*cells)[static_cast<std::size_t>(server)];
}

std::vector<std::int64_t> ClientMonitor::window_indices() const {
  std::vector<std::int64_t> out;
  out.reserve(windows_.size());
  for (const auto& [w, cells] : windows_) {
    (void)cells;
    out.push_back(w);
  }
  return out;
}

void ClientMonitor::fill_features_from(const ClientWindow& c, sim::SimDuration window,
                                       double* out) {
  const double win_s = sim::to_seconds(window);
  const auto total_bytes = static_cast<double>(c.bytes_total());
  out[0] = static_cast<double>(c.n_read);
  out[1] = static_cast<double>(c.n_write);
  out[2] = static_cast<double>(c.n_meta);
  out[3] = static_cast<double>(c.n_total());
  out[4] = static_cast<double>(c.bytes_read);
  out[5] = static_cast<double>(c.bytes_write);
  out[6] = total_bytes;
  out[7] = c.io_time_s;
  out[8] = c.io_time_s > 0 ? total_bytes / c.io_time_s : 0.0;  // throughput
  out[9] = static_cast<double>(c.n_total()) / win_s;           // IOPS
}

void ClientMonitor::fill_fault_features_from(const ClientWindow& c, double* out) {
  out[0] = static_cast<double>(c.retries);
  out[1] = static_cast<double>(c.timeouts);
  out[2] = static_cast<double>(c.failed_ops);
}

void ClientMonitor::fill_features(std::int64_t window_index, int server, double* out) const {
  const ClientWindow* c = cell(window_index, server);
  const ClientWindow empty;
  fill_features_from(c == nullptr ? empty : *c, window_, out);
}

void ClientMonitor::fill_fault_features(std::int64_t window_index, int server,
                                        double* out) const {
  const ClientWindow* c = cell(window_index, server);
  const ClientWindow empty;
  fill_fault_features_from(c == nullptr ? empty : *c, out);
}

}  // namespace qif::monitor
