#include "qif/monitor/features.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace qif::monitor {

void FeatureTable::require_owned(const char* what) const {
  if (borrowed_) {
    throw std::logic_error(std::string("FeatureTable::") + what +
                           ": table borrows external (mmap) storage and is read-only");
  }
}

void FeatureTable::set_shape(int n_servers, int dim) {
  if (n_servers == n_servers_ && dim == dim_) return;
  require_owned("set_shape");
  if (!empty()) {
    throw std::invalid_argument("FeatureTable::set_shape: table already has rows");
  }
  if ((n_servers == 0) != (dim == 0) || n_servers < 0 || dim < 0) {
    throw std::invalid_argument("FeatureTable::set_shape: invalid shape");
  }
  n_servers_ = n_servers;
  dim_ = dim;
}

void FeatureTable::reshape(int n_servers, int dim) {
  const auto new_width =
      static_cast<std::size_t>(n_servers) * static_cast<std::size_t>(dim);
  if (n_servers <= 0 || dim <= 0 || new_width != width()) {
    throw std::invalid_argument("FeatureTable::reshape: row width must be preserved");
  }
  n_servers_ = n_servers;
  dim_ = dim;
}

void FeatureTable::reserve(std::size_t rows) {
  require_owned("reserve");
  features_.reserve(rows * width());
  window_index_.reserve(rows);
  label_.reserve(rows);
  degradation_.reserve(rows);
}

void FeatureTable::clear() {
  // Clearing a borrowed table releases the borrow: it becomes an empty
  // owned table with the same shape.
  borrowed_ = false;
  borrowed_rows_ = 0;
  b_window_index_ = nullptr;
  b_label_ = nullptr;
  b_degradation_ = nullptr;
  b_features_ = nullptr;
  features_.clear();
  window_index_.clear();
  label_.clear();
  degradation_.clear();
}

double* FeatureTable::append_row(std::int64_t window_index, int label, double degradation) {
  require_owned("append_row");
  if (width() == 0) {
    throw std::invalid_argument("FeatureTable::append_row: shape not set");
  }
  features_.resize(features_.size() + width());
  window_index_.push_back(window_index);
  label_.push_back(label);
  degradation_.push_back(degradation);
  return features_.data() + features_.size() - width();
}

void FeatureTable::append_row(std::int64_t window_index, int label, double degradation,
                              const double* features) {
  double* dst = append_row(window_index, label, degradation);
  std::copy(features, features + width(), dst);
}

void FeatureTable::append(const FeatureTable& other) {
  require_owned("append");
  // The assert this check replaces vanished in release builds and let a
  // mismatched shard silently corrupt the row geometry.
  if (n_servers_ != 0 && other.n_servers_ != 0 &&
      (n_servers_ != other.n_servers_ || dim_ != other.dim_)) {
    throw std::invalid_argument("FeatureTable::append: shape mismatch");
  }
  if (n_servers_ == 0) set_shape(other.n_servers_, other.dim_);
  // Read through the data pointers so a borrowed (mmap-backed) source
  // appends without materializing first — the `qif dataset merge` path.
  const std::size_t n = other.size();
  features_.insert(features_.end(), other.feature_data(),
                   other.feature_data() + n * other.width());
  window_index_.insert(window_index_.end(), other.window_index_data(),
                       other.window_index_data() + n);
  label_.insert(label_.end(), other.label_data(), other.label_data() + n);
  degradation_.insert(degradation_.end(), other.degradation_data(),
                      other.degradation_data() + n);
}

FeatureTable FeatureTable::from_columns(int n_servers, int dim,
                                        std::vector<std::int64_t> window_index,
                                        std::vector<int> label,
                                        std::vector<double> degradation,
                                        std::vector<double> features) {
  FeatureTable out;
  out.set_shape(n_servers, dim);
  const std::size_t rows = window_index.size();
  if (label.size() != rows || degradation.size() != rows ||
      features.size() != rows * out.width() || (out.width() == 0 && rows != 0)) {
    throw std::invalid_argument("FeatureTable::from_columns: column lengths disagree");
  }
  out.window_index_ = std::move(window_index);
  out.label_ = std::move(label);
  out.degradation_ = std::move(degradation);
  out.features_ = std::move(features);
  return out;
}

FeatureTable FeatureTable::from_borrowed(int n_servers, int dim, std::size_t rows,
                                         const std::int64_t* window_index,
                                         const std::int32_t* label,
                                         const double* degradation,
                                         const double* features) {
  static_assert(sizeof(int) == sizeof(std::int32_t), "label column is borrowed as i32");
  FeatureTable out;
  out.set_shape(n_servers, dim);
  if (out.width() == 0 && rows != 0) {
    throw std::invalid_argument("FeatureTable::from_borrowed: rows without a shape");
  }
  out.borrowed_ = true;
  out.borrowed_rows_ = rows;
  out.b_window_index_ = window_index;
  out.b_label_ = reinterpret_cast<const int*>(label);
  out.b_degradation_ = degradation;
  out.b_features_ = features;
  return out;
}

std::size_t FeatureTable::find_window_sorted(std::int64_t w) const {
  const std::int64_t* first = window_index_data();
  const std::int64_t* last = first + size();
  const auto* it = std::lower_bound(first, last, w);
  if (it == last || *it != w) return npos;
  return static_cast<std::size_t>(it - first);
}

std::vector<std::size_t> FeatureTable::class_histogram() const {
  const int* labels = label_data();
  const std::size_t n = size();
  int max_label = 0;
  for (std::size_t i = 0; i < n; ++i) max_label = std::max(max_label, labels[i]);
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) hist[static_cast<std::size_t>(labels[i])] += 1;
  return hist;
}

std::vector<std::size_t> TableView::class_histogram() const {
  int max_label = 0;
  for (std::size_t k = 0; k < size(); ++k) max_label = std::max(max_label, label(k));
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (std::size_t k = 0; k < size(); ++k) hist[static_cast<std::size_t>(label(k))] += 1;
  return hist;
}

FeatureTable TableView::materialize() const {
  FeatureTable out;
  if (table_ == nullptr || table_->n_servers() == 0) return out;
  out.set_shape(n_servers(), dim());
  out.reserve(size());
  for (std::size_t k = 0; k < size(); ++k) {
    out.append_row(window_index(k), label(k), degradation(k), row(k));
  }
  return out;
}

std::vector<std::size_t> RowAccess::class_histogram() const {
  const std::size_t n = size();
  int max_label = 0;
  for (std::size_t i = 0; i < n; ++i) max_label = std::max(max_label, label(i));
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) hist[static_cast<std::size_t>(label(i))] += 1;
  return hist;
}

FeatureTable RowAccess::materialize() const {
  FeatureTable out;
  if (n_servers() == 0) return out;
  out.set_shape(n_servers(), dim());
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.append_row(window_index(i), label(i), degradation(i), row(i));
  }
  return out;
}

void FeatureAssembler::fill_window(std::int64_t window_index, double* out) const {
  // Hot path for campaign assembly: resolve each monitor's cell row for
  // this window once, then fill every server from it — instead of one map
  // lookup per (window, server) per slice.  Every slot in the vector is
  // written by a fill helper (client + optional fault + server slices
  // cover dim() exactly), so no zero pre-fill is needed.
  const int d = dim();
  const std::vector<ClientWindow>* ccells = client_.window_cells(window_index);
  const std::vector<ServerWindow>* scells = server_.window_cells(window_index);
  const ClientWindow empty_client;
  const sim::SimDuration win = client_.window();
  for (int s = 0; s < n_servers_; ++s) {
    double* vec = out + static_cast<std::size_t>(s) * d;
    const ClientWindow& c =
        ccells == nullptr ? empty_client : (*ccells)[static_cast<std::size_t>(s)];
    ClientMonitor::fill_features_from(c, win, vec);
    double* rest = vec + MetricSchema::kClientFeatures;
    if (with_fault_features_) {
      ClientMonitor::fill_fault_features_from(c, rest);
      rest += MetricSchema::kFaultFeatures;
    }
    ServerMonitor::fill_features_from(
        scells == nullptr ? nullptr : &(*scells)[static_cast<std::size_t>(s)], rest);
  }
}

std::vector<double> FeatureAssembler::window_features(std::int64_t window_index) const {
  std::vector<double> out(static_cast<std::size_t>(n_servers_) * static_cast<std::size_t>(dim()),
                          0.0);
  fill_window(window_index, out.data());
  return out;
}

FeatureTable FeatureAssembler::assemble(const std::vector<trace::WindowLabel>& labels) const {
  FeatureTable ds(n_servers_, dim());
  ds.reserve(labels.size());
  for (const trace::WindowLabel& lbl : labels) {
    fill_window(lbl.window_index, ds.append_row(lbl.window_index, lbl.label, lbl.degradation));
  }
  return ds;
}

}  // namespace qif::monitor
