#include "qif/monitor/features.hpp"

#include <algorithm>
#include <cassert>

namespace qif::monitor {

std::vector<std::size_t> Dataset::class_histogram() const {
  int max_label = 0;
  for (const auto& s : samples) max_label = std::max(max_label, s.label);
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (const auto& s : samples) hist[static_cast<std::size_t>(s.label)] += 1;
  return hist;
}

void Dataset::append(const Dataset& other) {
  assert((empty() || other.empty() ||
          (n_servers == other.n_servers && dim == other.dim)) &&
         "dataset shapes must match");
  if (n_servers == 0) {
    n_servers = other.n_servers;
    dim = other.dim;
  }
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

std::vector<double> FeatureAssembler::window_features(std::int64_t window_index) const {
  const int dim = MetricSchema::kPerServerDim;
  std::vector<double> out(static_cast<std::size_t>(n_servers_) * dim, 0.0);
  for (int s = 0; s < n_servers_; ++s) {
    double* vec = out.data() + static_cast<std::size_t>(s) * dim;
    client_.fill_features(window_index, s, vec);
    server_.fill_features(window_index, s, vec + MetricSchema::kClientFeatures);
  }
  return out;
}

Dataset FeatureAssembler::assemble(const std::vector<trace::WindowLabel>& labels) const {
  Dataset ds;
  ds.n_servers = n_servers_;
  ds.dim = MetricSchema::kPerServerDim;
  ds.samples.reserve(labels.size());
  for (const trace::WindowLabel& lbl : labels) {
    Sample s;
    s.window_index = lbl.window_index;
    s.features = window_features(lbl.window_index);
    s.label = lbl.label;
    s.degradation = lbl.degradation;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

}  // namespace qif::monitor
