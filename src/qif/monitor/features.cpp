#include "qif/monitor/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace qif::monitor {

void FeatureTable::set_shape(int n_servers, int dim) {
  if (n_servers == n_servers_ && dim == dim_) return;
  if (!empty()) {
    throw std::invalid_argument("FeatureTable::set_shape: table already has rows");
  }
  if ((n_servers == 0) != (dim == 0) || n_servers < 0 || dim < 0) {
    throw std::invalid_argument("FeatureTable::set_shape: invalid shape");
  }
  n_servers_ = n_servers;
  dim_ = dim;
}

void FeatureTable::reshape(int n_servers, int dim) {
  const auto new_width =
      static_cast<std::size_t>(n_servers) * static_cast<std::size_t>(dim);
  if (n_servers <= 0 || dim <= 0 || new_width != width()) {
    throw std::invalid_argument("FeatureTable::reshape: row width must be preserved");
  }
  n_servers_ = n_servers;
  dim_ = dim;
}

void FeatureTable::reserve(std::size_t rows) {
  features_.reserve(rows * width());
  window_index_.reserve(rows);
  label_.reserve(rows);
  degradation_.reserve(rows);
}

void FeatureTable::clear() {
  features_.clear();
  window_index_.clear();
  label_.clear();
  degradation_.clear();
}

double* FeatureTable::append_row(std::int64_t window_index, int label, double degradation) {
  if (width() == 0) {
    throw std::invalid_argument("FeatureTable::append_row: shape not set");
  }
  features_.resize(features_.size() + width());
  window_index_.push_back(window_index);
  label_.push_back(label);
  degradation_.push_back(degradation);
  return features_.data() + features_.size() - width();
}

void FeatureTable::append_row(std::int64_t window_index, int label, double degradation,
                              const double* features) {
  double* dst = append_row(window_index, label, degradation);
  std::copy(features, features + width(), dst);
}

void FeatureTable::append(const FeatureTable& other) {
  // The assert this check replaces vanished in release builds and let a
  // mismatched shard silently corrupt the row geometry.
  if (n_servers_ != 0 && other.n_servers_ != 0 &&
      (n_servers_ != other.n_servers_ || dim_ != other.dim_)) {
    throw std::invalid_argument("FeatureTable::append: shape mismatch");
  }
  if (n_servers_ == 0) set_shape(other.n_servers_, other.dim_);
  features_.insert(features_.end(), other.features_.begin(), other.features_.end());
  window_index_.insert(window_index_.end(), other.window_index_.begin(),
                       other.window_index_.end());
  label_.insert(label_.end(), other.label_.begin(), other.label_.end());
  degradation_.insert(degradation_.end(), other.degradation_.begin(),
                      other.degradation_.end());
}

FeatureTable FeatureTable::from_columns(int n_servers, int dim,
                                        std::vector<std::int64_t> window_index,
                                        std::vector<int> label,
                                        std::vector<double> degradation,
                                        std::vector<double> features) {
  FeatureTable out;
  out.set_shape(n_servers, dim);
  const std::size_t rows = window_index.size();
  if (label.size() != rows || degradation.size() != rows ||
      features.size() != rows * out.width() || (out.width() == 0 && rows != 0)) {
    throw std::invalid_argument("FeatureTable::from_columns: column lengths disagree");
  }
  out.window_index_ = std::move(window_index);
  out.label_ = std::move(label);
  out.degradation_ = std::move(degradation);
  out.features_ = std::move(features);
  return out;
}

std::size_t FeatureTable::find_window_sorted(std::int64_t w) const {
  const auto it = std::lower_bound(window_index_.begin(), window_index_.end(), w);
  if (it == window_index_.end() || *it != w) return npos;
  return static_cast<std::size_t>(it - window_index_.begin());
}

std::vector<std::size_t> FeatureTable::class_histogram() const {
  int max_label = 0;
  for (const int l : label_) max_label = std::max(max_label, l);
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (const int l : label_) hist[static_cast<std::size_t>(l)] += 1;
  return hist;
}

std::vector<std::size_t> TableView::class_histogram() const {
  int max_label = 0;
  for (std::size_t k = 0; k < size(); ++k) max_label = std::max(max_label, label(k));
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_label) + 1, 0);
  for (std::size_t k = 0; k < size(); ++k) hist[static_cast<std::size_t>(label(k))] += 1;
  return hist;
}

FeatureTable TableView::materialize() const {
  FeatureTable out;
  if (table_ == nullptr || table_->n_servers() == 0) return out;
  out.set_shape(n_servers(), dim());
  out.reserve(size());
  for (std::size_t k = 0; k < size(); ++k) {
    out.append_row(window_index(k), label(k), degradation(k), row(k));
  }
  return out;
}

void FeatureAssembler::fill_window(std::int64_t window_index, double* out) const {
  const int d = dim();
  for (int s = 0; s < n_servers_; ++s) {
    double* vec = out + static_cast<std::size_t>(s) * d;
    std::fill(vec, vec + d, 0.0);
    client_.fill_features(window_index, s, vec);
    double* rest = vec + MetricSchema::kClientFeatures;
    if (with_fault_features_) {
      client_.fill_fault_features(window_index, s, rest);
      rest += MetricSchema::kFaultFeatures;
    }
    server_.fill_features(window_index, s, rest);
  }
}

std::vector<double> FeatureAssembler::window_features(std::int64_t window_index) const {
  std::vector<double> out(static_cast<std::size_t>(n_servers_) * static_cast<std::size_t>(dim()),
                          0.0);
  fill_window(window_index, out.data());
  return out;
}

FeatureTable FeatureAssembler::assemble(const std::vector<trace::WindowLabel>& labels) const {
  FeatureTable ds(n_servers_, dim());
  ds.reserve(labels.size());
  for (const trace::WindowLabel& lbl : labels) {
    fill_window(lbl.window_index, ds.append_row(lbl.window_index, lbl.label, lbl.degradation));
  }
  return ds;
}

}  // namespace qif::monitor
