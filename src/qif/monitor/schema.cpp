#include "qif/monitor/schema.hpp"

namespace qif::monitor {

const char* group_name(FeatureGroup g) {
  switch (g) {
    case FeatureGroup::kClient: return "client";
    case FeatureGroup::kIoSpeed: return "io_speed";
    case FeatureGroup::kDevice: return "device";
    case FeatureGroup::kQueue: return "queue";
  }
  return "?";
}

const std::vector<std::string>& MetricSchema::raw_server_metric_names() {
  static const std::vector<std::string> kNames = {
      "completed_reads",  "completed_writes", "sectors_read",
      "sectors_written",  "read_merges",      "write_merges",
      "queued_requests",  "busy_ticks",       "weighted_queue_ticks",
  };
  return kNames;
}

MetricSchema::MetricSchema(bool with_fault_features)
    : with_fault_features_(with_fault_features) {
  features_.reserve(with_fault_features ? kPerServerDimFaults : kPerServerDim);
  // Client-side block (paper §III-A): request counts by class, byte sums,
  // actual I/O time plus derived throughput and IOPS.
  const char* client_names[kClientFeatures] = {
      "cli_n_read",     "cli_n_write",     "cli_n_meta",   "cli_n_total",
      "cli_bytes_read", "cli_bytes_write", "cli_bytes_total",
      "cli_io_time_s",  "cli_throughput_bps", "cli_iops",
  };
  for (const char* n : client_names) features_.push_back({n, FeatureGroup::kClient});

  // Fault-path block: present only on fault-injected runs (see header).
  if (with_fault_features) {
    features_.push_back({"cli_retries", FeatureGroup::kClient});
    features_.push_back({"cli_timeouts", FeatureGroup::kClient});
    features_.push_back({"cli_failed_ops", FeatureGroup::kClient});
  }

  // Server-side block: window sum/mean/std of each per-second raw counter.
  static const FeatureGroup kRawGroups[kRawServerMetrics] = {
      FeatureGroup::kIoSpeed, FeatureGroup::kIoSpeed,  // completions
      FeatureGroup::kDevice,  FeatureGroup::kDevice,   // sectors
      FeatureGroup::kQueue,   FeatureGroup::kQueue,    // merges
      FeatureGroup::kQueue,   FeatureGroup::kQueue,    // arrivals, busy
      FeatureGroup::kQueue,                            // weighted queue time
  };
  static const char* kAggNames[kAggregatesPerMetric] = {"sum", "mean", "std"};
  const auto& raw = raw_server_metric_names();
  for (int m = 0; m < kRawServerMetrics; ++m) {
    for (int a = 0; a < kAggregatesPerMetric; ++a) {
      features_.push_back(
          {"srv_" + raw[static_cast<std::size_t>(m)] + "_" + kAggNames[a], kRawGroups[m]});
    }
  }
}

std::uint64_t MetricSchema::layout_hash() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](const char* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(p[i]);
      h *= 1099511628211ull;
    }
  };
  for (const FeatureInfo& f : features_) {
    mix(f.name.data(), f.name.size());
    const char sep = '\0';
    mix(&sep, 1);
    const char g = static_cast<char>(f.group);
    mix(&g, 1);
  }
  return h;
}

std::vector<int> MetricSchema::group_indices(FeatureGroup g) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(features_.size()); ++i) {
    if (features_[static_cast<std::size_t>(i)].group == g) out.push_back(i);
  }
  return out;
}

}  // namespace qif::monitor
