// Attention-pooling network over per-server vectors.
//
// The paper's future work: "we plan to further investigate other possible
// network architectures, such as transformers".  This model replaces the
// kernel-based design's concatenate-in-server-order head with additive
// attention pooling:
//
//   e_s   = ReLU(W1 x_s + b1)          shared per-server embedding
//   u_s   = tanh(W2 e_s + b2)          attention pre-activation
//   a     = softmax_s(v . u_s)         attention weights over servers
//   pooled = sum_s a_s e_s             order-free aggregate
//   logits = MLP(pooled)
//
// Unlike the kernel net — whose head weights are tied to server *slots* —
// attention pooling is permutation-invariant over servers: the same load
// observed on a different subset of OSTs produces the same prediction by
// construction.  bench/ablation_attention quantifies the trade-off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "qif/ml/nn.hpp"

namespace qif::ml {

struct AttentionNetConfig {
  int per_server_dim = 37;
  int n_servers = 7;
  int n_classes = 2;
  int embed_dim = 32;              ///< E: shared embedding width
  int attention_dim = 16;          ///< A: additive-attention width
  std::vector<int> head_hidden = {32};
  std::uint64_t seed = 7;
};

class AttentionNet {
 public:
  AttentionNet() = default;
  explicit AttentionNet(const AttentionNetConfig& config);

  /// Optional GEMM thread pool (not owned; bit-identical results either
  /// way).  Clear with set_pool(nullptr) before the pool dies.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Training forward: X is (B, S*D); returns logits (B, C) by reference
  /// into a layer-owned buffer (valid until the next call).
  const Matrix& forward(MatView x);
  void backward(MatView dlogits);
  void step(const AdamParams& params, std::int64_t t);

  [[nodiscard]] Matrix forward_inference(MatView x) const;

  /// Caller-owned buffers for forward_batch (one per serving thread;
  /// capacity is warm after the first full-size batch, after which batched
  /// inference performs zero heap allocations).
  struct Scratch {
    Matrix embed;       ///< (B*S, E) post-ReLU embeddings
    Matrix u;           ///< (B*S, A) attention pre-activations
    Matrix scores;      ///< (B*S, 1) == (B, S) attention scores
    Matrix alpha;       ///< (B, S) attention weights
    Matrix ping, pong;  ///< pooled vector + head ping-pong buffers
  };
  /// Batched inference through caller-owned scratch: X is (B, S*D), the
  /// returned view is the (B, C) logits (valid until the scratch is next
  /// written); `s.alpha` holds the attention weights afterwards.  Each
  /// row's result is bit-identical to forward_inference on that row alone.
  MatView forward_batch(MatView x, Scratch& s, exec::ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::vector<int> predict(MatView x) const;
  /// Attention weights over servers for one sample (which servers the
  /// model attends to).
  [[nodiscard]] std::vector<double> attention_weights(
      const std::vector<double>& features) const;

  [[nodiscard]] const AttentionNetConfig& config() const { return config_; }

  /// Total learnable parameter count across every layer.
  [[nodiscard]] std::size_t param_count() const;
  /// Binary in-memory weight snapshot (embed, attention, head layers; per
  /// layer W row-major then b); restore() is the bit-exact inverse.
  void snapshot_into(std::vector<double>& out) const;
  [[nodiscard]] std::vector<double> snapshot() const;
  void restore(const std::vector<double>& snap);

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  struct ForwardState {
    const Matrix* embed = nullptr;  // (B*S, E) post-ReLU embeddings (relu buffer)
    Matrix alpha;                   // (B, S) attention weights
    Matrix pooled;                  // (B, E)
  };

  AttentionNetConfig config_;
  Dense embed_;
  ReLU embed_relu_;
  Dense attn_hidden_;   // W2 (E -> A)
  Tanh attn_tanh_;
  Dense attn_score_;    // v   (A -> 1)
  std::vector<Dense> head_layers_;
  std::vector<ReLU> head_relus_;
  ForwardState cache_;  // from the last training forward
  Matrix dalpha_, dembed_, dscores_;  // persistent backward scratch
  exec::ThreadPool* pool_ = nullptr;
};

}  // namespace qif::ml
