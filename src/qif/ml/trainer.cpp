#include "qif/ml/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "qif/exec/thread_pool.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ml {
namespace {

/// Gathers the idx[lo..hi) rows of the view into `out` (resized in place),
/// standardizing on the fly: table block -> batch buffer is the only copy
/// on the training path.
void gather_batch_into(const monitor::TableView& ds, const Standardizer& stdz,
                       const std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi,
                       Matrix& xb, std::vector<int>& yb) {
  const std::size_t width = ds.width();
  xb.resize(hi - lo, width);
  yb.resize(hi - lo);
  const bool standardize = stdz.fitted();
  for (std::size_t k = lo; k < hi; ++k) {
    const double* src = ds.row(idx[k]);
    if (standardize) {
      stdz.transform_into(src, width, xb.row(k - lo));
    } else {
      std::copy(src, src + width, xb.row(k - lo));
    }
    yb[k - lo] = ds.label(idx[k]);
  }
}

/// Attaches a pool to the net for the duration of a scope; detaches on
/// exit so the net never outlives a dangling pool pointer.
struct PoolGuard {
  KernelNet& net;
  explicit PoolGuard(KernelNet& n, exec::ThreadPool* pool) : net(n) { net.set_pool(pool); }
  ~PoolGuard() { net.set_pool(nullptr); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
};

}  // namespace

TrainResult Trainer::train(KernelNet& net, Standardizer& stdz,
                           const monitor::TableView& train_ds) const {
  TrainResult result;
  if (train_ds.empty()) return result;

  // Validation carve-out for early stopping.
  auto [fit_ds, val_ds] =
      split_dataset(train_ds, config_.validation_fraction,
                    sim::Rng::derive_seed(config_.seed, "val-split"));
  if (fit_ds.empty()) fit_ds = train_ds;  // tiny datasets: validate on train

  stdz.fit(fit_ds);
  // Validation is standardized once; training batches standardize lazily
  // out of the table, so the old dataset-sized `x` matrix is gone.
  Matrix xv;
  std::vector<int> yv;
  gather_standardized(val_ds.empty() ? fit_ds : val_ds, &stdz, xv, yv);

  const int n_classes = net.config().n_classes;
  const std::vector<double> weights =
      config_.class_weighted ? inverse_frequency_weights(fit_ds, n_classes)
                             : std::vector<double>{};

  sim::Rng rng(sim::Rng::derive_seed(config_.seed, "shuffle"));
  std::vector<std::size_t> idx(fit_ds.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  // GEMM fan-out: the row-block partitioning makes results bit-identical
  // at every job count, so the pool is purely a throughput knob.
  std::unique_ptr<exec::ThreadPool> pool;
  if (config_.jobs > 1) pool = std::make_unique<exec::ThreadPool>(config_.jobs);
  const PoolGuard guard(net, pool.get());

  std::vector<double> best_weights;  // binary snapshot of the best epoch
  Matrix xb;                         // persistent minibatch buffers
  std::vector<int> yb;
  double best_f1 = -1.0;
  int best_epoch = 0;
  int since_best = 0;
  std::int64_t adam_t = 0;

  for (int epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    // Shuffle each epoch.
    for (std::size_t i = idx.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t lo = 0; lo < idx.size(); lo += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t hi =
          std::min(idx.size(), lo + static_cast<std::size_t>(config_.batch_size));
      gather_batch_into(fit_ds, stdz, idx, lo, hi, xb, yb);
      const Matrix& logits = net.forward(xb);
      auto [loss, dlogits] = SoftmaxXent::loss_and_grad(logits, yb, weights);
      net.backward(dlogits);
      net.step(config_.adam, ++adam_t);
      loss_sum += loss;
      ++batches;
    }

    // Validation macro-F1.
    ConfusionMatrix cm(n_classes);
    cm.add_all(yv, net.predict(xv));
    const double val_f1 = cm.macro_f1();
    result.history.push_back(
        EpochStats{epoch, loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1)),
                   val_f1});
    if (config_.verbose) {
      std::printf("epoch %3d  loss %.4f  val macro-F1 %.4f\n", epoch,
                  result.history.back().train_loss, val_f1);
    }
    if (val_f1 > best_f1) {
      best_f1 = val_f1;
      best_epoch = epoch;
      since_best = 0;
      net.snapshot_into(best_weights);
    } else if (++since_best >= config_.patience) {
      break;
    }
  }

  // Restore the best snapshot.
  if (best_f1 >= 0.0) net.restore(best_weights);
  result.best_epoch = best_epoch;
  result.best_val_macro_f1 = best_f1;
  return result;
}

ConfusionMatrix Trainer::evaluate(const KernelNet& net, const Standardizer& stdz,
                                  const monitor::TableView& test) {
  ConfusionMatrix cm(net.config().n_classes);
  if (test.empty()) return cm;
  Matrix x;
  std::vector<int> y;
  gather_standardized(test, &stdz, x, y);
  cm.add_all(y, net.predict(x));
  return cm;
}

}  // namespace qif::ml
