#include "qif/ml/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "qif/exec/thread_pool.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ml {
namespace {

/// Gathers source rows fit_idx[idx[lo..hi)] into `xb`/`yb` (resized in
/// place), standardizing on the fly: source row -> batch buffer is the
/// only copy on the training path.  `fit_idx` maps the shuffled epoch
/// positions to source rows, exactly like the old view-of-indices did.
void gather_batch_into(const monitor::RowAccess& rows, const Standardizer& stdz,
                       const std::vector<std::size_t>& fit_idx,
                       const std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi,
                       Matrix& xb, std::vector<int>& yb) {
  const std::size_t width = rows.width();
  xb.resize(hi - lo, width);
  yb.resize(hi - lo);
  const bool standardize = stdz.fitted();
  for (std::size_t k = lo; k < hi; ++k) {
    const std::size_t src_row = fit_idx[idx[k]];
    const double* src = rows.row(src_row);
    if (standardize) {
      stdz.transform_into(src, width, xb.row(k - lo));
    } else {
      std::copy(src, src + width, xb.row(k - lo));
    }
    yb[k - lo] = rows.label(src_row);
  }
}

/// Attaches a pool to the net for the duration of a scope; detaches on
/// exit so the net never outlives a dangling pool pointer.
struct PoolGuard {
  KernelNet& net;
  explicit PoolGuard(KernelNet& n, exec::ThreadPool* pool) : net(n) { net.set_pool(pool); }
  ~PoolGuard() { net.set_pool(nullptr); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
};

}  // namespace

TrainResult Trainer::train(KernelNet& net, Standardizer& stdz,
                           const monitor::TableView& train_ds) const {
  const monitor::ViewRows rows(train_ds);
  return train_rows(net, stdz, rows);
}

TrainResult Trainer::train_rows(KernelNet& net, Standardizer& stdz,
                                const monitor::RowAccess& rows) const {
  TrainResult result;
  if (rows.empty()) return result;

  // Validation carve-out for early stopping.  split_rows uses the same
  // RNG stream and ordering as split_dataset did here, so the fit/val
  // membership is unchanged.
  auto [fit_idx, val_idx] = split_rows(rows.size(), config_.validation_fraction,
                                       sim::Rng::derive_seed(config_.seed, "val-split"));
  if (fit_idx.empty()) {
    // Tiny datasets: train (and validate) on everything.
    fit_idx.resize(rows.size());
    for (std::size_t i = 0; i < fit_idx.size(); ++i) fit_idx[i] = i;
  }

  stdz.fit(rows, fit_idx);
  // Training batches standardize lazily out of the source, and validation
  // predicts in fixed-size chunks below — nothing dataset-sized (not even
  // a val-sized activation matrix) is ever built, which is what keeps the
  // streaming path inside its RSS budget.
  const std::vector<std::size_t>& vidx = val_idx.empty() ? fit_idx : val_idx;

  const int n_classes = net.config().n_classes;
  const std::vector<double> weights =
      config_.class_weighted ? inverse_frequency_weights(rows, fit_idx, n_classes)
                             : std::vector<double>{};

  sim::Rng rng(sim::Rng::derive_seed(config_.seed, "shuffle"));
  std::vector<std::size_t> idx(fit_idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  // GEMM fan-out: the row-block partitioning makes results bit-identical
  // at every job count, so the pool is purely a throughput knob.
  std::unique_ptr<exec::ThreadPool> pool;
  if (config_.jobs > 1) pool = std::make_unique<exec::ThreadPool>(config_.jobs);
  const PoolGuard guard(net, pool.get());

  std::vector<double> best_weights;  // binary snapshot of the best epoch
  Matrix xb;                         // persistent minibatch buffers
  std::vector<int> yb;
  Matrix xv;                         // persistent validation-chunk buffers
  std::vector<int> yv;
  std::vector<std::size_t> vidx_chunk;
  double best_f1 = -1.0;
  int best_epoch = 0;
  int since_best = 0;
  std::int64_t adam_t = 0;

  for (int epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    // Shuffle each epoch.
    for (std::size_t i = idx.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t lo = 0; lo < idx.size(); lo += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t hi =
          std::min(idx.size(), lo + static_cast<std::size_t>(config_.batch_size));
      gather_batch_into(rows, stdz, fit_idx, idx, lo, hi, xb, yb);
      const Matrix& logits = net.forward(xb);
      auto [loss, dlogits] = SoftmaxXent::loss_and_grad(logits, yb, weights);
      net.backward(dlogits);
      net.step(config_.adam, ++adam_t);
      loss_sum += loss;
      ++batches;
    }

    // Validation macro-F1, chunked like evaluate_rows: each row's
    // prediction is independent of the batching, so the F1 (and thus the
    // best-epoch choice and the saved weights) is identical to the old
    // whole-matrix predict — only the peak memory changes.
    ConfusionMatrix cm(n_classes);
    constexpr std::size_t kValChunk = 4096;
    for (std::size_t lo = 0; lo < vidx.size(); lo += kValChunk) {
      const std::size_t hi = std::min(vidx.size(), lo + kValChunk);
      vidx_chunk.assign(vidx.begin() + static_cast<std::ptrdiff_t>(lo),
                        vidx.begin() + static_cast<std::ptrdiff_t>(hi));
      gather_standardized(rows, vidx_chunk, &stdz, xv, yv);
      cm.add_all(yv, net.predict(xv));
    }
    const double val_f1 = cm.macro_f1();
    result.history.push_back(
        EpochStats{epoch, loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1)),
                   val_f1});
    if (config_.verbose) {
      std::printf("epoch %3d  loss %.4f  val macro-F1 %.4f\n", epoch,
                  result.history.back().train_loss, val_f1);
    }
    if (val_f1 > best_f1) {
      best_f1 = val_f1;
      best_epoch = epoch;
      since_best = 0;
      net.snapshot_into(best_weights);
    } else if (++since_best >= config_.patience) {
      break;
    }
  }

  // Restore the best snapshot.
  if (best_f1 >= 0.0) net.restore(best_weights);
  result.best_epoch = best_epoch;
  result.best_val_macro_f1 = best_f1;
  return result;
}

ConfusionMatrix Trainer::evaluate(const KernelNet& net, const Standardizer& stdz,
                                  const monitor::TableView& test) {
  ConfusionMatrix cm(net.config().n_classes);
  if (test.empty()) return cm;
  Matrix x;
  std::vector<int> y;
  gather_standardized(test, &stdz, x, y);
  cm.add_all(y, net.predict(x));
  return cm;
}

ConfusionMatrix Trainer::evaluate_rows(const KernelNet& net, const Standardizer& stdz,
                                       const monitor::RowAccess& rows) {
  ConfusionMatrix cm(net.config().n_classes);
  constexpr std::size_t kChunk = 1024;  // bounds the gather, not the math:
  // per-row predictions are independent of the chunking.
  Matrix x;
  std::vector<int> y;
  std::vector<std::size_t> idx;
  for (std::size_t lo = 0; lo < rows.size(); lo += kChunk) {
    const std::size_t hi = std::min(rows.size(), lo + kChunk);
    idx.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) idx[i - lo] = i;
    gather_standardized(rows, idx, &stdz, x, y);
    cm.add_all(y, net.predict(x));
  }
  return cm;
}

}  // namespace qif::ml
