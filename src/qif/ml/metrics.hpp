// Classification metrics: confusion matrices (the paper's Figures 3-5 are
// confusion matrices) plus precision/recall/F1 summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qif::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int n_classes)
      : n_(n_classes), counts_(static_cast<std::size_t>(n_classes) *
                               static_cast<std::size_t>(n_classes)) {}

  void add(int truth, int predicted) {
    counts_[static_cast<std::size_t>(truth) * n_ + static_cast<std::size_t>(predicted)] += 1;
  }
  void add_all(const std::vector<int>& truth, const std::vector<int>& predicted);

  [[nodiscard]] int n_classes() const { return static_cast<int>(n_); }
  [[nodiscard]] std::int64_t at(int truth, int predicted) const {
    return counts_[static_cast<std::size_t>(truth) * n_ + static_cast<std::size_t>(predicted)];
  }
  [[nodiscard]] std::int64_t total() const;
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision(int c) const;
  [[nodiscard]] double recall(int c) const;
  [[nodiscard]] double f1(int c) const;
  /// Unweighted mean of per-class F1.
  [[nodiscard]] double macro_f1() const;
  /// F1 of the positive class — the headline metric for the binary model
  /// ("F1 scores exceeding 90%"); class 1 is ">= 2x slowdown".
  [[nodiscard]] double binary_f1() const { return f1(1); }

  /// Pretty grid with per-class P/R/F1 — the textual stand-in for the
  /// paper's confusion-matrix heatmaps.
  [[nodiscard]] std::string to_string(const std::vector<std::string>& class_names = {}) const;

 private:
  std::size_t n_;
  std::vector<std::int64_t> counts_;
};

}  // namespace qif::ml
