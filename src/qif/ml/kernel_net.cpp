#include "qif/ml/kernel_net.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::ml {

KernelNet::KernelNet(const KernelNetConfig& config) : config_(config) {
  sim::Rng rng(sim::Rng::derive_seed(config.seed, "kernel-net"));
  // Shared kernel: D -> hidden... -> 1 (linear output scalar).
  std::size_t in = static_cast<std::size_t>(config_.per_server_dim);
  for (const int h : config_.kernel_hidden) {
    kernel_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    kernel_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  kernel_layers_.emplace_back(in, 1, rng);

  // Head: S -> hidden... -> C.
  in = static_cast<std::size_t>(config_.n_servers);
  for (const int h : config_.head_hidden) {
    head_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    head_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  head_layers_.emplace_back(in, static_cast<std::size_t>(config_.n_classes), rng);
}

const Matrix& KernelNet::kernel_forward(MatView xk) {
  MatView h = xk;
  for (std::size_t l = 0; l + 1 < kernel_layers_.size(); ++l) {
    h = kernel_layers_[l].forward(h, pool_);
    h = kernel_relus_[l].forward(h);
  }
  return kernel_layers_.back().forward(h, pool_);
}

Matrix KernelNet::kernel_forward_inference(MatView xk) const {
  Matrix h;
  MatView v = xk;
  for (std::size_t l = 0; l + 1 < kernel_layers_.size(); ++l) {
    h = ReLU::forward_inference(kernel_layers_[l].forward_inference(v));
    v = h;
  }
  return kernel_layers_.back().forward_inference(v);
}

const Matrix& KernelNet::forward(MatView x) {
  const auto b = x.rows;
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == s * d);

  // (B, S*D) viewed as (B*S, D); kernel output (B*S, 1) viewed as (B, S).
  MatView h = MatView(kernel_forward(x.reshaped(b * s, d))).reshaped(b, s);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = head_layers_[l].forward(h, pool_);
    h = head_relus_[l].forward(h);
  }
  return head_layers_.back().forward(h, pool_);
}

void KernelNet::backward(MatView dlogits) {
  MatView d{head_layers_.back().backward(dlogits, pool_)};
  for (std::size_t l = head_layers_.size() - 1; l-- > 0;) {
    d = head_relus_[l].backward(d);
    d = head_layers_[l].backward(d, pool_);
  }
  // d is now (B, S): gradient w.r.t. the per-server kernel scores —
  // the same memory as the (B*S, 1) kernel-output gradient.
  const auto b = d.rows;
  const auto s = static_cast<std::size_t>(config_.n_servers);
  MatView dk = d.reshaped(b * s, 1);
  dk = kernel_layers_.back().backward(dk, pool_);
  for (std::size_t l = kernel_layers_.size() - 1; l-- > 0;) {
    dk = kernel_relus_[l].backward(dk);
    dk = kernel_layers_[l].backward(dk, pool_);
  }
}

void KernelNet::step(const AdamParams& params, std::int64_t t) {
  for (auto& l : kernel_layers_) l.step(params, t);
  for (auto& l : head_layers_) l.step(params, t);
}

Matrix KernelNet::forward_inference(MatView x) const {
  const auto b = x.rows;
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == s * d);
  const Matrix scores = kernel_forward_inference(x.reshaped(b * s, d));
  Matrix h;
  MatView v = MatView(scores).reshaped(b, s);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = ReLU::forward_inference(head_layers_[l].forward_inference(v));
    v = h;
  }
  return head_layers_.back().forward_inference(v);
}

MatView KernelNet::forward_batch(MatView x, Scratch& s, exec::ThreadPool* pool) const {
  const auto b = x.rows;
  const auto sv = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == sv * d);

  // Kernel: (B*S, D) -> ... -> (B*S, 1), ping-ponging between the two
  // scratch buffers (a GEMM cannot write over its own input), ReLU applied
  // in place.  The arithmetic per element is exactly forward_inference's.
  Matrix* bufs[2] = {&s.ping, &s.pong};
  int cur = 0;
  MatView v = x.reshaped(b * sv, d);
  for (std::size_t l = 0; l + 1 < kernel_layers_.size(); ++l) {
    kernel_layers_[l].forward_into(v, *bufs[cur], pool);
    ReLU::apply_inplace(*bufs[cur]);
    v = *bufs[cur];
    cur ^= 1;
  }
  kernel_layers_.back().forward_into(v, s.scores, pool);

  // Head: the (B*S, 1) scores are the same memory as (B, S).
  v = MatView(s.scores).reshaped(b, sv);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    head_layers_[l].forward_into(v, *bufs[cur], pool);
    ReLU::apply_inplace(*bufs[cur]);
    v = *bufs[cur];
    cur ^= 1;
  }
  head_layers_.back().forward_into(v, *bufs[cur], pool);
  return *bufs[cur];
}

std::vector<int> KernelNet::predict(MatView x) const {
  const Matrix logits = forward_inference(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row(i);
    int best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[i] = best;
  }
  return out;
}

std::vector<double> KernelNet::server_scores(const std::vector<double>& features) const {
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(features.size() == s * d);
  const Matrix scores = kernel_forward_inference(MatView(features.data(), s, d));
  std::vector<double> out(s);
  for (std::size_t i = 0; i < s; ++i) out[i] = scores.at(i, 0);
  return out;
}

std::size_t KernelNet::param_count() const {
  std::size_t n = 0;
  for (const auto& l : kernel_layers_) n += l.param_count();
  for (const auto& l : head_layers_) n += l.param_count();
  return n;
}

void KernelNet::snapshot_into(std::vector<double>& out) const {
  out.resize(param_count());
  double* dst = out.data();
  for (const auto& l : kernel_layers_) {
    l.snapshot_to(dst);
    dst += l.param_count();
  }
  for (const auto& l : head_layers_) {
    l.snapshot_to(dst);
    dst += l.param_count();
  }
}

std::vector<double> KernelNet::snapshot() const {
  std::vector<double> out;
  snapshot_into(out);
  return out;
}

void KernelNet::restore(const std::vector<double>& snap) {
  if (snap.size() != param_count()) {
    throw std::invalid_argument("kernelnet restore: snapshot has " +
                                std::to_string(snap.size()) + " params, net has " +
                                std::to_string(param_count()));
  }
  const double* src = snap.data();
  for (auto& l : kernel_layers_) {
    l.restore_from(src);
    src += l.param_count();
  }
  for (auto& l : head_layers_) {
    l.restore_from(src);
    src += l.param_count();
  }
}

void KernelNet::save(std::ostream& os) const {
  os << "kernelnet 1\n";
  os << config_.per_server_dim << ' ' << config_.n_servers << ' ' << config_.n_classes
     << '\n';
  os << config_.kernel_hidden.size();
  for (const int h : config_.kernel_hidden) os << ' ' << h;
  os << '\n' << config_.head_hidden.size();
  for (const int h : config_.head_hidden) os << ' ' << h;
  os << '\n';
  for (const auto& l : kernel_layers_) l.save(os);
  for (const auto& l : head_layers_) l.save(os);
}

void KernelNet::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "kernelnet") {
    throw std::runtime_error("kernelnet load: bad header");
  }
  KernelNetConfig cfg;
  if (!(is >> cfg.per_server_dim >> cfg.n_servers >> cfg.n_classes)) {
    throw std::runtime_error("kernelnet load: truncated dimensions");
  }
  std::size_t nk = 0, nh = 0;
  if (!(is >> nk) || nk > 1024) {
    throw std::runtime_error("kernelnet load: truncated kernel sizes");
  }
  cfg.kernel_hidden.resize(nk);
  for (auto& h : cfg.kernel_hidden) {
    if (!(is >> h)) throw std::runtime_error("kernelnet load: truncated kernel sizes");
  }
  if (!(is >> nh) || nh > 1024) {
    throw std::runtime_error("kernelnet load: truncated head sizes");
  }
  cfg.head_hidden.resize(nh);
  for (auto& h : cfg.head_hidden) {
    if (!(is >> h)) throw std::runtime_error("kernelnet load: truncated head sizes");
  }
  exec::ThreadPool* pool = pool_;  // survive the reconstruction below
  *this = KernelNet(cfg);
  pool_ = pool;
  for (auto& l : kernel_layers_) l.load(is);
  for (auto& l : head_layers_) l.load(is);
}

}  // namespace qif::ml
