#include "qif/ml/kernel_net.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::ml {

KernelNet::KernelNet(const KernelNetConfig& config) : config_(config) {
  sim::Rng rng(sim::Rng::derive_seed(config.seed, "kernel-net"));
  // Shared kernel: D -> hidden... -> 1 (linear output scalar).
  std::size_t in = static_cast<std::size_t>(config_.per_server_dim);
  for (const int h : config_.kernel_hidden) {
    kernel_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    kernel_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  kernel_layers_.emplace_back(in, 1, rng);

  // Head: S -> hidden... -> C.
  in = static_cast<std::size_t>(config_.n_servers);
  for (const int h : config_.head_hidden) {
    head_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    head_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  head_layers_.emplace_back(in, static_cast<std::size_t>(config_.n_classes), rng);
}

Matrix KernelNet::kernel_forward(const Matrix& xk, bool train) {
  Matrix h = xk;
  for (std::size_t l = 0; l + 1 < kernel_layers_.size(); ++l) {
    h = train ? kernel_layers_[l].forward(h) : kernel_layers_[l].forward_inference(h);
    h = train ? kernel_relus_[l].forward(h) : ReLU::forward_inference(h);
  }
  return train ? kernel_layers_.back().forward(h)
               : kernel_layers_.back().forward_inference(h);
}

Matrix KernelNet::kernel_forward_inference(const Matrix& xk) const {
  Matrix h = xk;
  for (std::size_t l = 0; l + 1 < kernel_layers_.size(); ++l) {
    h = kernel_layers_[l].forward_inference(h);
    h = ReLU::forward_inference(h);
  }
  return kernel_layers_.back().forward_inference(h);
}

Matrix KernelNet::forward(const Matrix& x) {
  const auto b = x.rows();
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols() == s * d);

  Matrix scores = kernel_forward(x.reshaped(b * s, d), /*train=*/true).reshaped(b, s);
  Matrix h = scores;
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = head_layers_[l].forward(h);
    h = head_relus_[l].forward(h);
  }
  return head_layers_.back().forward(h);
}

void KernelNet::backward(const Matrix& dlogits) {
  Matrix d = head_layers_.back().backward(dlogits);
  for (std::size_t l = head_layers_.size() - 1; l-- > 0;) {
    d = head_relus_[l].backward(d);
    d = head_layers_[l].backward(d);
  }
  // d is now (B, S): gradient w.r.t. the per-server kernel scores.
  const auto b = d.rows();
  const auto s = static_cast<std::size_t>(config_.n_servers);
  Matrix dk = d.reshaped(b * s, 1);
  dk = kernel_layers_.back().backward(dk);
  for (std::size_t l = kernel_layers_.size() - 1; l-- > 0;) {
    dk = kernel_relus_[l].backward(dk);
    dk = kernel_layers_[l].backward(dk);
  }
}

void KernelNet::step(const AdamParams& params, std::int64_t t) {
  for (auto& l : kernel_layers_) l.step(params, t);
  for (auto& l : head_layers_) l.step(params, t);
}

Matrix KernelNet::forward_inference(const Matrix& x) const {
  const auto b = x.rows();
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols() == s * d);
  Matrix h = kernel_forward_inference(x.reshaped(b * s, d)).reshaped(b, s);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = head_layers_[l].forward_inference(h);
    h = ReLU::forward_inference(h);
  }
  return head_layers_.back().forward_inference(h);
}

std::vector<int> KernelNet::predict(const Matrix& x) const {
  const Matrix logits = forward_inference(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row(i);
    int best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[i] = best;
  }
  return out;
}

std::vector<double> KernelNet::server_scores(const std::vector<double>& features) const {
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(features.size() == s * d);
  Matrix x(s, d);
  x.data() = features;
  const Matrix scores = kernel_forward_inference(x);
  std::vector<double> out(s);
  for (std::size_t i = 0; i < s; ++i) out[i] = scores.at(i, 0);
  return out;
}

void KernelNet::save(std::ostream& os) const {
  os << "kernelnet 1\n";
  os << config_.per_server_dim << ' ' << config_.n_servers << ' ' << config_.n_classes
     << '\n';
  os << config_.kernel_hidden.size();
  for (const int h : config_.kernel_hidden) os << ' ' << h;
  os << '\n' << config_.head_hidden.size();
  for (const int h : config_.head_hidden) os << ' ' << h;
  os << '\n';
  for (const auto& l : kernel_layers_) l.save(os);
  for (const auto& l : head_layers_) l.save(os);
}

void KernelNet::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "kernelnet") {
    throw std::runtime_error("kernelnet load: bad header");
  }
  KernelNetConfig cfg;
  if (!(is >> cfg.per_server_dim >> cfg.n_servers >> cfg.n_classes)) {
    throw std::runtime_error("kernelnet load: truncated dimensions");
  }
  std::size_t nk = 0, nh = 0;
  if (!(is >> nk) || nk > 1024) {
    throw std::runtime_error("kernelnet load: truncated kernel sizes");
  }
  cfg.kernel_hidden.resize(nk);
  for (auto& h : cfg.kernel_hidden) {
    if (!(is >> h)) throw std::runtime_error("kernelnet load: truncated kernel sizes");
  }
  if (!(is >> nh) || nh > 1024) {
    throw std::runtime_error("kernelnet load: truncated head sizes");
  }
  cfg.head_hidden.resize(nh);
  for (auto& h : cfg.head_hidden) {
    if (!(is >> h)) throw std::runtime_error("kernelnet load: truncated head sizes");
  }
  *this = KernelNet(cfg);
  for (auto& l : kernel_layers_) l.load(is);
  for (auto& l : head_layers_) l.load(is);
}

}  // namespace qif::ml
