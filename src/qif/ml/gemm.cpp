#include "qif/ml/gemm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/exec/thread_pool.hpp"

namespace qif::ml {
namespace {

// Register tile: kMr C rows by kNr C columns of accumulators, with a
// narrower kNrSub tile and a scalar loop sweeping the column remainder.
// 32 columns is four cache lines of C per tile row — wide enough that the
// vectorizer emits full-width FMA chains on AVX-capable cores while the
// baseline SSE2 build keeps the accumulators hot in L1.  The j-lane
// vectorization this enables never reorders any single element's
// reduction — each acc[r][q] is still one scalar sum over ascending k —
// so the determinism contract is unaffected.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 32;
constexpr std::size_t kNrSub = 8;

// Below this many multiply-adds the pool's dispatch latency eats the win.
constexpr std::size_t kParallelMinMadds = std::size_t{1} << 17;

// Row-count invariance: every output row must get the same bits no matter
// how many other rows the call covers (the serving layer's batched-vs-sync
// identity rests on it).  A separate single-row remainder loop breaks that
// promise in practice — the compiler contracts mul+add into FMA
// differently for different loop shapes, so the same row's reduction
// rounds differently depending on which loop computed it.  Instead the
// final partial tile is padded to a full kMr-row micro-kernel: padded
// lanes re-read the tile's first row (any in-bounds row works — the lanes
// are value-independent) and write into this discarded per-thread scratch
// row.  Each logical row therefore always runs at tile lane (row % kMr)
// through the one compiled kernel body, at the cost of at most kMr-1 rows
// of wasted arithmetic on the tail.
double* pad_row(std::size_t n) {
  thread_local std::vector<double> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

// The kernels are compiled once per x86-64 microarchitecture level and
// dispatched by runtime CPU probe, so a portable build still runs
// AVX2/AVX-512 FMA code on cores that have it.  Dispatch is an ordinary
// branch on a cached probe (no ifunc), which keeps sanitizer builds and
// non-GCC toolchains simple; the probe is per-process constant, so every
// GEMM in a run — serial or pooled — executes the same variant and
// results stay bit-identical across worker counts.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 11
#define QIF_GEMM_MULTIARCH 1
#define QIF_GEMM_V3 __attribute__((target("arch=x86-64-v3")))
#define QIF_GEMM_V4 __attribute__((target("arch=x86-64-v4")))
#else
#define QIF_GEMM_MULTIARCH 0
#define QIF_GEMM_V3
#define QIF_GEMM_V4
#endif

enum class Isa { kBase, kV3, kV4 };

Isa isa_level() {
#if QIF_GEMM_MULTIARCH
  static const Isa level = [] {
    if (__builtin_cpu_supports("x86-64-v4")) return Isa::kV4;
    if (__builtin_cpu_supports("x86-64-v3")) return Isa::kV3;
    return Isa::kBase;
  }();
  return level;
#else
  return Isa::kBase;
#endif
}

// Shape guards must survive NDEBUG builds: an assert that compiles away
// turns a dimension bug into a silent out-of-bounds read.
void check_shapes(std::size_t lhs, std::size_t rhs, const char* what) {
  if (lhs != rhs) {
    throw std::invalid_argument(std::string("matmul shape mismatch (") + what + "): " +
                                std::to_string(lhs) + " vs " + std::to_string(rhs));
  }
}

void prepare_output(Matrix& c, std::size_t m, std::size_t n, bool accumulate, MatView a,
                    MatView b) {
  // Alias check must precede the resize: growing c can reallocate, which
  // would leave an aliasing input view dangling AND make the overlap
  // undetectable afterwards.
  if (!c.data().empty()) {
    const double* cp = c.data().data();
    if ((a.size() != 0 && cp == a.ptr) || (b.size() != 0 && cp == b.ptr)) {
      throw std::invalid_argument("gemm: output matrix aliases an input");
    }
  }
  if (accumulate) {
    if (c.rows() != m || c.cols() != n) {
      throw std::invalid_argument("gemm: accumulate output must already be shaped " +
                                  std::to_string(m) + "x" + std::to_string(n));
    }
  } else {
    c.resize(m, n);
  }
}

/// Runs fn(lo, hi) over row ranges covering [0, m).  Row blocks are
/// aligned to kMr so every worker runs the same micro-kernel sequence it
/// would serially (only the final block can end in a padded tail tile);
/// because each C row belongs to exactly one block and each element is
/// reduced by one accumulator over ascending k, the result is
/// bit-identical for any worker count or block size.
template <typename RowsFn>
void run_rows(std::size_t m, std::size_t madds, exec::ThreadPool* pool, const RowsFn& fn) {
  if (pool == nullptr || pool->size() <= 1 || madds < kParallelMinMadds || m < 2 * kMr) {
    fn(std::size_t{0}, m);
    return;
  }
  const auto workers = static_cast<std::size_t>(pool->size());
  std::size_t block = (m + workers - 1) / workers;
  block = ((block + kMr - 1) / kMr) * kMr;
  const std::size_t n_blocks = (m + block - 1) / block;
  pool->for_each_index(n_blocks, [&](std::size_t t) {
    const std::size_t lo = t * block;
    fn(lo, std::min(m, lo + block));
  });
}

// ---------------------------------------------------------------------------
// NN: c(i,j) = sum_k a(i,k) * b(k,j)
// TN: c(i,j) = sum_k a(k,i) * b(k,j)
//
// One body serves both: the two differ only in how the kMr operand values
// for step k are addressed (per-row streams for NN, one contiguous slice
// of a's row k for TN).  always_inline is load-bearing — the body must
// inline into each target-attributed wrapper to be compiled at that
// wrapper's ISA level.
// ---------------------------------------------------------------------------
template <bool kTransA>
__attribute__((always_inline)) inline void nn_tn_body(
    std::size_t i0, std::size_t i1, std::size_t n, std::size_t k, const double* __restrict a,
    std::size_t lda, const double* __restrict b, std::size_t ldb, double* __restrict c,
    std::size_t ldc, bool accumulate, double* __restrict pad) {
  const auto a_at = [&](std::size_t row, std::size_t kk) {
    return kTransA ? a[kk * lda + row] : a[row * lda + kk];
  };
  for (std::size_t i = i0; i < i1; i += kMr) {
    // Padded tail: lanes past the last real row re-read row i and write to
    // `pad`.  The FP loops below never branch on `rem`, so full and padded
    // tiles execute the identical instruction sequence.
    const std::size_t rem = i1 - i;
    std::size_t arow[kMr];
    double* crow[kMr];
    for (std::size_t r = 0; r < kMr; ++r) {
      arow[r] = r < rem ? i + r : i;
      crow[r] = r < rem ? c + (i + r) * ldc : pad;
    }
    std::size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      double acc[kMr][kNr];
      for (std::size_t r = 0; r < kMr; ++r) {
        for (std::size_t q = 0; q < kNr; ++q) acc[r][q] = accumulate ? crow[r][j + q] : 0.0;
      }
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* br = b + kk * ldb + j;
        for (std::size_t r = 0; r < kMr; ++r) {
          const double av = a_at(arow[r], kk);
          for (std::size_t q = 0; q < kNr; ++q) acc[r][q] += av * br[q];
        }
      }
      for (std::size_t r = 0; r < kMr; ++r) {
        for (std::size_t q = 0; q < kNr; ++q) crow[r][j + q] = acc[r][q];
      }
    }
    for (; j + kNrSub <= n; j += kNrSub) {
      double acc[kMr][kNrSub];
      for (std::size_t r = 0; r < kMr; ++r) {
        for (std::size_t q = 0; q < kNrSub; ++q) {
          acc[r][q] = accumulate ? crow[r][j + q] : 0.0;
        }
      }
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* br = b + kk * ldb + j;
        for (std::size_t r = 0; r < kMr; ++r) {
          const double av = a_at(arow[r], kk);
          for (std::size_t q = 0; q < kNrSub; ++q) acc[r][q] += av * br[q];
        }
      }
      for (std::size_t r = 0; r < kMr; ++r) {
        for (std::size_t q = 0; q < kNrSub; ++q) crow[r][j + q] = acc[r][q];
      }
    }
    for (; j < n; ++j) {
      double s[kMr];
      for (std::size_t r = 0; r < kMr; ++r) s[r] = accumulate ? crow[r][j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double bv = b[kk * ldb + j];
        for (std::size_t r = 0; r < kMr; ++r) s[r] += a_at(arow[r], kk) * bv;
      }
      for (std::size_t r = 0; r < kMr; ++r) crow[r][j] = s[r];
    }
  }
}

// ---------------------------------------------------------------------------
// NT: c(i,j) = sum_k a(i,k) * b(j,k) — a 4x4 block of inner products over
// eight contiguous operand streams.  The single-accumulator-per-element
// contract forbids vectorizing the k reduction, so this tile stays 4 wide
// (16 scalar accumulators); the ISA variants still gain scalar FMA.
// ---------------------------------------------------------------------------
constexpr std::size_t kNrDot = 4;

__attribute__((always_inline)) inline void nt_body(std::size_t i0, std::size_t i1,
                                                   std::size_t n, std::size_t k,
                                                   const double* __restrict a, std::size_t lda,
                                                   const double* __restrict b, std::size_t ldb,
                                                   double* __restrict c, std::size_t ldc,
                                                   bool accumulate, double* __restrict pad) {
  for (std::size_t i = i0; i < i1; i += kMr) {
    // Same padded-tail discipline as nn_tn_body: one compiled tile body,
    // row r always at lane r % kMr, padding discarded via `pad`.
    const std::size_t rem = i1 - i;
    const double* a0 = a + (i + 0) * lda;
    const double* a1 = a + (rem > 1 ? i + 1 : i) * lda;
    const double* a2 = a + (rem > 2 ? i + 2 : i) * lda;
    const double* a3 = a + (rem > 3 ? i + 3 : i) * lda;
    double* c0 = c + (i + 0) * ldc;
    double* c1 = rem > 1 ? c + (i + 1) * ldc : pad;
    double* c2 = rem > 2 ? c + (i + 2) * ldc : pad;
    double* c3 = rem > 3 ? c + (i + 3) * ldc : pad;
    std::size_t j = 0;
    for (; j + kNrDot <= n; j += kNrDot) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      double s00 = accumulate ? c0[j + 0] : 0.0, s01 = accumulate ? c0[j + 1] : 0.0;
      double s02 = accumulate ? c0[j + 2] : 0.0, s03 = accumulate ? c0[j + 3] : 0.0;
      double s10 = accumulate ? c1[j + 0] : 0.0, s11 = accumulate ? c1[j + 1] : 0.0;
      double s12 = accumulate ? c1[j + 2] : 0.0, s13 = accumulate ? c1[j + 3] : 0.0;
      double s20 = accumulate ? c2[j + 0] : 0.0, s21 = accumulate ? c2[j + 1] : 0.0;
      double s22 = accumulate ? c2[j + 2] : 0.0, s23 = accumulate ? c2[j + 3] : 0.0;
      double s30 = accumulate ? c3[j + 0] : 0.0, s31 = accumulate ? c3[j + 1] : 0.0;
      double s32 = accumulate ? c3[j + 2] : 0.0, s33 = accumulate ? c3[j + 3] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
        const double w0 = b0[kk], w1 = b1[kk], w2 = b2[kk], w3 = b3[kk];
        s00 += v0 * w0; s01 += v0 * w1; s02 += v0 * w2; s03 += v0 * w3;
        s10 += v1 * w0; s11 += v1 * w1; s12 += v1 * w2; s13 += v1 * w3;
        s20 += v2 * w0; s21 += v2 * w1; s22 += v2 * w2; s23 += v2 * w3;
        s30 += v3 * w0; s31 += v3 * w1; s32 += v3 * w2; s33 += v3 * w3;
      }
      c0[j + 0] = s00; c0[j + 1] = s01; c0[j + 2] = s02; c0[j + 3] = s03;
      c1[j + 0] = s10; c1[j + 1] = s11; c1[j + 2] = s12; c1[j + 3] = s13;
      c2[j + 0] = s20; c2[j + 1] = s21; c2[j + 2] = s22; c2[j + 3] = s23;
      c3[j + 0] = s30; c3[j + 1] = s31; c3[j + 2] = s32; c3[j + 3] = s33;
    }
    for (; j < n; ++j) {
      const double* br = b + j * ldb;
      double s0 = accumulate ? c0[j] : 0.0, s1 = accumulate ? c1[j] : 0.0;
      double s2 = accumulate ? c2[j] : 0.0, s3 = accumulate ? c3[j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double bv = br[kk];
        s0 += a0[kk] * bv;
        s1 += a1[kk] * bv;
        s2 += a2[kk] * bv;
        s3 += a3[kk] * bv;
      }
      c0[j] = s0; c1[j] = s1; c2[j] = s2; c3[j] = s3;
    }
  }
}

// Per-ISA instantiations + dispatcher.  Args are bundled so the wrapper
// signatures stay readable.
struct RowsArgs {
  std::size_t i0, i1, n, k;
  const double* a;
  std::size_t lda;
  const double* b;
  std::size_t ldb;
  double* c;
  std::size_t ldc;
  bool accumulate;
  double* pad;
};

#define QIF_GEMM_DEFINE_VARIANTS(name, body_expr)                              \
  void name##_base(const RowsArgs& r) { body_expr; }                           \
  QIF_GEMM_V3 void name##_v3(const RowsArgs& r) { body_expr; }                 \
  QIF_GEMM_V4 void name##_v4(const RowsArgs& r) { body_expr; }                 \
  void name(const RowsArgs& r) {                                               \
    switch (isa_level()) {                                                     \
      case Isa::kV4: name##_v4(r); return;                                     \
      case Isa::kV3: name##_v3(r); return;                                     \
      case Isa::kBase: break;                                                  \
    }                                                                          \
    name##_base(r);                                                            \
  }

QIF_GEMM_DEFINE_VARIANTS(nn_rows,
                         (nn_tn_body<false>(r.i0, r.i1, r.n, r.k, r.a, r.lda, r.b, r.ldb, r.c,
                                            r.ldc, r.accumulate, r.pad)))
QIF_GEMM_DEFINE_VARIANTS(tn_rows,
                         (nn_tn_body<true>(r.i0, r.i1, r.n, r.k, r.a, r.lda, r.b, r.ldb, r.c,
                                           r.ldc, r.accumulate, r.pad)))
QIF_GEMM_DEFINE_VARIANTS(nt_rows, (nt_body(r.i0, r.i1, r.n, r.k, r.a, r.lda, r.b, r.ldb, r.c,
                                           r.ldc, r.accumulate, r.pad)))

#undef QIF_GEMM_DEFINE_VARIANTS

}  // namespace

void gemm_nn(MatView a, MatView b, Matrix& c, bool accumulate, exec::ThreadPool* pool) {
  check_shapes(a.cols, b.rows, "A.cols vs B.rows");
  prepare_output(c, a.rows, b.cols, accumulate, a, b);
  if (a.rows == 0 || b.cols == 0) return;
  run_rows(a.rows, a.rows * a.cols * b.cols, pool, [&](std::size_t lo, std::size_t hi) {
    nn_rows({lo, hi, b.cols, a.cols, a.ptr, a.cols, b.ptr, b.cols, c.data().data(), c.cols(),
             accumulate, pad_row(b.cols)});
  });
}

void gemm_tn(MatView a, MatView b, Matrix& c, bool accumulate, exec::ThreadPool* pool) {
  check_shapes(a.rows, b.rows, "A.rows vs B.rows");
  prepare_output(c, a.cols, b.cols, accumulate, a, b);
  if (a.cols == 0 || b.cols == 0) return;
  run_rows(a.cols, a.rows * a.cols * b.cols, pool, [&](std::size_t lo, std::size_t hi) {
    tn_rows({lo, hi, b.cols, a.rows, a.ptr, a.cols, b.ptr, b.cols, c.data().data(), c.cols(),
             accumulate, pad_row(b.cols)});
  });
}

void gemm_nt(MatView a, MatView b, Matrix& c, bool accumulate, exec::ThreadPool* pool) {
  check_shapes(a.cols, b.cols, "A.cols vs B.cols");
  prepare_output(c, a.rows, b.rows, accumulate, a, b);
  if (a.rows == 0 || b.rows == 0) return;
  run_rows(a.rows, a.rows * a.cols * b.rows, pool, [&](std::size_t lo, std::size_t hi) {
    nt_rows({lo, hi, b.rows, a.cols, a.ptr, a.cols, b.ptr, b.cols, c.data().data(), c.cols(),
             accumulate, pad_row(b.rows)});
  });
}

}  // namespace qif::ml
