// Minibatch trainer for the kernel-based network.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qif/ml/kernel_net.hpp"
#include "qif/ml/metrics.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/features.hpp"

namespace qif::ml {

struct TrainConfig {
  int max_epochs = 80;
  int batch_size = 64;
  AdamParams adam{};                  ///< lr defaults to 1e-3
  double validation_fraction = 0.15;  ///< carved from the training split
  int patience = 12;                  ///< early-stop epochs without val improvement
  bool class_weighted = true;         ///< inverse-frequency loss weights
  std::uint64_t seed = 11;
  bool verbose = false;               ///< print per-epoch losses to stdout
  /// GEMM worker threads (<= 1 trains single-threaded).  The row-block
  /// partitioning keeps results bit-identical for every value, so this is
  /// purely a throughput knob.
  int jobs = 1;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double val_macro_f1 = 0.0;
};

struct TrainResult {
  int best_epoch = 0;
  double best_val_macro_f1 = 0.0;
  std::vector<EpochStats> history;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(std::move(config)) {}

  /// Fits `stdz` on `train`, then trains `net` with minibatch Adam, early
  /// stopping on validation macro-F1 (restoring the best weights via
  /// binary in-memory snapshots).  Minibatches are gathered row by row
  /// straight out of the view's backing FeatureTable into the persistent
  /// batch buffer, standardization fused in — no dataset-sized temporary
  /// is ever built.  A thin wrapper over train_rows, so in-RAM and
  /// streaming training share one code path.
  TrainResult train(KernelNet& net, Standardizer& stdz, const monitor::TableView& train) const;

  /// Streaming-ingestion core: identical algorithm, RNG streams, and
  /// iteration order over any RowAccess source — an in-RAM view, a subset,
  /// or a sharded on-disk dataset.  Standardization statistics and epoch
  /// minibatches are computed row by row (at most batch-size rows are
  /// resident at once beyond the validation gather), so a dataset far
  /// larger than RAM trains within the source's paging budget, and the
  /// resulting model bytes are bit-identical to the in-RAM path at the
  /// same seed.
  TrainResult train_rows(KernelNet& net, Standardizer& stdz,
                         const monitor::RowAccess& rows) const;

  /// Evaluates a trained net on a view, returning its confusion matrix.
  static ConfusionMatrix evaluate(const KernelNet& net, const Standardizer& stdz,
                                  const monitor::TableView& test);

  /// Streaming evaluation: predicts in fixed-size chunks (per-row results
  /// do not depend on the batch partitioning, so the confusion matrix
  /// matches the all-at-once gather exactly).
  static ConfusionMatrix evaluate_rows(const KernelNet& net, const Standardizer& stdz,
                                       const monitor::RowAccess& rows);

 private:
  TrainConfig config_;
};

}  // namespace qif::ml
