// Register-blocked GEMM micro-kernel family for the training core.
//
// Three variants cover every product the layer stack needs:
//   gemm_nn:  C = A · B      (forward:   Y  = X · W)
//   gemm_tn:  C = A^T · B    (weights:   dW = X^T · dY)
//   gemm_nt:  C = A · B^T    (inputs:    dX = dY · W^T)
//
// Determinism contract: every C element is reduced by a single accumulator
// over ascending k — in the micro-kernel tiles and in the parallel path
// (which partitions C's *rows* across workers, so each element is still
// produced by exactly one thread in the same order).  Results are
// bit-identical for any --jobs value and any row-block size.
//
// Row-count invariance: a given row's bits are also independent of how
// many rows the call covers.  There is no separate row-remainder loop —
// the compiler's FMA contraction differs between loop shapes, which would
// make C(i,·) depend on the total m — instead the final partial tile is
// padded to a full kMr-row micro-kernel whose extra lanes write to
// discarded scratch.  Serving relies on this: a row predicted inside a
// batch of 64 is bit-identical to the same row predicted alone.
//
// The old naive kernels carried an `if (a == 0.0) continue;` sparsity
// branch; it pessimized dense inputs (one branch per inner product) and
// made the FP summation order input-dependent, so the blocked kernels are
// deliberately dense-only.
#pragma once

#include "qif/ml/matrix.hpp"

namespace qif::exec {
class ThreadPool;
}

namespace qif::ml {

/// C = A·B (+= when `accumulate`).  `c` is resized to (a.rows, b.cols)
/// unless accumulating, in which case it must already have that shape.
/// Throws std::invalid_argument on shape mismatch.  `pool` enables the
/// thread-parallel path; nullptr (or a tiny problem) runs serially.
void gemm_nn(MatView a, MatView b, Matrix& c, bool accumulate = false,
             exec::ThreadPool* pool = nullptr);

/// C = A^T·B; C is (a.cols, b.cols), inner dimension a.rows == b.rows.
void gemm_tn(MatView a, MatView b, Matrix& c, bool accumulate = false,
             exec::ThreadPool* pool = nullptr);

/// C = A·B^T; C is (a.rows, b.rows), inner dimension a.cols == b.cols.
void gemm_nt(MatView a, MatView b, Matrix& c, bool accumulate = false,
             exec::ThreadPool* pool = nullptr);

}  // namespace qif::ml
