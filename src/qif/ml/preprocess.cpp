#include "qif/ml/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "qif/sim/rng.hpp"

namespace qif::ml {
namespace {

/// The pooled per-server-column Welford pass shared by both fit overloads:
/// `row(k)` yields the k-th row pointer for k in [0, n_rows).  One code
/// path, so the in-RAM and streaming fits cannot drift apart numerically.
template <typename RowFn>
void welford_fit(std::size_t n_rows, std::size_t width, std::size_t d, RowFn row,
                 std::vector<double>& mean, std::vector<double>& inv_std) {
  mean.assign(d, 0.0);
  inv_std.assign(d, 1.0);
  if (n_rows == 0) return;
  std::vector<double> m2(d, 0.0);
  std::size_t n = 0;
  for (std::size_t k = 0; k < n_rows; ++k) {
    const double* r = row(k);
    for (std::size_t off = 0; off < width; off += d) {
      ++n;
      for (std::size_t j = 0; j < d; ++j) {
        const double x = r[off + j];
        const double delta = x - mean[j];
        mean[j] += delta / static_cast<double>(n);
        m2[j] += delta * (x - mean[j]);
      }
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double var = n > 1 ? m2[j] / static_cast<double>(n) : 0.0;
    const double sd = std::sqrt(var);
    inv_std[j] = sd > 1e-12 ? 1.0 / sd : 1.0;  // constant features pass through
  }
}

}  // namespace

void Standardizer::fit(const monitor::TableView& ds) {
  welford_fit(
      ds.size(), ds.width(), static_cast<std::size_t>(ds.dim()),
      [&ds](std::size_t k) { return ds.row(k); }, mean_, inv_std_);
}

void Standardizer::fit(const monitor::RowAccess& rows, const std::vector<std::size_t>& idx) {
  welford_fit(
      idx.size(), rows.width(), static_cast<std::size_t>(rows.dim()),
      [&rows, &idx](std::size_t k) { return rows.row(idx[k]); }, mean_, inv_std_);
}

void Standardizer::transform(std::vector<double>& features) const {
  const std::size_t d = mean_.size();
  if (d == 0) return;
  for (std::size_t off = 0; off < features.size(); off += d) {
    for (std::size_t j = 0; j < d; ++j) {
      features[off + j] = (features[off + j] - mean_[j]) * inv_std_[j];
    }
  }
}

void Standardizer::transform_into(const double* src, std::size_t n, double* dst) const {
  const std::size_t d = mean_.size();
  if (d == 0) {
    std::copy(src, src + n, dst);
    return;
  }
  for (std::size_t off = 0; off < n; off += d) {
    for (std::size_t j = 0; j < d; ++j) {
      dst[off + j] = (src[off + j] - mean_[j]) * inv_std_[j];
    }
  }
}

void Standardizer::save(std::ostream& os) const {
  os.precision(17);
  os << mean_.size() << '\n';
  for (const double v : mean_) os << v << ' ';
  os << '\n';
  for (const double v : inv_std_) os << v << ' ';
  os << '\n';
}

void Standardizer::load(std::istream& is) {
  // Every extraction is checked: a truncated or corrupted model file must
  // fail loudly, not silently yield a garbage standardizer.
  std::size_t d = 0;
  if (!(is >> d)) throw std::runtime_error("standardizer load: bad dimension");
  mean_.resize(d);
  inv_std_.resize(d);
  for (double& v : mean_) {
    if (!(is >> v)) throw std::runtime_error("standardizer load: truncated means");
  }
  for (double& v : inv_std_) {
    if (!(is >> v)) throw std::runtime_error("standardizer load: truncated scales");
  }
}

Standardizer Standardizer::from_moments(std::vector<double> mean,
                                        std::vector<double> inv_std) {
  if (mean.size() != inv_std.size()) {
    throw std::invalid_argument("standardizer from_moments: " +
                                std::to_string(mean.size()) + " means vs " +
                                std::to_string(inv_std.size()) + " scales");
  }
  Standardizer s;
  s.mean_ = std::move(mean);
  s.inv_std_ = std::move(inv_std);
  return s;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_rows(
    std::size_t n, double test_fraction, std::uint64_t seed) {
  if (n == 0) return {{}, {}};
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  sim::Rng rng(sim::Rng::derive_seed(seed, "split"));
  // Fisher-Yates shuffle.
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  // Clamp the fraction BEFORE computing the count: the old code fed the
  // raw fraction to llround, so 1.5 yielded n_test > n and the train-size
  // subtraction underflowed to a near-SIZE_MAX allocation, and a negative
  // fraction wrapped to a huge n_test.  NaN fails both comparisons and
  // lands on the zero-test branch.
  double f = test_fraction;
  if (!(f > 0.0)) f = 0.0;
  if (f > 1.0) f = 1.0;
  auto n_test =
      static_cast<std::size_t>(std::llround(f * static_cast<double>(n)));
  if (n_test > n) n_test = n;
  // Rounding can claim every sample for the test split (e.g. n = 2,
  // fraction 0.8); keep at least one training sample unless the caller
  // explicitly asked for a pure test set.
  if (test_fraction < 1.0 && n_test >= n) n_test = n - 1;
  // Membership and *order* both match the historical materializing
  // implementation exactly: test gets the first n_test shuffled rows,
  // train the rest, so order-sensitive downstream stats (the Welford fit)
  // are bit-identical.
  std::vector<std::size_t> test_rows(n_test);
  std::vector<std::size_t> train_rows(n - n_test);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    (k < n_test ? test_rows[k] : train_rows[k - n_test]) = idx[k];
  }
  return {std::move(train_rows), std::move(test_rows)};
}

std::pair<monitor::TableView, monitor::TableView> split_dataset(const monitor::TableView& ds,
                                                                double test_fraction,
                                                                std::uint64_t seed) {
  auto [train_rows, test_rows] = split_rows(ds.size(), test_fraction, seed);
  if (ds.table() == nullptr) return {monitor::TableView{}, monitor::TableView{}};
  // Map view-local indices to backing-table rows (identity for a whole-
  // table view), preserving order.
  for (std::size_t& r : train_rows) r = ds.base_row(r);
  for (std::size_t& r : test_rows) r = ds.base_row(r);
  return {monitor::TableView(*ds.table(), std::move(train_rows)),
          monitor::TableView(*ds.table(), std::move(test_rows))};
}

void gather_standardized(const monitor::TableView& ds, const Standardizer* stdz, Matrix& x,
                         std::vector<int>& y) {
  const std::size_t width = ds.width();
  x.resize(ds.size(), width);
  y.resize(ds.size());
  const bool standardize = stdz != nullptr && stdz->fitted();
  for (std::size_t k = 0; k < ds.size(); ++k) {
    const double* src = ds.row(k);
    if (standardize) {
      stdz->transform_into(src, width, x.row(k));
    } else {
      std::copy(src, src + width, x.row(k));
    }
    y[k] = ds.label(k);
  }
}

void gather_standardized(const monitor::RowAccess& rows,
                         const std::vector<std::size_t>& idx, const Standardizer* stdz,
                         Matrix& x, std::vector<int>& y) {
  const std::size_t width = rows.width();
  x.resize(idx.size(), width);
  y.resize(idx.size());
  const bool standardize = stdz != nullptr && stdz->fitted();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const double* src = rows.row(idx[k]);
    if (standardize) {
      stdz->transform_into(src, width, x.row(k));
    } else {
      std::copy(src, src + width, x.row(k));
    }
    y[k] = rows.label(idx[k]);
  }
}

namespace {

std::vector<double> weights_from_counts(const std::vector<std::size_t>& counts,
                                        std::size_t total, int n_classes) {
  std::vector<double> w(static_cast<std::size_t>(n_classes), 1.0);
  const double n = static_cast<double>(total);
  for (int c = 0; c < n_classes; ++c) {
    const auto nc = counts[static_cast<std::size_t>(c)];
    w[static_cast<std::size_t>(c)] =
        nc == 0 ? 0.0 : n / (static_cast<double>(n_classes) * static_cast<double>(nc));
  }
  return w;
}

}  // namespace

std::vector<double> inverse_frequency_weights(const monitor::TableView& ds, int n_classes) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
  for (std::size_t k = 0; k < ds.size(); ++k) {
    const int l = ds.label(k);
    if (l >= 0 && l < n_classes) counts[static_cast<std::size_t>(l)] += 1;
  }
  return weights_from_counts(counts, ds.size(), n_classes);
}

std::vector<double> inverse_frequency_weights(const monitor::RowAccess& rows,
                                              const std::vector<std::size_t>& idx,
                                              int n_classes) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
  for (const std::size_t i : idx) {
    const int l = rows.label(i);
    if (l >= 0 && l < n_classes) counts[static_cast<std::size_t>(l)] += 1;
  }
  return weights_from_counts(counts, idx.size(), n_classes);
}

}  // namespace qif::ml
