#include "qif/ml/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "qif/sim/rng.hpp"

namespace qif::ml {

void Standardizer::fit(const monitor::TableView& ds) {
  const auto d = static_cast<std::size_t>(ds.dim());
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (ds.empty()) return;
  std::vector<double> m2(d, 0.0);
  std::size_t n = 0;
  const std::size_t width = ds.width();
  for (std::size_t k = 0; k < ds.size(); ++k) {
    const double* row = ds.row(k);
    for (std::size_t off = 0; off < width; off += d) {
      ++n;
      for (std::size_t j = 0; j < d; ++j) {
        const double x = row[off + j];
        const double delta = x - mean_[j];
        mean_[j] += delta / static_cast<double>(n);
        m2[j] += delta * (x - mean_[j]);
      }
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double var = n > 1 ? m2[j] / static_cast<double>(n) : 0.0;
    const double sd = std::sqrt(var);
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;  // constant features pass through
  }
}

void Standardizer::transform(std::vector<double>& features) const {
  const std::size_t d = mean_.size();
  if (d == 0) return;
  for (std::size_t off = 0; off < features.size(); off += d) {
    for (std::size_t j = 0; j < d; ++j) {
      features[off + j] = (features[off + j] - mean_[j]) * inv_std_[j];
    }
  }
}

void Standardizer::transform_into(const double* src, std::size_t n, double* dst) const {
  const std::size_t d = mean_.size();
  if (d == 0) {
    std::copy(src, src + n, dst);
    return;
  }
  for (std::size_t off = 0; off < n; off += d) {
    for (std::size_t j = 0; j < d; ++j) {
      dst[off + j] = (src[off + j] - mean_[j]) * inv_std_[j];
    }
  }
}

void Standardizer::save(std::ostream& os) const {
  os.precision(17);
  os << mean_.size() << '\n';
  for (const double v : mean_) os << v << ' ';
  os << '\n';
  for (const double v : inv_std_) os << v << ' ';
  os << '\n';
}

void Standardizer::load(std::istream& is) {
  // Every extraction is checked: a truncated or corrupted model file must
  // fail loudly, not silently yield a garbage standardizer.
  std::size_t d = 0;
  if (!(is >> d)) throw std::runtime_error("standardizer load: bad dimension");
  mean_.resize(d);
  inv_std_.resize(d);
  for (double& v : mean_) {
    if (!(is >> v)) throw std::runtime_error("standardizer load: truncated means");
  }
  for (double& v : inv_std_) {
    if (!(is >> v)) throw std::runtime_error("standardizer load: truncated scales");
  }
}

std::pair<monitor::TableView, monitor::TableView> split_dataset(const monitor::TableView& ds,
                                                                double test_fraction,
                                                                std::uint64_t seed) {
  std::vector<std::size_t> idx(ds.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  sim::Rng rng(sim::Rng::derive_seed(seed, "split"));
  // Fisher-Yates shuffle.
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  auto n_test = static_cast<std::size_t>(
      std::llround(test_fraction * static_cast<double>(ds.size())));
  // Rounding can claim every sample for the test split (e.g. n = 2,
  // fraction 0.8); keep at least one training sample unless the caller
  // explicitly asked for a pure test set.
  if (ds.size() > 0 && test_fraction < 1.0 && n_test >= ds.size()) {
    n_test = ds.size() - 1;
  }
  // Membership and *order* both match the old materializing implementation
  // exactly: test gets the first n_test shuffled rows, train the rest, so
  // order-sensitive downstream stats (the Welford fit) are bit-identical.
  std::vector<std::size_t> test_rows(n_test);
  std::vector<std::size_t> train_rows(idx.size() - n_test);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t base = ds.base_row(idx[k]);
    (k < n_test ? test_rows[k] : train_rows[k - n_test]) = base;
  }
  if (ds.table() == nullptr) return {monitor::TableView{}, monitor::TableView{}};
  return {monitor::TableView(*ds.table(), std::move(train_rows)),
          monitor::TableView(*ds.table(), std::move(test_rows))};
}

void gather_standardized(const monitor::TableView& ds, const Standardizer* stdz, Matrix& x,
                         std::vector<int>& y) {
  const std::size_t width = ds.width();
  x.resize(ds.size(), width);
  y.resize(ds.size());
  const bool standardize = stdz != nullptr && stdz->fitted();
  for (std::size_t k = 0; k < ds.size(); ++k) {
    const double* src = ds.row(k);
    if (standardize) {
      stdz->transform_into(src, width, x.row(k));
    } else {
      std::copy(src, src + width, x.row(k));
    }
    y[k] = ds.label(k);
  }
}

std::vector<double> inverse_frequency_weights(const monitor::TableView& ds, int n_classes) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
  for (std::size_t k = 0; k < ds.size(); ++k) {
    const int l = ds.label(k);
    if (l >= 0 && l < n_classes) counts[static_cast<std::size_t>(l)] += 1;
  }
  std::vector<double> w(static_cast<std::size_t>(n_classes), 1.0);
  const double n = static_cast<double>(ds.size());
  for (int c = 0; c < n_classes; ++c) {
    const auto nc = counts[static_cast<std::size_t>(c)];
    w[static_cast<std::size_t>(c)] =
        nc == 0 ? 0.0 : n / (static_cast<double>(n_classes) * static_cast<double>(nc));
  }
  return w;
}

}  // namespace qif::ml
