// Neural network building blocks: dense layer, ReLU, softmax
// cross-entropy with class weights, and the Adam optimizer.
//
// Everything is implemented from first principles — the training server in
// the paper is a PyTorch model, but a dependency-free C++ implementation
// keeps the framework deployable on the login/management node of a cluster
// where a Python stack is unwelcome.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "qif/ml/matrix.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ml {

struct AdamParams {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

/// Fully connected layer: Y = X W + b, with He-initialized weights.
class Dense {
 public:
  Dense() = default;
  Dense(std::size_t in, std::size_t out, sim::Rng& rng);

  /// Forward pass; caches X for the backward pass.
  Matrix forward(const Matrix& x);
  /// Inference-only forward: no cache, usable on a const layer.
  [[nodiscard]] Matrix forward_inference(const Matrix& x) const;
  /// Backward pass: accumulates dW/db from the cached X, returns dX.
  Matrix backward(const Matrix& dy);
  /// Applies one Adam update with bias correction at step `t` (1-based)
  /// and clears the gradient accumulators.
  void step(const AdamParams& p, std::int64_t t);
  void zero_grad();

  [[nodiscard]] std::size_t in_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }
  [[nodiscard]] const Matrix& weights() const { return w_; }
  [[nodiscard]] const std::vector<double>& bias() const { return b_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  Matrix w_;               // (in, out)
  std::vector<double> b_;  // (out)
  Matrix dw_;
  std::vector<double> db_;
  Matrix mw_, vw_;         // Adam first/second moments for W
  std::vector<double> mb_, vb_;
  Matrix x_cache_;
};

/// ReLU activation with cached mask.
class ReLU {
 public:
  Matrix forward(const Matrix& x);
  [[nodiscard]] static Matrix forward_inference(const Matrix& x);
  Matrix backward(const Matrix& dy) const;

 private:
  Matrix x_cache_;
};

/// Tanh activation with cached output (tanh' = 1 - tanh^2).
class Tanh {
 public:
  Matrix forward(const Matrix& x);
  [[nodiscard]] static Matrix forward_inference(const Matrix& x);
  Matrix backward(const Matrix& dy) const;

 private:
  Matrix y_cache_;
};

/// Mean squared error for the regression extension (predicting the
/// degradation level itself rather than its bin).
struct SquaredError {
  /// Returns (loss, dpred) for column-vector predictions (N, 1).
  static std::pair<double, Matrix> loss_and_grad(const Matrix& pred,
                                                 const std::vector<double>& targets);
};

/// Softmax cross-entropy with optional per-class weights (for the skewed
/// datasets: IO500 is ~75% positive, DLIO ~20%).
struct SoftmaxXent {
  /// Returns (loss, dlogits).  `class_weights` empty means uniform.
  static std::pair<double, Matrix> loss_and_grad(const Matrix& logits,
                                                 const std::vector<int>& labels,
                                                 const std::vector<double>& class_weights);
  /// Row-wise softmax probabilities.
  static Matrix softmax(const Matrix& logits);
};

}  // namespace qif::ml
