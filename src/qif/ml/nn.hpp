// Neural network building blocks: dense layer, ReLU, softmax
// cross-entropy with class weights, and the Adam optimizer.
//
// Everything is implemented from first principles — the training server in
// the paper is a PyTorch model, but a dependency-free C++ implementation
// keeps the framework deployable on the login/management node of a cluster
// where a Python stack is unwelcome.
//
// Buffer discipline: the training-path forward()/backward() methods write
// into buffers owned by the layer and return a reference, so a steady-state
// epoch performs no heap allocation.  A returned reference stays valid
// until the same layer's next forward()/backward() call; chaining layers is
// safe because every layer only writes its own buffers.  The *_inference
// paths stay const (and allocate) so a shared trained model can serve
// predictions from several threads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "qif/ml/matrix.hpp"
#include "qif/sim/rng.hpp"

namespace qif::exec {
class ThreadPool;
}

namespace qif::ml {

struct AdamParams {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

/// Fully connected layer: Y = X W + b, with He-initialized weights.
class Dense {
 public:
  Dense() = default;
  Dense(std::size_t in, std::size_t out, sim::Rng& rng);

  /// Forward pass; caches X for the backward pass.  `pool` (optional)
  /// parallelizes the GEMM with bit-identical results at any job count.
  const Matrix& forward(MatView x, exec::ThreadPool* pool = nullptr);
  /// Inference-only forward: no cache, usable on a const layer.
  [[nodiscard]] Matrix forward_inference(MatView x) const;
  /// Inference forward into a caller-owned buffer: const (usable from a
  /// shared trained model), and allocation-free once `y`'s capacity covers
  /// the batch shape — the serving-path variant of forward_inference.
  /// `y` must not alias `x`.  Bit-identical to forward_inference.
  void forward_into(MatView x, Matrix& y, exec::ThreadPool* pool = nullptr) const;
  /// Backward pass: accumulates dW/db from the cached X, returns dX.
  const Matrix& backward(MatView dy, exec::ThreadPool* pool = nullptr);
  /// Applies one Adam update with bias correction at step `t` (1-based)
  /// and clears the gradient accumulators.
  void step(const AdamParams& p, std::int64_t t);
  void zero_grad();

  [[nodiscard]] std::size_t in_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }
  [[nodiscard]] const Matrix& weights() const { return w_; }
  [[nodiscard]] const std::vector<double>& bias() const { return b_; }

  /// Number of learnable parameters (weights + biases).
  [[nodiscard]] std::size_t param_count() const { return w_.size() + b_.size(); }
  /// Copies W then b into `dst` (param_count() doubles) — the binary
  /// snapshot path used by early stopping.
  void snapshot_to(double* dst) const;
  /// Restores W then b from `src` (param_count() doubles).
  void restore_from(const double* src);

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  Matrix w_;               // (in, out)
  std::vector<double> b_;  // (out)
  Matrix dw_;
  std::vector<double> db_;
  Matrix mw_, vw_;         // Adam first/second moments for W
  std::vector<double> mb_, vb_;
  Matrix x_cache_;
  Matrix y_;   // training forward output
  Matrix dx_;  // training backward output
};

/// ReLU activation.  The backward mask comes from the cached output
/// (y > 0 iff x > 0), so no separate input cache is needed.
class ReLU {
 public:
  const Matrix& forward(MatView x);
  [[nodiscard]] static Matrix forward_inference(MatView x);
  /// In-place activation for the serving path: same values as
  /// forward_inference, no copy, no allocation.
  static void apply_inplace(Matrix& m);
  const Matrix& backward(MatView dy);

 private:
  Matrix y_;
  Matrix dx_;
};

/// Tanh activation with cached output (tanh' = 1 - tanh^2).
class Tanh {
 public:
  const Matrix& forward(MatView x);
  [[nodiscard]] static Matrix forward_inference(MatView x);
  /// In-place activation (serving path; values match forward_inference).
  static void apply_inplace(Matrix& m);
  const Matrix& backward(MatView dy);

 private:
  Matrix y_;
  Matrix dx_;
};

/// Mean squared error for the regression extension (predicting the
/// degradation level itself rather than its bin).
struct SquaredError {
  /// Returns (loss, dpred) for column-vector predictions (N, 1).
  static std::pair<double, Matrix> loss_and_grad(const Matrix& pred,
                                                 const std::vector<double>& targets);
};

/// Softmax cross-entropy with optional per-class weights (for the skewed
/// datasets: IO500 is ~75% positive, DLIO ~20%).
struct SoftmaxXent {
  /// Returns (loss, dlogits).  `class_weights` empty means uniform.
  static std::pair<double, Matrix> loss_and_grad(const Matrix& logits,
                                                 const std::vector<int>& labels,
                                                 const std::vector<double>& class_weights);
  /// Row-wise softmax probabilities.
  static Matrix softmax(const Matrix& logits);
  /// Row-wise softmax into a caller-owned buffer (resized in place, so a
  /// steady-state serving loop allocates nothing).  Arithmetic is identical
  /// to softmax(), element for element.  `out` must not alias `logits`.
  static void softmax_into(MatView logits, Matrix& out);
};

}  // namespace qif::ml
