#include "qif/ml/matrix.hpp"

#include <algorithm>

namespace qif::ml {

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row(k);
    const double* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace qif::ml
