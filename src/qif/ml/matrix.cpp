#include "qif/ml/matrix.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace qif::ml {
namespace {

// Shape guards must survive NDEBUG builds: an assert that compiles away
// turns a dimension bug into a silent out-of-bounds read.
void check_shapes(std::size_t lhs, std::size_t rhs, const char* what) {
  if (lhs != rhs) {
    throw std::invalid_argument(std::string("matmul shape mismatch (") + what + "): " +
                                std::to_string(lhs) + " vs " + std::to_string(rhs));
  }
}

}  // namespace

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  check_shapes(a.cols(), b.rows(), "A.cols vs B.rows");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  check_shapes(a.rows(), b.rows(), "A.rows vs B.rows");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row(k);
    const double* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  check_shapes(a.cols(), b.cols(), "A.cols vs B.cols");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace qif::ml
