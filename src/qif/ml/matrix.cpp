#include "qif/ml/matrix.hpp"

#include "qif/ml/gemm.hpp"

namespace qif::ml {

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_nn(a, b, c);
  return c;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_tn(a, b, c);
  return c;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_nt(a, b, c);
  return c;
}

}  // namespace qif::ml
