#include "qif/ml/nn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "qif/ml/gemm.hpp"

namespace qif::ml {

Dense::Dense(std::size_t in, std::size_t out, sim::Rng& rng)
    : w_(in, out),
      b_(out, 0.0),
      dw_(in, out),
      db_(out, 0.0),
      mw_(in, out),
      vw_(in, out),
      mb_(out, 0.0),
      vb_(out, 0.0) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(in));  // He init
  for (double& v : w_.data()) v = rng.normal(0.0, stddev);
}

const Matrix& Dense::forward(MatView x, exec::ThreadPool* pool) {
  x_cache_.assign(x);
  gemm_nn(x, w_, y_, /*accumulate=*/false, pool);
  for (std::size_t i = 0; i < y_.rows(); ++i) {
    double* row = y_.row(i);
    for (std::size_t j = 0; j < y_.cols(); ++j) row[j] += b_[j];
  }
  return y_;
}

Matrix Dense::forward_inference(MatView x) const {
  Matrix y;
  gemm_nn(x, w_, y);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double* row = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) row[j] += b_[j];
  }
  return y;
}

void Dense::forward_into(MatView x, Matrix& y, exec::ThreadPool* pool) const {
  gemm_nn(x, w_, y, /*accumulate=*/false, pool);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double* row = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) row[j] += b_[j];
  }
}

const Matrix& Dense::backward(MatView dy, exec::ThreadPool* pool) {
  // Accumulate so several backward calls per step (the shared kernel is
  // applied once per server) sum their gradients before step().
  gemm_tn(x_cache_, dy, dw_, /*accumulate=*/true, pool);
  for (std::size_t i = 0; i < dy.rows; ++i) {
    const double* row = dy.row(i);
    for (std::size_t j = 0; j < dy.cols; ++j) db_[j] += row[j];
  }
  gemm_nt(dy, w_, dx_, /*accumulate=*/false, pool);
  return dx_;
}

void Dense::zero_grad() {
  dw_.fill(0.0);
  std::fill(db_.begin(), db_.end(), 0.0);
}

void Dense::step(const AdamParams& p, std::int64_t t) {
  const double bc1 = 1.0 - std::pow(p.beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(p.beta2, static_cast<double>(t));
  auto update = [&](double& w, double& m, double& v, double g) {
    if (p.weight_decay > 0.0) g += p.weight_decay * w;
    m = p.beta1 * m + (1.0 - p.beta1) * g;
    v = p.beta2 * v + (1.0 - p.beta2) * g * g;
    const double mhat = m / bc1;
    const double vhat = v / bc2;
    w -= p.lr * mhat / (std::sqrt(vhat) + p.eps);
  };
  for (std::size_t i = 0; i < w_.size(); ++i) {
    update(w_.data()[i], mw_.data()[i], vw_.data()[i], dw_.data()[i]);
  }
  for (std::size_t j = 0; j < b_.size(); ++j) {
    double g = db_[j];
    double& m = mb_[j];
    double& v = vb_[j];
    m = p.beta1 * m + (1.0 - p.beta1) * g;
    v = p.beta2 * v + (1.0 - p.beta2) * g * g;
    b_[j] -= p.lr * (m / bc1) / (std::sqrt(v / bc2) + p.eps);
  }
  zero_grad();
}

void Dense::snapshot_to(double* dst) const {
  dst = std::copy(w_.data().begin(), w_.data().end(), dst);
  std::copy(b_.begin(), b_.end(), dst);
}

void Dense::restore_from(const double* src) {
  std::copy(src, src + w_.size(), w_.data().begin());
  std::copy(src + w_.size(), src + w_.size() + b_.size(), b_.begin());
}

void Dense::save(std::ostream& os) const {
  // max_digits10 so weights survive the text round trip bit-exactly.
  os.precision(17);
  os << w_.rows() << ' ' << w_.cols() << '\n';
  for (const double v : w_.data()) os << v << ' ';
  os << '\n';
  for (const double v : b_) os << v << ' ';
  os << '\n';
}

void Dense::load(std::istream& is) {
  std::size_t in = 0, out = 0;
  if (!(is >> in >> out)) throw std::runtime_error("dense load: bad layer shape");
  *this = Dense();
  w_ = Matrix(in, out);
  b_.assign(out, 0.0);
  dw_ = Matrix(in, out);
  db_.assign(out, 0.0);
  mw_ = Matrix(in, out);
  vw_ = Matrix(in, out);
  mb_.assign(out, 0.0);
  vb_.assign(out, 0.0);
  for (double& v : w_.data()) {
    if (!(is >> v)) throw std::runtime_error("dense load: truncated weights");
  }
  for (double& v : b_) {
    if (!(is >> v)) throw std::runtime_error("dense load: truncated biases");
  }
}

const Matrix& ReLU::forward(MatView x) {
  y_.resize(x.rows, x.cols);
  const double* in = x.ptr;
  double* out = y_.data().data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
  return y_;
}

Matrix ReLU::forward_inference(MatView x) {
  Matrix y(x.rows, x.cols);
  const double* in = x.ptr;
  double* out = y.data().data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
  return y;
}

void ReLU::apply_inplace(Matrix& m) {
  double* v = m.data().data();
  for (std::size_t i = 0; i < m.size(); ++i) v[i] = v[i] > 0.0 ? v[i] : 0.0;
}

const Matrix& ReLU::backward(MatView dy) {
  dx_.resize(dy.rows, dy.cols);
  const double* in = dy.ptr;
  const double* y = y_.data().data();
  double* out = dx_.data().data();
  for (std::size_t i = 0; i < dy.size(); ++i) out[i] = y[i] > 0.0 ? in[i] : 0.0;
  return dx_;
}

const Matrix& Tanh::forward(MatView x) {
  y_.resize(x.rows, x.cols);
  const double* in = x.ptr;
  double* out = y_.data().data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::tanh(in[i]);
  return y_;
}

Matrix Tanh::forward_inference(MatView x) {
  Matrix y(x.rows, x.cols);
  const double* in = x.ptr;
  double* out = y.data().data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::tanh(in[i]);
  return y;
}

void Tanh::apply_inplace(Matrix& m) {
  double* v = m.data().data();
  for (std::size_t i = 0; i < m.size(); ++i) v[i] = std::tanh(v[i]);
}

const Matrix& Tanh::backward(MatView dy) {
  dx_.resize(dy.rows, dy.cols);
  const double* in = dy.ptr;
  const double* y = y_.data().data();
  double* out = dx_.data().data();
  for (std::size_t i = 0; i < dy.size(); ++i) out[i] = in[i] * (1.0 - y[i] * y[i]);
  return dx_;
}

std::pair<double, Matrix> SquaredError::loss_and_grad(const Matrix& pred,
                                                      const std::vector<double>& targets) {
  const std::size_t n = pred.rows();
  Matrix d(pred.rows(), 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double err = pred.at(i, 0) - targets[i];
    loss += err * err;
    d.at(i, 0) = 2.0 * err / static_cast<double>(n);
  }
  return {loss / static_cast<double>(n), std::move(d)};
}

Matrix SoftmaxXent::softmax(const Matrix& logits) {
  Matrix p = logits;
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double* row = p.row(i);
    double mx = row[0];
    for (std::size_t j = 1; j < p.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (std::size_t j = 0; j < p.cols(); ++j) row[j] /= sum;
  }
  return p;
}

void SoftmaxXent::softmax_into(MatView logits, Matrix& out) {
  out.resize(logits.rows, logits.cols);
  for (std::size_t i = 0; i < logits.rows; ++i) {
    const double* in = logits.row(i);
    double* row = out.row(i);
    double mx = in[0];
    for (std::size_t j = 1; j < logits.cols; ++j) mx = std::max(mx, in[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < logits.cols; ++j) {
      row[j] = std::exp(in[j] - mx);
      sum += row[j];
    }
    for (std::size_t j = 0; j < logits.cols; ++j) row[j] /= sum;
  }
}

std::pair<double, Matrix> SoftmaxXent::loss_and_grad(
    const Matrix& logits, const std::vector<int>& labels,
    const std::vector<double>& class_weights) {
  const std::size_t n = logits.rows();
  Matrix p = softmax(logits);
  double loss = 0.0;
  double weight_sum = 0.0;
  Matrix d = p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    const double w = class_weights.empty() ? 1.0 : class_weights[y];
    loss += -w * std::log(std::max(p.at(i, y), 1e-12));
    weight_sum += w;
    double* row = d.row(i);
    for (std::size_t j = 0; j < d.cols(); ++j) row[j] *= w;
    row[y] -= w;
  }
  const double norm = weight_sum > 0.0 ? weight_sum : 1.0;
  for (double& v : d.data()) v /= norm;
  return {loss / norm, std::move(d)};
}

}  // namespace qif::ml
