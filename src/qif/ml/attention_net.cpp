#include "qif/ml/attention_net.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::ml {

AttentionNet::AttentionNet(const AttentionNetConfig& config) : config_(config) {
  sim::Rng rng(sim::Rng::derive_seed(config.seed, "attention-net"));
  embed_ = Dense(static_cast<std::size_t>(config_.per_server_dim),
                 static_cast<std::size_t>(config_.embed_dim), rng);
  attn_hidden_ = Dense(static_cast<std::size_t>(config_.embed_dim),
                       static_cast<std::size_t>(config_.attention_dim), rng);
  attn_score_ = Dense(static_cast<std::size_t>(config_.attention_dim), 1, rng);
  std::size_t in = static_cast<std::size_t>(config_.embed_dim);
  for (const int h : config_.head_hidden) {
    head_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    head_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  head_layers_.emplace_back(in, static_cast<std::size_t>(config_.n_classes), rng);
}

namespace {

/// pooled[b] = sum_s alpha[b,s] * embed[b*S+s].
Matrix pool(const Matrix& embed, const Matrix& alpha) {
  const std::size_t b = alpha.rows();
  const std::size_t s = alpha.cols();
  const std::size_t e = embed.cols();
  Matrix pooled(b, e);
  for (std::size_t i = 0; i < b; ++i) {
    double* out = pooled.row(i);
    for (std::size_t j = 0; j < s; ++j) {
      const double a = alpha.at(i, j);
      const double* row = embed.row(i * s + j);
      for (std::size_t k = 0; k < e; ++k) out[k] += a * row[k];
    }
  }
  return pooled;
}

}  // namespace

Matrix AttentionNet::forward(const Matrix& x) {
  const auto b = x.rows();
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols() == s * d);

  cache_.embed = embed_relu_.forward(embed_.forward(x.reshaped(b * s, d)));
  const Matrix u = attn_tanh_.forward(attn_hidden_.forward(cache_.embed));
  const Matrix scores = attn_score_.forward(u).reshaped(b, s);
  cache_.alpha = SoftmaxXent::softmax(scores);
  cache_.pooled = pool(cache_.embed, cache_.alpha);

  Matrix h = cache_.pooled;
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = head_relus_[l].forward(head_layers_[l].forward(h));
  }
  return head_layers_.back().forward(h);
}

void AttentionNet::backward(const Matrix& dlogits) {
  Matrix d = head_layers_.back().backward(dlogits);
  for (std::size_t l = head_layers_.size() - 1; l-- > 0;) {
    d = head_layers_[l].backward(head_relus_[l].backward(d));
  }
  // d == dpooled (B, E).
  const std::size_t b = cache_.alpha.rows();
  const std::size_t s = cache_.alpha.cols();
  const std::size_t e = cache_.embed.cols();

  Matrix dalpha(b, s);
  Matrix dembed(b * s, e);
  for (std::size_t i = 0; i < b; ++i) {
    const double* dp = d.row(i);
    for (std::size_t j = 0; j < s; ++j) {
      const double* erow = cache_.embed.row(i * s + j);
      double dot = 0.0;
      for (std::size_t k = 0; k < e; ++k) dot += dp[k] * erow[k];
      dalpha.at(i, j) = dot;
      const double a = cache_.alpha.at(i, j);
      double* de = dembed.row(i * s + j);
      for (std::size_t k = 0; k < e; ++k) de[k] = a * dp[k];
    }
  }
  // Softmax jacobian per row.
  Matrix dscores(b, s);
  for (std::size_t i = 0; i < b; ++i) {
    double inner = 0.0;
    for (std::size_t j = 0; j < s; ++j) inner += cache_.alpha.at(i, j) * dalpha.at(i, j);
    for (std::size_t j = 0; j < s; ++j) {
      dscores.at(i, j) = cache_.alpha.at(i, j) * (dalpha.at(i, j) - inner);
    }
  }
  // Attention branch back to the embeddings.
  Matrix du = attn_score_.backward(dscores.reshaped(b * s, 1));
  Matrix dembed_attn = attn_hidden_.backward(attn_tanh_.backward(du));
  for (std::size_t i = 0; i < dembed.size(); ++i) {
    dembed.data()[i] += dembed_attn.data()[i];
  }
  embed_.backward(embed_relu_.backward(dembed));
}

void AttentionNet::step(const AdamParams& params, std::int64_t t) {
  embed_.step(params, t);
  attn_hidden_.step(params, t);
  attn_score_.step(params, t);
  for (auto& l : head_layers_) l.step(params, t);
}

Matrix AttentionNet::forward_inference(const Matrix& x) const {
  const auto b = x.rows();
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols() == s * d);
  const Matrix embed =
      ReLU::forward_inference(embed_.forward_inference(x.reshaped(b * s, d)));
  const Matrix u =
      Tanh::forward_inference(attn_hidden_.forward_inference(embed));
  const Matrix alpha =
      SoftmaxXent::softmax(attn_score_.forward_inference(u).reshaped(b, s));
  Matrix h = pool(embed, alpha);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = ReLU::forward_inference(head_layers_[l].forward_inference(h));
  }
  return head_layers_.back().forward_inference(h);
}

std::vector<int> AttentionNet::predict(const Matrix& x) const {
  const Matrix logits = forward_inference(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row(i);
    int best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[i] = best;
  }
  return out;
}

std::vector<double> AttentionNet::attention_weights(
    const std::vector<double>& features) const {
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(features.size() == s * d);
  Matrix x(s, d);
  x.data() = features;
  const Matrix embed = ReLU::forward_inference(embed_.forward_inference(x));
  const Matrix u = Tanh::forward_inference(attn_hidden_.forward_inference(embed));
  const Matrix alpha =
      SoftmaxXent::softmax(attn_score_.forward_inference(u).reshaped(1, s));
  return {alpha.row(0), alpha.row(0) + s};
}

void AttentionNet::save(std::ostream& os) const {
  os << "attentionnet 1\n";
  os << config_.per_server_dim << ' ' << config_.n_servers << ' ' << config_.n_classes
     << ' ' << config_.embed_dim << ' ' << config_.attention_dim << '\n';
  os << config_.head_hidden.size();
  for (const int h : config_.head_hidden) os << ' ' << h;
  os << '\n';
  embed_.save(os);
  attn_hidden_.save(os);
  attn_score_.save(os);
  for (const auto& l : head_layers_) l.save(os);
}

void AttentionNet::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "attentionnet") {
    throw std::runtime_error("attentionnet load: bad header");
  }
  AttentionNetConfig cfg;
  if (!(is >> cfg.per_server_dim >> cfg.n_servers >> cfg.n_classes >> cfg.embed_dim >>
        cfg.attention_dim)) {
    throw std::runtime_error("attentionnet load: truncated dimensions");
  }
  std::size_t nh = 0;
  if (!(is >> nh) || nh > 1024) {
    throw std::runtime_error("attentionnet load: truncated head sizes");
  }
  cfg.head_hidden.resize(nh);
  for (auto& h : cfg.head_hidden) {
    if (!(is >> h)) throw std::runtime_error("attentionnet load: truncated head sizes");
  }
  *this = AttentionNet(cfg);
  embed_.load(is);
  attn_hidden_.load(is);
  attn_score_.load(is);
  for (auto& l : head_layers_) l.load(is);
}

}  // namespace qif::ml
