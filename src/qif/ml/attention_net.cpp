#include "qif/ml/attention_net.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::ml {

AttentionNet::AttentionNet(const AttentionNetConfig& config) : config_(config) {
  sim::Rng rng(sim::Rng::derive_seed(config.seed, "attention-net"));
  embed_ = Dense(static_cast<std::size_t>(config_.per_server_dim),
                 static_cast<std::size_t>(config_.embed_dim), rng);
  attn_hidden_ = Dense(static_cast<std::size_t>(config_.embed_dim),
                       static_cast<std::size_t>(config_.attention_dim), rng);
  attn_score_ = Dense(static_cast<std::size_t>(config_.attention_dim), 1, rng);
  std::size_t in = static_cast<std::size_t>(config_.embed_dim);
  for (const int h : config_.head_hidden) {
    head_layers_.emplace_back(in, static_cast<std::size_t>(h), rng);
    head_relus_.emplace_back();
    in = static_cast<std::size_t>(h);
  }
  head_layers_.emplace_back(in, static_cast<std::size_t>(config_.n_classes), rng);
}

namespace {

/// pooled[b] = sum_s alpha[b,s] * embed[b*S+s], written into `pooled`
/// (resized in place, so steady-state batches allocate nothing).
void pool_into(MatView embed, MatView alpha, Matrix& pooled) {
  const std::size_t b = alpha.rows;
  const std::size_t s = alpha.cols;
  const std::size_t e = embed.cols;
  pooled.resize(b, e);
  pooled.fill(0.0);
  for (std::size_t i = 0; i < b; ++i) {
    double* out = pooled.row(i);
    for (std::size_t j = 0; j < s; ++j) {
      const double a = alpha.at(i, j);
      const double* row = embed.row(i * s + j);
      for (std::size_t k = 0; k < e; ++k) out[k] += a * row[k];
    }
  }
}

}  // namespace

const Matrix& AttentionNet::forward(MatView x) {
  const auto b = x.rows;
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == s * d);

  cache_.embed = &embed_relu_.forward(embed_.forward(x.reshaped(b * s, d), pool_));
  const Matrix& u = attn_tanh_.forward(attn_hidden_.forward(*cache_.embed, pool_));
  const Matrix& scores = attn_score_.forward(u, pool_);
  cache_.alpha = SoftmaxXent::softmax(scores.reshaped(b, s));
  pool_into(*cache_.embed, cache_.alpha, cache_.pooled);

  MatView h = cache_.pooled;
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = head_relus_[l].forward(head_layers_[l].forward(h, pool_));
  }
  return head_layers_.back().forward(h, pool_);
}

void AttentionNet::backward(MatView dlogits) {
  MatView d{head_layers_.back().backward(dlogits, pool_)};
  for (std::size_t l = head_layers_.size() - 1; l-- > 0;) {
    d = head_layers_[l].backward(head_relus_[l].backward(d), pool_);
  }
  // d == dpooled (B, E).
  const std::size_t b = cache_.alpha.rows();
  const std::size_t s = cache_.alpha.cols();
  const std::size_t e = cache_.embed->cols();

  dalpha_.resize(b, s);
  dembed_.resize(b * s, e);
  for (std::size_t i = 0; i < b; ++i) {
    const double* dp = d.row(i);
    for (std::size_t j = 0; j < s; ++j) {
      const double* erow = cache_.embed->row(i * s + j);
      double dot = 0.0;
      for (std::size_t k = 0; k < e; ++k) dot += dp[k] * erow[k];
      dalpha_.at(i, j) = dot;
      const double a = cache_.alpha.at(i, j);
      double* de = dembed_.row(i * s + j);
      for (std::size_t k = 0; k < e; ++k) de[k] = a * dp[k];
    }
  }
  // Softmax jacobian per row.
  dscores_.resize(b, s);
  for (std::size_t i = 0; i < b; ++i) {
    double inner = 0.0;
    for (std::size_t j = 0; j < s; ++j) inner += cache_.alpha.at(i, j) * dalpha_.at(i, j);
    for (std::size_t j = 0; j < s; ++j) {
      dscores_.at(i, j) = cache_.alpha.at(i, j) * (dalpha_.at(i, j) - inner);
    }
  }
  // Attention branch back to the embeddings.
  const Matrix& du = attn_score_.backward(MatView(dscores_).reshaped(b * s, 1), pool_);
  const Matrix& dembed_attn = attn_hidden_.backward(attn_tanh_.backward(du), pool_);
  for (std::size_t i = 0; i < dembed_.size(); ++i) {
    dembed_.data()[i] += dembed_attn.data()[i];
  }
  embed_.backward(embed_relu_.backward(dembed_), pool_);
}

void AttentionNet::step(const AdamParams& params, std::int64_t t) {
  embed_.step(params, t);
  attn_hidden_.step(params, t);
  attn_score_.step(params, t);
  for (auto& l : head_layers_) l.step(params, t);
}

Matrix AttentionNet::forward_inference(MatView x) const {
  const auto b = x.rows;
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == s * d);
  const Matrix embed =
      ReLU::forward_inference(embed_.forward_inference(x.reshaped(b * s, d)));
  const Matrix u = Tanh::forward_inference(attn_hidden_.forward_inference(embed));
  const Matrix alpha =
      SoftmaxXent::softmax(attn_score_.forward_inference(u).reshaped(b, s));
  Matrix h;
  pool_into(embed, alpha, h);
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    h = ReLU::forward_inference(head_layers_[l].forward_inference(h));
  }
  return head_layers_.back().forward_inference(h);
}

MatView AttentionNet::forward_batch(MatView x, Scratch& s, exec::ThreadPool* pool) const {
  const auto b = x.rows;
  const auto sv = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(x.cols == sv * d);

  // Same arithmetic as forward_inference, element for element, but every
  // intermediate lands in a caller-owned buffer.
  embed_.forward_into(x.reshaped(b * sv, d), s.embed, pool);
  ReLU::apply_inplace(s.embed);
  attn_hidden_.forward_into(s.embed, s.u, pool);
  Tanh::apply_inplace(s.u);
  attn_score_.forward_into(s.u, s.scores, pool);
  SoftmaxXent::softmax_into(MatView(s.scores).reshaped(b, sv), s.alpha);

  Matrix* bufs[2] = {&s.ping, &s.pong};
  pool_into(s.embed, s.alpha, s.ping);
  MatView v = s.ping;
  int cur = 1;  // pooled lives in ping; first head layer writes pong
  for (std::size_t l = 0; l + 1 < head_layers_.size(); ++l) {
    head_layers_[l].forward_into(v, *bufs[cur], pool);
    ReLU::apply_inplace(*bufs[cur]);
    v = *bufs[cur];
    cur ^= 1;
  }
  head_layers_.back().forward_into(v, *bufs[cur], pool);
  return *bufs[cur];
}

std::vector<int> AttentionNet::predict(MatView x) const {
  const Matrix logits = forward_inference(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row(i);
    int best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[i] = best;
  }
  return out;
}

std::vector<double> AttentionNet::attention_weights(
    const std::vector<double>& features) const {
  const auto s = static_cast<std::size_t>(config_.n_servers);
  const auto d = static_cast<std::size_t>(config_.per_server_dim);
  assert(features.size() == s * d);
  const Matrix embed =
      ReLU::forward_inference(embed_.forward_inference(MatView(features.data(), s, d)));
  const Matrix u = Tanh::forward_inference(attn_hidden_.forward_inference(embed));
  const Matrix alpha =
      SoftmaxXent::softmax(attn_score_.forward_inference(u).reshaped(1, s));
  return {alpha.row(0), alpha.row(0) + s};
}

std::size_t AttentionNet::param_count() const {
  std::size_t n = embed_.param_count() + attn_hidden_.param_count() +
                  attn_score_.param_count();
  for (const auto& l : head_layers_) n += l.param_count();
  return n;
}

void AttentionNet::snapshot_into(std::vector<double>& out) const {
  out.resize(param_count());
  double* dst = out.data();
  embed_.snapshot_to(dst);
  dst += embed_.param_count();
  attn_hidden_.snapshot_to(dst);
  dst += attn_hidden_.param_count();
  attn_score_.snapshot_to(dst);
  dst += attn_score_.param_count();
  for (const auto& l : head_layers_) {
    l.snapshot_to(dst);
    dst += l.param_count();
  }
}

std::vector<double> AttentionNet::snapshot() const {
  std::vector<double> out;
  snapshot_into(out);
  return out;
}

void AttentionNet::restore(const std::vector<double>& snap) {
  if (snap.size() != param_count()) {
    throw std::invalid_argument("attentionnet restore: snapshot has " +
                                std::to_string(snap.size()) + " params, net has " +
                                std::to_string(param_count()));
  }
  const double* src = snap.data();
  embed_.restore_from(src);
  src += embed_.param_count();
  attn_hidden_.restore_from(src);
  src += attn_hidden_.param_count();
  attn_score_.restore_from(src);
  src += attn_score_.param_count();
  for (auto& l : head_layers_) {
    l.restore_from(src);
    src += l.param_count();
  }
}

void AttentionNet::save(std::ostream& os) const {
  os << "attentionnet 1\n";
  os << config_.per_server_dim << ' ' << config_.n_servers << ' ' << config_.n_classes
     << ' ' << config_.embed_dim << ' ' << config_.attention_dim << '\n';
  os << config_.head_hidden.size();
  for (const int h : config_.head_hidden) os << ' ' << h;
  os << '\n';
  embed_.save(os);
  attn_hidden_.save(os);
  attn_score_.save(os);
  for (const auto& l : head_layers_) l.save(os);
}

void AttentionNet::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "attentionnet") {
    throw std::runtime_error("attentionnet load: bad header");
  }
  AttentionNetConfig cfg;
  if (!(is >> cfg.per_server_dim >> cfg.n_servers >> cfg.n_classes >> cfg.embed_dim >>
        cfg.attention_dim)) {
    throw std::runtime_error("attentionnet load: truncated dimensions");
  }
  std::size_t nh = 0;
  if (!(is >> nh) || nh > 1024) {
    throw std::runtime_error("attentionnet load: truncated head sizes");
  }
  cfg.head_hidden.resize(nh);
  for (auto& h : cfg.head_hidden) {
    if (!(is >> h)) throw std::runtime_error("attentionnet load: truncated head sizes");
  }
  exec::ThreadPool* pool = pool_;  // survive the reconstruction below
  *this = AttentionNet(cfg);
  pool_ = pool;
  embed_.load(is);
  attn_hidden_.load(is);
  attn_score_.load(is);
  for (auto& l : head_layers_) l.load(is);
}

}  // namespace qif::ml
