// Dataset preprocessing: standardization and the 80/20 window split.
//
// Everything here operates on monitor::TableView — non-owning, index-based
// views of one columnar FeatureTable.  split_dataset permutes indices
// instead of materializing datasets, the standardizer fits by streaming
// view rows, and gather_standardized is the only place features are ever
// copied (straight into a caller-owned matrix, standardization fused in).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "qif/ml/matrix.hpp"
#include "qif/monitor/features.hpp"

namespace qif::ml {

/// Per-feature z-score standardizer.  Statistics are pooled over every
/// (sample, server) pair within each of the D per-server feature columns —
/// consistent with the shared kernel, which must interpret any server's
/// vector with the same scaling.
class Standardizer {
 public:
  Standardizer() = default;

  /// Fits on a view's per-server columns (train split only).
  void fit(const monitor::TableView& ds);
  /// In-place transform of a flattened (n_servers * dim) feature vector.
  void transform(std::vector<double>& features) const;
  /// Out-of-place transform of `n` doubles (a multiple of dim()) from
  /// `src` into `dst`; plain copy when unfitted.  The trainer's per-batch
  /// gather runs through this, reading table rows in place.
  void transform_into(const double* src, std::size_t n, double* dst) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] int dim() const { return static_cast<int>(mean_.size()); }

  void save(std::ostream& os) const;
  /// Throws std::runtime_error if the stream is truncated or corrupted.
  void load(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Random split preserving the paper's protocol: "we randomly select time
/// windows accounting for 20% of the total amount of windows and reserve
/// these for a test set".  Returns index views into the input's table —
/// no rows are copied, and splitting a view composes (the trainer's
/// validation carve-out splits the campaign's train view).  The table must
/// outlive the returned views.
[[nodiscard]] std::pair<monitor::TableView, monitor::TableView> split_dataset(
    const monitor::TableView& ds, double test_fraction, std::uint64_t seed);

/// Gathers a view into a caller-owned (N, n_servers*dim) matrix and label
/// vector, applying the standardizer if fitted.  The matrix/vector are
/// resized in place so steady-state callers reuse their capacity.
void gather_standardized(const monitor::TableView& ds, const Standardizer* stdz, Matrix& x,
                         std::vector<int>& y);

/// Inverse-frequency class weights: w_c = N / (K * N_c).
[[nodiscard]] std::vector<double> inverse_frequency_weights(const monitor::TableView& ds,
                                                            int n_classes);

}  // namespace qif::ml
