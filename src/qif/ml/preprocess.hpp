// Dataset preprocessing: standardization and the 80/20 window split.
//
// Everything here operates on monitor::TableView — non-owning, index-based
// views of one columnar FeatureTable.  split_dataset permutes indices
// instead of materializing datasets, the standardizer fits by streaming
// view rows, and gather_standardized is the only place features are ever
// copied (straight into a caller-owned matrix, standardization fused in).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "qif/ml/matrix.hpp"
#include "qif/monitor/features.hpp"

namespace qif::ml {

/// Per-feature z-score standardizer.  Statistics are pooled over every
/// (sample, server) pair within each of the D per-server feature columns —
/// consistent with the shared kernel, which must interpret any server's
/// vector with the same scaling.
class Standardizer {
 public:
  Standardizer() = default;

  /// Fits on a view's per-server columns (train split only).
  void fit(const monitor::TableView& ds);
  /// Fits on the `idx` rows of a streaming source, in `idx` order.  The
  /// Welford update sequence is identical to fit(view-of-those-rows), so
  /// the chunked ingestion path reproduces the in-RAM statistics bit for
  /// bit.  Rows are read one at a time — nothing dataset-sized is built.
  void fit(const monitor::RowAccess& rows, const std::vector<std::size_t>& idx);
  /// In-place transform of a flattened (n_servers * dim) feature vector.
  void transform(std::vector<double>& features) const;
  /// Out-of-place transform of `n` doubles (a multiple of dim()) from
  /// `src` into `dst`; plain copy when unfitted.  The trainer's per-batch
  /// gather runs through this, reading table rows in place.
  void transform_into(const double* src, std::size_t n, double* dst) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] int dim() const { return static_cast<int>(mean_.size()); }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<double>& inv_std() const { return inv_std_; }
  /// Rebuilds a fitted standardizer from stored moments (the binary model
  /// format's restore path).  Throws std::invalid_argument on a size
  /// mismatch between the two vectors.
  [[nodiscard]] static Standardizer from_moments(std::vector<double> mean,
                                                 std::vector<double> inv_std);

  void save(std::ostream& os) const;
  /// Throws std::runtime_error if the stream is truncated or corrupted.
  void load(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Random split preserving the paper's protocol: "we randomly select time
/// windows accounting for 20% of the total amount of windows and reserve
/// these for a test set".  Returns index views into the input's table —
/// no rows are copied, and splitting a view composes (the trainer's
/// validation carve-out splits the campaign's train view).  The table must
/// outlive the returned views.
[[nodiscard]] std::pair<monitor::TableView, monitor::TableView> split_dataset(
    const monitor::TableView& ds, double test_fraction, std::uint64_t seed);

/// The split's index core: partitions [0, n) into (train, test) row-index
/// vectors with the same RNG stream, shuffle, and ordering as
/// split_dataset (which is now a thin wrapper).  Degenerate inputs are
/// handled explicitly rather than by clamp side effects: n == 0 returns
/// two empty vectors, a non-finite or negative fraction selects no test
/// rows, a fraction >= 1 selects every row (the old implementation
/// underflowed `n - n_test` for fractions above 1), and any fraction
/// strictly below 1 keeps at least one training row.
[[nodiscard]] std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_rows(
    std::size_t n, double test_fraction, std::uint64_t seed);

/// Gathers a view into a caller-owned (N, n_servers*dim) matrix and label
/// vector, applying the standardizer if fitted.  The matrix/vector are
/// resized in place so steady-state callers reuse their capacity.
void gather_standardized(const monitor::TableView& ds, const Standardizer* stdz, Matrix& x,
                         std::vector<int>& y);

/// Streaming variant: gathers rows `idx` (in order) of a RowAccess source.
void gather_standardized(const monitor::RowAccess& rows,
                         const std::vector<std::size_t>& idx, const Standardizer* stdz,
                         Matrix& x, std::vector<int>& y);

/// Inverse-frequency class weights: w_c = N / (K * N_c).
[[nodiscard]] std::vector<double> inverse_frequency_weights(const monitor::TableView& ds,
                                                            int n_classes);

/// Streaming variant over the `idx` rows of a RowAccess source.
[[nodiscard]] std::vector<double> inverse_frequency_weights(
    const monitor::RowAccess& rows, const std::vector<std::size_t>& idx, int n_classes);

}  // namespace qif::ml
