// Dataset preprocessing: standardization and the 80/20 window split.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "qif/ml/matrix.hpp"
#include "qif/monitor/features.hpp"

namespace qif::ml {

/// Per-feature z-score standardizer.  Statistics are pooled over every
/// (sample, server) pair within each of the D per-server feature columns —
/// consistent with the shared kernel, which must interpret any server's
/// vector with the same scaling.
class Standardizer {
 public:
  Standardizer() = default;

  /// Fits on a dataset's per-server columns (train split only).
  void fit(const monitor::Dataset& ds);
  /// In-place transform of a flattened (n_servers * dim) feature vector.
  void transform(std::vector<double>& features) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] int dim() const { return static_cast<int>(mean_.size()); }

  void save(std::ostream& os) const;
  /// Throws std::runtime_error if the stream is truncated or corrupted.
  void load(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Random split preserving the paper's protocol: "we randomly select time
/// windows accounting for 20% of the total amount of windows and reserve
/// these for a test set".
[[nodiscard]] std::pair<monitor::Dataset, monitor::Dataset> split_dataset(
    const monitor::Dataset& ds, double test_fraction, std::uint64_t seed);

/// Packs a dataset into an (N, n_servers*dim) matrix and a label vector,
/// applying the standardizer if fitted.
[[nodiscard]] std::pair<Matrix, std::vector<int>> to_matrix(const monitor::Dataset& ds,
                                                            const Standardizer* stdz);

/// Inverse-frequency class weights: w_c = N / (K * N_c).
[[nodiscard]] std::vector<double> inverse_frequency_weights(const monitor::Dataset& ds,
                                                            int n_classes);

}  // namespace qif::ml
