// The paper's kernel-based neural network (§III-C).
//
// "the kernel-based model applies the same dense network to each of the
// server's vectors, and learns to generally interpret the data from any
// server.  Once the kernel-based network has processed each of the
// per-server vectors, resulting in a single value for each server, all
// output values are concatenated and further fed through a simple MLP
// classification network for multi-bin classification."
//
// Implementation: a sample is S per-server vectors of width D.  The batch
// (B, S*D) is viewed as (B*S, D) — same row-major memory, no copy —
// pushed through the shared kernel MLP down to one scalar per server,
// viewed back as (B, S) and classified by the MLP head into `n_classes`
// bins.  Because the kernel is shared, its gradient accumulates over all
// S applications — exactly weight sharing.
//
// The architecture is what makes the model robust to "applications [that]
// may only utilize a subset of OSTs or target different ones in multiple
// runs": any server's vector is interpreted by the same function.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qif/ml/nn.hpp"

namespace qif::ml {

struct KernelNetConfig {
  int per_server_dim = 37;           ///< D: width of one server vector
  int n_servers = 7;                 ///< S: monitored servers (OSTs + MDT)
  int n_classes = 2;                 ///< output bins (2 binary; 3 multi-class)
  std::vector<int> kernel_hidden = {64, 32};  ///< shared kernel MLP widths
  std::vector<int> head_hidden = {32};        ///< classifier MLP widths
  std::uint64_t seed = 7;
};

class KernelNet {
 public:
  KernelNet() = default;
  explicit KernelNet(const KernelNetConfig& config);

  /// Optional GEMM thread pool used by forward/backward; results are
  /// bit-identical with or without it.  Not owned; callers must clear it
  /// (set_pool(nullptr)) before the pool is destroyed.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Training forward: X is (B, S*D); returns logits (B, C).  The
  /// reference points into a layer-owned buffer valid until the next call.
  const Matrix& forward(MatView x);
  /// Backward from dlogits; accumulates all layer gradients.
  void backward(MatView dlogits);
  /// Adam update on every layer (t is the 1-based step count).
  void step(const AdamParams& params, std::int64_t t);

  /// Inference without touching training caches.  Takes a view, so rows
  /// can come straight out of a FeatureTable block or a Matrix alike.
  [[nodiscard]] Matrix forward_inference(MatView x) const;

  /// Caller-owned buffers for forward_batch.  One Scratch per serving
  /// thread; after the first full-size batch its capacity is warm and a
  /// steady-state serving loop performs zero heap allocations.
  struct Scratch {
    Matrix ping, pong;  ///< layer ping-pong buffers
    Matrix scores;      ///< (B*S, 1) kernel outputs == (B, S) per-server scores
  };
  /// Batched inference through caller-owned scratch: X is (B, S*D), the
  /// returned view is the (B, C) logits (valid until the scratch is next
  /// written).  After the call `s.scores` holds the per-server kernel
  /// scores, row-major (B, S).  Every row's result is bit-identical to
  /// forward_inference on that row alone — batch composition never changes
  /// a prediction — which is the contract the serving layer's
  /// batched-vs-sync identity tests pin.
  MatView forward_batch(MatView x, Scratch& s,
                        exec::ThreadPool* pool = nullptr) const;
  /// Predicted class per row of X.
  [[nodiscard]] std::vector<int> predict(MatView x) const;
  /// Per-server kernel scores for one sample (interpretability hook: which
  /// server the model blames).
  [[nodiscard]] std::vector<double> server_scores(const std::vector<double>& features) const;

  [[nodiscard]] const KernelNetConfig& config() const { return config_; }

  /// Total learnable parameter count across every layer.
  [[nodiscard]] std::size_t param_count() const;
  /// Binary in-memory weight snapshot: raw doubles, kernel layers then
  /// head layers, each layer W row-major then b.  ~100x cheaper than the
  /// text save/load round trip and bit-exact by construction; used by
  /// early stopping.  The text save()/load() remains the on-disk format.
  void snapshot_into(std::vector<double>& out) const;
  [[nodiscard]] std::vector<double> snapshot() const;
  /// Restores weights from a snapshot of a same-architecture net.
  /// Throws std::invalid_argument on size mismatch.
  void restore(const std::vector<double>& snap);

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  [[nodiscard]] const Matrix& kernel_forward(MatView xk);
  [[nodiscard]] Matrix kernel_forward_inference(MatView xk) const;

  KernelNetConfig config_;
  std::vector<Dense> kernel_layers_;
  std::vector<ReLU> kernel_relus_;  // one per hidden kernel layer
  std::vector<Dense> head_layers_;
  std::vector<ReLU> head_relus_;    // one per hidden head layer
  exec::ThreadPool* pool_ = nullptr;
};

}  // namespace qif::ml
