// The paper's kernel-based neural network (§III-C).
//
// "the kernel-based model applies the same dense network to each of the
// server's vectors, and learns to generally interpret the data from any
// server.  Once the kernel-based network has processed each of the
// per-server vectors, resulting in a single value for each server, all
// output values are concatenated and further fed through a simple MLP
// classification network for multi-bin classification."
//
// Implementation: a sample is S per-server vectors of width D.  The batch
// (B, S*D) is reshaped to (B*S, D), pushed through the shared kernel MLP
// down to one scalar per server, reshaped back to (B, S) and classified by
// the MLP head into `n_classes` bins.  Because the kernel is shared, its
// gradient accumulates over all S applications — exactly weight sharing.
//
// The architecture is what makes the model robust to "applications [that]
// may only utilize a subset of OSTs or target different ones in multiple
// runs": any server's vector is interpreted by the same function.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qif/ml/nn.hpp"

namespace qif::ml {

struct KernelNetConfig {
  int per_server_dim = 37;           ///< D: width of one server vector
  int n_servers = 7;                 ///< S: monitored servers (OSTs + MDT)
  int n_classes = 2;                 ///< output bins (2 binary; 3 multi-class)
  std::vector<int> kernel_hidden = {64, 32};  ///< shared kernel MLP widths
  std::vector<int> head_hidden = {32};        ///< classifier MLP widths
  std::uint64_t seed = 7;
};

class KernelNet {
 public:
  KernelNet() = default;
  explicit KernelNet(const KernelNetConfig& config);

  /// Training forward: X is (B, S*D); returns logits (B, C).
  Matrix forward(const Matrix& x);
  /// Backward from dlogits; accumulates all layer gradients.
  void backward(const Matrix& dlogits);
  /// Adam update on every layer (t is the 1-based step count).
  void step(const AdamParams& params, std::int64_t t);

  /// Inference without touching training caches.
  [[nodiscard]] Matrix forward_inference(const Matrix& x) const;
  /// Predicted class per row of X.
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Per-server kernel scores for one sample (interpretability hook: which
  /// server the model blames).
  [[nodiscard]] std::vector<double> server_scores(const std::vector<double>& features) const;

  [[nodiscard]] const KernelNetConfig& config() const { return config_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  [[nodiscard]] Matrix kernel_forward(const Matrix& xk, bool train);
  [[nodiscard]] Matrix kernel_forward_inference(const Matrix& xk) const;

  KernelNetConfig config_;
  std::vector<Dense> kernel_layers_;
  std::vector<ReLU> kernel_relus_;  // one per hidden kernel layer
  std::vector<Dense> head_layers_;
  std::vector<ReLU> head_relus_;    // one per hidden head layer
};

}  // namespace qif::ml
