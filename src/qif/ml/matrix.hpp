// Dense row-major matrix with just the operations the network needs.
//
// The three GEMM variants (NN, A^T·B, A·B^T) are implemented by the
// register-blocked kernels in gemm.hpp; no BLAS dependency.  Every kernel
// reduces each output element with a single accumulator over ascending k,
// so results are bit-identical regardless of blocking or thread count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace qif::exec {
class ThreadPool;
}

namespace qif::ml {

class Matrix;

/// Non-owning, read-only view of a row-major block of doubles.  Converts
/// implicitly from Matrix and supports free reshaping (a (B, S*D) batch is
/// the same memory as (B*S, D)), which is what lets the layer stack chain
/// buffers without the copy-per-reshape the old Matrix::reshaped forced.
struct MatView {
  const double* ptr = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  MatView() = default;
  MatView(const double* p, std::size_t r, std::size_t c) : ptr(p), rows(r), cols(c) {}
  MatView(const Matrix& m);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t size() const { return rows * cols; }
  [[nodiscard]] const double* row(std::size_t r) const { return ptr + r * cols; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    assert(r < rows && c < cols);
    return ptr[r * cols + c];
  }
  /// Same memory, new shape (element count must match).
  [[nodiscard]] MatView reshaped(std::size_t r, std::size_t c) const {
    assert(r * c == rows * cols);
    return {ptr, r, c};
  }
};

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const { return data_.data() + r * cols_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshapes in place; element contents are unspecified after a size
  /// change but the allocation is reused when capacity suffices, which is
  /// what makes per-batch layer buffers allocation-free in steady state.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Copies a view's contents (resizing first); no allocation once the
  /// backing vector's capacity covers the shape.
  void assign(MatView v) {
    resize(v.rows, v.cols);
    std::copy(v.ptr, v.ptr + v.size(), data_.begin());
  }

  /// Reinterprets the buffer with a new shape of identical element count.
  [[nodiscard]] Matrix reshaped(std::size_t rows, std::size_t cols) const {
    assert(rows * cols == data_.size());
    Matrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.data_ = data_;
    return out;
  }

  /// C = A * B.  Throws std::invalid_argument on inner-dimension mismatch
  /// (all three variants do — the guard must survive NDEBUG builds).
  static Matrix matmul(const Matrix& a, const Matrix& b);
  /// C = A^T * B  (used for weight gradients)
  static Matrix matmul_tn(const Matrix& a, const Matrix& b);
  /// C = A * B^T  (used for input gradients)
  static Matrix matmul_nt(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

inline MatView::MatView(const Matrix& m)
    : ptr(m.data().data()), rows(m.rows()), cols(m.cols()) {}

}  // namespace qif::ml
