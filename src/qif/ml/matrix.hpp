// Dense row-major matrix with just the operations the network needs.
//
// Sizes here are small (batch x 37-dim vectors through 64-wide layers), so
// a cache-friendly ikj GEMM is ample; no BLAS dependency.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace qif::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const { return data_.data() + r * cols_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reinterprets the buffer with a new shape of identical element count.
  [[nodiscard]] Matrix reshaped(std::size_t rows, std::size_t cols) const {
    assert(rows * cols == data_.size());
    Matrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.data_ = data_;
    return out;
  }

  /// C = A * B.  Throws std::invalid_argument on inner-dimension mismatch
  /// (all three variants do — the guard must survive NDEBUG builds).
  static Matrix matmul(const Matrix& a, const Matrix& b);
  /// C = A^T * B  (used for weight gradients)
  static Matrix matmul_tn(const Matrix& a, const Matrix& b);
  /// C = A * B^T  (used for input gradients)
  static Matrix matmul_nt(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace qif::ml
