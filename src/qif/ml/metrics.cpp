#include "qif/ml/metrics.hpp"

#include <cassert>
#include <sstream>

namespace qif::ml {

void ConfusionMatrix::add_all(const std::vector<int>& truth,
                              const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size());
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], predicted[i]);
}

std::int64_t ConfusionMatrix::total() const {
  std::int64_t t = 0;
  for (const auto v : counts_) t += v;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::int64_t t = total();
  if (t == 0) return 0.0;
  std::int64_t correct = 0;
  for (int c = 0; c < n_classes(); ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(t);
}

double ConfusionMatrix::precision(int c) const {
  std::int64_t pred = 0;
  for (int t = 0; t < n_classes(); ++t) pred += at(t, c);
  return pred == 0 ? 0.0 : static_cast<double>(at(c, c)) / static_cast<double>(pred);
}

double ConfusionMatrix::recall(int c) const {
  std::int64_t truth = 0;
  for (int p = 0; p < n_classes(); ++p) truth += at(c, p);
  return truth == 0 ? 0.0 : static_cast<double>(at(c, c)) / static_cast<double>(truth);
}

double ConfusionMatrix::f1(int c) const {
  const double p = precision(c);
  const double r = recall(c);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < n_classes(); ++c) sum += f1(c);
  return sum / static_cast<double>(n_classes());
}

std::string ConfusionMatrix::to_string(const std::vector<std::string>& class_names) const {
  auto name = [&](int c) {
    return c < static_cast<int>(class_names.size()) ? class_names[static_cast<std::size_t>(c)]
                                                    : "class" + std::to_string(c);
  };
  std::ostringstream os;
  os << "                 predicted\n";
  os << "truth         ";
  for (int c = 0; c < n_classes(); ++c) {
    os << ' ';
    os.width(12);
    os << name(c);
  }
  os << '\n';
  for (int t = 0; t < n_classes(); ++t) {
    os.width(14);
    os << name(t);
    for (int p = 0; p < n_classes(); ++p) {
      os << ' ';
      os.width(12);
      os << at(t, p);
    }
    os << '\n';
  }
  os << "accuracy " << accuracy();
  for (int c = 0; c < n_classes(); ++c) {
    os << " | " << name(c) << " P=" << precision(c) << " R=" << recall(c)
       << " F1=" << f1(c);
  }
  os << " | macroF1=" << macro_f1() << '\n';
  return os.str();
}

}  // namespace qif::ml
