// Versioned model registry for the serving layer.
//
// A ServingModel is an immutable bundle: a trained network (the paper's
// kernel net, or the attention-pooling variant), the standardizer fitted
// alongside it, and the class count.  The registry keeps the live bundle
// behind a shared_ptr that hot-swaps atomically: a batch acquires the
// pointer once, so an in-flight batch finishes on the model it started
// with and a swap is never torn — requests in one batch all carry the
// same model version by construction (pinned by the hot-swap tests).
//
// On-disk formats:
//   * v<N>.qifm — binary, checksummed (save_model / load_model below).
//     Truncation, bit flips, and hostile headers are rejected before any
//     size-driven allocation (same discipline as the .qds fuzz suite).
//   * the text "qif-model 1" bundle written by TrainingServer::save —
//     import_text_model() parses it here so the serving layer stays below
//     qif_core in the link order (core's OnlinePredictor builds on serve).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qif/ml/attention_net.hpp"
#include "qif/ml/kernel_net.hpp"
#include "qif/ml/preprocess.hpp"

namespace qif::serve {

/// Immutable trained-model bundle.  `kind` selects which network is live;
/// the other stays default-constructed (empty).
struct ServingModel {
  enum class Kind : std::uint8_t { kKernel = 0, kAttention = 1 };

  Kind kind = Kind::kKernel;
  ml::KernelNet kernel;
  ml::AttentionNet attention;
  ml::Standardizer stdz;
  int n_classes = 2;
  std::uint64_t version = 0;  ///< registry version (0 = unpublished)

  /// Flattened feature width one request must carry (S * D).
  [[nodiscard]] std::size_t feature_dim() const;
  /// Width of one per-server vector (D) — the schema-compatibility axis.
  [[nodiscard]] int per_server_dim() const;
  [[nodiscard]] int n_servers() const;

  /// Throws std::runtime_error naming both widths when the model's
  /// per-server feature width disagrees with the serving schema's.
  void validate_feature_width(int schema_dim) const;
};

/// Writes the binary .qifm image (header, dims, weights, standardizer
/// moments, FNV-1a trailer).
void save_model(const ServingModel& model, std::ostream& os);

/// Parses a binary .qifm image.  Throws std::runtime_error on truncation,
/// checksum mismatch, or a hostile header (every size field is bounded
/// before it drives an allocation).
[[nodiscard]] ServingModel load_model(std::istream& is);

/// Parses the text "qif-model 1" bundle written by TrainingServer::save.
[[nodiscard]] ServingModel import_text_model(std::istream& is);

/// Directory-backed registry of versioned models (v<N>.qifm) plus the
/// atomically swappable live bundle.
class ModelRegistry {
 public:
  /// `schema_dim` is the serving schema's per-server width; every loaded
  /// or installed model is validated against it (0 disables the check).
  explicit ModelRegistry(std::string dir, int schema_dim = 0);

  /// Serializes `model` as v<N+1>.qifm (N = highest version present) and
  /// returns the assigned version.  Does not install it.
  std::uint64_t publish(const ServingModel& model);

  /// Loads the highest-versioned valid model from the directory and
  /// installs it.  A corrupt, truncated, or schema-incompatible candidate
  /// is skipped (falling back to the next-highest version); if nothing
  /// valid is found the previously live model stays warm and serving —
  /// refresh never leaves the registry empty-handed when it was not.
  /// Returns the live version (0 if nothing is live).
  std::uint64_t refresh();

  /// Installs a bundle directly (hot swap).  In-flight holders of the old
  /// shared_ptr keep it alive until their batch completes.
  void install(std::shared_ptr<const ServingModel> model);

  /// The live bundle (nullptr before the first install/refresh).  The
  /// returned pointer is safe to hold across a swap.
  [[nodiscard]] std::shared_ptr<const ServingModel> current() const;

  /// Versions present on disk, ascending.
  [[nodiscard]] std::vector<std::uint64_t> list_versions() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int schema_dim_ = 0;
  mutable std::mutex mutex_;  // guards live_ (shared_ptr copy in/out)
  std::shared_ptr<const ServingModel> live_;
};

}  // namespace qif::serve
