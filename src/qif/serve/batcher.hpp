// The batched-inference core: one forward pass per batch of requests.
//
// predict_batch is the single place predictions are computed — the
// InferenceService's batcher thread calls it with whatever the ring
// drained, and core's OnlinePredictor calls it with one request (the
// single-cluster path is literally the N=1 case).  The GEMM kernels
// reduce every output element with one accumulator over ascending k, so
// each row's result is independent of which other rows share the batch:
// batched predictions are bit-identical to the synchronous single-row
// path.  The identity tests pin that contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "qif/serve/registry.hpp"

namespace qif::exec {
class ThreadPool;
}

namespace qif::serve {

/// One in-flight inference request.  The submitting thread owns the
/// object and the feature memory; the batcher writes the outputs and
/// flips `done` (release) last, so after wait() every field is visible.
/// Holds an atomic, so it is neither copyable nor movable — keep request
/// slots in a std::deque or array, not a reallocating vector.
struct Request {
  // -- inputs (owned by the producer) --
  const double* features = nullptr;  ///< raw (unstandardized) S*D doubles
  std::size_t n_features = 0;
  std::int64_t enqueue_ns = 0;  ///< producer-stamped submit time

  // -- outputs (written by the batcher before `done` flips) --
  int predicted_class = -1;
  std::vector<double> probabilities;   ///< softmax over classes
  std::vector<double> server_scores;   ///< kernel scores / attention weights
  std::uint64_t model_version = 0;     ///< bundle that served this request
  std::uint64_t batch_seq = 0;         ///< batch this request rode in
  std::size_t batch_rows = 0;          ///< how many requests shared it
  std::int64_t done_ns = 0;            ///< batcher-stamped completion time

  std::atomic<bool> done{false};

  /// Re-arm for reuse (producer side, after the reply was consumed).
  void reset() { done.store(false, std::memory_order_relaxed); }
  /// Block until the reply is published (C++20 atomic wait).
  void wait() const {
    done.wait(false, std::memory_order_acquire);
  }
  [[nodiscard]] bool ready() const { return done.load(std::memory_order_acquire); }
};

/// Caller-owned buffers for predict_batch.  One per serving thread; after
/// the first full-size batch every capacity is warm and the steady-state
/// loop performs zero heap allocations (pinned by test_serve_alloc).
struct PredictScratch {
  ml::Matrix x;      ///< (B, S*D) standardized batch
  ml::Matrix probs;  ///< (B, C) softmax output
  ml::KernelNet::Scratch kernel;
  ml::AttentionNet::Scratch attention;
};

/// Runs one batched forward over `n` requests and completes each one:
/// standardize -> forward_batch -> softmax; predicted_class comes from the
/// logits argmax (strict >, first index wins — exactly the synchronous
/// path's tie-breaking), probabilities from the softmax row, and
/// server_scores from the kernel scores (kernel models) or attention
/// weights (attention models).  Sets model_version and done_ns, then
/// publishes with a release store on each request's `done` flag.
/// `batch_seq` tags every request in the batch with the same value.
///
/// Throws std::invalid_argument if any request's n_features disagrees
/// with the model's feature_dim() (no request is completed in that case).
void predict_batch(const ServingModel& model, Request* const* requests, std::size_t n,
                   PredictScratch& scratch, std::uint64_t batch_seq = 0,
                   exec::ThreadPool* pool = nullptr);

}  // namespace qif::serve
