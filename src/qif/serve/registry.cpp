#include "qif/serve/registry.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qif::serve {

namespace {

constexpr char kMagic[4] = {'Q', 'I', 'F', 'M'};
constexpr std::uint32_t kFormatVersion = 1;

// Hostile-header bounds: every size field is checked against these BEFORE
// it drives an allocation, so a corrupt or adversarial file cannot ask for
// gigabytes.  Generous for any real model (the paper's is ~10k params).
constexpr std::uint32_t kMaxDim = 65536;        // per-server width D
constexpr std::uint32_t kMaxServers = 4096;     // S
constexpr std::uint32_t kMaxClasses = 4096;     // C
constexpr std::uint32_t kMaxHiddenLayers = 64;  // layer-count fields
constexpr std::uint32_t kMaxHiddenWidth = 8192;
constexpr std::uint64_t kMaxParams = 1ull << 26;  // 64M doubles = 512 MB

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Byte-wise FNV-1a accumulated across every field as it is written or
/// read, so the trailer covers the whole image in stream order.
struct Fnv {
  std::uint64_t h = kFnvBasis;
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
};

struct Writer {
  std::ostream& os;
  Fnv fnv;
  void raw(const void* data, std::size_t n) {
    os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    fnv.update(data, n);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64s(const double* v, std::size_t n) { raw(v, n * sizeof(double)); }
};

struct Reader {
  std::istream& is;
  Fnv fnv;
  void raw(void* data, std::size_t n, const char* what) {
    is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is.gcount()) != n) {
      throw std::runtime_error(std::string("qifm: truncated ") + what);
    }
    fnv.update(data, n);
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    raw(&v, sizeof v, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    raw(&v, sizeof v, what);
    return v;
  }
  void f64s(double* v, std::size_t n, const char* what) {
    raw(v, n * sizeof(double), what);
  }
};

std::uint32_t bounded(std::uint32_t v, std::uint32_t lo, std::uint32_t hi,
                      const char* what) {
  if (v < lo || v > hi) {
    throw std::runtime_error("qifm: " + std::string(what) + " " + std::to_string(v) +
                             " out of range [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
  }
  return v;
}

/// Parameter count of a KernelNet with this shape, computed arithmetically
/// so a hostile header is rejected before any network is constructed.
std::uint64_t kernel_param_count(std::uint64_t d, std::uint64_t s, std::uint64_t c,
                                 const std::vector<int>& kernel_hidden,
                                 const std::vector<int>& head_hidden) {
  std::uint64_t n = 0;
  std::uint64_t in = d;
  for (const int h : kernel_hidden) {
    const auto hh = static_cast<std::uint64_t>(h);
    n += in * hh + hh;
    in = hh;
  }
  n += in + 1;  // final kernel layer: in -> 1
  in = s;
  for (const int h : head_hidden) {
    const auto hh = static_cast<std::uint64_t>(h);
    n += in * hh + hh;
    in = hh;
  }
  n += in * c + c;
  return n;
}

std::uint64_t attention_param_count(std::uint64_t d, std::uint64_t c, std::uint64_t e,
                                    std::uint64_t a,
                                    const std::vector<int>& head_hidden) {
  std::uint64_t n = d * e + e;  // embed
  n += e * a + a;               // attention hidden
  n += a + 1;                   // attention score: a -> 1
  std::uint64_t in = e;
  for (const int h : head_hidden) {
    const auto hh = static_cast<std::uint64_t>(h);
    n += in * hh + hh;
    in = hh;
  }
  n += in * c + c;
  return n;
}

std::vector<int> read_hidden(Reader& r, const char* what) {
  const std::uint32_t n = bounded(r.u32(what), 0, kMaxHiddenLayers, what);
  std::vector<int> hidden(n);
  for (auto& h : hidden) {
    h = static_cast<int>(bounded(r.u32(what), 1, kMaxHiddenWidth, what));
  }
  return hidden;
}

}  // namespace

std::size_t ServingModel::feature_dim() const {
  return static_cast<std::size_t>(per_server_dim()) *
         static_cast<std::size_t>(n_servers());
}

int ServingModel::per_server_dim() const {
  return kind == Kind::kKernel ? kernel.config().per_server_dim
                               : attention.config().per_server_dim;
}

int ServingModel::n_servers() const {
  return kind == Kind::kKernel ? kernel.config().n_servers
                               : attention.config().n_servers;
}

void ServingModel::validate_feature_width(int schema_dim) const {
  if (schema_dim != 0 && per_server_dim() != schema_dim) {
    throw std::runtime_error(
        "model/schema feature-width mismatch: model has " +
        std::to_string(per_server_dim()) + " features per server, serving schema has " +
        std::to_string(schema_dim));
  }
}

void save_model(const ServingModel& model, std::ostream& os) {
  Writer w{os};
  w.raw(kMagic, sizeof kMagic);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(model.kind));
  w.u32(static_cast<std::uint32_t>(model.n_classes));
  w.u32(static_cast<std::uint32_t>(model.per_server_dim()));
  w.u32(static_cast<std::uint32_t>(model.n_servers()));
  std::vector<double> params;
  if (model.kind == ServingModel::Kind::kKernel) {
    const auto& cfg = model.kernel.config();
    w.u32(static_cast<std::uint32_t>(cfg.kernel_hidden.size()));
    for (const int h : cfg.kernel_hidden) w.u32(static_cast<std::uint32_t>(h));
    w.u32(static_cast<std::uint32_t>(cfg.head_hidden.size()));
    for (const int h : cfg.head_hidden) w.u32(static_cast<std::uint32_t>(h));
    model.kernel.snapshot_into(params);
  } else {
    const auto& cfg = model.attention.config();
    w.u32(static_cast<std::uint32_t>(cfg.embed_dim));
    w.u32(static_cast<std::uint32_t>(cfg.attention_dim));
    w.u32(static_cast<std::uint32_t>(cfg.head_hidden.size()));
    for (const int h : cfg.head_hidden) w.u32(static_cast<std::uint32_t>(h));
    model.attention.snapshot_into(params);
  }
  w.u64(model.version);
  w.u64(params.size());
  w.f64s(params.data(), params.size());
  const auto& mean = model.stdz.mean();
  const auto& inv_std = model.stdz.inv_std();
  w.u64(mean.size());
  w.f64s(mean.data(), mean.size());
  w.f64s(inv_std.data(), inv_std.size());
  // Trailer: checksum over everything above (not itself).
  const std::uint64_t sum = w.fnv.h;
  os.write(reinterpret_cast<const char*>(&sum), sizeof sum);
  if (!os) throw std::runtime_error("qifm: write failed");
}

ServingModel load_model(std::istream& is) {
  Reader r{is};
  char magic[4] = {};
  r.raw(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("qifm: bad magic");
  }
  const std::uint32_t version = r.u32("format version");
  if (version != kFormatVersion) {
    throw std::runtime_error("qifm: unsupported format version " +
                             std::to_string(version));
  }
  const std::uint32_t kind_raw = bounded(r.u32("model kind"), 0, 1, "model kind");
  const auto kind = static_cast<ServingModel::Kind>(kind_raw);
  const std::uint32_t n_classes = bounded(r.u32("class count"), 1, kMaxClasses, "class count");
  const std::uint32_t dim = bounded(r.u32("per-server dim"), 1, kMaxDim, "per-server dim");
  const std::uint32_t servers = bounded(r.u32("server count"), 1, kMaxServers, "server count");

  ServingModel model;
  model.kind = kind;
  model.n_classes = static_cast<int>(n_classes);
  std::uint64_t expected_params = 0;
  ml::KernelNetConfig kcfg;
  ml::AttentionNetConfig acfg;
  if (kind == ServingModel::Kind::kKernel) {
    kcfg.per_server_dim = static_cast<int>(dim);
    kcfg.n_servers = static_cast<int>(servers);
    kcfg.n_classes = static_cast<int>(n_classes);
    kcfg.kernel_hidden = read_hidden(r, "kernel hidden sizes");
    kcfg.head_hidden = read_hidden(r, "head hidden sizes");
    expected_params = kernel_param_count(dim, servers, n_classes, kcfg.kernel_hidden,
                                         kcfg.head_hidden);
  } else {
    acfg.per_server_dim = static_cast<int>(dim);
    acfg.n_servers = static_cast<int>(servers);
    acfg.n_classes = static_cast<int>(n_classes);
    acfg.embed_dim =
        static_cast<int>(bounded(r.u32("embed dim"), 1, kMaxHiddenWidth, "embed dim"));
    acfg.attention_dim = static_cast<int>(
        bounded(r.u32("attention dim"), 1, kMaxHiddenWidth, "attention dim"));
    acfg.head_hidden = read_hidden(r, "head hidden sizes");
    expected_params = attention_param_count(
        dim, n_classes, static_cast<std::uint64_t>(acfg.embed_dim),
        static_cast<std::uint64_t>(acfg.attention_dim), acfg.head_hidden);
  }
  model.version = r.u64("model version");
  const std::uint64_t n_params = r.u64("parameter count");
  // The declared count must match the architecture exactly AND stay under
  // the absolute cap — both checked before the vector<double> allocation
  // and before any network is constructed.
  if (n_params != expected_params) {
    throw std::runtime_error("qifm: parameter count " + std::to_string(n_params) +
                             " does not match architecture (expected " +
                             std::to_string(expected_params) + ")");
  }
  if (n_params > kMaxParams) {
    throw std::runtime_error("qifm: parameter count " + std::to_string(n_params) +
                             " exceeds cap " + std::to_string(kMaxParams));
  }
  std::vector<double> params(n_params);
  r.f64s(params.data(), params.size(), "parameters");

  const std::uint64_t stdz_dim = r.u64("standardizer dim");
  if (stdz_dim != dim) {
    throw std::runtime_error("qifm: standardizer dim " + std::to_string(stdz_dim) +
                             " does not match per-server dim " + std::to_string(dim));
  }
  std::vector<double> mean(stdz_dim), inv_std(stdz_dim);
  r.f64s(mean.data(), mean.size(), "standardizer means");
  r.f64s(inv_std.data(), inv_std.size(), "standardizer scales");

  const std::uint64_t expected_sum = r.fnv.h;  // snapshot before the trailer read
  std::uint64_t sum = 0;
  is.read(reinterpret_cast<char*>(&sum), sizeof sum);
  if (static_cast<std::size_t>(is.gcount()) != sizeof sum) {
    throw std::runtime_error("qifm: truncated checksum");
  }
  if (sum != expected_sum) throw std::runtime_error("qifm: checksum mismatch");

  if (kind == ServingModel::Kind::kKernel) {
    model.kernel = ml::KernelNet(kcfg);
    model.kernel.restore(params);
  } else {
    model.attention = ml::AttentionNet(acfg);
    model.attention.restore(params);
  }
  model.stdz = ml::Standardizer::from_moments(std::move(mean), std::move(inv_std));
  return model;
}

ServingModel import_text_model(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "qif-model") {
    throw std::runtime_error("not a qif model bundle");
  }
  ServingModel model;
  if (!(is >> model.n_classes) || model.n_classes < 2) {
    throw std::runtime_error("model bundle: bad class count");
  }
  model.kind = ServingModel::Kind::kKernel;
  model.kernel.load(is);
  model.stdz.load(is);
  return model;
}

ModelRegistry::ModelRegistry(std::string dir, int schema_dim)
    : dir_(std::move(dir)), schema_dim_(schema_dim) {}

std::vector<std::uint64_t> ModelRegistry::list_versions() const {
  std::vector<std::uint64_t> versions;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    // v<N>.qifm, N decimal.
    if (name.size() < 7 || name.front() != 'v' ||
        name.compare(name.size() - 5, 5, ".qifm") != 0) {
      continue;
    }
    std::uint64_t v = 0;
    bool ok = name.size() > 6;
    for (std::size_t i = 1; i + 5 < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        ok = false;
        break;
      }
      v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (ok && v > 0) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

std::uint64_t ModelRegistry::publish(const ServingModel& model) {
  std::filesystem::create_directories(dir_);
  const auto versions = list_versions();
  const std::uint64_t next = versions.empty() ? 1 : versions.back() + 1;
  const std::string path = dir_ + "/v" + std::to_string(next) + ".qifm";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("registry: cannot write " + path);
  // Serialize a copy stamped with the assigned version; the caller's
  // bundle is left untouched (publish is rare, the copy is irrelevant).
  ServingModel stamped = model;
  stamped.version = next;
  save_model(stamped, os);
  os.close();
  if (!os) throw std::runtime_error("registry: write failed for " + path);
  return next;
}

std::uint64_t ModelRegistry::refresh() {
  const auto versions = list_versions();
  // Highest version first; fall back down the list on any load failure so
  // one corrupt publish cannot take serving down.
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    const std::string path = dir_ + "/v" + std::to_string(*it) + ".qifm";
    try {
      std::ifstream is(path, std::ios::binary);
      if (!is) throw std::runtime_error("registry: cannot open " + path);
      auto model = std::make_shared<ServingModel>(load_model(is));
      model->version = *it;  // the filename is authoritative
      model->validate_feature_width(schema_dim_);
      install(std::move(model));
      return *it;
    } catch (const std::exception&) {
      continue;  // corrupt/incompatible candidate: try the next-highest
    }
  }
  // Nothing valid on disk: the previously live model (if any) stays warm.
  const auto live = current();
  return live ? live->version : 0;
}

void ModelRegistry::install(std::shared_ptr<const ServingModel> model) {
  if (model) model->validate_feature_width(schema_dim_);
  std::lock_guard<std::mutex> lock(mutex_);
  live_ = std::move(model);
}

std::shared_ptr<const ServingModel> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

}  // namespace qif::serve
