// The online-inference service: lock-free ingest, adaptive batching,
// atomic model hot-swap.
//
// Many simulated cluster clients push Request pointers into a bounded
// MPSC ring; one batcher thread drains it with an adaptive policy — a
// batch closes when it reaches `max_batch` rows OR the oldest queued
// request has waited `max_delay_us`, whichever comes first — and runs ONE
// forward pass per batch through predict_batch.  Amortizing the layer
// traversals over the batch is where the throughput comes from; the delay
// bound is what keeps tail latency honest at low offered load.
//
// The live model is a shared_ptr<const ServingModel> acquired ONCE per
// batch: swap_model() publishes a new bundle for the NEXT batch, while
// the in-flight batch finishes on the bundle it started with (the old
// model stays alive through the held pointer).  A swap is therefore never
// torn and never mixes versions within a batch — every request records
// the version that served it, which the hot-swap tests pin.
//
// Zero steady-state allocations: the batch vector and all forward-pass
// scratch are preallocated/warm, request output vectors reuse their
// capacity, and a shared_ptr copy does not allocate.  test_serve_alloc
// counts global operator new to enforce this the test_sim_alloc way.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "qif/serve/batcher.hpp"
#include "qif/serve/ring.hpp"

namespace qif::serve {

struct ServiceConfig {
  std::size_t ring_capacity = 1024;  ///< rounded up to a power of two
  std::size_t max_batch = 32;        ///< close a batch at this many rows...
  std::int64_t max_delay_us = 200;   ///< ...or this much waiting, first wins
};

/// Running counters (relaxed atomics; read whenever).
struct ServiceStats {
  std::atomic<std::uint64_t> requests{0};       ///< completed requests
  std::atomic<std::uint64_t> batches{0};        ///< forward passes run
  std::atomic<std::uint64_t> full_batches{0};   ///< closed by the size trigger
  std::atomic<std::uint64_t> timeout_batches{0};///< closed by the delay trigger
  std::atomic<std::uint64_t> swaps{0};          ///< model hot-swaps observed
  std::atomic<std::uint64_t> rejected{0};       ///< try_submit refusals (ring full)
};

class InferenceService {
 public:
  InferenceService(std::shared_ptr<const ServingModel> model, ServiceConfig config);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Lock-free multi-producer submit; false when the ring is full (the
  /// caller decides: retry, yield, or shed).  The request must stay alive
  /// and untouched until `done` flips.
  bool try_submit(Request* request);
  /// Convenience: spin-with-yield until the ring accepts the request.
  void submit(Request* request);

  /// Spawns the batcher thread.  Without start(), drive batches manually
  /// with step() — the deterministic single-threaded mode the tests and
  /// the sync CLI baseline use.
  void start();
  /// Drains everything already submitted, then joins the batcher.
  /// Producers must have stopped submitting first.  Idempotent.
  void stop();

  /// Synchronously drains and serves ONE batch of up to
  /// min(max_rows, config.max_batch) queued requests (no delay wait).
  /// Returns the number of requests served (0 = ring empty).  Must not
  /// race the batcher thread — use either start() or step(), not both.
  std::size_t step(std::size_t max_rows = 0);

  /// Atomically publishes a new bundle; takes effect on the next batch.
  void swap_model(std::shared_ptr<const ServingModel> model);
  /// The bundle new batches will be served with.
  [[nodiscard]] std::shared_ptr<const ServingModel> model() const;

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  void run_batcher();
  /// Collects up to `limit` requests into batch_ (non-blocking).
  std::size_t drain_into_batch(std::size_t limit);
  void serve_batch();

  ServiceConfig config_;
  MpscRing<Request*> ring_;

  mutable std::mutex model_mutex_;  // guards model_ (pointer copy in/out)
  std::shared_ptr<const ServingModel> model_;

  // Batcher-thread state (also used by step(); never concurrently).
  std::vector<Request*> batch_;
  PredictScratch scratch_;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t last_version_ = 0;

  ServiceStats stats_;
  std::thread batcher_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace qif::serve
