#include "qif/serve/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace qif::serve {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Logits argmax with the synchronous path's exact tie-breaking: strict
/// `>`, first index wins.  Softmax preserves order but not ties under
/// rounding, so the class MUST come from the logits, not the
/// probabilities, for batched == sync to hold bit-for-bit.
int argmax_row(const double* row, std::size_t n) {
  int best = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (row[j] > row[static_cast<std::size_t>(best)]) best = static_cast<int>(j);
  }
  return best;
}

}  // namespace

void predict_batch(const ServingModel& model, Request* const* requests, std::size_t n,
                   PredictScratch& scratch, std::uint64_t batch_seq,
                   exec::ThreadPool* pool) {
  if (n == 0) return;
  const std::size_t feat = model.feature_dim();
  for (std::size_t i = 0; i < n; ++i) {
    if (requests[i]->n_features != feat) {
      throw std::invalid_argument("predict_batch: request carries " +
                                  std::to_string(requests[i]->n_features) +
                                  " features, model expects " + std::to_string(feat));
    }
  }

  // Gather + standardize straight into the batch matrix (fused, no
  // per-request temporary).
  scratch.x.resize(n, feat);
  for (std::size_t i = 0; i < n; ++i) {
    model.stdz.transform_into(requests[i]->features, feat, scratch.x.row(i));
  }

  ml::MatView logits;
  const auto sv = static_cast<std::size_t>(model.n_servers());
  const double* scores = nullptr;  // (n, S) row-major per-server scores
  if (model.kind == ServingModel::Kind::kKernel) {
    logits = model.kernel.forward_batch(scratch.x, scratch.kernel, pool);
    scores = scratch.kernel.scores.data().data();
  } else {
    logits = model.attention.forward_batch(scratch.x, scratch.attention, pool);
    scores = scratch.attention.alpha.data().data();
  }
  ml::SoftmaxXent::softmax_into(logits, scratch.probs);

  const std::int64_t t = now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    Request* r = requests[i];
    r->predicted_class = argmax_row(logits.row(i), logits.cols);
    r->probabilities.resize(logits.cols);
    const double* prow = scratch.probs.row(i);
    std::copy(prow, prow + logits.cols, r->probabilities.begin());
    r->server_scores.resize(sv);
    std::copy(scores + i * sv, scores + (i + 1) * sv, r->server_scores.begin());
    r->model_version = model.version;
    r->batch_seq = batch_seq;
    r->batch_rows = n;
    r->done_ns = t;
    r->done.store(true, std::memory_order_release);
    r->done.notify_all();
  }
}

}  // namespace qif::serve
