#include "qif/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace qif::serve {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

InferenceService::InferenceService(std::shared_ptr<const ServingModel> model,
                                   ServiceConfig config)
    : config_(config), ring_(config.ring_capacity), model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("inference service needs a model");
  if (config_.max_batch == 0) throw std::invalid_argument("max_batch must be positive");
  batch_.reserve(config_.max_batch);
  last_version_ = model_->version;
}

InferenceService::~InferenceService() { stop(); }

bool InferenceService::try_submit(Request* request) {
  if (ring_.try_push(request)) return true;
  stats_.rejected.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void InferenceService::submit(Request* request) {
  while (!ring_.try_push(request)) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void InferenceService::start() {
  if (started_) return;
  stop_.store(false, std::memory_order_relaxed);
  batcher_ = std::thread([this] { run_batcher(); });
  started_ = true;
}

void InferenceService::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  batcher_.join();
  started_ = false;
}

std::size_t InferenceService::drain_into_batch(std::size_t limit) {
  Request* r = nullptr;
  while (batch_.size() < limit && ring_.try_pop(r)) batch_.push_back(r);
  return batch_.size();
}

void InferenceService::serve_batch() {
  // One pointer acquisition per batch: the whole batch is served by this
  // bundle even if swap_model() lands mid-forward, and the old bundle
  // stays alive through this local reference until the batch completes.
  std::shared_ptr<const ServingModel> model;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model = model_;
  }
  if (model->version != last_version_) {
    stats_.swaps.fetch_add(1, std::memory_order_relaxed);
    last_version_ = model->version;
  }
  ++batch_seq_;
  predict_batch(*model, batch_.data(), batch_.size(), scratch_, batch_seq_);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.requests.fetch_add(batch_.size(), std::memory_order_relaxed);
  batch_.clear();
}

std::size_t InferenceService::step(std::size_t max_rows) {
  const std::size_t limit =
      max_rows == 0 ? config_.max_batch : std::min(max_rows, config_.max_batch);
  batch_.clear();
  const std::size_t n = drain_into_batch(limit);
  if (n == 0) return 0;
  if (n == limit) {
    stats_.full_batches.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.timeout_batches.fetch_add(1, std::memory_order_relaxed);
  }
  serve_batch();
  return n;
}

void InferenceService::run_batcher() {
  const auto max_delay = std::chrono::microseconds(config_.max_delay_us);
  for (;;) {
    // Wait for the batch's first request (or shutdown).
    Request* first = nullptr;
    while (!ring_.try_pop(first)) {
      if (stop_.load(std::memory_order_acquire)) {
        // Producers are contractually done; one final drain pass empties
        // anything accepted before the flag flipped.
        batch_.clear();
        while (drain_into_batch(config_.max_batch) > 0) serve_batch();
        return;
      }
      std::this_thread::yield();
    }
    batch_.clear();
    batch_.push_back(first);

    // Adaptive close: fill until max_batch rows or until the oldest
    // request has waited max_delay_us, whichever triggers first.
    const auto deadline = Clock::now() + max_delay;
    bool full = batch_.size() >= config_.max_batch;
    while (!full) {
      if (drain_into_batch(config_.max_batch) >= config_.max_batch) {
        full = true;
        break;
      }
      if (Clock::now() >= deadline) break;
      std::this_thread::yield();
    }
    if (full) {
      stats_.full_batches.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.timeout_batches.fetch_add(1, std::memory_order_relaxed);
    }
    serve_batch();
  }
}

void InferenceService::swap_model(std::shared_ptr<const ServingModel> model) {
  if (!model) throw std::invalid_argument("cannot swap in a null model");
  std::lock_guard<std::mutex> lock(model_mutex_);
  model_ = std::move(model);
}

std::shared_ptr<const ServingModel> InferenceService::model() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

}  // namespace qif::serve
