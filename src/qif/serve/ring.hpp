// Bounded lock-free multi-producer ring (Vyukov's bounded queue, used
// here MPSC: many cluster clients push, one batcher thread pops).
//
// Each cell carries an atomic sequence number that encodes its state
// relative to the wrapping producer/consumer cursors: `seq == pos` means
// the cell is free for the producer claiming ticket `pos`, `seq == pos+1`
// means it holds the value for the consumer at `pos`.  Producers race on
// one CAS over the tail ticket and never touch each other's cells;
// publishing is a release store of the cell sequence, so the consumer's
// acquire load of the same sequence is the only synchronization a
// push/pop pair needs.  No locks, no unbounded growth: when the ring is
// full try_push refuses and the caller decides (spin, yield, or shed).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace qif::serve {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so the cursor
  /// wrap is a mask, not a division.
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push; returns false when the ring is full.
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell is free for ticket `pos`; claim the ticket.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh ticket.
      } else if (dif < 0) {
        return false;  // cell still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop; returns false when the ring is empty.  Only one
  /// thread may call this (no CAS on the head cursor).
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif < 0) return false;  // producer has not published this cell yet
    assert(dif == 0);           // single consumer: never ahead of itself
    out = std::move(cell.value);
    // Mark the cell free for the producer one lap ahead.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate occupancy (racy by nature; stats only).
  [[nodiscard]] std::size_t approx_size() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so producer CAS
  // traffic does not invalidate the consumer's line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace qif::serve
