// Server-side read cache (opt-in).
//
// On a real OSS, recently written data is usually still in the page cache
// when it is read back, so small-file read-back patterns (mdtest-hard-read
// over files the benchmark just created) barely touch the media.  The
// simulator's default is *cold reads* — which reproduces most of Table I
// but over-penalizes exactly those read-back patterns (see EXPERIMENTS.md,
// "known deviations").  This optional component models the page cache:
// extents enter on writes, reads fully covered by cached extents are
// served at memory speed, and a FIFO byte budget bounds the footprint.
//
// bench/ablation_server_cache measures how enabling it moves the affected
// Table I cells toward the paper's values.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

namespace qif::pfs {

struct ReadCacheParams {
  /// 0 disables the cache entirely (the default model).
  std::int64_t capacity_bytes = 0;
};

class ReadCache {
 public:
  explicit ReadCache(ReadCacheParams params) : params_(params) {}

  [[nodiscard]] bool enabled() const { return params_.capacity_bytes > 0; }

  /// Records that [offset, offset+len) now holds fresh data.
  void insert(std::int64_t offset, std::int64_t len);

  /// True when [offset, offset+len) is fully covered by cached extents.
  /// Counts a hit or a miss.
  [[nodiscard]] bool lookup(std::int64_t offset, std::int64_t len);

  [[nodiscard]] std::int64_t cached_bytes() const { return cached_bytes_; }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

 private:
  void evict_to_budget();
  void erase_range(std::int64_t lo, std::int64_t hi);

  ReadCacheParams params_;
  std::map<std::int64_t, std::int64_t> extents_;  // offset -> len, coalesced
  std::deque<std::pair<std::int64_t, std::int64_t>> fifo_;  // insertion order
  std::int64_t cached_bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace qif::pfs
