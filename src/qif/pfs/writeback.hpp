// Server-side write-back cache with dirty throttling.
//
// On a real OSS, client writes land in the page cache and are acknowledged
// long before they reach the platter; a background flusher pushes dirty
// data to disk in large sequential batches.  Two consequences shape the
// paper's Table I:
//
//  * as long as the flusher keeps up, write workloads are nearly immune to
//    each other and invisible to readers (writes are absorbed in RAM);
//  * once dirty data hits the throttle threshold — either because writes
//    outrun the disk or because prioritized reads starve the flusher —
//    every incoming write must wait for flush progress.  Small synchronous
//    writes (mdtest-hard's 3901-byte file bodies) then queue behind
//    megabyte-scale flush batches, producing the 26x/40.9x cells.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "qif/pfs/disk.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {

// NOTE on scale: the simulator runs workloads ~100x smaller than the
// testbed's multi-hundred-GB IO500 runs to keep event counts tractable, so
// the cache is scaled down by the same factor (real dirty limits are
// gigabytes).  The *ratios* — cache vs. sustained write volume — are what
// produce the paper's throttling dynamics, and those are preserved.
struct WritebackParams {
  std::int64_t dirty_limit_bytes = 48ll << 20;   ///< throttle threshold ("dirty_ratio")
  std::int64_t dirty_target_bytes = 32ll << 20;  ///< flusher backs off below this
  std::int64_t flush_chunk_bytes = 1 << 20;      ///< flush batch size
  int max_flush_inflight = 4;                    ///< concurrent flush requests
  double memcpy_rate_bps = 4e9;                  ///< RAM absorb rate for acks
  sim::SimDuration ack_overhead = 30 * sim::kMicrosecond;
  /// Dirty-expiry laziness: below the target, flushing starts this long
  /// after dirtying so small writes coalesce into big sequential flushes.
  sim::SimDuration background_flush_delay = 100 * sim::kMillisecond;
};

class WritebackCache {
 public:
  WritebackCache(sim::Simulation& sim, DiskModel& disk, WritebackParams params);

  WritebackCache(const WritebackCache&) = delete;
  WritebackCache& operator=(const WritebackCache&) = delete;

  /// Accepts a write of `len` bytes destined for `disk_offset`.
  /// `on_durable_ack` fires when the write would be acknowledged to the
  /// client: after a RAM copy if the cache has room, or after enough flush
  /// progress if the cache is throttled.
  void write(std::int64_t disk_offset, std::int64_t len, std::function<void()> on_durable_ack);

  /// Discards still-dirty bytes in [disk_offset, disk_offset+len) — used
  /// by the synchronous flush-on-close path, which writes those bytes to
  /// the media itself.
  void forget(std::int64_t disk_offset, std::int64_t len);

  [[nodiscard]] std::int64_t dirty_bytes() const { return dirty_bytes_; }
  [[nodiscard]] bool throttled() const { return !throttle_queue_.empty(); }
  [[nodiscard]] std::size_t throttled_writers() const { return throttle_queue_.size(); }
  [[nodiscard]] std::int64_t total_absorbed() const { return total_absorbed_; }
  [[nodiscard]] std::int64_t total_flushed() const { return total_flushed_; }

 private:
  struct PendingWrite {
    std::int64_t disk_offset;
    std::int64_t len;
    std::function<void()> on_durable_ack;
    std::int64_t credit = 0;  ///< flush-progress share earned while waiting
  };

  void admit(PendingWrite w);
  void kick_flusher();
  void start_flushes();
  void on_flush_done(std::int64_t chunk);
  void drain_throttle_queue();

  sim::Simulation& sim_;
  DiskModel& disk_;
  WritebackParams params_;

  std::int64_t dirty_bytes_ = 0;
  int flush_inflight_ = 0;
  /// Dirty extents, coalesced by disk offset.  Offset-ordered coalescing is
  /// load-bearing: concurrent writers interleave their appends in arrival
  /// order, and flushing in that order would pay a seek per chunk; merged
  /// per-file runs flush sequentially, a seek only when switching files.
  std::map<std::int64_t, std::int64_t> dirty_extents_;  // offset -> len
  std::int64_t flush_cursor_ = 0;  ///< C-SCAN position over dirty extents
  bool lazy_flush_armed_ = false;  ///< a delayed background flush is scheduled
  std::deque<PendingWrite> throttle_queue_;

  std::int64_t total_absorbed_ = 0;
  std::int64_t total_flushed_ = 0;
};

}  // namespace qif::pfs
