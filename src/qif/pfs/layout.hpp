// File striping layout, Lustre-style.
//
// A file is striped round-robin across a list of OSTs in fixed-size stripe
// units.  Each (file, OST) pair is one *object*; objects are placed at
// pseudo-random disk addresses so that distinct files on the same OST are
// far apart (an aged filesystem), while access within one object stays
// sequential.  This placement is what turns "two concurrent sequential
// streams" into the seek traffic that dominates read-vs-read interference.
#pragma once

#include <cstdint>
#include <vector>

#include "qif/pfs/types.hpp"

namespace qif::pfs {

struct Extent {
  OstId ost = 0;               ///< target OST
  std::int64_t disk_offset = 0;  ///< absolute address on that OST's disk
  std::int64_t len = 0;
};

class FileLayout {
 public:
  FileLayout() = default;
  FileLayout(FileId file, std::vector<OstId> osts, std::int64_t stripe_size,
             std::int64_t disk_capacity);

  [[nodiscard]] const std::vector<OstId>& osts() const { return osts_; }
  [[nodiscard]] std::int64_t stripe_size() const { return stripe_size_; }

  /// Splits the file range [offset, offset+len) into per-OST disk extents,
  /// in file order.  Adjacent pieces on the same OST within one stripe row
  /// are already coalesced by construction.
  [[nodiscard]] std::vector<Extent> map(std::int64_t offset, std::int64_t len) const;

  /// Disk address where this file's object on stripe slot `idx` starts.
  [[nodiscard]] std::int64_t object_base(std::size_t idx) const { return bases_[idx]; }

 private:
  std::vector<OstId> osts_;
  std::vector<std::int64_t> bases_;
  std::int64_t stripe_size_ = 1 << 20;
};

}  // namespace qif::pfs
