// Mechanical disk model with an elevator queue.
//
// This is the component that *generates* cross-application I/O interference
// in the simulator, through the same mechanisms as a real 7200 rpm SATA
// drive behind a Lustre OST:
//
//  * positioning cost — a request that continues the head's current
//    position streams at media rate; a request elsewhere pays a seek plus
//    rotational latency.  Two interleaved sequential streams therefore
//    degrade far more than 2x (seek storm), which is what makes
//    read-vs-read the most violent cell family in Table I.
//  * read priority — like the kernel's deadline/CFQ heritage, synchronous
//    reads are dispatched ahead of (writeback) writes, with a starvation
//    limit so writes still trickle out.  This is why background *writes*
//    barely move a read workload while background *reads* throttle writers.
//  * request merging — physically contiguous queued requests of the same
//    kind coalesce up to a cap, mirroring the block layer; the merge
//    counters feed the Table II "read/write queue" metrics.
//
// The model also maintains /proc/diskstats-style cumulative counters
// (completions, sectors, merges, busy ticks, weighted queue ticks) that the
// server-side monitor samples once per simulated second.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {

struct DiskParams {
  double media_rate_bps = 150e6;       ///< sequential transfer rate, bytes/s
  sim::SimDuration track_seek = 700 * sim::kMicrosecond;  ///< short/near seek
  sim::SimDuration avg_seek = 8 * sim::kMillisecond;      ///< random seek
  double rpm = 7200;                    ///< spindle speed (rot latency = 30/rpm s)
  std::int64_t sector_bytes = 512;      ///< sector size for sector counters
  std::int64_t max_merge_bytes = 4 << 20;      ///< block-layer merge cap
  std::int64_t near_seek_span = 64ll << 20;    ///< |gap| below this => short seek
  /// With reads pending, writes only run in rate-limited "turns": at most
  /// one turn of `write_turn_bytes` per `write_starve_limit`.  This is the
  /// deadline-scheduler compromise — readers keep strict priority, but
  /// writeback and sync writes are guaranteed a trickle and cannot starve
  /// forever.  With no reads pending, writes flow at full speed.
  sim::SimDuration write_starve_limit = 100 * sim::kMillisecond;
  sim::SimDuration write_turn_time = 20 * sim::kMillisecond;
  /// Anticipatory hold: after a read completes, writes are held back this
  /// long in case the (synchronous) reader immediately issues its next
  /// request — the deadline/CFQ behaviour that keeps background writeback
  /// from ambushing a streaming reader between its requests.
  sim::SimDuration anticipation_hold = 5 * sim::kMillisecond;
  double service_jitter = 0.05;         ///< +/- fraction of service time
  std::int64_t capacity_bytes = 1ll << 40;     ///< 1 TB addressable span
};

/// Cumulative counters in the style of /proc/diskstats.  All values only
/// ever increase; the monitor computes per-second deltas.
struct DiskCounters {
  std::int64_t reads_completed = 0;
  std::int64_t writes_completed = 0;
  std::int64_t sectors_read = 0;
  std::int64_t sectors_written = 0;
  std::int64_t read_merges = 0;
  std::int64_t write_merges = 0;
  std::int64_t queued_requests = 0;       ///< arrivals into the queue
  sim::SimDuration io_ticks = 0;          ///< time the device was busy
  sim::SimDuration weighted_ticks = 0;    ///< integral of (queued+in-flight) over time
};

class DiskModel {
 public:
  DiskModel(sim::Simulation& sim, DiskParams params, std::uint64_t seed,
            std::string name = "disk");

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Submits a request for `[offset, offset+len)`.  `on_complete` fires when
  /// the media transfer finishes.  Requests may be merged with physically
  /// contiguous queued requests of the same kind.
  void submit(bool is_write, std::int64_t offset, std::int64_t len,
              std::function<void()> on_complete);

  /// Snapshot of the cumulative counters, with time-integrals settled to
  /// the current instant.
  [[nodiscard]] DiskCounters counters() const;

  /// Queue gauges (instantaneous).
  [[nodiscard]] std::size_t read_queue_depth() const { return read_queue_.size(); }
  [[nodiscard]] std::size_t write_queue_depth() const { return write_queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_; }

  [[nodiscard]] const DiskParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fault injection: multiply every service time by `m` (slow-disk
  /// episode).  Exactly 1.0 restores the healthy fast path.
  void set_fault_multiplier(double m) { fault_multiplier_ = m; }
  [[nodiscard]] double fault_multiplier() const { return fault_multiplier_; }

  /// Fault injection: stall/blackout the device.  While stalled, nothing
  /// dispatches (the in-flight request, if any, still completes); clearing
  /// the stall resumes dispatch immediately.
  void set_stalled(bool stalled);
  [[nodiscard]] bool stalled() const { return stalled_; }

 private:
  struct Request {
    std::int64_t offset = 0;
    std::int64_t len = 0;
    sim::SimTime arrival = 0;
    std::vector<std::function<void()>> completions;  // >1 when merged
  };
  // Keyed by start offset for elevator order and O(log n) merge lookup.
  using Queue = std::multimap<std::int64_t, Request>;

  void settle_time_integrals();
  bool try_merge(Queue& q, bool is_write, std::int64_t offset, std::int64_t len,
                 std::function<void()>& on_complete);
  void maybe_dispatch();
  Queue::iterator pick_elevator(Queue& q);
  sim::SimDuration service_time(const Request& req);
  void finish(bool is_write, Request req);

  sim::Simulation& sim_;
  DiskParams params_;
  sim::Rng rng_;
  std::string name_;

  Queue read_queue_;
  Queue write_queue_;
  bool busy_ = false;
  sim::SimTime last_read_completion_ = std::numeric_limits<sim::SimTime>::min();
  bool anticipation_armed_ = false;  ///< a deferred write-dispatch is scheduled
  std::int64_t head_pos_ = 0;        ///< byte address just past the last transfer
  sim::SimDuration write_credit_time_ = 0;  ///< service time left in the write turn
  sim::SimTime next_write_turn_ = 0;     ///< earliest start of the next write turn
  sim::SimTime oldest_write_arrival_ = 0;
  double fault_multiplier_ = 1.0;  ///< slow-disk episode factor (1.0 = healthy)
  bool stalled_ = false;           ///< blackout: dispatch suspended

  DiskCounters counters_;
  sim::SimTime last_integral_update_ = 0;
};

}  // namespace qif::pfs
