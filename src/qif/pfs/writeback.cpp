#include "qif/pfs/writeback.hpp"

#include <algorithm>
#include <utility>

namespace qif::pfs {

WritebackCache::WritebackCache(sim::Simulation& sim, DiskModel& disk, WritebackParams params)
    : sim_(sim), disk_(disk), params_(params) {}

void WritebackCache::write(std::int64_t disk_offset, std::int64_t len,
                           std::function<void()> on_durable_ack) {
  PendingWrite w{disk_offset, len, std::move(on_durable_ack), 0};
  // Fairness: once anyone is throttled, newcomers queue too.
  if (!throttle_queue_.empty() || dirty_bytes_ + len > params_.dirty_limit_bytes) {
    throttle_queue_.push_back(std::move(w));
    kick_flusher();
    // If nothing is in flight (e.g. the very first write is oversized),
    // no flush completion will ever run the admission logic — run it now.
    drain_throttle_queue();
    return;
  }
  admit(std::move(w));
}

void WritebackCache::admit(PendingWrite w) {
  total_absorbed_ += w.len;
  // Coalesce into the offset-ordered extent map (back- and front-merges,
  // absorbing every overlapped successor).  dirty_bytes_ must track the
  // *extent* bytes, not the sum of write sizes: an overlapping rewrite
  // adds no new dirty data, and counting it twice would never drain.
  std::int64_t off = w.disk_offset;
  std::int64_t len = w.len;
  std::int64_t erased = 0;
  if (auto it = dirty_extents_.lower_bound(off); it != dirty_extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= off) {
      erased += prev->second;
      len = std::max(prev->first + prev->second, off + len) - prev->first;
      off = prev->first;
      dirty_extents_.erase(prev);
    }
  }
  for (auto it = dirty_extents_.lower_bound(off);
       it != dirty_extents_.end() && it->first <= off + len;
       it = dirty_extents_.lower_bound(off)) {
    erased += it->second;
    len = std::max(off + len, it->first + it->second) - off;
    dirty_extents_.erase(it);
  }
  dirty_extents_[off] = len;
  dirty_bytes_ += len - erased;
  const auto copy_time = sim::from_seconds(static_cast<double>(w.len) / params_.memcpy_rate_bps);
  sim_.schedule_after(params_.ack_overhead + copy_time,
                      [fn = std::move(w.on_durable_ack)] {
                        if (fn) fn();
                      });
  kick_flusher();
}

void WritebackCache::forget(std::int64_t disk_offset, std::int64_t len) {
  // Drop any still-dirty bytes of [disk_offset, disk_offset+len): the
  // caller is about to write them synchronously (fsync / commit-on-close),
  // so background-flushing them too would double the disk traffic.
  const std::int64_t lo = disk_offset;
  const std::int64_t hi = disk_offset + len;
  // Trim a predecessor extent overlapping the range.
  if (auto it = dirty_extents_.lower_bound(lo); it != dirty_extents_.begin()) {
    auto prev = std::prev(it);
    const std::int64_t pend = prev->first + prev->second;
    if (pend > lo) {
      const std::int64_t cut = std::min(pend, hi) - lo;
      prev->second = lo - prev->first;  // keep only the head before the hole
      dirty_bytes_ -= cut;
      if (pend > hi) dirty_extents_[hi] = pend - hi;  // split tail survives
      if (prev->second == 0) dirty_extents_.erase(prev);
    }
  }
  // Remove or trim extents starting inside the range.
  for (auto it = dirty_extents_.lower_bound(lo);
       it != dirty_extents_.end() && it->first < hi;
       it = dirty_extents_.lower_bound(lo)) {
    const std::int64_t end = it->first + it->second;
    if (end <= hi) {
      dirty_bytes_ -= it->second;
      dirty_extents_.erase(it);
    } else {
      dirty_bytes_ -= hi - it->first;
      const std::int64_t tail = end - hi;
      dirty_extents_.erase(it);
      dirty_extents_[hi] = tail;
      break;
    }
  }
}

void WritebackCache::kick_flusher() {
  // Background laziness: while dirty data is below the flusher's target,
  // hold off briefly (the dirty-expiry timer) so consecutive small writes
  // coalesce into large sequential flushes instead of trickling out one
  // RPC-sized request at a time.  Under pressure (dirty >= target) the
  // flusher runs immediately.
  if (dirty_bytes_ < params_.dirty_target_bytes && throttle_queue_.empty() &&
      params_.background_flush_delay > 0 && !dirty_extents_.empty()) {
    if (!lazy_flush_armed_) {
      lazy_flush_armed_ = true;
      sim_.schedule_after(params_.background_flush_delay, [this] {
        lazy_flush_armed_ = false;
        start_flushes();
      });
    }
    return;
  }
  start_flushes();
}

void WritebackCache::start_flushes() {
  while (flush_inflight_ < params_.max_flush_inflight && !dirty_extents_.empty()) {
    // C-SCAN over extents: continue from the last flushed position, wrap at
    // the end.  Without the cursor the flusher ping-pongs between the
    // lowest extent and whichever one just refilled, paying a seek per
    // chunk; with it, each extent is drained once per sweep and seeks are
    // amortized over the whole backlog.
    auto it = dirty_extents_.lower_bound(flush_cursor_);
    if (it == dirty_extents_.end()) it = dirty_extents_.begin();
    const std::int64_t chunk = std::min<std::int64_t>(it->second, params_.flush_chunk_bytes);
    const std::int64_t chunk_off = it->first;
    if (it->second == chunk) {
      dirty_extents_.erase(it);
    } else {
      const std::int64_t new_off = it->first + chunk;
      const std::int64_t new_len = it->second - chunk;
      dirty_extents_.erase(it);
      dirty_extents_[new_off] = new_len;
    }
    flush_cursor_ = chunk_off + chunk;
    ++flush_inflight_;
    disk_.submit(/*is_write=*/true, chunk_off, chunk, [this, chunk] { on_flush_done(chunk); });
  }
}

void WritebackCache::on_flush_done(std::int64_t chunk) {
  --flush_inflight_;
  dirty_bytes_ -= chunk;
  total_flushed_ += chunk;
  // Deficit round robin: every flushed byte is shared equally among the
  // throttled writers as admission credit, so a writer's wait scales with
  // *its own* write size — Linux's IO-less dirty throttling pauses light
  // writers briefly and heavy writers long, instead of making a 47 kB
  // write queue behind fifteen 1 MiB writes FIFO-style.
  if (!throttle_queue_.empty()) {
    const std::int64_t share =
        chunk / static_cast<std::int64_t>(throttle_queue_.size());
    for (auto& w : throttle_queue_) w.credit += share;
  }
  drain_throttle_queue();
  kick_flusher();
}

void WritebackCache::drain_throttle_queue() {
  // Admit every waiter whose earned credit covers its write.  The fallback
  // clause admits the head when nothing is left to flush, so oversized or
  // under-credited writes cannot deadlock the queue.
  for (std::size_t i = 0; i < throttle_queue_.size();) {
    if (throttle_queue_[i].credit >= throttle_queue_[i].len) {
      PendingWrite w = std::move(throttle_queue_[i]);
      throttle_queue_.erase(throttle_queue_.begin() + static_cast<std::ptrdiff_t>(i));
      admit(std::move(w));
    } else {
      ++i;
    }
  }
  if (!throttle_queue_.empty() && flush_inflight_ == 0 && dirty_extents_.empty()) {
    PendingWrite w = std::move(throttle_queue_.front());
    throttle_queue_.pop_front();
    admit(std::move(w));
  }
}

}  // namespace qif::pfs
