#include "qif/pfs/mdt.hpp"

#include <algorithm>
#include <utility>

namespace qif::pfs {

MdtServer::MdtServer(sim::Simulation& sim, MdtParams params, DiskParams disk_params,
                     std::uint64_t seed, std::int64_t n_osts,
                     std::int64_t default_stripe_size)
    : sim_(sim),
      params_(params),
      disk_(sim, disk_params, sim::Rng::derive_seed(seed, "mdt-disk"), "mdt-disk"),
      rng_(sim::Rng::derive_seed(seed, "mdt")),
      n_osts_(n_osts),
      default_stripe_size_(default_stripe_size) {
  dirs_["/"] = 0;
  ost_objects_.assign(static_cast<std::size_t>(n_osts), 0);
}

std::string MdtServer::parent_dir(const std::string& path) const {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

void MdtServer::create(const std::string& path, int stripe_count, int stripe_hint,
                       Callback cb) {
  enqueue(Task{Kind::kCreate, path, kInvalidFile, stripe_count, stripe_hint, sim_.now(),
               std::move(cb)});
}
void MdtServer::open(const std::string& path, Callback cb) {
  enqueue(Task{Kind::kOpen, path, kInvalidFile, 0, -1, sim_.now(), std::move(cb)});
}
void MdtServer::stat(const std::string& path, Callback cb) {
  enqueue(Task{Kind::kStat, path, kInvalidFile, 0, -1, sim_.now(), std::move(cb)});
}
void MdtServer::close(FileId file, Callback cb) {
  enqueue(Task{Kind::kClose, {}, file, 0, -1, sim_.now(), std::move(cb)});
}
void MdtServer::unlink(const std::string& path, Callback cb) {
  enqueue(Task{Kind::kUnlink, path, kInvalidFile, 0, -1, sim_.now(), std::move(cb)});
}
void MdtServer::mkdir(const std::string& path, Callback cb) {
  enqueue(Task{Kind::kMkdir, path, kInvalidFile, 0, -1, sim_.now(), std::move(cb)});
}

void MdtServer::note_size(FileId file, std::int64_t new_size) {
  if (auto it = by_id_.find(file); it != by_id_.end()) {
    it->second->size = std::max(it->second->size, new_size);
  }
}

void MdtServer::enqueue(Task t) {
  counters_.queued_requests += 1;
  queue_.push_back(std::move(t));
  dispatch();
}

void MdtServer::dispatch() {
  while (busy_threads_ < params_.service_threads && !queue_.empty()) {
    Task t = std::move(queue_.front());
    queue_.pop_front();
    counters_.queue_wait_total += sim_.now() - t.arrival;
    ++busy_threads_;
    sim::SimDuration cost = cpu_cost(t.kind);
    // Shared-directory contention: every sibling op queued on the MDS adds
    // a lock-hold to pay (the mdtest-hard pattern).
    const std::string dir = t.path.empty() ? std::string{} : parent_dir(t.path);
    if (!dir.empty()) {
      std::int64_t siblings = 0;
      for (const auto& q : queue_) {
        if (!q.path.empty() && parent_dir(q.path) == dir) ++siblings;
      }
      cost += siblings * params_.dirlock_penalty;
    }
    sim_.schedule_after(cost, [this, t = std::move(t)]() mutable { run_task(std::move(t)); });
  }
}

sim::SimDuration MdtServer::cpu_cost(Kind k) {
  sim::SimDuration base = 0;
  switch (k) {
    case Kind::kCreate: base = params_.cpu_create; break;
    case Kind::kOpen: base = params_.cpu_open; break;
    case Kind::kStat: base = params_.cpu_stat; break;
    case Kind::kClose: base = params_.cpu_close; break;
    case Kind::kUnlink: base = params_.cpu_unlink; break;
    case Kind::kMkdir: base = params_.cpu_mkdir; break;
  }
  const double jitter = 1.0 + rng_.uniform(-params_.cpu_jitter, params_.cpu_jitter);
  return std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(
                                           static_cast<double>(base) * jitter));
}

void MdtServer::run_task(Task t) {
  MetaResult result;
  bool modifying = false;
  bool needs_inode_read = false;

  switch (t.kind) {
    case Kind::kCreate: {
      modifying = true;
      auto [it, inserted] = inodes_.try_emplace(t.path);
      if (inserted) {
        Inode& ino = it->second;
        ino.id = next_file_++;
        int count = t.stripe_count <= 0 ? static_cast<int>(n_osts_)
                                        : std::min<int>(t.stripe_count, static_cast<int>(n_osts_));
        // Stripe placement starts at a hash of the path.  Two properties
        // matter: (1) it spreads a job's file-per-process files across
        // OSTs like Lustre's balanced allocator, and (2) it is *identical
        // between a baseline run and an interference run* — with a shared
        // round-robin cursor, interleaved creates from background jobs
        // would reshuffle the target's placement and contaminate the
        // baseline/interference op matching with placement luck.
        std::int64_t start;
        if (t.stripe_hint >= 0) {
          start = t.stripe_hint % n_osts_;
        } else {
          std::uint64_t h = 1469598103934665603ull;
          for (const char c : t.path) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ull;
          }
          start = static_cast<std::int64_t>(h % static_cast<std::uint64_t>(n_osts_));
        }
        std::vector<OstId> osts;
        osts.reserve(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          const auto ost = static_cast<OstId>((start + i) % n_osts_);
          osts.push_back(ost);
          ost_objects_[static_cast<std::size_t>(ost)] += 1;
        }
        ino.layout = FileLayout(ino.id, std::move(osts), default_stripe_size_,
                                disk_.params().capacity_bytes);
        by_id_[ino.id] = &ino;
        dirs_[parent_dir(t.path)] += 1;
      }
      result.ok = true;
      result.file = it->second.id;
      result.size = it->second.size;
      result.layout = &it->second.layout;
      break;
    }
    case Kind::kOpen:
    case Kind::kStat: {
      auto it = inodes_.find(t.path);
      if (it != inodes_.end()) {
        result.ok = true;
        result.file = it->second.id;
        result.size = it->second.size;
        result.layout = &it->second.layout;
      } else {
        // Missing paths still "succeed" at the protocol level for stat of
        // directories; report ok for known dirs.
        result.ok = dirs_.count(t.path) > 0;
      }
      needs_inode_read = rng_.chance(params_.attr_cache_miss);
      break;
    }
    case Kind::kClose: {
      result.ok = true;
      result.file = t.file;
      break;
    }
    case Kind::kUnlink: {
      modifying = true;
      auto it = inodes_.find(t.path);
      if (it != inodes_.end()) {
        dirs_[parent_dir(t.path)] -= 1;
        by_id_.erase(it->second.id);
        inodes_.erase(it);
        result.ok = true;
      }
      break;
    }
    case Kind::kMkdir: {
      modifying = true;
      result.ok = dirs_.try_emplace(t.path, 0).second;
      break;
    }
  }

  if (needs_inode_read) {
    // Attribute cache miss: fetch the inode block from the MDT disk before
    // replying.  Placement hashes on the path length + id for spread.
    const std::int64_t block =
        (static_cast<std::int64_t>(t.path.size()) * 2654435761ll + result.file * 4096) %
        (disk_.params().capacity_bytes / 2);
    disk_.submit(/*is_write=*/false, std::max<std::int64_t>(block, 0),
                 params_.inode_block_bytes,
                 [this, t = std::move(t), result, modifying]() mutable {
                   finish_task(t, result, modifying);
                 });
    return;
  }
  finish_task(t, result, modifying);
}

void MdtServer::finish_task(const Task& t, MetaResult result, bool modifying) {
  if (modifying) {
    counters_.modifying_ops += 1;
    // The service thread stays pinned until the transaction's group commit
    // reaches the journal — the ldiskfs/jbd2 behaviour that lets a create
    // storm starve metadata *reads* of service threads (Table I row 3's
    // sensitivity to mdt write noise).
    await_commit([this, result, cb = t.cb]() {
      counters_.ops_completed += 1;
      if (cb) cb(result);
      --busy_threads_;
      dispatch();
    });
    return;
  }
  counters_.ops_completed += 1;
  if (t.cb) t.cb(result);
  --busy_threads_;
  dispatch();
}

void MdtServer::await_commit(std::function<void()> on_committed) {
  commit_waiters_.push_back(std::move(on_committed));
  if (static_cast<int>(commit_waiters_.size()) >= params_.commit_batch_limit) {
    // Batch full: commit immediately.
    do_commit();
    return;
  }
  if (!commit_scheduled_) {
    commit_scheduled_ = true;
    sim_.schedule_after(params_.commit_interval, [this] {
      if (commit_scheduled_) do_commit();
    });
  }
}

void MdtServer::do_commit() {
  commit_scheduled_ = false;
  if (commit_waiters_.empty()) return;
  // Swap the waiters into a pooled batch buffer (keeping both vectors'
  // capacity) so steady-state commits allocate nothing.
  std::uint32_t b;
  if (!commit_batch_free_.empty()) {
    b = commit_batch_free_.back();
    commit_batch_free_.pop_back();
  } else {
    b = static_cast<std::uint32_t>(commit_batch_pool_.size());
    commit_batch_pool_.emplace_back();
  }
  commit_batch_pool_[b].swap(commit_waiters_);
  const std::int64_t bytes =
      static_cast<std::int64_t>(commit_batch_pool_[b].size()) * params_.journal_txn_bytes;
  counters_.commits += 1;
  // The journal is a sequential region at the front of the MDT device.
  const std::int64_t off = journal_cursor_;
  journal_cursor_ = (journal_cursor_ + bytes) % (128ll << 20);
  disk_.submit(/*is_write=*/true, off, bytes, [this, b] {
    // No references across the calls: a waiter's continuation can re-enter
    // do_commit() synchronously and grow the pool, so index every access
    // and move each callback out before invoking it.
    for (std::size_t i = 0; i < commit_batch_pool_[b].size(); ++i) {
      std::function<void()> fn = std::move(commit_batch_pool_[b][i]);
      if (fn) fn();
    }
    commit_batch_pool_[b].clear();
    commit_batch_free_.push_back(b);
  });
}

}  // namespace qif::pfs
