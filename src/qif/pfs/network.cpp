#include "qif/pfs/network.hpp"

#include <cassert>
#include <utility>

namespace qif::pfs {

NetworkFabric::NetworkFabric(sim::Simulation& sim, const NetworkParams& params,
                             int n_client_nodes, int n_server_ports)
    : sim_(&sim), params_(params) {
  client_egress_.reserve(static_cast<std::size_t>(n_client_nodes));
  for (int i = 0; i < n_client_nodes; ++i) {
    client_egress_.push_back(
        std::make_unique<sim::Pipe>(sim, params_.bytes_per_second, params_.latency));
  }
  server_ingress_.reserve(static_cast<std::size_t>(n_server_ports));
  server_egress_.reserve(static_cast<std::size_t>(n_server_ports));
  for (int i = 0; i < n_server_ports; ++i) {
    server_ingress_.push_back(std::make_unique<sim::FairLink>(sim, params_.bytes_per_second));
    server_egress_.push_back(std::make_unique<sim::FairLink>(sim, params_.bytes_per_second));
  }
}

NetworkFabric::NetworkFabric(sim::LaneGroup& lanes, const NetworkParams& params,
                             std::vector<int> node_lane, std::vector<int> port_lane)
    : lanes_(&lanes),
      params_(params),
      node_lane_(std::move(node_lane)),
      port_lane_(std::move(port_lane)) {
  client_egress_.reserve(node_lane_.size());
  for (std::size_t i = 0; i < node_lane_.size(); ++i) {
    const int src = node_lane_[i];
    auto pipe = std::make_unique<sim::Pipe>(lanes_->lane(src), params_.bytes_per_second,
                                            params_.latency);
    // Request delivery: the destination *port* rides in the message's route
    // tag; the route resolves its lane and entity context.  Same lane mints
    // the same key a cross-lane post would (schedule_after_ctx consumes one
    // origin, exactly like post_cross), so partitioning never changes keys.
    pipe->set_delivery_route(
        [this, src](sim::SimDuration latency, std::int32_t port, sim::InlineTask fn) {
          const int dst = port_lane_[static_cast<std::size_t>(port)];
          const std::uint32_t ctx = port_ctx(port);
          if (dst == src) {
            lanes_->lane(src).schedule_after_ctx(latency, ctx, std::move(fn));
          } else {
            post_cross(src, dst, ctx, latency, std::move(fn));
          }
        });
    client_egress_.push_back(std::move(pipe));
  }
  server_ingress_.reserve(port_lane_.size());
  server_egress_.reserve(port_lane_.size());
  for (std::size_t p = 0; p < port_lane_.size(); ++p) {
    sim::Simulation& s = lanes_->lane(port_lane_[p]);
    server_ingress_.push_back(std::make_unique<sim::FairLink>(s, params_.bytes_per_second));
    server_egress_.push_back(std::make_unique<sim::FairLink>(s, params_.bytes_per_second));
  }
}

sim::Simulation& NetworkFabric::node_sim(NodeId node) {
  return lanes_ != nullptr ? lanes_->lane(node_lane_[static_cast<std::size_t>(node)])
                           : *sim_;
}

sim::Simulation& NetworkFabric::port_sim(int port) {
  return lanes_ != nullptr ? lanes_->lane(port_lane_[static_cast<std::size_t>(port)])
                           : *sim_;
}

void NetworkFabric::post_cross(int src_lane, int dst_lane, std::uint32_t ctx,
                               sim::SimDuration latency, sim::InlineTask fn) {
  sim::Simulation& src = lanes_->lane(src_lane);
  const sim::SimTime t = src.now();
  lanes_->post(src_lane, dst_lane,
               sim::EventKey{t + latency, t, src.consume_origin(), 0}, ctx,
               std::move(fn));
}

void NetworkFabric::set_loss_gate(const std::function<bool()>& gate) {
  for (auto& p : client_egress_) p->set_loss_gate(gate);
  for (auto& l : server_ingress_) l->set_loss_gate(gate);
  for (auto& l : server_egress_) l->set_loss_gate(gate);
}

void NetworkFabric::install_loss_gates(
    const std::function<std::function<bool()>(const std::string& resource,
                                              sim::Simulation& sim)>& make_gate) {
  for (std::size_t i = 0; i < client_egress_.size(); ++i) {
    client_egress_[i]->set_loss_gate(
        make_gate("egress-pipe/" + std::to_string(i), node_sim(static_cast<NodeId>(i))));
  }
  for (std::size_t p = 0; p < server_ingress_.size(); ++p) {
    server_ingress_[p]->set_loss_gate(
        make_gate("ingress-link/" + std::to_string(p), port_sim(static_cast<int>(p))));
    server_egress_[p]->set_loss_gate(
        make_gate("egress-link/" + std::to_string(p), port_sim(static_cast<int>(p))));
  }
}

std::uint64_t NetworkFabric::messages_dropped() const {
  std::uint64_t n = 0;
  for (const auto& p : client_egress_) n += p->messages_dropped();
  for (const auto& l : server_ingress_) n += l->messages_dropped();
  for (const auto& l : server_egress_) n += l->messages_dropped();
  return n;
}

void NetworkFabric::rpc(NodeId client, int server_port, std::int64_t request_payload,
                        std::int64_t response_payload,
                        std::function<void(std::function<void()>)> serve,
                        std::function<void()> on_complete) {
  assert(client >= 0 && client < n_client_nodes());
  assert(server_port >= 0 && server_port < n_server_ports());
  if (!on_complete) on_complete = [] {};  // fire-and-forget RPCs are legal
  const std::int64_t req_bytes = request_payload + params_.rpc_header_bytes;
  const std::int64_t resp_bytes = response_payload + params_.rpc_header_bytes;

  auto* ingress = server_ingress_[server_port].get();
  auto* egress = server_egress_[server_port].get();
  const std::int32_t dst_tag = lanes_ != nullptr ? server_port : -1;

  client_egress_[client]->send(
      req_bytes, dst_tag,
      [this, client, server_port, ingress, egress, req_bytes, resp_bytes,
       serve = std::move(serve), on_complete = std::move(on_complete)]() mutable {
        // From here on everything runs on the server port's engine, until
        // the response propagation hop crosses back to the client.
        ingress->transfer(req_bytes, [this, client, server_port, egress, resp_bytes,
                                      serve = std::move(serve),
                                      on_complete = std::move(on_complete)]() mutable {
          serve([this, client, server_port, egress, resp_bytes,
                 on_complete = std::move(on_complete)]() mutable {
            egress->transfer(
                resp_bytes, [this, client, server_port,
                             on_complete = std::move(on_complete)]() mutable {
                  // Response propagation back to the client host, delivered
                  // under the client node's entity context.
                  if (lanes_ != nullptr) {
                    const int src = port_lane_[static_cast<std::size_t>(server_port)];
                    const int dst = node_lane_[static_cast<std::size_t>(client)];
                    const std::uint32_t ctx = node_ctx(client);
                    if (src != dst) {
                      post_cross(src, dst, ctx, params_.latency,
                                 std::move(on_complete));
                    } else {
                      lanes_->lane(src).schedule_after_ctx(params_.latency, ctx,
                                                           std::move(on_complete));
                    }
                    return;
                  }
                  port_sim(server_port).schedule_after(params_.latency,
                                                       std::move(on_complete));
                });
          });
        });
      });
}

}  // namespace qif::pfs
