#include "qif/pfs/network.hpp"

#include <cassert>
#include <utility>

namespace qif::pfs {

NetworkFabric::NetworkFabric(sim::Simulation& sim, const NetworkParams& params,
                             int n_client_nodes, int n_server_ports)
    : sim_(sim), params_(params) {
  client_egress_.reserve(static_cast<std::size_t>(n_client_nodes));
  for (int i = 0; i < n_client_nodes; ++i) {
    client_egress_.push_back(
        std::make_unique<sim::Pipe>(sim_, params_.bytes_per_second, params_.latency));
  }
  server_ingress_.reserve(static_cast<std::size_t>(n_server_ports));
  server_egress_.reserve(static_cast<std::size_t>(n_server_ports));
  for (int i = 0; i < n_server_ports; ++i) {
    server_ingress_.push_back(std::make_unique<sim::FairLink>(sim_, params_.bytes_per_second));
    server_egress_.push_back(std::make_unique<sim::FairLink>(sim_, params_.bytes_per_second));
  }
}

void NetworkFabric::set_loss_gate(const std::function<bool()>& gate) {
  for (auto& p : client_egress_) p->set_loss_gate(gate);
  for (auto& l : server_ingress_) l->set_loss_gate(gate);
  for (auto& l : server_egress_) l->set_loss_gate(gate);
}

std::uint64_t NetworkFabric::messages_dropped() const {
  std::uint64_t n = 0;
  for (const auto& p : client_egress_) n += p->messages_dropped();
  for (const auto& l : server_ingress_) n += l->messages_dropped();
  for (const auto& l : server_egress_) n += l->messages_dropped();
  return n;
}

void NetworkFabric::rpc(NodeId client, int server_port, std::int64_t request_payload,
                        std::int64_t response_payload,
                        std::function<void(std::function<void()>)> serve,
                        std::function<void()> on_complete) {
  assert(client >= 0 && client < n_client_nodes());
  assert(server_port >= 0 && server_port < n_server_ports());
  if (!on_complete) on_complete = [] {};  // fire-and-forget RPCs are legal
  const std::int64_t req_bytes = request_payload + params_.rpc_header_bytes;
  const std::int64_t resp_bytes = response_payload + params_.rpc_header_bytes;

  auto* ingress = server_ingress_[server_port].get();
  auto* egress = server_egress_[server_port].get();

  client_egress_[client]->send(req_bytes, [this, ingress, egress, req_bytes, resp_bytes,
                                           serve = std::move(serve),
                                           on_complete = std::move(on_complete)]() mutable {
    ingress->transfer(req_bytes, [this, egress, resp_bytes, serve = std::move(serve),
                                  on_complete = std::move(on_complete)]() mutable {
      serve([this, egress, resp_bytes, on_complete = std::move(on_complete)]() mutable {
        egress->transfer(resp_bytes, [this, on_complete = std::move(on_complete)]() mutable {
          // Response propagation back to the client host.
          sim_.schedule_after(params_.latency, std::move(on_complete));
        });
      });
    });
  });
}

}  // namespace qif::pfs
