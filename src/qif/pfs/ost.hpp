// Object storage target: one disk plus its write-back cache, with the
// request accounting the server-side monitor samples.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "qif/pfs/disk.hpp"
#include "qif/pfs/types.hpp"
#include "qif/pfs/read_cache.hpp"
#include "qif/pfs/writeback.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {

class Ost {
 public:
  Ost(sim::Simulation& sim, OstId id, const DiskParams& disk_params,
      const WritebackParams& wb_params, std::uint64_t seed,
      const ReadCacheParams& rc_params = {})
      : sim_(sim),
        id_(id),
        disk_(sim, disk_params, sim::Rng::derive_seed(seed, "ost" + std::to_string(id)),
              "ost" + std::to_string(id)),
        cache_(sim, disk_, wb_params),
        read_cache_(rc_params),
        memcpy_rate_bps_(wb_params.memcpy_rate_bps) {}

  Ost(const Ost&) = delete;
  Ost& operator=(const Ost&) = delete;

  /// Read.  By default a cold media access; with the opt-in server read
  /// cache enabled, recently written ranges are served at memory speed.
  void read(std::int64_t disk_offset, std::int64_t len, std::function<void()> on_done) {
    if (read_cache_.lookup(disk_offset, len)) {
      const auto copy =
          sim::from_seconds(static_cast<double>(len) / memcpy_rate_bps_);
      sim_.schedule_after(30 * sim::kMicrosecond + copy, std::move(on_done));
      return;
    }
    disk_.submit(/*is_write=*/false, disk_offset, len, std::move(on_done));
  }

  /// Buffered write through the write-back cache.
  void write(std::int64_t disk_offset, std::int64_t len, std::function<void()> on_ack) {
    read_cache_.insert(disk_offset, len);
    cache_.write(disk_offset, len, std::move(on_ack));
  }

  /// Synchronous write straight to the media.  Clients route small writes
  /// here: on Lustre, sub-page/strided writes to contended extents degrade
  /// to lock-serialized, effectively synchronous RPCs (the mechanism that
  /// makes ior-hard-write and mdtest-hard's 3901-byte bodies disk-bound and
  /// exquisitely sensitive to whatever else the disk is doing — Table I
  /// rows 5 and 7).
  void write_sync(std::int64_t disk_offset, std::int64_t len, std::function<void()> on_done) {
    // The sync write carries these bytes itself; drop any still-buffered
    // copy so they do not hit the media twice.
    read_cache_.insert(disk_offset, len);
    cache_.forget(disk_offset, len);
    disk_.submit(/*is_write=*/true, disk_offset, len, std::move(on_done));
  }

  [[nodiscard]] OstId id() const { return id_; }
  [[nodiscard]] DiskModel& disk() { return disk_; }
  [[nodiscard]] const DiskModel& disk() const { return disk_; }
  [[nodiscard]] WritebackCache& cache() { return cache_; }
  [[nodiscard]] const WritebackCache& cache() const { return cache_; }
  [[nodiscard]] ReadCache& read_cache() { return read_cache_; }
  [[nodiscard]] const ReadCache& read_cache() const { return read_cache_; }

 private:
  sim::Simulation& sim_;
  OstId id_;
  DiskModel disk_;
  WritebackCache cache_;
  ReadCache read_cache_;
  double memcpy_rate_bps_;
};

}  // namespace qif::pfs
