// Parallel file system client, one instance per process (rank).
//
// Implements the POSIX-ish surface the workloads drive — create/open/
// read/write/stat/close/unlink/mkdir — on top of the RPC fabric:
// data ops are split by the file's striping layout into per-OST extents,
// chunked to the RPC size cap and issued with a bounded number of RPCs in
// flight (Lustre's max_rpcs_in_flight); metadata ops go to the MDS.  Every
// completed operation emits one DXT-style OpRecord to the run's TraceLog,
// which is exactly the instrumentation point of the paper's modified
// Darshan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qif/pfs/layout.hpp"
#include "qif/pfs/types.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::pfs {

class Cluster;

struct ClientParams {
  std::int64_t max_rpc_bytes = 1 << 20;  ///< Lustre default 1 MiB RPCs
  int max_rpcs_in_flight = 8;
  /// Flush-on-close: a file whose total written volume stays at or below
  /// this threshold has its dirty data flushed *synchronously* to the OST
  /// at close time (the PFS commit-on-close path for small new files —
  /// what makes mdtest-hard's 3901-byte bodies disk-bound while bulk IOR
  /// writes stream through the write-back cache).
  std::int64_t small_file_flush_bytes = 256 << 10;
};

/// Open-file handle; cheap to copy.
struct FileHandle {
  FileId file = kInvalidFile;
  const FileLayout* layout = nullptr;
  std::int64_t size = 0;
  [[nodiscard]] bool valid() const { return file != kInvalidFile && layout != nullptr; }
};

class PfsClient {
 public:
  using DataCallback = std::function<void()>;
  using OpenCallback = std::function<void(FileHandle)>;
  using StatCallback = std::function<void(bool ok, std::int64_t size)>;

  /// `job` tags every record this client emits (one workload = one job id).
  PfsClient(Cluster& cluster, NodeId node, Rank rank, std::int32_t job);

  // -- metadata ops ---------------------------------------------------------
  /// Creates the file with `stripe_count` stripes (0 = stripe over all
  /// OSTs).  `stripe_hint` >= 0 pins the starting OST; -1 = hashed.
  void create(const std::string& path, int stripe_count, OpenCallback cb,
              int stripe_hint = -1);
  void open(const std::string& path, OpenCallback cb);
  void stat(const std::string& path, StatCallback cb);
  void close(const FileHandle& fh, DataCallback cb);
  void unlink(const std::string& path, DataCallback cb);
  void mkdir(const std::string& path, DataCallback cb);

  // -- data ops -------------------------------------------------------------
  void read(const FileHandle& fh, std::int64_t offset, std::int64_t len, DataCallback cb);
  void write(const FileHandle& fh, std::int64_t offset, std::int64_t len, DataCallback cb);

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] std::int32_t job() const { return job_; }
  [[nodiscard]] std::int64_t ops_issued() const { return next_op_index_; }

 private:
  /// Small-file dirty state for flush-on-close.
  struct SmallDirty {
    OstId ost = 0;
    std::int64_t disk_offset = 0;
    std::int64_t bytes = 0;
    bool oversized = false;  ///< grew past the threshold; close is cheap
  };

  void emit(OpType type, FileId file, std::int64_t offset, std::int64_t bytes,
            sim::SimTime start, std::vector<std::int32_t> targets);
  void data_op(bool is_write, const FileHandle& fh, std::int64_t offset, std::int64_t len,
               DataCallback cb);
  void note_small_write(const FileHandle& fh, std::int64_t offset, std::int64_t len);
  void finish_close(FileId file, sim::SimTime start, std::vector<std::int32_t> targets,
                    DataCallback cb);

  Cluster& cluster_;
  NodeId node_;
  Rank rank_;
  std::int32_t job_;
  std::int64_t next_op_index_ = 0;
  ClientParams params_;
  std::map<FileId, SmallDirty> small_dirty_;
};

}  // namespace qif::pfs
