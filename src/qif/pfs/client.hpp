// Parallel file system client, one instance per process (rank).
//
// Implements the POSIX-ish surface the workloads drive — create/open/
// read/write/stat/close/unlink/mkdir — on top of the RPC fabric:
// data ops are split by the file's striping layout into per-OST extents,
// chunked to the RPC size cap and issued with a bounded number of RPCs in
// flight (Lustre's max_rpcs_in_flight); metadata ops go to the MDS.  Every
// completed operation emits one DXT-style OpRecord to the run's TraceLog,
// which is exactly the instrumentation point of the paper's modified
// Darshan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qif/pfs/layout.hpp"
#include "qif/pfs/types.hpp"
#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::pfs {

class AdmissionGate;
class Cluster;

struct ClientParams {
  std::int64_t max_rpc_bytes = 1 << 20;  ///< Lustre default 1 MiB RPCs
  int max_rpcs_in_flight = 8;
  /// Flush-on-close: a file whose total written volume stays at or below
  /// this threshold has its dirty data flushed *synchronously* to the OST
  /// at close time (the PFS commit-on-close path for small new files —
  /// what makes mdtest-hard's 3901-byte bodies disk-bound while bulk IOR
  /// writes stream through the write-back cache).
  std::int64_t small_file_flush_bytes = 256 << 10;

  // -- RPC timeout/retry (fault tolerance; Lustre's obd_timeout family) ----
  /// Per-RPC deadline.  0 disables the whole timeout machinery: no timer
  /// events are scheduled and every RPC takes the exact pre-fault code path
  /// (this is what keeps healthy-run traces byte-identical to old goldens).
  sim::SimDuration rpc_deadline = 0;
  /// Re-issues after the first timeout before the op fails with EIO.
  int rpc_max_retries = 4;
  /// Base backoff before re-issue; doubles each attempt (exponential).
  sim::SimDuration retry_backoff = 100 * sim::kMillisecond;
  /// Uniform jitter fraction applied on top of the backoff: the wait is
  /// backoff * 2^k * (1 + jitter * U[0,1)) with U from the client's own
  /// deterministic RNG stream.
  double retry_jitter = 0.5;
};

/// Open-file handle; cheap to copy.
struct FileHandle {
  FileId file = kInvalidFile;
  const FileLayout* layout = nullptr;
  std::int64_t size = 0;
  [[nodiscard]] bool valid() const { return file != kInvalidFile && layout != nullptr; }
};

class PfsClient {
 public:
  using DataCallback = std::function<void()>;
  using OpenCallback = std::function<void(FileHandle)>;
  using StatCallback = std::function<void(bool ok, std::int64_t size)>;

  /// `job` tags every record this client emits (one workload = one job id).
  PfsClient(Cluster& cluster, NodeId node, Rank rank, std::int32_t job);

  // -- metadata ops ---------------------------------------------------------
  /// Creates the file with `stripe_count` stripes (0 = stripe over all
  /// OSTs).  `stripe_hint` >= 0 pins the starting OST; -1 = hashed.
  void create(const std::string& path, int stripe_count, OpenCallback cb,
              int stripe_hint = -1);
  void open(const std::string& path, OpenCallback cb);
  void stat(const std::string& path, StatCallback cb);
  void close(const FileHandle& fh, DataCallback cb);
  void unlink(const std::string& path, DataCallback cb);
  void mkdir(const std::string& path, DataCallback cb);

  // -- data ops -------------------------------------------------------------
  void read(const FileHandle& fh, std::int64_t offset, std::int64_t len, DataCallback cb);
  void write(const FileHandle& fh, std::int64_t offset, std::int64_t len, DataCallback cb);

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  /// The engine this client's node runs on — the single engine in classic
  /// mode, the node's data lane in lane mode.  Workload code must schedule
  /// its think-time/phase events here, never on another lane's engine.
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] std::int32_t job() const { return job_; }
  [[nodiscard]] std::int64_t ops_issued() const { return next_op_index_; }

  /// Cumulative fault-path counters across every op this client issued.
  [[nodiscard]] std::int64_t total_retries() const { return total_retries_; }
  [[nodiscard]] std::int64_t total_timeouts() const { return total_timeouts_; }
  [[nodiscard]] std::int64_t total_failed_ops() const { return total_failed_; }

  /// Admission gate for this client's data-RPC chunks (admission.hpp), or
  /// nullptr — the default, in which case the data-op pump takes the exact
  /// ungated code path (no extra events, byte-identical traces).  The gate
  /// must outlive the client; the cluster's gate factory installs it at
  /// make_client time.
  void set_gate(AdmissionGate* gate) { gate_ = gate; }
  [[nodiscard]] AdmissionGate* gate() const { return gate_; }

 private:
  /// Small-file dirty state for flush-on-close.
  struct SmallDirty {
    OstId ost = 0;
    std::int64_t disk_offset = 0;
    std::int64_t bytes = 0;
    bool oversized = false;  ///< grew past the threshold; close is cheap
  };

  /// Fault outcome of one POSIX-level op (shared by all of its chunk RPCs).
  struct OpFaultStats {
    std::int32_t retries = 0;
    std::int32_t timeouts = 0;
    bool failed = false;
  };

  /// One RPC riding the timeout/retry state machine.
  struct RetryOp {
    int server_port = 0;
    std::int64_t request_payload = 0;
    std::int64_t response_payload = 0;
    std::function<void(std::function<void()>)> serve;
    std::function<void(bool ok)> cb;
    std::shared_ptr<OpFaultStats> stats;
    int attempt = 0;                        ///< attempts issued so far
    bool done = false;                      ///< response accepted or EIO'd
    sim::EventId timer = sim::kInvalidEvent;
  };

  /// `path`/`stripes`/`stripe_hint` are the replay-metadata columns of the
  /// record (empty/zero for data ops); see trace::OpRecord.
  void emit(OpType type, FileId file, std::int64_t offset, std::int64_t bytes,
            sim::SimTime start, std::vector<std::int32_t> targets,
            const OpFaultStats* faults = nullptr, std::string path = {},
            std::int32_t stripes = 0, std::int32_t stripe_hint = -1);
  void data_op(bool is_write, const FileHandle& fh, std::int64_t offset, std::int64_t len,
               DataCallback cb);
  void note_small_write(const FileHandle& fh, std::int64_t offset, std::int64_t len);
  void finish_close(FileId file, sim::SimTime start, std::vector<std::int32_t> targets,
                    std::shared_ptr<OpFaultStats> faults, DataCallback cb);

  /// Runs one RPC under the timeout/retry machine when `rpc_deadline` > 0;
  /// with a zero deadline it degrades to a plain fabric RPC (no timer
  /// events, no RNG draws) and always reports ok=true.
  void rpc_faultable(int server_port, std::int64_t request_payload,
                     std::int64_t response_payload,
                     std::function<void(std::function<void()>)> serve,
                     std::function<void(bool ok)> cb,
                     std::shared_ptr<OpFaultStats> stats);
  void issue_attempt(std::shared_ptr<RetryOp> op);
  /// Allocates per-op fault stats when the machinery is on, nullptr when off.
  [[nodiscard]] std::shared_ptr<OpFaultStats> make_fault_stats() {
    return params_.rpc_deadline > 0 ? std::make_shared<OpFaultStats>() : nullptr;
  }

  Cluster& cluster_;
  sim::Simulation& sim_;  ///< the engine owning this client's node
  NodeId node_;
  Rank rank_;
  std::int32_t job_;
  std::int64_t next_op_index_ = 0;
  ClientParams params_;
  std::map<FileId, SmallDirty> small_dirty_;
  sim::Rng retry_rng_;
  AdmissionGate* gate_ = nullptr;
  std::int64_t total_retries_ = 0;
  std::int64_t total_timeouts_ = 0;
  std::int64_t total_failed_ = 0;
};

}  // namespace qif::pfs
