#include "qif/pfs/read_cache.hpp"

#include <algorithm>

namespace qif::pfs {

void ReadCache::erase_range(std::int64_t lo, std::int64_t hi) {
  // Trim a predecessor overlapping the range.
  if (auto it = extents_.lower_bound(lo); it != extents_.begin()) {
    auto prev = std::prev(it);
    const std::int64_t pend = prev->first + prev->second;
    if (pend > lo) {
      const std::int64_t cut = std::min(pend, hi) - lo;
      prev->second = lo - prev->first;
      cached_bytes_ -= cut;
      if (pend > hi) extents_[hi] = pend - hi;
      if (prev->second == 0) extents_.erase(prev);
    }
  }
  for (auto it = extents_.lower_bound(lo); it != extents_.end() && it->first < hi;
       it = extents_.lower_bound(lo)) {
    const std::int64_t end = it->first + it->second;
    if (end <= hi) {
      cached_bytes_ -= it->second;
      extents_.erase(it);
    } else {
      cached_bytes_ -= hi - it->first;
      const std::int64_t tail = end - hi;
      extents_.erase(it);
      extents_[hi] = tail;
      break;
    }
  }
}

void ReadCache::insert(std::int64_t offset, std::int64_t len) {
  if (!enabled() || len <= 0) return;
  // Replace any overlap, then add the fresh extent (keeps accounting exact).
  erase_range(offset, offset + len);
  // Coalesce with neighbours.
  std::int64_t off = offset;
  std::int64_t l = len;
  if (auto it = extents_.lower_bound(off); it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == off) {
      off = prev->first;
      l += prev->second;
      extents_.erase(prev);
    }
  }
  if (auto it = extents_.find(off + l); it != extents_.end()) {
    l += it->second;
    extents_.erase(it);
  }
  extents_[off] = l;
  cached_bytes_ += len;
  fifo_.emplace_back(offset, len);
  evict_to_budget();
}

void ReadCache::evict_to_budget() {
  while (cached_bytes_ > params_.capacity_bytes && !fifo_.empty()) {
    const auto [off, len] = fifo_.front();
    fifo_.pop_front();
    erase_range(off, off + len);
  }
}

bool ReadCache::lookup(std::int64_t offset, std::int64_t len) {
  if (!enabled()) return false;
  // Find the extent containing `offset`.
  bool covered = false;
  if (auto it = extents_.upper_bound(offset); it != extents_.begin()) {
    auto prev = std::prev(it);
    covered = prev->first <= offset && prev->first + prev->second >= offset + len;
  }
  (covered ? hits_ : misses_) += 1;
  // Touch-on-hit: refresh recency so hot small files survive streaming
  // writers sweeping through the FIFO budget (LRU approximation).
  if (covered) fifo_.emplace_back(offset, len);
  return covered;
}

}  // namespace qif::pfs
