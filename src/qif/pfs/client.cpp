#include "qif/pfs/client.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "qif/pfs/admission.hpp"
#include "qif/pfs/cluster.hpp"

namespace qif::pfs {

PfsClient::PfsClient(Cluster& cluster, NodeId node, Rank rank, std::int32_t job)
    : cluster_(cluster), sim_(cluster.sim_for_node(node)), node_(node), rank_(rank),
      job_(job),
      params_(cluster.config().client),
      retry_rng_(sim::Rng::derive_seed(
          cluster.config().seed, "client-retry/n" + std::to_string(node) + "/r" +
                                     std::to_string(rank) + "/j" + std::to_string(job))) {}

void PfsClient::emit(OpType type, FileId file, std::int64_t offset, std::int64_t bytes,
                     sim::SimTime start, std::vector<std::int32_t> targets,
                     const OpFaultStats* faults, std::string path, std::int32_t stripes,
                     std::int32_t stripe_hint) {
  trace::OpRecord rec;
  rec.path = std::move(path);
  rec.stripes = stripes;
  rec.stripe_hint = stripe_hint;
  rec.job = job_;
  rec.rank = rank_;
  rec.op_index = next_op_index_++;
  rec.type = type;
  rec.file = file;
  rec.offset = offset;
  rec.bytes = bytes;
  rec.start = start;
  rec.end = sim_.now();
  rec.targets = std::move(targets);
  if (faults != nullptr) {
    rec.retries = faults->retries;
    rec.timeouts = faults->timeouts;
    rec.failed = faults->failed;
    total_retries_ += faults->retries;
    total_timeouts_ += faults->timeouts;
    total_failed_ += faults->failed ? 1 : 0;
  }
  cluster_.record_client_op(node_, std::move(rec));
}

// ---------------------------------------------------------------------------
// RPC timeout/retry state machine.
//
// Each attempt arms a deadline timer; a response beats the timer or the
// timer beats the response.  A timed-out attempt backs off exponentially
// (with deterministic jitter from the client's own RNG stream) and
// re-issues, up to rpc_max_retries re-issues, after which the op fails with
// EIO.  Responses from superseded attempts are recognised by attempt number
// and dropped — at-least-once semantics, like a real RPC resend (server
// work is idempotent here).  Each attempt carries its own copy of the serve
// closure: the server side of an in-flight attempt then touches no state the
// client side ever writes, which is what lets the attempt cross an event-lane
// boundary — a straggler arriving after the op settles simply re-executes
// idempotent server work, as a real resent RPC would.  With rpc_deadline ==
// 0 none of this exists:
// the RPC goes straight to the fabric, scheduling no timer and drawing no
// randomness, so healthy runs replay the exact pre-fault event sequence.
// ---------------------------------------------------------------------------

void PfsClient::rpc_faultable(int server_port, std::int64_t request_payload,
                              std::int64_t response_payload,
                              std::function<void(std::function<void()>)> serve,
                              std::function<void(bool)> cb,
                              std::shared_ptr<OpFaultStats> stats) {
  if (params_.rpc_deadline <= 0) {
    cluster_.net().rpc(node_, server_port, request_payload, response_payload,
                       std::move(serve), [cb = std::move(cb)] { cb(true); });
    return;
  }
  auto op = std::make_shared<RetryOp>();
  op->server_port = server_port;
  op->request_payload = request_payload;
  op->response_payload = response_payload;
  op->serve = std::move(serve);
  op->cb = std::move(cb);
  op->stats = std::move(stats);
  issue_attempt(std::move(op));
}

void PfsClient::issue_attempt(std::shared_ptr<RetryOp> op) {
  const int my_attempt = ++op->attempt;
  op->timer = sim_.schedule_after(params_.rpc_deadline, [this, op, my_attempt] {
    if (op->done || op->attempt != my_attempt) return;  // superseded meanwhile
    op->timer = sim::kInvalidEvent;
    if (op->stats) ++op->stats->timeouts;
    if (op->attempt > params_.rpc_max_retries) {
      // Retries exhausted: surface EIO.  Late responses are ignored by the
      // done flag; stragglers still in flight re-run their own serve copy.
      op->done = true;
      if (op->stats) op->stats->failed = true;
      auto cb = std::move(op->cb);
      op->serve = nullptr;
      cb(false);
      return;
    }
    if (op->stats) ++op->stats->retries;
    const double scale = static_cast<double>(1u << (op->attempt - 1));
    double wait = static_cast<double>(params_.retry_backoff) * scale;
    if (params_.retry_jitter > 0) {
      wait *= 1.0 + params_.retry_jitter * retry_rng_.next_double();
    }
    sim_.schedule_after(
        std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(wait)), [this, op] {
          // A late response may have completed the op during the backoff.
          if (!op->done) issue_attempt(op);
        });
  });
  cluster_.net().rpc(
      node_, op->server_port, op->request_payload, op->response_payload,
      // Value copy per attempt: the server side must not read RetryOp fields
      // the client side writes (settling clears op->serve), or a cross-lane
      // straggler would race the settle.
      [serve = op->serve](std::function<void()> done) { serve(std::move(done)); },
      [this, op, my_attempt] {
        if (op->done || op->attempt != my_attempt) return;  // stale response
        op->done = true;
        if (op->timer != sim::kInvalidEvent) {
          sim_.cancel(op->timer);
          op->timer = sim::kInvalidEvent;
        }
        auto cb = std::move(op->cb);
        op->serve = nullptr;
        cb(true);
      });
}

// ---------------------------------------------------------------------------
// Metadata operations: one RPC to the MDS each.
// ---------------------------------------------------------------------------

void PfsClient::create(const std::string& path, int stripe_count, OpenCallback cb,
                       int stripe_hint) {
  const sim::SimTime start = sim_.now();
  // The MDS reply payload travels back through the RPC; a shared slot
  // carries it from the serve closure to the completion closure.
  auto result = std::make_shared<MetaResult>();
  auto stats = make_fault_stats();
  rpc_faultable(
      cluster_.mds_port(), /*request=*/256, /*response=*/256,
      [this, path, stripe_count, stripe_hint, result](std::function<void()> done) {
        cluster_.mdt().create(path, stripe_count, stripe_hint,
                              [result, done = std::move(done)](const MetaResult& r) {
                                *result = r;
                                done();
                              });
      },
      [this, path, stripe_count, stripe_hint, result, start, cb = std::move(cb),
       stats](bool ok) {
        emit(OpType::kCreate, ok ? result->file : kInvalidFile, 0, 0, start,
             {trace::kMdtTarget}, stats.get(), path, stripe_count, stripe_hint);
        if (ok) {
          cb(FileHandle{result->file, result->layout, result->size});
        } else {
          cb(FileHandle{});  // EIO: invalid handle, caller's ops degenerate
        }
      },
      stats);
}

void PfsClient::open(const std::string& path, OpenCallback cb) {
  const sim::SimTime start = sim_.now();
  auto result = std::make_shared<MetaResult>();
  auto stats = make_fault_stats();
  rpc_faultable(
      cluster_.mds_port(), 256, 256,
      [this, path, result](std::function<void()> done) {
        cluster_.mdt().open(path, [result, done = std::move(done)](const MetaResult& r) {
          *result = r;
          done();
        });
      },
      [this, path, result, start, cb = std::move(cb), stats](bool ok) {
        emit(OpType::kOpen, ok ? result->file : kInvalidFile, 0, 0, start,
             {trace::kMdtTarget}, stats.get(), path);
        cb(FileHandle{ok && result->ok ? result->file : kInvalidFile, result->layout,
                      result->size});
      },
      stats);
}

void PfsClient::stat(const std::string& path, StatCallback cb) {
  const sim::SimTime start = sim_.now();
  auto result = std::make_shared<MetaResult>();
  auto stats = make_fault_stats();
  rpc_faultable(
      cluster_.mds_port(), 256, 256,
      [this, path, result](std::function<void()> done) {
        cluster_.mdt().stat(path, [result, done = std::move(done)](const MetaResult& r) {
          *result = r;
          done();
        });
      },
      [this, path, result, start, cb = std::move(cb), stats](bool ok) {
        emit(OpType::kStat, ok ? result->file : kInvalidFile, 0, 0, start,
             {trace::kMdtTarget}, stats.get(), path);
        cb(ok && result->ok, result->size);
      },
      stats);
}

void PfsClient::close(const FileHandle& fh, DataCallback cb) {
  const sim::SimTime start = sim_.now();
  auto stats = make_fault_stats();
  // Flush-on-close: a small file's dirty bytes are committed to the OST
  // synchronously before the namespace close, so the close op's latency
  // carries the full cost of whatever the target disk is suffering.
  if (auto it = small_dirty_.find(fh.file);
      it != small_dirty_.end() && !it->second.oversized && it->second.bytes > 0) {
    const SmallDirty dirty = it->second;
    small_dirty_.erase(it);
    rpc_faultable(
        cluster_.oss_port(dirty.ost), dirty.bytes, 0,
        [this, dirty](std::function<void()> done) {
          cluster_.ost(dirty.ost).write_sync(dirty.disk_offset, dirty.bytes, std::move(done));
        },
        [this, file = fh.file, start, ost = dirty.ost, stats,
         cb = std::move(cb)](bool) mutable {
          // Whether or not the flush succeeded, the namespace close still
          // goes to the MDS (its own attempt budget, shared op stats).
          finish_close(file, start, {ost, trace::kMdtTarget}, std::move(stats),
                       std::move(cb));
        },
        stats);
    return;
  }
  small_dirty_.erase(fh.file);
  finish_close(fh.file, start, {trace::kMdtTarget}, std::move(stats), std::move(cb));
}

void PfsClient::finish_close(FileId file, sim::SimTime start,
                             std::vector<std::int32_t> targets,
                             std::shared_ptr<OpFaultStats> faults, DataCallback cb) {
  rpc_faultable(
      cluster_.mds_port(), 256, 256,
      [this, file](std::function<void()> done) {
        cluster_.mdt().close(file, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, file, start, targets = std::move(targets), faults,
       cb = std::move(cb)](bool) {
        emit(OpType::kClose, file, 0, 0, start, targets, faults.get());
        cb();
      },
      faults);
}

void PfsClient::note_small_write(const FileHandle& fh, std::int64_t offset, std::int64_t len) {
  auto [it, inserted] = small_dirty_.try_emplace(fh.file);
  SmallDirty& d = it->second;
  if (inserted) {
    const auto extents = fh.layout->map(offset, len);
    d.ost = extents.front().ost;
    d.disk_offset = extents.front().disk_offset;
  }
  d.bytes += len;
  if (d.bytes > params_.small_file_flush_bytes) d.oversized = true;
}

void PfsClient::unlink(const std::string& path, DataCallback cb) {
  const sim::SimTime start = sim_.now();
  auto stats = make_fault_stats();
  rpc_faultable(
      cluster_.mds_port(), 256, 256,
      [this, path](std::function<void()> done) {
        cluster_.mdt().unlink(path, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, path, start, stats, cb = std::move(cb)](bool) {
        emit(OpType::kUnlink, kInvalidFile, 0, 0, start, {trace::kMdtTarget}, stats.get(),
             path);
        cb();
      },
      stats);
}

void PfsClient::mkdir(const std::string& path, DataCallback cb) {
  const sim::SimTime start = sim_.now();
  auto stats = make_fault_stats();
  rpc_faultable(
      cluster_.mds_port(), 256, 256,
      [this, path](std::function<void()> done) {
        cluster_.mdt().mkdir(path, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, path, start, stats, cb = std::move(cb)](bool) {
        emit(OpType::kMkdir, kInvalidFile, 0, 0, start, {trace::kMdtTarget}, stats.get(),
             path);
        cb();
      },
      stats);
}

// ---------------------------------------------------------------------------
// Data operations: stripe mapping, RPC chunking, bounded in-flight window.
// ---------------------------------------------------------------------------

void PfsClient::read(const FileHandle& fh, std::int64_t offset, std::int64_t len,
                     DataCallback cb) {
  data_op(/*is_write=*/false, fh, offset, len, std::move(cb));
}

void PfsClient::write(const FileHandle& fh, std::int64_t offset, std::int64_t len,
                      DataCallback cb) {
  data_op(/*is_write=*/true, fh, offset, len, std::move(cb));
}

void PfsClient::data_op(bool is_write, const FileHandle& fh, std::int64_t offset,
                        std::int64_t len, DataCallback cb) {
  const sim::SimTime start = sim_.now();
  if (!fh.valid() || len <= 0) {
    // Degenerate op: still emits a record so op indices stay aligned with
    // the workload's issue sequence.
    sim_.schedule_after(sim::kMicrosecond, [this, is_write, fh, offset, start,
                                                      cb = std::move(cb)] {
      emit(is_write ? OpType::kWrite : OpType::kRead, fh.file, offset, 0, start, {});
      cb();
    });
    return;
  }

  // Chunk the stripe extents to the RPC size cap.
  struct Chunk {
    OstId ost;
    std::int64_t disk_offset;
    std::int64_t len;
  };
  auto chunks = std::make_shared<std::vector<Chunk>>();
  std::vector<std::int32_t> targets;
  for (const Extent& e : fh.layout->map(offset, len)) {
    std::int64_t pos = 0;
    while (pos < e.len) {
      const std::int64_t take = std::min(params_.max_rpc_bytes, e.len - pos);
      chunks->push_back(Chunk{e.ost, e.disk_offset + pos, take});
      pos += take;
    }
    if (std::find(targets.begin(), targets.end(), e.ost) == targets.end()) {
      targets.push_back(e.ost);
    }
  }

  struct OpState {
    std::size_t next = 0;
    std::size_t outstanding = 0;
    std::size_t remaining;
    bool throttle_wait = false;  ///< a gate wake-up event is pending
    explicit OpState(std::size_t n) : remaining(n) {}
  };
  if (is_write) note_small_write(fh, offset, len);

  auto stats = make_fault_stats();  // shared by every chunk RPC of this op
  auto state = std::make_shared<OpState>(chunks->size());
  auto finish = [this, is_write, fh, offset, len, start, stats,
                 targets = std::move(targets), cb = std::move(cb)]() {
    // A failed op never reached the server coherently; don't grow the file.
    if (is_write && !(stats && stats->failed)) {
      cluster_.post_note_size(node_, fh.file, offset + len);
    }
    emit(is_write ? OpType::kWrite : OpType::kRead, fh.file, offset, len, start, targets,
         stats.get());
    cb();
  };

  // Issue chunks with at most max_rpcs_in_flight outstanding.  `pump` is
  // stored in a shared_ptr so completion callbacks can re-enter it.  With an
  // admission gate the pump additionally (a) clamps the window to the gate's
  // concurrency cap, re-read before every chunk so a decision epoch takes
  // effect mid-op, and (b) asks the gate before issuing each chunk —
  // strictly before rpc_faultable, so a throttled chunk never arms a
  // deadline timer and an admission delay can never read as a timeout or
  // retry.  A refused ask parks the pump behind one wake-up event (single
  // waiter per op); ungated clients take the exact pre-gate code path.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, is_write, chunks, state, stats, pump, finish = std::move(finish)]() {
    while (state->next < chunks->size()) {
      std::size_t cap = static_cast<std::size_t>(params_.max_rpcs_in_flight);
      if (gate_ != nullptr) {
        cap = static_cast<std::size_t>(
            std::clamp(gate_->concurrency_cap(), 1, params_.max_rpcs_in_flight));
      }
      if (state->outstanding >= cap) break;
      const Chunk c = (*chunks)[state->next];
      const int port = cluster_.oss_port(c.ost);
      if (gate_ != nullptr) {
        const sim::SimDuration wait = gate_->acquire(port, c.len, sim_.now());
        if (wait > 0) {
          if (!state->throttle_wait) {
            state->throttle_wait = true;
            sim_.schedule_after(wait, [state, pump] {
              state->throttle_wait = false;
              // The op may have drained (EIO path) while we slept.
              if (*pump) (*pump)();
            });
          }
          return;
        }
      }
      ++state->next;
      ++state->outstanding;
      const sim::SimTime issued = sim_.now();
      const std::int64_t req_payload = is_write ? c.len : 0;
      const std::int64_t resp_payload = is_write ? 0 : c.len;
      rpc_faultable(
          port, req_payload, resp_payload,
          [this, is_write, c](std::function<void()> done) {
            if (is_write) {
              cluster_.ost(c.ost).write(c.disk_offset, c.len, std::move(done));
            } else {
              cluster_.ost(c.ost).read(c.disk_offset, c.len, std::move(done));
            }
          },
          [this, state, pump, finish, port, len = c.len, issued](bool) {
            // ok=false already marked stats->failed; the op still drains its
            // remaining chunks so the completion count stays exact.
            if (gate_ != nullptr) {
              gate_->on_chunk_complete(port, len, sim_.now() - issued);
            }
            --state->outstanding;
            --state->remaining;
            if (state->remaining == 0) {
              finish();
              // Break the pump's self-reference cycle so the op state frees.
              *pump = nullptr;
            } else {
              (*pump)();
            }
          },
          stats);
    }
  };
  (*pump)();
}

}  // namespace qif::pfs
