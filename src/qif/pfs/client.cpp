#include "qif/pfs/client.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "qif/pfs/cluster.hpp"

namespace qif::pfs {

PfsClient::PfsClient(Cluster& cluster, NodeId node, Rank rank, std::int32_t job)
    : cluster_(cluster), node_(node), rank_(rank), job_(job),
      params_(cluster.config().client) {}

void PfsClient::emit(OpType type, FileId file, std::int64_t offset, std::int64_t bytes,
                     sim::SimTime start, std::vector<std::int32_t> targets) {
  trace::OpRecord rec;
  rec.job = job_;
  rec.rank = rank_;
  rec.op_index = next_op_index_++;
  rec.type = type;
  rec.file = file;
  rec.offset = offset;
  rec.bytes = bytes;
  rec.start = start;
  rec.end = cluster_.sim().now();
  rec.targets = std::move(targets);
  cluster_.trace_log().record(std::move(rec));
}

// ---------------------------------------------------------------------------
// Metadata operations: one RPC to the MDS each.
// ---------------------------------------------------------------------------

void PfsClient::create(const std::string& path, int stripe_count, OpenCallback cb,
                       int stripe_hint) {
  const sim::SimTime start = cluster_.sim().now();
  // The MDS reply payload travels back through the RPC; a shared slot
  // carries it from the serve closure to the completion closure.
  auto result = std::make_shared<MetaResult>();
  cluster_.net().rpc(
      node_, cluster_.mds_port(), /*request=*/256, /*response=*/256,
      [this, path, stripe_count, stripe_hint, result](std::function<void()> done) {
        cluster_.mdt().create(path, stripe_count, stripe_hint,
                              [result, done = std::move(done)](const MetaResult& r) {
                                *result = r;
                                done();
                              });
      },
      [this, result, start, cb = std::move(cb)] {
        emit(OpType::kCreate, result->file, 0, 0, start, {trace::kMdtTarget});
        cb(FileHandle{result->file, result->layout, result->size});
      });
}

void PfsClient::open(const std::string& path, OpenCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  auto result = std::make_shared<MetaResult>();
  cluster_.net().rpc(
      node_, cluster_.mds_port(), 256, 256,
      [this, path, result](std::function<void()> done) {
        cluster_.mdt().open(path, [result, done = std::move(done)](const MetaResult& r) {
          *result = r;
          done();
        });
      },
      [this, result, start, cb = std::move(cb)] {
        emit(OpType::kOpen, result->file, 0, 0, start, {trace::kMdtTarget});
        cb(FileHandle{result->ok ? result->file : kInvalidFile, result->layout,
                      result->size});
      });
}

void PfsClient::stat(const std::string& path, StatCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  auto result = std::make_shared<MetaResult>();
  cluster_.net().rpc(
      node_, cluster_.mds_port(), 256, 256,
      [this, path, result](std::function<void()> done) {
        cluster_.mdt().stat(path, [result, done = std::move(done)](const MetaResult& r) {
          *result = r;
          done();
        });
      },
      [this, result, start, cb = std::move(cb)] {
        emit(OpType::kStat, result->file, 0, 0, start, {trace::kMdtTarget});
        cb(result->ok, result->size);
      });
}

void PfsClient::close(const FileHandle& fh, DataCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  // Flush-on-close: a small file's dirty bytes are committed to the OST
  // synchronously before the namespace close, so the close op's latency
  // carries the full cost of whatever the target disk is suffering.
  if (auto it = small_dirty_.find(fh.file);
      it != small_dirty_.end() && !it->second.oversized && it->second.bytes > 0) {
    const SmallDirty dirty = it->second;
    small_dirty_.erase(it);
    cluster_.net().rpc(
        node_, cluster_.oss_port(dirty.ost), dirty.bytes, 0,
        [this, dirty](std::function<void()> done) {
          cluster_.ost(dirty.ost).write_sync(dirty.disk_offset, dirty.bytes, std::move(done));
        },
        [this, file = fh.file, start, ost = dirty.ost, cb = std::move(cb)]() mutable {
          finish_close(file, start, {ost, trace::kMdtTarget}, std::move(cb));
        });
    return;
  }
  small_dirty_.erase(fh.file);
  finish_close(fh.file, start, {trace::kMdtTarget}, std::move(cb));
}

void PfsClient::finish_close(FileId file, sim::SimTime start,
                             std::vector<std::int32_t> targets, DataCallback cb) {
  cluster_.net().rpc(
      node_, cluster_.mds_port(), 256, 256,
      [this, file](std::function<void()> done) {
        cluster_.mdt().close(file, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, file, start, targets = std::move(targets), cb = std::move(cb)] {
        emit(OpType::kClose, file, 0, 0, start, targets);
        cb();
      });
}

void PfsClient::note_small_write(const FileHandle& fh, std::int64_t offset, std::int64_t len) {
  auto [it, inserted] = small_dirty_.try_emplace(fh.file);
  SmallDirty& d = it->second;
  if (inserted) {
    const auto extents = fh.layout->map(offset, len);
    d.ost = extents.front().ost;
    d.disk_offset = extents.front().disk_offset;
  }
  d.bytes += len;
  if (d.bytes > params_.small_file_flush_bytes) d.oversized = true;
}

void PfsClient::unlink(const std::string& path, DataCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  cluster_.net().rpc(
      node_, cluster_.mds_port(), 256, 256,
      [this, path](std::function<void()> done) {
        cluster_.mdt().unlink(path, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, start, cb = std::move(cb)] {
        emit(OpType::kUnlink, kInvalidFile, 0, 0, start, {trace::kMdtTarget});
        cb();
      });
}

void PfsClient::mkdir(const std::string& path, DataCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  cluster_.net().rpc(
      node_, cluster_.mds_port(), 256, 256,
      [this, path](std::function<void()> done) {
        cluster_.mdt().mkdir(path, [done = std::move(done)](const MetaResult&) { done(); });
      },
      [this, start, cb = std::move(cb)] {
        emit(OpType::kMkdir, kInvalidFile, 0, 0, start, {trace::kMdtTarget});
        cb();
      });
}

// ---------------------------------------------------------------------------
// Data operations: stripe mapping, RPC chunking, bounded in-flight window.
// ---------------------------------------------------------------------------

void PfsClient::read(const FileHandle& fh, std::int64_t offset, std::int64_t len,
                     DataCallback cb) {
  data_op(/*is_write=*/false, fh, offset, len, std::move(cb));
}

void PfsClient::write(const FileHandle& fh, std::int64_t offset, std::int64_t len,
                      DataCallback cb) {
  data_op(/*is_write=*/true, fh, offset, len, std::move(cb));
}

void PfsClient::data_op(bool is_write, const FileHandle& fh, std::int64_t offset,
                        std::int64_t len, DataCallback cb) {
  const sim::SimTime start = cluster_.sim().now();
  if (!fh.valid() || len <= 0) {
    // Degenerate op: still emits a record so op indices stay aligned with
    // the workload's issue sequence.
    cluster_.sim().schedule_after(sim::kMicrosecond, [this, is_write, fh, offset, start,
                                                      cb = std::move(cb)] {
      emit(is_write ? OpType::kWrite : OpType::kRead, fh.file, offset, 0, start, {});
      cb();
    });
    return;
  }

  // Chunk the stripe extents to the RPC size cap.
  struct Chunk {
    OstId ost;
    std::int64_t disk_offset;
    std::int64_t len;
  };
  auto chunks = std::make_shared<std::vector<Chunk>>();
  std::vector<std::int32_t> targets;
  for (const Extent& e : fh.layout->map(offset, len)) {
    std::int64_t pos = 0;
    while (pos < e.len) {
      const std::int64_t take = std::min(params_.max_rpc_bytes, e.len - pos);
      chunks->push_back(Chunk{e.ost, e.disk_offset + pos, take});
      pos += take;
    }
    if (std::find(targets.begin(), targets.end(), e.ost) == targets.end()) {
      targets.push_back(e.ost);
    }
  }

  struct OpState {
    std::size_t next = 0;
    std::size_t outstanding = 0;
    std::size_t remaining;
    explicit OpState(std::size_t n) : remaining(n) {}
  };
  if (is_write) note_small_write(fh, offset, len);

  auto state = std::make_shared<OpState>(chunks->size());
  auto finish = [this, is_write, fh, offset, len, start, targets = std::move(targets),
                 cb = std::move(cb)]() {
    if (is_write) cluster_.mdt().note_size(fh.file, offset + len);
    emit(is_write ? OpType::kWrite : OpType::kRead, fh.file, offset, len, start, targets);
    cb();
  };

  // Issue chunks with at most max_rpcs_in_flight outstanding.  `pump` is
  // stored in a shared_ptr so completion callbacks can re-enter it.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, is_write, chunks, state, pump, finish = std::move(finish)]() {
    while (state->next < chunks->size() &&
           state->outstanding < static_cast<std::size_t>(params_.max_rpcs_in_flight)) {
      const Chunk c = (*chunks)[state->next++];
      ++state->outstanding;
      const std::int64_t req_payload = is_write ? c.len : 0;
      const std::int64_t resp_payload = is_write ? 0 : c.len;
      cluster_.net().rpc(
          node_, cluster_.oss_port(c.ost), req_payload, resp_payload,
          [this, is_write, c](std::function<void()> done) {
            if (is_write) {
              cluster_.ost(c.ost).write(c.disk_offset, c.len, std::move(done));
            } else {
              cluster_.ost(c.ost).read(c.disk_offset, c.len, std::move(done));
            }
          },
          [state, pump, finish] {
            --state->outstanding;
            --state->remaining;
            if (state->remaining == 0) {
              finish();
              // Break the pump's self-reference cycle so the op state frees.
              *pump = nullptr;
            } else {
              (*pump)();
            }
          });
    }
  };
  (*pump)();
}

}  // namespace qif::pfs
