#include "qif/pfs/disk.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace qif::pfs {

DiskModel::DiskModel(sim::Simulation& sim, DiskParams params, std::uint64_t seed,
                     std::string name)
    : sim_(sim),
      params_(params),
      rng_(sim::Rng::derive_seed(seed, name)),
      name_(std::move(name)) {}

void DiskModel::settle_time_integrals() {
  const sim::SimTime now = sim_.now();
  const sim::SimDuration dt = now - last_integral_update_;
  if (dt <= 0) return;
  const auto outstanding =
      static_cast<std::int64_t>(read_queue_.size() + write_queue_.size() + (busy_ ? 1 : 0));
  counters_.weighted_ticks += outstanding * dt;
  if (busy_) counters_.io_ticks += dt;
  last_integral_update_ = now;
}

bool DiskModel::try_merge(Queue& q, bool is_write, std::int64_t offset, std::int64_t len,
                          std::function<void()>& on_complete) {
  // Back merge: an existing request ends exactly where the new one starts.
  if (auto it = q.lower_bound(offset); it != q.begin()) {
    auto prev = std::prev(it);
    Request& r = prev->second;
    if (r.offset + r.len == offset && r.len + len <= params_.max_merge_bytes) {
      r.len += len;
      r.completions.push_back(std::move(on_complete));
      (is_write ? counters_.write_merges : counters_.read_merges) += 1;
      return true;
    }
  }
  // Front merge: the new request ends exactly where an existing one starts.
  if (auto it = q.find(offset + len); it != q.end()) {
    Request moved = std::move(it->second);
    if (moved.len + len <= params_.max_merge_bytes) {
      q.erase(it);
      moved.offset = offset;
      moved.len += len;
      moved.completions.push_back(std::move(on_complete));
      (is_write ? counters_.write_merges : counters_.read_merges) += 1;
      q.emplace(moved.offset, std::move(moved));
      return true;
    }
  }
  return false;
}

void DiskModel::submit(bool is_write, std::int64_t offset, std::int64_t len,
                       std::function<void()> on_complete) {
  settle_time_integrals();
  Queue& q = is_write ? write_queue_ : read_queue_;
  counters_.queued_requests += 1;
  if (is_write && write_queue_.empty()) oldest_write_arrival_ = sim_.now();
  if (!try_merge(q, is_write, offset, len, on_complete)) {
    Request req;
    req.offset = offset;
    req.len = len;
    req.arrival = sim_.now();
    req.completions.push_back(std::move(on_complete));
    q.emplace(offset, std::move(req));
  }
  maybe_dispatch();
}

DiskModel::Queue::iterator DiskModel::pick_elevator(Queue& q) {
  // C-SCAN: first request at or past the head, wrapping to the lowest.
  auto it = q.lower_bound(head_pos_);
  if (it == q.end()) it = q.begin();
  return it;
}

sim::SimDuration DiskModel::service_time(const Request& req) {
  sim::SimDuration positioning = 0;
  const std::int64_t gap = std::abs(req.offset - head_pos_);
  const auto rot_avg = sim::from_seconds(30.0 / params_.rpm);  // half revolution
  if (gap == 0) {
    positioning = 0;  // pure sequential continuation
  } else if (gap <= params_.near_seek_span) {
    positioning = params_.track_seek + rot_avg / 2;
  } else {
    positioning = params_.avg_seek + rot_avg;
  }
  const auto transfer = sim::from_seconds(static_cast<double>(req.len) / params_.media_rate_bps);
  double total = static_cast<double>(positioning + transfer);
  if (params_.service_jitter > 0) {
    total *= 1.0 + rng_.uniform(-params_.service_jitter, params_.service_jitter);
  }
  // Slow-disk episode: scale the whole media service.  Gated on != 1.0 so
  // a healthy disk takes the exact pre-fault arithmetic path.
  if (fault_multiplier_ != 1.0) total *= fault_multiplier_;
  return std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(total));
}

void DiskModel::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (!stalled_) maybe_dispatch();
}

void DiskModel::maybe_dispatch() {
  if (busy_ || stalled_) return;
  if (read_queue_.empty() && write_queue_.empty()) return;
  settle_time_integrals();

  bool pick_write;
  bool free_flow_write = false;
  if (read_queue_.empty()) {
    pick_write = true;
    free_flow_write = true;  // nothing to prioritize; no turn accounting
  } else if (write_queue_.empty()) {
    pick_write = false;
  } else if (write_credit_time_ > 0) {
    pick_write = true;  // finish the granted write turn
  } else if (sim_.now() >= next_write_turn_ &&
             sim_.now() - oldest_write_arrival_ > params_.write_starve_limit) {
    // Anti-starvation: grant one bounded, rate-limited write turn.  The
    // rate limit matters: with a standing writeback backlog the oldest
    // write is *always* past the limit, and without it writes would win
    // every other dispatch and erase read priority entirely.  The budget
    // is service *time*, not bytes — a turn of seek-bound small writes
    // must not cost the readers more than a turn of streaming flushes.
    write_credit_time_ = params_.write_turn_time;
    next_write_turn_ = sim_.now() + params_.write_starve_limit;
    pick_write = true;
  } else {
    pick_write = false;  // reads have priority
  }

  // Anticipation: a read just completed and its issuer is very likely about
  // to send the next one — hold free-flowing writes back briefly rather
  // than committing the head to a multi-millisecond write+seek.
  if (pick_write && free_flow_write && params_.anticipation_hold > 0) {
    const sim::SimTime hold_until = last_read_completion_ + params_.anticipation_hold;
    if (sim_.now() < hold_until) {
      if (!anticipation_armed_) {
        anticipation_armed_ = true;
        sim_.schedule_at(hold_until, [this] {
          anticipation_armed_ = false;
          maybe_dispatch();
        });
      }
      return;
    }
  }

  Queue& q = pick_write ? write_queue_ : read_queue_;
  auto it = pick_elevator(q);
  Request req = std::move(it->second);
  q.erase(it);

  busy_ = true;
  const sim::SimDuration svc = service_time(req);
  head_pos_ = req.offset + req.len;
  if (pick_write) {
    if (!free_flow_write) {
      write_credit_time_ = std::max<sim::SimDuration>(0, write_credit_time_ - svc);
    }
    // Track the true oldest arrival among the remaining writes.
    oldest_write_arrival_ = sim_.now();
    for (const auto& [off, r] : write_queue_) {
      (void)off;
      oldest_write_arrival_ = std::min(oldest_write_arrival_, r.arrival);
    }
  }
  sim_.schedule_after(svc, [this, pick_write, req = std::move(req)]() mutable {
    finish(pick_write, std::move(req));
  });
}

void DiskModel::finish(bool is_write, Request req) {
  settle_time_integrals();
  busy_ = false;
  const std::int64_t sectors = (req.len + params_.sector_bytes - 1) / params_.sector_bytes;
  if (is_write) {
    counters_.writes_completed += static_cast<std::int64_t>(req.completions.size());
    counters_.sectors_written += sectors;
  } else {
    counters_.reads_completed += static_cast<std::int64_t>(req.completions.size());
    counters_.sectors_read += sectors;
    last_read_completion_ = sim_.now();
  }
  maybe_dispatch();
  for (auto& fn : req.completions) {
    if (fn) fn();
  }
}

DiskCounters DiskModel::counters() const {
  // Settle the integrals into a copy so the accessor stays const.
  DiskCounters snap = counters_;
  const sim::SimDuration dt = sim_.now() - last_integral_update_;
  if (dt > 0) {
    const auto outstanding =
        static_cast<std::int64_t>(read_queue_.size() + write_queue_.size() + (busy_ ? 1 : 0));
    snap.weighted_ticks += outstanding * dt;
    if (busy_) snap.io_ticks += dt;
  }
  return snap;
}

}  // namespace qif::pfs
