// Cluster topology: the simulated counterpart of the paper's testbed.
//
// Default shape matches the evaluation platform: 11 machines — 7 compute
// nodes, 3 OSS hosting 2 OSTs each, and 1 combined MGS/MDS with one MDT —
// on 1 GB/s links with 7200 rpm SATA disks.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "qif/pfs/client.hpp"
#include "qif/pfs/mdt.hpp"
#include "qif/pfs/network.hpp"
#include "qif/pfs/ost.hpp"
#include "qif/sim/lanes.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::pfs {

class AdmissionGate;

struct ClusterConfig {
  int n_client_nodes = 7;
  int n_oss = 3;
  int osts_per_oss = 2;
  std::int64_t stripe_size = 1 << 20;
  DiskParams ost_disk;
  WritebackParams writeback;
  ReadCacheParams read_cache;  ///< opt-in server page-cache model (0 = off)
  MdtParams mdt;
  DiskParams mdt_disk;   ///< MDT journal/inode device (same hardware class)
  NetworkParams network;
  ClientParams client;
  std::uint64_t seed = 42;
};

class Cluster {
 public:
  Cluster(sim::Simulation& sim, const ClusterConfig& config);

  /// Lane mode: the cluster's resources are spread over the group's data
  /// lanes — client node n lives on lane n*L/n_client_nodes, OSS port p on
  /// lane p*L/n_oss, and the MDS (plus the MDT behind it) on the dedicated
  /// meta lane.  Throws std::invalid_argument when the partition is invalid
  /// (no data lanes, or more lanes than OSS groups — a lane with no server
  /// port could never make progress against the lookahead bound).
  Cluster(sim::LaneGroup& lanes, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Classic (single-engine) mode only.
  [[nodiscard]] sim::Simulation& sim() { return *single_sim_; }
  [[nodiscard]] bool lane_mode() const { return lanes_ != nullptr; }
  [[nodiscard]] sim::LaneGroup* lanes() { return lanes_; }
  [[nodiscard]] int lane_of_node(NodeId node) const {
    return lanes_ != nullptr ? node_lane_[static_cast<std::size_t>(node)] : 0;
  }
  [[nodiscard]] int lane_of_port(int port) const {
    return lanes_ != nullptr ? port_lane_[static_cast<std::size_t>(port)] : 0;
  }
  /// Entity-context ids for lane-mode key minting (simulation.hpp): client
  /// node n -> n, server port p -> n_client_nodes + p.  Must agree with
  /// NetworkFabric::node_ctx/port_ctx — one convention across the stack.
  [[nodiscard]] std::uint32_t ctx_of_node(NodeId node) const {
    return static_cast<std::uint32_t>(node);
  }
  [[nodiscard]] std::uint32_t ctx_of_port(int port) const {
    return static_cast<std::uint32_t>(config_.n_client_nodes + port);
  }
  /// The engine client node `node` runs on (the single engine in classic mode).
  [[nodiscard]] sim::Simulation& sim_for_node(NodeId node) {
    return lanes_ != nullptr ? lanes_->lane(lane_of_node(node)) : *single_sim_;
  }
  /// The engine that owns OST `ost` (its OSS port's lane).
  [[nodiscard]] sim::Simulation& sim_for_ost(OstId ost) {
    return lanes_ != nullptr ? lanes_->lane(lane_of_port(oss_port(ost))) : *single_sim_;
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] int n_osts() const { return static_cast<int>(osts_.size()); }
  /// Monitored servers: all OSTs followed by the MDT.
  [[nodiscard]] int n_servers() const { return n_osts() + 1; }
  /// Index of the MDT in per-server vectors (== n_osts()).
  [[nodiscard]] int mdt_server_index() const { return n_osts(); }
  /// Resolves an OpRecord target id (OST id or trace::kMdtTarget) to a
  /// dense monitored-server index.
  [[nodiscard]] int server_index(std::int32_t target) const {
    return target == trace::kMdtTarget ? mdt_server_index() : target;
  }

  [[nodiscard]] Ost& ost(OstId id) { return *osts_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Ost& ost(OstId id) const { return *osts_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] MdtServer& mdt() { return *mdt_; }
  [[nodiscard]] const MdtServer& mdt() const { return *mdt_; }
  [[nodiscard]] NetworkFabric& net() { return *net_; }

  /// Network port hosting the given OST (OSTs share their OSS's port).
  [[nodiscard]] int oss_port(OstId ost) const { return ost / config_.osts_per_oss; }
  [[nodiscard]] int mds_port() const { return config_.n_oss; }

  /// Number of uniform raw counters exposed per monitored server.
  static constexpr int kNumRawCounters = 9;

  /// Uniform cumulative counters for monitored server `s` (OSTs then MDT),
  /// in the fixed order: completed reads, completed writes, sectors read,
  /// sectors written, read merges, write merges, queued arrivals, busy
  /// ticks (ns), weighted queue ticks (ns).  For the MDT, completions
  /// count metadata ops (non-modifying / modifying) and queue ticks fold
  /// in the MDS service-queue wait — the same "pressure" semantics at both
  /// server kinds, which is what lets one shared network kernel interpret
  /// any server's vector.
  [[nodiscard]] std::array<std::int64_t, kNumRawCounters> server_counters(int server) const;

  /// The run's trace log; every client op record lands here (classic mode).
  [[nodiscard]] trace::TraceLog& trace_log() { return trace_log_; }
  [[nodiscard]] const trace::TraceLog& trace_log() const { return trace_log_; }

  /// Sink for a completed client op.  Classic mode appends to the single
  /// trace log; lane mode appends to the executing lane's shard together
  /// with the executing event's key, so merged_trace() can reconstruct the
  /// exact completion order the sequential engine would have produced.
  void record_client_op(NodeId node, trace::OpRecord rec);

  /// Lane mode: the per-lane shards merged into sequential completion order
  /// — records sorted by (event key, emit index within the event), which is
  /// precisely the order the single-engine run records them in.  Classic
  /// mode returns a copy of the plain log.
  [[nodiscard]] trace::TraceLog merged_trace() const;

  /// Write-size bookkeeping on the MDT.  In classic mode this is the direct
  /// zero-delay call the sequential cluster always made; in lane mode it
  /// becomes a cross-lane message to the meta lane carrying the executing
  /// event's child key (same when, sub+1), delivered before the meta lane
  /// runs the window — the one legal zero-lookahead edge (see lanes.hpp).
  void post_note_size(NodeId node, FileId file, std::int64_t size);

  /// Creates a client for (node, rank) tagged with `job`.  Clients are owned
  /// by the cluster and live for the whole run.
  PfsClient& make_client(NodeId node, Rank rank, std::int32_t job);

  /// Per-client admission-gate factory (the mitigation layer's hook).  Runs
  /// once inside make_client for each new client; may return nullptr to
  /// leave that client ungated.  The returned gate must outlive the client
  /// (the ctrl::Mitigator owns its controllers for the whole run).  Unset —
  /// the default — means no client is gated and no admission code runs.
  using GateFactory = std::function<AdmissionGate*(PfsClient&)>;
  void set_gate_factory(GateFactory factory) { gate_factory_ = std::move(factory); }

 private:
  /// Per-lane trace shard: the lane's records plus, for each record, the key
  /// of the event that emitted it and the record's index within that event
  /// (one event may emit several records back-to-back).
  struct ShardKey {
    sim::EventKey key;
    std::uint32_t idx;
  };
  struct TraceShard {
    trace::TraceLog log;
    std::vector<ShardKey> keys;
  };

  void build_servers(const ClusterConfig& config);

  sim::Simulation* single_sim_ = nullptr;  // classic mode
  sim::LaneGroup* lanes_ = nullptr;        // lane mode
  ClusterConfig config_;
  std::vector<int> node_lane_;  // lane mode: client node -> data lane
  std::vector<int> port_lane_;  // lane mode: server port -> lane (MDS -> meta)
  std::vector<std::unique_ptr<Ost>> osts_;
  std::unique_ptr<MdtServer> mdt_;
  std::unique_ptr<NetworkFabric> net_;
  std::vector<std::unique_ptr<PfsClient>> clients_;
  GateFactory gate_factory_;
  trace::TraceLog trace_log_;
  std::vector<TraceShard> shards_;  // lane mode: one per data lane
};

}  // namespace qif::pfs
