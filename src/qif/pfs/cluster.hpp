// Cluster topology: the simulated counterpart of the paper's testbed.
//
// Default shape matches the evaluation platform: 11 machines — 7 compute
// nodes, 3 OSS hosting 2 OSTs each, and 1 combined MGS/MDS with one MDT —
// on 1 GB/s links with 7200 rpm SATA disks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "qif/pfs/client.hpp"
#include "qif/pfs/mdt.hpp"
#include "qif/pfs/network.hpp"
#include "qif/pfs/ost.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::pfs {

struct ClusterConfig {
  int n_client_nodes = 7;
  int n_oss = 3;
  int osts_per_oss = 2;
  std::int64_t stripe_size = 1 << 20;
  DiskParams ost_disk;
  WritebackParams writeback;
  ReadCacheParams read_cache;  ///< opt-in server page-cache model (0 = off)
  MdtParams mdt;
  DiskParams mdt_disk;   ///< MDT journal/inode device (same hardware class)
  NetworkParams network;
  ClientParams client;
  std::uint64_t seed = 42;
};

class Cluster {
 public:
  Cluster(sim::Simulation& sim, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] int n_osts() const { return static_cast<int>(osts_.size()); }
  /// Monitored servers: all OSTs followed by the MDT.
  [[nodiscard]] int n_servers() const { return n_osts() + 1; }
  /// Index of the MDT in per-server vectors (== n_osts()).
  [[nodiscard]] int mdt_server_index() const { return n_osts(); }
  /// Resolves an OpRecord target id (OST id or trace::kMdtTarget) to a
  /// dense monitored-server index.
  [[nodiscard]] int server_index(std::int32_t target) const {
    return target == trace::kMdtTarget ? mdt_server_index() : target;
  }

  [[nodiscard]] Ost& ost(OstId id) { return *osts_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Ost& ost(OstId id) const { return *osts_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] MdtServer& mdt() { return *mdt_; }
  [[nodiscard]] const MdtServer& mdt() const { return *mdt_; }
  [[nodiscard]] NetworkFabric& net() { return *net_; }

  /// Network port hosting the given OST (OSTs share their OSS's port).
  [[nodiscard]] int oss_port(OstId ost) const { return ost / config_.osts_per_oss; }
  [[nodiscard]] int mds_port() const { return config_.n_oss; }

  /// Number of uniform raw counters exposed per monitored server.
  static constexpr int kNumRawCounters = 9;

  /// Uniform cumulative counters for monitored server `s` (OSTs then MDT),
  /// in the fixed order: completed reads, completed writes, sectors read,
  /// sectors written, read merges, write merges, queued arrivals, busy
  /// ticks (ns), weighted queue ticks (ns).  For the MDT, completions
  /// count metadata ops (non-modifying / modifying) and queue ticks fold
  /// in the MDS service-queue wait — the same "pressure" semantics at both
  /// server kinds, which is what lets one shared network kernel interpret
  /// any server's vector.
  [[nodiscard]] std::array<std::int64_t, kNumRawCounters> server_counters(int server) const;

  /// The run's trace log; every client op record lands here.
  [[nodiscard]] trace::TraceLog& trace_log() { return trace_log_; }
  [[nodiscard]] const trace::TraceLog& trace_log() const { return trace_log_; }

  /// Creates a client for (node, rank) tagged with `job`.  Clients are owned
  /// by the cluster and live for the whole run.
  PfsClient& make_client(NodeId node, Rank rank, std::int32_t job);

 private:
  sim::Simulation& sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Ost>> osts_;
  std::unique_ptr<MdtServer> mdt_;
  std::unique_ptr<NetworkFabric> net_;
  std::vector<std::unique_ptr<PfsClient>> clients_;
  trace::TraceLog trace_log_;
};

}  // namespace qif::pfs
