// Shared identifiers and op taxonomy for the parallel file system model.
#pragma once

#include <cstdint>
#include <string>

namespace qif::pfs {

/// Object storage target index, dense in [0, n_osts).
using OstId = std::int32_t;
/// Compute-node index, dense in [0, n_client_nodes).
using NodeId = std::int32_t;
/// MPI-style process rank within one workload.
using Rank = std::int32_t;
/// File identifier assigned by the metadata server at create time.
using FileId = std::int64_t;

inline constexpr FileId kInvalidFile = -1;

/// The I/O op taxonomy used throughout tracing and monitoring.  The paper's
/// client-side monitor distinguishes three request classes — read, write and
/// metadata — with metadata covering the namespace operations below.
enum class OpType : std::uint8_t {
  kRead = 0,
  kWrite,
  kOpen,
  kCreate,
  kStat,
  kClose,
  kUnlink,
  kMkdir,
};

inline constexpr int kNumOpTypes = 8;

/// True for the namespace ops that the monitors bucket as "metadata".
constexpr bool is_metadata(OpType t) { return t != OpType::kRead && t != OpType::kWrite; }

/// Stable lowercase op names — also the DXT dump and .qwp op keywords.
/// Inline so header-only consumers (qif_trace's DXT codec) need no link
/// dependency on the pfs library.
constexpr const char* op_name(OpType t) {
  switch (t) {
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kOpen: return "open";
    case OpType::kCreate: return "create";
    case OpType::kStat: return "stat";
    case OpType::kClose: return "close";
    case OpType::kUnlink: return "unlink";
    case OpType::kMkdir: return "mkdir";
  }
  return "?";
}

}  // namespace qif::pfs
