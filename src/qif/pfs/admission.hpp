// Client admission-control hook.
//
// A PfsClient may carry one AdmissionGate; the data-op pump consults it
// before issuing each chunk RPC and reports each chunk's completion back.
// The interface lives in pfs (not ctrl) so the client keeps zero knowledge
// of mitigation policy — qif::ctrl implements it, the scenario wires it.
//
// Contract with the timeout/retry machine (client.cpp): admission runs
// strictly *before* rpc_faultable, so a throttled chunk's deadline timer
// only arms once the chunk is actually admitted — an admission delay can
// never surface as a timeout or retry, and the gate never touches the
// client's retry RNG stream (a throttle released mid-backoff leaves the
// jitter sequence exactly as the ungated machine would draw it).
#pragma once

#include <cstdint>

#include "qif/sim/simulation.hpp"

namespace qif::pfs {

class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;

  /// Asks to issue one data-RPC chunk of `bytes` toward OSS port
  /// `oss_port` at time `now` (the client's clock).  Returns 0 to admit
  /// (the gate records the grant), or a positive wait after which the
  /// client should ask again; a rejected ask consumes nothing, so
  /// re-asking is free.
  virtual sim::SimDuration acquire(int oss_port, std::int64_t bytes,
                                   sim::SimTime now) = 0;

  /// Current cap on one data op's outstanding chunk RPCs.  The client
  /// clamps it to [1, max_rpcs_in_flight]; it is re-read before every
  /// chunk, so a decision epoch takes effect mid-op.
  [[nodiscard]] virtual int concurrency_cap() const = 0;

  /// One admitted chunk finished (success or EIO) after `rtt` of client-
  /// observed latency — the feedback signal both policies learn from.
  virtual void on_chunk_complete(int oss_port, std::int64_t bytes,
                                 sim::SimDuration rtt) = 0;
};

}  // namespace qif::pfs
