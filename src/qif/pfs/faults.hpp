// Deterministic fault injection for the PFS simulator.
//
// Real Lustre deployments degrade not only through healthy-server
// contention (the paper's interference classes) but because servers
// *misbehave*: a disk enters a slow-path episode (media retries, SMR GC),
// an OST stalls outright (failover, controller reset), or the fabric drops
// RPCs.  LASSi's "risk" metrics and DIAL's client-side adaptation both
// treat degraded-server conditions as first-class interference sources, so
// the campaign generator needs a scenario family where the *server* is the
// source of slowdown.
//
// A FaultPlan is a declarative schedule of timed fault episodes; the
// FaultInjector arms it against a concrete Cluster by scheduling
// activation/deactivation events on the simulation clock.  Everything is
// driven by the run's own RNG streams, so a faulted scenario is exactly as
// reproducible as a healthy one — and an *empty* plan schedules nothing,
// draws nothing, and leaves every byte of the simulation unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qif/pfs/types.hpp"
#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {

class Cluster;

namespace faults {

/// Per-OST slow-disk episode: every media service (seek + rotation +
/// transfer) on the OST's disk is multiplied by `factor` during the
/// episode — the signature of a drive in retry/remap trouble.
struct SlowDisk {
  OstId ost = 0;
  sim::SimTime start = 0;
  sim::SimDuration duration = 0;
  double factor = 1.0;
};

/// OST stall/blackout window: the disk stops dispatching entirely (queued
/// and newly arriving requests hang until the window ends).  Clients keep
/// their RPCs pending into the stall, which is what drives the
/// timeout/retry machinery.
struct Stall {
  OstId ost = 0;
  sim::SimTime start = 0;
  sim::SimDuration duration = 0;
};

/// Probabilistic RPC-message loss window: while active, every message
/// entering a network resource (client-egress Pipe, server ingress/egress
/// FairLink) is independently dropped with probability `probability`.
struct RpcLoss {
  sim::SimTime start = 0;
  sim::SimDuration duration = 0;
  double probability = 0.0;
};

struct FaultPlan {
  std::vector<SlowDisk> slow_disks;
  std::vector<Stall> stalls;
  std::vector<RpcLoss> rpc_loss;

  [[nodiscard]] bool empty() const {
    return slow_disks.empty() && stalls.empty() && rpc_loss.empty();
  }
  /// Total number of scheduled episodes.
  [[nodiscard]] std::size_t size() const {
    return slow_disks.size() + stalls.size() + rpc_loss.size();
  }
};

/// Parses a fault-plan spec string (the `--faults` CLI surface):
///
///   spec    := clause (';' clause)*
///   clause  := kind ':' key '=' value (',' key '=' value)*
///   kind    := 'slow' | 'stall' | 'drop'
///
///   slow:  ost=<int>, start=<seconds>, dur=<seconds>, factor=<float >= 1>
///   stall: ost=<int>, start=<seconds>, dur=<seconds>
///   drop:  p=<float in [0,1]>, start=<seconds>, dur=<seconds>
///
/// Example: "slow:ost=1,start=5,dur=30,factor=8;stall:ost=0,start=40,dur=10"
/// Times are fractional seconds on the simulation clock.  Throws
/// std::invalid_argument with the clause number and character offset of the
/// offending token, so fuzz-found rejections are diagnosable.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Canonical spec string for a plan (round-trips through parse_fault_plan).
[[nodiscard]] std::string to_spec(const FaultPlan& plan);

/// Arms a FaultPlan against a cluster: schedules every episode's
/// activation/deactivation on the simulation clock, maintains the per-OST
/// fault state (stacked slow factors, stall depth) and installs the
/// message-loss gates on the network resources.  One injector per run;
/// construct after the Cluster, before any workload starts.
///
/// Lane discipline: every mutation is confined to the engine that owns the
/// mutated state.  Slow/stall transitions are scheduled on the owning OST's
/// lane; message loss is a *per-resource* gate — each fabric resource gets
/// its own RNG stream (derived from the run seed and the resource's stable
/// name) and computes the active drop probability as a pure function of the
/// static plan at its own engine's clock.  A resource's drop sequence thus
/// depends only on its own traffic, which is what keeps faulted runs
/// bit-identical across any lane partition (including the sequential one).
class FaultInjector {
 public:
  /// Validates the plan against the cluster (OST ids, factors,
  /// probabilities — throws std::invalid_argument), installs the loss
  /// gates and schedules all episodes.  `seed` feeds the per-resource
  /// message-loss RNG streams (and the standalone gate's stream).
  FaultInjector(Cluster& cluster, FaultPlan plan, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Standalone message-loss gate (kept for direct use and tests; the
  /// fabric resources use their own per-resource gates).  Draws from the
  /// RNG only while at least one loss window is active, so a plan without
  /// active loss perturbs no RNG stream.
  [[nodiscard]] bool should_drop_message();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Combined drop probability of the loss windows active at `t`
  /// (active on [start, start + duration)); pure function of the plan.
  [[nodiscard]] double loss_probability_at(sim::SimTime t) const;
  /// Combined drop probability of the currently active loss windows.
  [[nodiscard]] double active_loss_probability() const;
  /// Messages dropped across the standalone gate and every fabric resource.
  [[nodiscard]] std::uint64_t messages_dropped() const;
  /// Slow/stall episode activations executed so far (introspection for
  /// tests; loss windows are pure time checks and schedule no events).
  [[nodiscard]] int activations() const {
    return activations_.load(std::memory_order_relaxed);
  }

 private:
  struct OstFaultState {
    std::vector<double> slow_factors;  ///< active episode factors (stacked)
    int stall_depth = 0;
  };

  /// One fabric resource's gate state; owned jointly by the injector (for
  /// the drop tally) and the resource's gate closure.  Touched only from
  /// the resource's own lane while the simulation runs.
  struct LossGate {
    sim::Rng rng;
    sim::Simulation* sim;
    std::uint64_t dropped = 0;
  };

  void schedule_episodes();
  void apply_slow(OstId ost, double factor, bool activate);
  void apply_stall(OstId ost, bool activate);
  [[nodiscard]] sim::SimTime current_time() const;

  Cluster& cluster_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::vector<OstFaultState> ost_state_;
  std::vector<std::shared_ptr<LossGate>> loss_gates_;
  std::uint64_t messages_dropped_ = 0;  ///< standalone gate's own tally
  std::atomic<int> activations_{0};
};

}  // namespace faults
}  // namespace qif::pfs
