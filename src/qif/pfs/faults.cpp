#include "qif/pfs/faults.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "qif/pfs/cluster.hpp"

namespace qif::pfs::faults {

namespace {

// ---------------------------------------------------------------------------
// Spec parsing.  Strict by design: any token we do not understand is an
// error with the clause number and character offset, never a silent default.
// ---------------------------------------------------------------------------

[[noreturn]] void fail_at(int clause, std::size_t offset, const std::string& what) {
  throw std::invalid_argument("fault plan: clause " + std::to_string(clause) +
                              ", offset " + std::to_string(offset) + ": " + what);
}

struct KeyValue {
  std::string key;
  double value = 0.0;
  std::size_t offset = 0;  // of the key, within the full spec
};

// Splits "k1=v1,k2=v2" (the clause body after "kind:") into typed pairs.
std::vector<KeyValue> parse_pairs(const std::string& spec, std::size_t begin,
                                  std::size_t end, int clause) {
  std::vector<KeyValue> pairs;
  std::size_t pos = begin;
  while (pos < end) {
    std::size_t item_end = spec.find(',', pos);
    if (item_end == std::string::npos || item_end > end) item_end = end;
    const std::size_t eq = spec.find('=', pos);
    if (eq == std::string::npos || eq >= item_end) {
      fail_at(clause, pos, "expected key=value");
    }
    KeyValue kv;
    kv.key = spec.substr(pos, eq - pos);
    kv.offset = pos;
    if (kv.key.empty()) fail_at(clause, pos, "empty key");
    const char* first = spec.data() + eq + 1;
    const char* last = spec.data() + item_end;
    if (first == last) fail_at(clause, eq + 1, "empty value for '" + kv.key + "'");
    const auto [ptr, ec] = std::from_chars(first, last, kv.value);
    if (ec != std::errc{} || ptr != last) {
      fail_at(clause, eq + 1,
              "bad number '" + std::string(first, last) + "' for '" + kv.key + "'");
    }
    pairs.push_back(std::move(kv));
    pos = item_end < end ? item_end + 1 : end;
  }
  return pairs;
}

sim::SimDuration seconds_to_sim(double s) { return sim::from_seconds(s); }

double take(std::vector<KeyValue>& pairs, const std::string& key, int clause,
            std::size_t clause_off, bool required, double fallback) {
  for (auto it = pairs.begin(); it != pairs.end(); ++it) {
    if (it->key == key) {
      const double v = it->value;
      pairs.erase(it);
      return v;
    }
  }
  if (required) fail_at(clause, clause_off, "missing required key '" + key + "'");
  return fallback;
}

void reject_leftovers(const std::vector<KeyValue>& pairs, int clause) {
  if (!pairs.empty()) {
    fail_at(clause, pairs.front().offset, "unknown key '" + pairs.front().key + "'");
  }
}

std::string format_seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  int clause = 0;
  while (pos < spec.size()) {
    std::size_t clause_end = spec.find(';', pos);
    if (clause_end == std::string::npos) clause_end = spec.size();
    ++clause;
    if (clause_end == pos) fail_at(clause, pos, "empty clause");
    const std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos || colon >= clause_end) {
      fail_at(clause, pos, "expected 'kind:' prefix (slow|stall|drop)");
    }
    const std::string kind = spec.substr(pos, colon - pos);
    auto pairs = parse_pairs(spec, colon + 1, clause_end, clause);
    if (kind == "slow") {
      SlowDisk f;
      const double ost = take(pairs, "ost", clause, pos, true, 0);
      f.ost = static_cast<OstId>(ost);
      if (static_cast<double>(f.ost) != ost || f.ost < 0) {
        fail_at(clause, pos, "ost must be a non-negative integer");
      }
      f.start = seconds_to_sim(take(pairs, "start", clause, pos, true, 0));
      f.duration = seconds_to_sim(take(pairs, "dur", clause, pos, true, 0));
      f.factor = take(pairs, "factor", clause, pos, true, 1.0);
      if (f.factor < 1.0) fail_at(clause, pos, "factor must be >= 1");
      if (f.start < 0 || f.duration <= 0) {
        fail_at(clause, pos, "need start >= 0 and dur > 0");
      }
      reject_leftovers(pairs, clause);
      plan.slow_disks.push_back(f);
    } else if (kind == "stall") {
      Stall f;
      const double ost = take(pairs, "ost", clause, pos, true, 0);
      f.ost = static_cast<OstId>(ost);
      if (static_cast<double>(f.ost) != ost || f.ost < 0) {
        fail_at(clause, pos, "ost must be a non-negative integer");
      }
      f.start = seconds_to_sim(take(pairs, "start", clause, pos, true, 0));
      f.duration = seconds_to_sim(take(pairs, "dur", clause, pos, true, 0));
      if (f.start < 0 || f.duration <= 0) {
        fail_at(clause, pos, "need start >= 0 and dur > 0");
      }
      reject_leftovers(pairs, clause);
      plan.stalls.push_back(f);
    } else if (kind == "drop") {
      RpcLoss f;
      f.probability = take(pairs, "p", clause, pos, true, 0);
      if (f.probability < 0.0 || f.probability > 1.0) {
        fail_at(clause, pos, "p must be in [0,1]");
      }
      f.start = seconds_to_sim(take(pairs, "start", clause, pos, true, 0));
      f.duration = seconds_to_sim(take(pairs, "dur", clause, pos, true, 0));
      if (f.start < 0 || f.duration <= 0) {
        fail_at(clause, pos, "need start >= 0 and dur > 0");
      }
      reject_leftovers(pairs, clause);
      plan.rpc_loss.push_back(f);
    } else {
      fail_at(clause, pos, "unknown fault kind '" + kind + "'");
    }
    pos = clause_end < spec.size() ? clause_end + 1 : spec.size();
  }
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  for (const auto& f : plan.slow_disks) {
    sep();
    os << "slow:ost=" << f.ost << ",start=" << format_seconds(sim::to_seconds(f.start))
       << ",dur=" << format_seconds(sim::to_seconds(f.duration))
       << ",factor=" << format_seconds(f.factor);
  }
  for (const auto& f : plan.stalls) {
    sep();
    os << "stall:ost=" << f.ost << ",start=" << format_seconds(sim::to_seconds(f.start))
       << ",dur=" << format_seconds(sim::to_seconds(f.duration));
  }
  for (const auto& f : plan.rpc_loss) {
    sep();
    os << "drop:p=" << format_seconds(f.probability)
       << ",start=" << format_seconds(sim::to_seconds(f.start))
       << ",dur=" << format_seconds(sim::to_seconds(f.duration));
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(Cluster& cluster, FaultPlan plan, std::uint64_t seed)
    : cluster_(cluster),
      plan_(std::move(plan)),
      rng_(sim::Rng::derive_seed(seed, "fault-injector")),
      ost_state_(static_cast<std::size_t>(cluster.n_osts())) {
  const int n = cluster_.n_osts();
  for (const auto& f : plan_.slow_disks) {
    if (f.ost < 0 || f.ost >= n) {
      throw std::invalid_argument("fault plan: slow-disk ost " + std::to_string(f.ost) +
                                  " out of range (cluster has " + std::to_string(n) +
                                  " OSTs)");
    }
    if (f.factor < 1.0) {
      throw std::invalid_argument("fault plan: slow-disk factor must be >= 1");
    }
  }
  for (const auto& f : plan_.stalls) {
    if (f.ost < 0 || f.ost >= n) {
      throw std::invalid_argument("fault plan: stall ost " + std::to_string(f.ost) +
                                  " out of range (cluster has " + std::to_string(n) +
                                  " OSTs)");
    }
  }
  for (const auto& f : plan_.rpc_loss) {
    if (f.probability < 0.0 || f.probability > 1.0) {
      throw std::invalid_argument("fault plan: loss probability must be in [0,1]");
    }
  }
  // Only wire gates into the fabric when the plan can actually drop
  // messages; otherwise the fabric keeps its gate-free (and branch-light)
  // healthy path.  One gate per resource, each with its own RNG stream
  // keyed by the resource's stable name, checking the plan against its own
  // engine's clock — no shared mutable state between resources, so the
  // drop sequence each resource sees is partition-independent.
  if (!plan_.rpc_loss.empty()) {
    cluster_.net().install_loss_gates(
        [this, seed](const std::string& resource, sim::Simulation& sim) {
          auto gate = std::make_shared<LossGate>(LossGate{
              sim::Rng(sim::Rng::derive_seed(seed, "fault-loss/" + resource)), &sim, 0});
          loss_gates_.push_back(gate);
          return [this, gate]() {
            const double p = loss_probability_at(gate->sim->now());
            if (p <= 0.0) return false;  // no RNG draw outside loss windows
            const bool drop = gate->rng.chance(p);
            if (drop) ++gate->dropped;
            return drop;
          };
        });
  }
  schedule_episodes();
}

void FaultInjector::schedule_episodes() {
  // Each episode's transition events run on the engine owning the faulted
  // OST, so per-OST state is only ever touched from its own lane.  In lane
  // mode the transitions are minted under the OST's port context — setup
  // scheduling, so the keys (and thus the transitions' order against
  // colliding I/O completions) are partition-independent.  Loss windows
  // schedule nothing: the gates are pure time checks.
  for (const auto& f : plan_.slow_disks) {
    auto& sim = cluster_.sim_for_ost(f.ost);
    if (cluster_.lane_mode()) sim.set_context(cluster_.ctx_of_port(cluster_.oss_port(f.ost)));
    sim.schedule_at(f.start, [this, f] { apply_slow(f.ost, f.factor, true); });
    sim.schedule_at(f.start + f.duration,
                    [this, f] { apply_slow(f.ost, f.factor, false); });
  }
  for (const auto& f : plan_.stalls) {
    auto& sim = cluster_.sim_for_ost(f.ost);
    if (cluster_.lane_mode()) sim.set_context(cluster_.ctx_of_port(cluster_.oss_port(f.ost)));
    sim.schedule_at(f.start, [this, f] { apply_stall(f.ost, true); });
    sim.schedule_at(f.start + f.duration, [this, f] { apply_stall(f.ost, false); });
  }
  for (const auto& f : plan_.rpc_loss) {
    // The gates are pure time checks, but each window's boundaries still go
    // on the clock as no-op markers: an otherwise idle engine then advances
    // across the window, so active_loss_probability() and horizon-stepped
    // scenario loops observe it opening and closing.  Markers mutate
    // nothing, so they cannot perturb cross-partition identity.
    auto& sim = cluster_.lane_mode() ? cluster_.lanes()->meta() : cluster_.sim();
    if (cluster_.lane_mode()) sim.set_context(cluster_.ctx_of_port(cluster_.mds_port()));
    sim.schedule_at(f.start, [] {});
    sim.schedule_at(f.start + f.duration, [] {});
  }
}

void FaultInjector::apply_slow(OstId ost, double factor, bool activate) {
  auto& st = ost_state_[static_cast<std::size_t>(ost)];
  if (activate) {
    activations_.fetch_add(1, std::memory_order_relaxed);
    st.slow_factors.push_back(factor);
  } else {
    for (auto it = st.slow_factors.begin(); it != st.slow_factors.end(); ++it) {
      if (*it == factor) {
        st.slow_factors.erase(it);
        break;
      }
    }
  }
  // Recompute the product from the active set so that an empty set restores
  // exactly 1.0 (a divide-out would accumulate FP drift).
  double m = 1.0;
  for (const double f : st.slow_factors) m *= f;
  cluster_.ost(ost).disk().set_fault_multiplier(m);
}

void FaultInjector::apply_stall(OstId ost, bool activate) {
  auto& st = ost_state_[static_cast<std::size_t>(ost)];
  if (activate) {
    activations_.fetch_add(1, std::memory_order_relaxed);
    ++st.stall_depth;
  } else if (st.stall_depth > 0) {
    --st.stall_depth;
  }
  cluster_.ost(ost).disk().set_stalled(st.stall_depth > 0);
}

sim::SimTime FaultInjector::current_time() const {
  return cluster_.lane_mode() ? cluster_.lanes()->now() : cluster_.sim().now();
}

double FaultInjector::loss_probability_at(sim::SimTime t) const {
  // Independent overlapping windows compose as 1 - prod(1 - p_i); a window
  // is active on [start, start + duration), matching the old event-based
  // semantics (activation sorts before same-tick sends, deactivation too).
  double keep = 1.0;
  for (const auto& f : plan_.rpc_loss) {
    if (t >= f.start && t < f.start + f.duration) keep *= 1.0 - f.probability;
  }
  return 1.0 - keep;
}

double FaultInjector::active_loss_probability() const {
  return loss_probability_at(current_time());
}

std::uint64_t FaultInjector::messages_dropped() const {
  std::uint64_t n = messages_dropped_;
  for (const auto& g : loss_gates_) n += g->dropped;
  return n;
}

bool FaultInjector::should_drop_message() {
  const double p = active_loss_probability();
  if (p <= 0.0) return false;  // no RNG draw outside loss windows
  const bool drop = rng_.chance(p);
  if (drop) ++messages_dropped_;
  return drop;
}

}  // namespace qif::pfs::faults
