#include "qif/pfs/cluster.hpp"

namespace qif::pfs {

Cluster::Cluster(sim::Simulation& sim, const ClusterConfig& config)
    : sim_(sim), config_(config) {
  const int n_osts = config_.n_oss * config_.osts_per_oss;
  osts_.reserve(static_cast<std::size_t>(n_osts));
  for (int i = 0; i < n_osts; ++i) {
    osts_.push_back(std::make_unique<Ost>(sim_, static_cast<OstId>(i), config_.ost_disk,
                                          config_.writeback, config_.seed,
                                          config_.read_cache));
  }
  mdt_ = std::make_unique<MdtServer>(sim_, config_.mdt, config_.mdt_disk, config_.seed,
                                     n_osts, config_.stripe_size);
  net_ = std::make_unique<NetworkFabric>(sim_, config_.network, config_.n_client_nodes,
                                         config_.n_oss + 1);
}

std::array<std::int64_t, Cluster::kNumRawCounters> Cluster::server_counters(int server) const {
  std::array<std::int64_t, kNumRawCounters> out{};
  if (server < n_osts()) {
    const DiskCounters c = ost(static_cast<OstId>(server)).disk().counters();
    out = {c.reads_completed, c.writes_completed, c.sectors_read, c.sectors_written,
           c.read_merges,     c.write_merges,     c.queued_requests,
           c.io_ticks,        c.weighted_ticks};
  } else {
    const DiskCounters d = mdt_->disk().counters();
    const MdtCounters m = mdt_->counters();
    out = {m.ops_completed - m.modifying_ops,
           m.modifying_ops,
           d.sectors_read,
           d.sectors_written,
           d.read_merges,
           d.write_merges,
           m.queued_requests + d.queued_requests,
           d.io_ticks,
           d.weighted_ticks + m.queue_wait_total};
  }
  return out;
}

PfsClient& Cluster::make_client(NodeId node, Rank rank, std::int32_t job) {
  clients_.push_back(std::make_unique<PfsClient>(*this, node, rank, job));
  return *clients_.back();
}

}  // namespace qif::pfs
