#include "qif/pfs/cluster.hpp"

#include <algorithm>

#include "qif/pfs/admission.hpp"
#include <stdexcept>
#include <string>
#include <utility>

namespace qif::pfs {

Cluster::Cluster(sim::Simulation& sim, const ClusterConfig& config)
    : single_sim_(&sim), config_(config) {
  build_servers(config_);
  net_ = std::make_unique<NetworkFabric>(sim, config_.network, config_.n_client_nodes,
                                         config_.n_oss + 1);
}

Cluster::Cluster(sim::LaneGroup& lanes, const ClusterConfig& config)
    : lanes_(&lanes), config_(config) {
  const int L = lanes.data_lanes();
  if (L < 1) {
    throw std::invalid_argument("lane partition: need at least 1 data lane");
  }
  if (L > config_.n_oss) {
    throw std::invalid_argument("lane partition: " + std::to_string(L) +
                                " data lanes but only " + std::to_string(config_.n_oss) +
                                " OSS groups (each data lane must own >= 1 OSS port)");
  }
  node_lane_.resize(static_cast<std::size_t>(config_.n_client_nodes));
  for (int n = 0; n < config_.n_client_nodes; ++n) {
    node_lane_[static_cast<std::size_t>(n)] = n * L / config_.n_client_nodes;
  }
  port_lane_.resize(static_cast<std::size_t>(config_.n_oss) + 1);
  for (int p = 0; p < config_.n_oss; ++p) {
    port_lane_[static_cast<std::size_t>(p)] = p * L / config_.n_oss;
  }
  port_lane_[static_cast<std::size_t>(config_.n_oss)] = lanes.meta_lane();
  shards_.resize(static_cast<std::size_t>(L));
  build_servers(config_);
  net_ = std::make_unique<NetworkFabric>(lanes, config_.network, node_lane_, port_lane_);
}

void Cluster::build_servers(const ClusterConfig& config) {
  const int n_osts = config.n_oss * config.osts_per_oss;
  osts_.reserve(static_cast<std::size_t>(n_osts));
  for (int i = 0; i < n_osts; ++i) {
    const int port = oss_port(static_cast<OstId>(i));
    sim::Simulation& s =
        lanes_ != nullptr ? lanes_->lane(lane_of_port(port)) : *single_sim_;
    // Anything a server schedules at construction time must mint under the
    // server's own entity context so the keys are partition-independent.
    if (lanes_ != nullptr) s.set_context(ctx_of_port(port));
    osts_.push_back(std::make_unique<Ost>(s, static_cast<OstId>(i), config.ost_disk,
                                          config.writeback, config.seed,
                                          config.read_cache));
  }
  sim::Simulation& mdt_sim = lanes_ != nullptr ? lanes_->meta() : *single_sim_;
  if (lanes_ != nullptr) mdt_sim.set_context(ctx_of_port(mds_port()));
  mdt_ = std::make_unique<MdtServer>(mdt_sim, config.mdt, config.mdt_disk, config.seed,
                                     n_osts, config.stripe_size);
}

std::array<std::int64_t, Cluster::kNumRawCounters> Cluster::server_counters(int server) const {
  std::array<std::int64_t, kNumRawCounters> out{};
  if (server < n_osts()) {
    const DiskCounters c = ost(static_cast<OstId>(server)).disk().counters();
    out = {c.reads_completed, c.writes_completed, c.sectors_read, c.sectors_written,
           c.read_merges,     c.write_merges,     c.queued_requests,
           c.io_ticks,        c.weighted_ticks};
  } else {
    const DiskCounters d = mdt_->disk().counters();
    const MdtCounters m = mdt_->counters();
    out = {m.ops_completed - m.modifying_ops,
           m.modifying_ops,
           d.sectors_read,
           d.sectors_written,
           d.read_merges,
           d.write_merges,
           m.queued_requests + d.queued_requests,
           d.io_ticks,
           d.weighted_ticks + m.queue_wait_total};
  }
  return out;
}

void Cluster::record_client_op(NodeId node, trace::OpRecord rec) {
  if (lanes_ == nullptr) {
    trace_log_.record(std::move(rec));
    return;
  }
  TraceShard& sh = shards_[static_cast<std::size_t>(lane_of_node(node))];
  const sim::EventKey key = sim_for_node(node).current_key();
  std::uint32_t idx = 0;
  if (!sh.keys.empty() && sh.keys.back().key == key) idx = sh.keys.back().idx + 1;
  sh.keys.push_back(ShardKey{key, idx});
  sh.log.record(std::move(rec));
}

trace::TraceLog Cluster::merged_trace() const {
  trace::TraceLog merged;
  if (lanes_ == nullptr) {
    merged.reserve(trace_log_.size());
    for (const auto& rec : trace_log_.records()) merged.record(rec);
    return merged;
  }
  // Gather (shard, position) pairs and sort by (event key, emit index).
  // Keys are globally unique per event (the origin word carries the entity
  // context, and each entity lives on exactly one engine), so the order is
  // total and identical for every lane count.
  struct Ref {
    std::uint32_t shard;
    std::uint32_t pos;
  };
  std::vector<Ref> refs;
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh.log.size();
  refs.reserve(total);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (std::uint32_t i = 0; i < shards_[s].log.size(); ++i) refs.push_back(Ref{s, i});
  }
  std::sort(refs.begin(), refs.end(), [this](const Ref& a, const Ref& b) {
    const ShardKey& ka = shards_[a.shard].keys[a.pos];
    const ShardKey& kb = shards_[b.shard].keys[b.pos];
    if (ka.key == kb.key) return ka.idx < kb.idx;
    return ka.key < kb.key;
  });
  merged.reserve(total);
  for (const Ref& r : refs) merged.record(shards_[r.shard].log.records()[r.pos]);
  return merged;
}

void Cluster::post_note_size(NodeId node, FileId file, std::int64_t size) {
  if (lanes_ == nullptr) {
    mdt_->note_size(file, size);
    return;
  }
  // Zero-delay edge into the meta lane: inherit the executing event's key
  // with a bumped sub so the MDT applies sizes in exactly the order the
  // single-lane engine interleaves these calls with MDS RPC arrivals.
  lanes_->post(lane_of_node(node), lanes_->meta_lane(), sim_for_node(node).child_key(),
               ctx_of_port(mds_port()),
               [this, file, size] { mdt_->note_size(file, size); });
}

PfsClient& Cluster::make_client(NodeId node, Rank rank, std::int32_t job) {
  clients_.push_back(std::make_unique<PfsClient>(*this, node, rank, job));
  PfsClient& client = *clients_.back();
  if (gate_factory_) {
    if (AdmissionGate* gate = gate_factory_(client)) client.set_gate(gate);
  }
  return client;
}

}  // namespace qif::pfs
