// Cluster interconnect.
//
// Topology mirrors the paper's testbed: every compute node and every
// server owns a network port.  A node's egress is a FIFO Pipe (requests
// from ranks on one host serialize onto one NIC); each server's ingress
// and egress are FairLinks (concurrent flows from many hosts converge to
// fair shares, the TCP steady state).  An RPC is: request payload over
// client egress -> server ingress, server-side service, response payload
// over server egress.  Response delivery to the client NIC is not modeled
// as a bottleneck (7 clients never saturate their own ingress in any of
// the paper's scenarios), which keeps event counts proportional to RPCs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "qif/sim/fair_link.hpp"
#include "qif/sim/pipe.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/pfs/types.hpp"

namespace qif::pfs {

struct NetworkParams {
  double bytes_per_second = 1e9;                       ///< per-port capacity
  sim::SimDuration latency = 60 * sim::kMicrosecond;   ///< per-message propagation
  std::int64_t rpc_header_bytes = 256;                 ///< framing per RPC message
};

class NetworkFabric {
 public:
  /// `n_server_ports`: one per OSS plus one for the MDS.
  NetworkFabric(sim::Simulation& sim, const NetworkParams& params, int n_client_nodes,
                int n_server_ports);

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// Runs a full RPC.  `serve(done)` is invoked on the server once the
  /// request arrives; the server calls `done()` when its work completes,
  /// which triggers the response transfer; `on_complete` fires at the
  /// client when the response lands.
  void rpc(NodeId client, int server_port, std::int64_t request_payload,
           std::int64_t response_payload,
           std::function<void(std::function<void()>)> serve,
           std::function<void()> on_complete);

  [[nodiscard]] int n_client_nodes() const { return static_cast<int>(client_egress_.size()); }
  [[nodiscard]] int n_server_ports() const { return static_cast<int>(server_ingress_.size()); }
  [[nodiscard]] std::size_t server_ingress_flows(int port) const {
    return server_ingress_[port]->active();
  }
  [[nodiscard]] std::size_t server_egress_flows(int port) const {
    return server_egress_[port]->active();
  }

  /// Fault injection: installs `gate` as the message-loss gate on every
  /// client egress pipe and every server ingress/egress link.  Each resource
  /// consults the gate independently per message.
  void set_loss_gate(const std::function<bool()>& gate);

  /// Total messages dropped by loss gates across all fabric resources.
  [[nodiscard]] std::uint64_t messages_dropped() const;

 private:
  sim::Simulation& sim_;
  NetworkParams params_;
  std::vector<std::unique_ptr<sim::Pipe>> client_egress_;
  std::vector<std::unique_ptr<sim::FairLink>> server_ingress_;
  std::vector<std::unique_ptr<sim::FairLink>> server_egress_;
};

}  // namespace qif::pfs
