// Cluster interconnect.
//
// Topology mirrors the paper's testbed: every compute node and every
// server owns a network port.  A node's egress is a FIFO Pipe (requests
// from ranks on one host serialize onto one NIC); each server's ingress
// and egress are FairLinks (concurrent flows from many hosts converge to
// fair shares, the TCP steady state).  An RPC is: request payload over
// client egress -> server ingress, server-side service, response payload
// over server egress.  Response delivery to the client NIC is not modeled
// as a bottleneck (7 clients never saturate their own ingress in any of
// the paper's scenarios), which keeps event counts proportional to RPCs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qif/sim/fair_link.hpp"
#include "qif/sim/lanes.hpp"
#include "qif/sim/pipe.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/pfs/types.hpp"

namespace qif::pfs {

struct NetworkParams {
  double bytes_per_second = 1e9;                       ///< per-port capacity
  sim::SimDuration latency = 60 * sim::kMicrosecond;   ///< per-message propagation
  std::int64_t rpc_header_bytes = 256;                 ///< framing per RPC message
};

class NetworkFabric {
 public:
  /// `n_server_ports`: one per OSS plus one for the MDS.
  NetworkFabric(sim::Simulation& sim, const NetworkParams& params, int n_client_nodes,
                int n_server_ports);

  /// Lane mode: every port's resources live on the engine of its owning
  /// lane (`node_lane[i]` for client node i's egress pipe, `port_lane[p]`
  /// for server port p's ingress/egress links), and the two propagation
  /// hops that may cross lanes — request delivery at the end of client-side
  /// serialization, response delivery after server egress — become
  /// timestamped cross-lane messages keyed exactly like the local events
  /// the sequential fabric schedules.
  NetworkFabric(sim::LaneGroup& lanes, const NetworkParams& params,
                std::vector<int> node_lane, std::vector<int> port_lane);

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// Runs a full RPC.  `serve(done)` is invoked on the server once the
  /// request arrives; the server calls `done()` when its work completes,
  /// which triggers the response transfer; `on_complete` fires at the
  /// client when the response lands.
  void rpc(NodeId client, int server_port, std::int64_t request_payload,
           std::int64_t response_payload,
           std::function<void(std::function<void()>)> serve,
           std::function<void()> on_complete);

  [[nodiscard]] int n_client_nodes() const { return static_cast<int>(client_egress_.size()); }
  [[nodiscard]] int n_server_ports() const { return static_cast<int>(server_ingress_.size()); }

  /// Entity-context ids for the lane engines' partition-independent key
  /// minting (simulation.hpp): client node n -> n, server port p ->
  /// n_client_nodes + p.  One convention shared by the fabric's delivery
  /// re-tagging and the cluster's setup-time contexts.
  [[nodiscard]] std::uint32_t node_ctx(NodeId node) const {
    return static_cast<std::uint32_t>(node);
  }
  [[nodiscard]] std::uint32_t port_ctx(int port) const {
    return static_cast<std::uint32_t>(n_client_nodes() + port);
  }
  [[nodiscard]] std::size_t server_ingress_flows(int port) const {
    return server_ingress_[port]->active();
  }
  [[nodiscard]] std::size_t server_egress_flows(int port) const {
    return server_egress_[port]->active();
  }

  /// Fault injection: installs `gate` as the message-loss gate on every
  /// client egress pipe and every server ingress/egress link.  Each resource
  /// consults the gate independently per message.
  void set_loss_gate(const std::function<bool()>& gate);

  /// Fault injection, per-resource form: `make_gate(resource, sim)` is
  /// called once per fabric resource with a stable resource name and the
  /// engine that owns the resource, and must return that resource's gate.
  /// This is the lane-safe shape — each gate draws from its own stream, so
  /// the drop sequence a resource sees depends only on its own traffic and
  /// is identical however the cluster is partitioned.
  void install_loss_gates(
      const std::function<std::function<bool()>(const std::string& resource,
                                                sim::Simulation& sim)>& make_gate);

  /// Total messages dropped by loss gates across all fabric resources.
  [[nodiscard]] std::uint64_t messages_dropped() const;

 private:
  [[nodiscard]] sim::Simulation& node_sim(NodeId node);
  [[nodiscard]] sim::Simulation& port_sim(int port);
  /// Posts `fn` to `dst_lane` as the event the executing lane's
  /// schedule_after(latency, fn) would have been: when = now + latency,
  /// birth = now, origin freshly consumed from the source engine.  The
  /// delivered event executes under entity context `ctx`.
  void post_cross(int src_lane, int dst_lane, std::uint32_t ctx,
                  sim::SimDuration latency, sim::InlineTask fn);

  sim::Simulation* sim_ = nullptr;  // classic mode: the single engine
  sim::LaneGroup* lanes_ = nullptr;
  NetworkParams params_;
  std::vector<int> node_lane_;  // lane mode only
  std::vector<int> port_lane_;
  std::vector<std::unique_ptr<sim::Pipe>> client_egress_;
  std::vector<std::unique_ptr<sim::FairLink>> server_ingress_;
  std::vector<std::unique_ptr<sim::FairLink>> server_egress_;
};

}  // namespace qif::pfs
