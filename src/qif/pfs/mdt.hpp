// Metadata server (MDS) with its metadata target (MDT).
//
// Models the namespace authority of the file system: a bounded pool of
// service threads, per-op CPU costs, a cache-miss path that reads 4 KiB
// inode blocks from the MDT disk, and — crucially for metadata-vs-metadata
// interference — a group-commit journal.  Namespace-modifying operations
// (create/unlink/mkdir) only complete when their journal transaction
// batch has been written to the MDT disk, so a create storm (mdtest-easy)
// inflates the commit latency every other metadata workload observes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qif/pfs/disk.hpp"
#include "qif/pfs/layout.hpp"
#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {

struct MdtParams {
  int service_threads = 16;
  sim::SimDuration cpu_create = 250 * sim::kMicrosecond;
  sim::SimDuration cpu_open = 120 * sim::kMicrosecond;
  sim::SimDuration cpu_stat = 80 * sim::kMicrosecond;
  sim::SimDuration cpu_close = 40 * sim::kMicrosecond;
  sim::SimDuration cpu_unlink = 220 * sim::kMicrosecond;
  sim::SimDuration cpu_mkdir = 250 * sim::kMicrosecond;
  double cpu_jitter = 0.15;             ///< +/- fraction of CPU cost
  /// P(stat/open reads an inode block from the MDT disk).  Low because the
  /// benchmarks touch recently-created, hot dentries; even 1% of a stat
  /// storm is a meaningful random-read load on a SATA MDT.
  double attr_cache_miss = 0.01;
  std::int64_t inode_block_bytes = 4096;
  sim::SimDuration commit_interval = 2500 * sim::kMicrosecond;  ///< group commit cadence
  int commit_batch_limit = 256;         ///< txns that force an early commit
  std::int64_t journal_txn_bytes = 4096;
  /// Directory entries beyond which shared-directory ops pay a lock
  /// contention penalty per queued sibling op (mdtest-hard's shared dir).
  sim::SimDuration dirlock_penalty = 15 * sim::kMicrosecond;
};

/// Result of a metadata operation.
struct MetaResult {
  bool ok = false;
  FileId file = kInvalidFile;
  std::int64_t size = 0;
  const FileLayout* layout = nullptr;  ///< valid until unlink; owned by the MDT
};

/// Cumulative MDS counters for the server-side monitor.
struct MdtCounters {
  std::int64_t ops_completed = 0;
  std::int64_t modifying_ops = 0;
  std::int64_t commits = 0;
  std::int64_t queued_requests = 0;
  sim::SimDuration queue_wait_total = 0;
};

class MdtServer {
 public:
  using Callback = std::function<void(const MetaResult&)>;

  MdtServer(sim::Simulation& sim, MdtParams params, DiskParams disk_params,
            std::uint64_t seed, std::int64_t n_osts, std::int64_t default_stripe_size);

  MdtServer(const MdtServer&) = delete;
  MdtServer& operator=(const MdtServer&) = delete;

  // -- Namespace operations (asynchronous; callbacks run at completion) ----
  /// Creates `path` striped over `stripe_count` OSTs (0 = all).
  /// `stripe_hint` >= 0 pins the starting OST (the `lfs setstripe -i`
  /// convention IOR deployments use to balance file-per-process runs);
  /// -1 hashes the path, which is balanced in expectation and — unlike a
  /// shared round-robin cursor — independent of concurrent jobs' creates.
  void create(const std::string& path, int stripe_count, int stripe_hint, Callback cb);
  void open(const std::string& path, Callback cb);
  void stat(const std::string& path, Callback cb);
  void close(FileId file, Callback cb);
  void unlink(const std::string& path, Callback cb);
  void mkdir(const std::string& path, Callback cb);

  /// Records a size update (piggybacked on client writes; no MDS queueing).
  void note_size(FileId file, std::int64_t new_size);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] MdtCounters counters() const { return counters_; }
  [[nodiscard]] DiskModel& disk() { return disk_; }
  [[nodiscard]] const DiskModel& disk() const { return disk_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t files() const { return inodes_.size(); }

 private:
  enum class Kind { kCreate, kOpen, kStat, kClose, kUnlink, kMkdir };

  struct Inode {
    FileId id;
    std::int64_t size = 0;
    FileLayout layout;
  };
  struct Task {
    Kind kind;
    std::string path;
    FileId file = kInvalidFile;
    int stripe_count = 0;
    int stripe_hint = -1;
    sim::SimTime arrival = 0;
    Callback cb;
  };

  void enqueue(Task t);
  void dispatch();
  void run_task(Task t);
  void finish_task(const Task& t, MetaResult result, bool modifying);
  void await_commit(std::function<void()> on_committed);
  void do_commit();
  sim::SimDuration cpu_cost(Kind k);
  std::string parent_dir(const std::string& path) const;

  sim::Simulation& sim_;
  MdtParams params_;
  DiskModel disk_;
  sim::Rng rng_;
  std::int64_t n_osts_;
  std::int64_t default_stripe_size_;

  std::map<std::string, Inode> inodes_;
  std::map<FileId, Inode*> by_id_;  ///< node pointers are stable in std::map
  std::map<std::string, std::int64_t> dirs_;  ///< dir path -> entry count
  FileId next_file_ = 1;
  std::vector<std::int64_t> ost_objects_;  ///< allocated objects per OST

  std::deque<Task> queue_;
  int busy_threads_ = 0;

  std::vector<std::function<void()>> commit_waiters_;
  /// Recycled commit-batch buffers: a journal flush hands its waiters to a
  /// pooled buffer (several commits can be in flight on a slow MDT disk)
  /// and returns the buffer after firing, so steady-state commits stop
  /// allocating a fresh vector per batch.
  std::vector<std::vector<std::function<void()>>> commit_batch_pool_;
  std::vector<std::uint32_t> commit_batch_free_;
  bool commit_scheduled_ = false;
  std::int64_t journal_cursor_ = 0;

  MdtCounters counters_;
};

}  // namespace qif::pfs
