#include "qif/pfs/types.hpp"

namespace qif::pfs {

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kOpen: return "open";
    case OpType::kCreate: return "create";
    case OpType::kStat: return "stat";
    case OpType::kClose: return "close";
    case OpType::kUnlink: return "unlink";
    case OpType::kMkdir: return "mkdir";
  }
  return "?";
}

}  // namespace qif::pfs
