#include "qif/pfs/layout.hpp"

#include <algorithm>

namespace qif::pfs {
namespace {

// splitmix64 finalizer used purely for object placement; independent of the
// Rng streams so layouts are a function of (file id, slot) alone.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FileLayout::FileLayout(FileId file, std::vector<OstId> osts, std::int64_t stripe_size,
                       std::int64_t disk_capacity)
    : osts_(std::move(osts)), stripe_size_(stripe_size) {
  bases_.reserve(osts_.size());
  // Leave generous headroom so objects can grow without wrapping; alignment
  // to 1 MiB keeps placement visually sane in traces.
  const std::int64_t usable = std::max<std::int64_t>(disk_capacity / 2, 1 << 20);
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    const auto h = mix(static_cast<std::uint64_t>(file) * 131 + i);
    const std::int64_t base =
        static_cast<std::int64_t>(h % static_cast<std::uint64_t>(usable)) & ~((1ll << 20) - 1);
    bases_.push_back(base);
  }
}

std::vector<Extent> FileLayout::map(std::int64_t offset, std::int64_t len) const {
  std::vector<Extent> out;
  const auto n = static_cast<std::int64_t>(osts_.size());
  std::int64_t pos = offset;
  std::int64_t remaining = len;
  while (remaining > 0) {
    const std::int64_t stripe_index = pos / stripe_size_;
    const std::int64_t slot = stripe_index % n;          // which OST
    const std::int64_t row = stripe_index / n;           // object-local stripe row
    const std::int64_t in_stripe = pos % stripe_size_;
    const std::int64_t take = std::min(remaining, stripe_size_ - in_stripe);
    const std::int64_t obj_off = row * stripe_size_ + in_stripe;
    const std::int64_t disk_off = bases_[static_cast<std::size_t>(slot)] + obj_off;
    if (!out.empty() && out.back().ost == osts_[static_cast<std::size_t>(slot)] &&
        out.back().disk_offset + out.back().len == disk_off) {
      out.back().len += take;  // coalesce contiguous pieces
    } else {
      out.push_back(Extent{osts_[static_cast<std::size_t>(slot)], disk_off, take});
    }
    pos += take;
    remaining -= take;
  }
  return out;
}

}  // namespace qif::pfs
