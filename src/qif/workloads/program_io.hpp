// .qwp — the serializable workload-program IR.
//
// A workload is data, not code: any WorkloadProgram (built-in generator
// output, a replayed trace, or a hand-written file) round-trips through
// this versioned, checksummed text format and runs via the `qwp:FILE`
// registry name.
//
// Grammar (one directive or op per line; blank lines and `#` comments are
// allowed anywhere after the header and are covered by the checksum):
//
//   # qwp qif 1                     required first line (format version)
//   workload NAME                   optional annotation
//   ranks N                         number of rank sections that follow
//   rank K                         sections in order, K = 0..N-1
//   slots M                          rank K's max handle slot
//   prologue                         run-once setup ops until `body`
//   <op lines>
//   body                             looping body ops until next `rank`
//   <op lines>                       or `checksum`
//   ...
//   checksum HHHHHHHHHHHHHHHH       16 lowercase hex digits: FNV-1a over
//                                   every preceding byte of the file; `-`
//                                   skips verification (hand-edited files)
//
// Op lines (paths are whitespace-free; sizes in bytes, think in ns):
//
//   create PATH SLOT STRIPES HINT   stripes 0 = all OSTs, hint -1 = hashed
//   open PATH SLOT
//   read SLOT OFFSET LEN
//   write SLOT OFFSET LEN
//   stat PATH
//   close SLOT
//   unlink PATH
//   mkdir PATH
//   think NS
//
// The reader is strict in the fault-spec-grammar sense: every structural
// or cell-level defect throws std::runtime_error naming the exact line
// (and field column where applicable), and the mandatory checksum makes
// any single corrupted byte of a written file a detected error rather
// than a silently different workload.
#pragma once

#include <iosfwd>
#include <string>

#include "qif/workloads/program.hpp"

namespace qif::workloads {

/// The .qwp version write_qwp emits (and the only one read_qwp accepts).
inline constexpr int kQwpVersion = 1;

/// Serializes `program` in the format above.  Throws std::invalid_argument
/// for unserializable programs (whitespace in a path, slot above the
/// rank's max_slot, negative sizes/durations).
void write_qwp(std::ostream& os, const WorkloadProgram& program);

/// Parses a .qwp program.  Throws std::runtime_error with line/column
/// diagnostics on any malformed input, including a checksum mismatch.
[[nodiscard]] WorkloadProgram read_qwp(std::istream& is);

/// Opens and parses `path`; errors name the file.
[[nodiscard]] WorkloadProgram read_qwp_file(const std::string& path);

}  // namespace qif::workloads
