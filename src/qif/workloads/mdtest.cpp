#include "qif/workloads/mdtest.hpp"

namespace qif::workloads {

RankProgram build_mdtest_program(const MdtestConfig& config, pfs::Rank rank,
                                 std::int32_t job) {
  RankProgram prog;
  const std::int64_t body_bytes =
      config.file_bytes >= 0 ? config.file_bytes : (config.hard ? 3901 : 0);
  // easy: private per-rank directory; hard: one shared directory.
  const std::string dir =
      config.hard ? config.dir + "-hard/job" + std::to_string(job)
                  : config.dir + "-easy/job" + std::to_string(job) + "/rank" +
                        std::to_string(rank);

  OpSpec mkdir;
  mkdir.kind = OpSpec::Kind::kMkdir;
  mkdir.path = dir;
  prog.prologue.push_back(mkdir);

  auto file_path = [&](int i) {
    // Shared-dir files carry the rank in the name (mdtest semantics).
    return dir + "/f" + std::to_string(rank) + "_" + std::to_string(i);
  };

  if (config.phase == MdtestConfig::Phase::kWrite) {
    for (int i = 0; i < config.n_files; ++i) {
      OpSpec create;
      create.kind = OpSpec::Kind::kCreate;
      create.path = file_path(i);
      create.slot = 0;
      create.stripes = 1;
      prog.body.push_back(create);
      if (body_bytes > 0) {
        OpSpec write;
        write.kind = OpSpec::Kind::kWrite;
        write.slot = 0;
        write.offset = 0;
        write.len = body_bytes;
        prog.body.push_back(write);
      }
      OpSpec close;
      close.kind = OpSpec::Kind::kClose;
      close.slot = 0;
      prog.body.push_back(close);
    }
  } else {
    // Read phase needs the files to exist *with their bodies written* (the
    // paper's mdtest-hard-read reads back data an earlier write phase
    // created): create+write+close each once in the prologue, then
    // stat+open+read+close in the body.
    for (int i = 0; i < config.n_files; ++i) {
      OpSpec create;
      create.kind = OpSpec::Kind::kCreate;
      create.path = file_path(i);
      create.slot = 0;
      create.stripes = 1;
      prog.prologue.push_back(create);
      if (body_bytes > 0) {
        OpSpec write;
        write.kind = OpSpec::Kind::kWrite;
        write.slot = 0;
        write.offset = 0;
        write.len = body_bytes;
        prog.prologue.push_back(write);
      }
      OpSpec close;
      close.kind = OpSpec::Kind::kClose;
      close.slot = 0;
      prog.prologue.push_back(close);
    }
    for (int i = 0; i < config.n_files; ++i) {
      OpSpec stat;
      stat.kind = OpSpec::Kind::kStat;
      stat.path = file_path(i);
      prog.body.push_back(stat);
      OpSpec open;
      open.kind = OpSpec::Kind::kOpen;
      open.path = file_path(i);
      open.slot = 0;
      prog.body.push_back(open);
      if (body_bytes > 0) {
        OpSpec read;
        read.kind = OpSpec::Kind::kRead;
        read.slot = 0;
        read.offset = 0;
        read.len = body_bytes;
        prog.body.push_back(read);
      }
      OpSpec close;
      close.kind = OpSpec::Kind::kClose;
      close.slot = 0;
      prog.body.push_back(close);
    }
  }
  prog.max_slot = 0;
  return prog;
}

}  // namespace qif::workloads
