// Trace replay: turn a DXT op dump back into a runnable workload.
//
// A `trace:FILE` workload reconstructs each trace rank's program from the
// per-op log — original offsets and lengths, original namespace paths and
// layout requests (the DXT v2 columns), and the inter-op gaps as explicit
// think ops.  Replaying a dump against a fresh cluster with `@original`
// timing reproduces the dumped op stream bit-identically (the closed-loop
// golden in test_replay / cli_replay.cmake).
//
// Timing policies, selected with a `@` suffix on the file argument (also
// settable via `qif run --replay-timing`):
//   FILE@original   think gaps exactly as traced (default)
//   FILE@asap       no think ops: ops issue back-to-back
//   FILE@scale=X    gaps multiplied by X (X > 0)
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "qif/trace/op_record.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::workloads {

enum class ReplayTiming : std::uint8_t { kOriginal, kAsap, kScale };

struct ReplayOptions {
  ReplayTiming timing = ReplayTiming::kOriginal;
  double gap_scale = 1.0;  ///< kScale: multiplier on every inter-op gap
  std::int32_t job = 0;    ///< which job's records to replay
};

/// Splits "FILE[@original|@asap|@scale=X]" into the file path and the
/// timing options.  Throws std::runtime_error for an unknown policy.
[[nodiscard]] std::pair<std::string, ReplayOptions> parse_replay_arg(const std::string& arg);

/// Reconstructs one program per trace rank from `log` (records of
/// options.job, sorted by (rank, op_index)).  Throws std::runtime_error
/// when the job is absent, op indices are non-contiguous, or a metadata op
/// lacks path metadata (a DXT version 1 dump).
[[nodiscard]] WorkloadProgram build_replay_programs(const trace::TraceLog& log,
                                                    const ReplayOptions& options);

/// The registry's "trace:" builder: parses `arg`, loads the file through a
/// (path, size, mtime, options)-keyed cache, and returns the program of
/// trace rank ctx.rank.  Requires ctx.rank < trace rank count.
[[nodiscard]] RankProgram build_replay_rank(const std::string& arg,
                                            const WorkloadContext& ctx);

}  // namespace qif::workloads
