#include "qif/workloads/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qif/workloads/dlio.hpp"
#include "qif/workloads/ior.hpp"
#include "qif/workloads/mdtest.hpp"
#include "qif/workloads/proxies.hpp"

namespace qif::workloads {
namespace {

int scaled(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

std::vector<std::pair<std::int64_t, std::int64_t>> io500_suite_phase_ranges(
    int n_ranks, std::uint64_t seed, double scale) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::int64_t cursor = 0;
  for (const auto& task : io500_tasks()) {
    // Every non-think op emits exactly one trace record, and the IO500
    // generators contain no think ops, so the per-rank record count is the
    // program length.  Counts are rank-independent for these tasks.
    const RankProgram p = build_named_program(task, 0, n_ranks, 0, seed, scale);
    const auto len =
        static_cast<std::int64_t>(p.prologue.size() + p.body.size());
    ranges.emplace_back(cursor, cursor + len);
    cursor += len;
  }
  return ranges;
}

const std::vector<std::string>& io500_tasks() {
  static const std::vector<std::string> kTasks = {
      "ior-easy-read",  "ior-hard-read",  "mdt-hard-read", "ior-easy-write",
      "ior-hard-write", "mdt-easy-write", "mdt-hard-write",
  };
  return kTasks;
}

const std::vector<std::string>& known_workloads() {
  static const std::vector<std::string> kAll = [] {
    std::vector<std::string> v = io500_tasks();
    v.insert(v.end(),
             {"io500-suite", "dlio-unet3d", "dlio-bert", "enzo", "amrex", "openpmd"});
    return v;
  }();
  return kAll;
}

bool is_known_workload(const std::string& name) {
  const auto& all = known_workloads();
  return std::find(all.begin(), all.end(), name) != all.end();
}

RankProgram build_named_program(const std::string& name, pfs::Rank rank, int n_ranks,
                                std::int32_t job, std::uint64_t seed, double scale) {
  if (name == "io500-suite") {
    // The paper's SII scenario: one application running the 7 IO500 tasks
    // chronologically.  Each phase's setup and body are inlined in order
    // (creates are idempotent, so the suite also loops correctly when used
    // as an interference workload).
    RankProgram suite;
    for (const auto& task : io500_tasks()) {
      RankProgram p = build_named_program(task, rank, n_ranks, job, seed, scale);
      suite.body.insert(suite.body.end(), p.prologue.begin(), p.prologue.end());
      suite.body.insert(suite.body.end(), p.body.begin(), p.body.end());
      suite.max_slot = std::max(suite.max_slot, p.max_slot);
    }
    return suite;
  }
  if (name == "ior-easy-read" || name == "ior-easy-write" || name == "ior-hard-read" ||
      name == "ior-hard-write") {
    IorConfig cfg;
    cfg.hard = name.find("hard") != std::string::npos;
    cfg.write = name.find("write") != std::string::npos;
    cfg.n_transfers = scaled(cfg.hard ? 1200 : 192, scale);
    return build_ior_program(cfg, rank, n_ranks, job);
  }
  if (name == "mdt-easy-write" || name == "mdt-hard-write" || name == "mdt-hard-read") {
    MdtestConfig cfg;
    cfg.hard = name.find("hard") != std::string::npos;
    cfg.phase = name.find("read") != std::string::npos ? MdtestConfig::Phase::kRead
                                                       : MdtestConfig::Phase::kWrite;
    cfg.n_files = scaled(200, scale);
    return build_mdtest_program(cfg, rank, job);
  }
  if (name == "dlio-unet3d" || name == "dlio-bert") {
    DlioConfig cfg;
    cfg.model = name == "dlio-unet3d" ? DlioConfig::Model::kUnet3d
                                      : DlioConfig::Model::kBert;
    cfg.steps = scaled(48, scale);
    cfg.checkpoint_every = 24;
    return build_dlio_program(cfg, rank, job, seed);
  }
  if (name == "enzo") {
    EnzoConfig cfg;
    cfg.timesteps = scaled(6, scale);
    return build_enzo_program(cfg, rank, job, seed);
  }
  if (name == "amrex") {
    AmrexConfig cfg;
    cfg.plotfiles = scaled(4, scale);
    return build_amrex_program(cfg, rank, job, seed);
  }
  if (name == "openpmd") {
    OpenPmdConfig cfg;
    cfg.iterations = scaled(10, scale);
    return build_openpmd_program(cfg, rank, job, seed);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace qif::workloads
