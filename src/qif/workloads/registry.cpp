#include "qif/workloads/registry.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "qif/workloads/checkpoint.hpp"
#include "qif/workloads/dlio.hpp"
#include "qif/workloads/ior.hpp"
#include "qif/workloads/mdtest.hpp"
#include "qif/workloads/program_io.hpp"
#include "qif/workloads/proxies.hpp"
#include "qif/workloads/replay.hpp"

namespace qif::workloads {
namespace {

int scaled(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

/// The registry's "qwp:" builder: a serialized program file is itself a
/// workload.  Cached by file identity like trace replay.
RankProgram build_qwp_rank(const std::string& arg, const WorkloadContext& ctx) {
  if (arg.empty()) throw std::runtime_error("qwp workload needs a file: qwp:FILE");

  using Key = std::tuple<std::string, std::uintmax_t, std::int64_t>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const WorkloadProgram>> cache;

  std::uintmax_t size = 0;
  std::int64_t mtime = 0;
  std::error_code ec;
  size = std::filesystem::file_size(arg, ec);
  if (!ec) mtime = std::filesystem::last_write_time(arg, ec).time_since_epoch().count();
  const Key key{arg, size, mtime};

  std::shared_ptr<const WorkloadProgram> prog;
  {
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) prog = it->second;
  }
  if (!prog) {
    prog = std::make_shared<const WorkloadProgram>(read_qwp_file(arg));
    const std::lock_guard<std::mutex> lock(mu);
    cache[key] = prog;
  }

  if (ctx.rank < 0 || static_cast<std::size_t>(ctx.rank) >= prog->ranks.size()) {
    throw std::runtime_error(
        "qwp program '" + arg + "' has " + std::to_string(prog->ranks.size()) +
        " rank(s) but rank " + std::to_string(ctx.rank) +
        " was requested — run it with at most the serialized rank count");
  }
  return prog->ranks[static_cast<std::size_t>(ctx.rank)];
}

struct PrefixEntry {
  std::string prefix;
  std::string arg_help;
  WorkloadBuilder builder;
};

struct Registry {
  std::mutex mu;
  /// Exact names in registration order — canonical catalogue first.
  std::vector<std::pair<std::string, WorkloadBuilder>> exact;
  std::vector<PrefixEntry> prefixes;

  Registry() { register_builtins(); }

  // Lock-free inserts for use under `mu` (and from the constructor, where
  // no other thread can see the object yet).  Re-registration replaces.
  void add(std::string name, WorkloadBuilder builder) {
    for (auto& [n, b] : exact) {
      if (n == name) {
        b = std::move(builder);
        return;
      }
    }
    exact.emplace_back(std::move(name), std::move(builder));
  }
  void add_prefix(std::string prefix, std::string arg_help, WorkloadBuilder builder) {
    for (auto& e : prefixes) {
      if (e.prefix == prefix) {
        e.arg_help = std::move(arg_help);
        e.builder = std::move(builder);
        return;
      }
    }
    prefixes.push_back({std::move(prefix), std::move(arg_help), std::move(builder)});
  }

  void register_builtins() {
    // The IO500 seven, registered in Table I row order (io500_tasks) so the
    // catalogue lists them the way the paper's matrix does.
    const auto ior_builder = [](std::string name) {
      return [name = std::move(name)](const std::string&, const WorkloadContext& c) {
        // IO500 transfer counts, scaled.
        IorConfig cfg;
        cfg.hard = name.find("hard") != std::string::npos;
        cfg.write = name.find("write") != std::string::npos;
        cfg.n_transfers = scaled(cfg.hard ? 1200 : 192, c.scale);
        return build_ior_program(cfg, c.rank, c.n_ranks, c.job);
      };
    };
    const auto mdt_builder = [](std::string name) {
      return [name = std::move(name)](const std::string&, const WorkloadContext& c) {
        MdtestConfig cfg;
        cfg.hard = name.find("hard") != std::string::npos;
        cfg.phase = name.find("read") != std::string::npos ? MdtestConfig::Phase::kRead
                                                           : MdtestConfig::Phase::kWrite;
        cfg.n_files = scaled(200, c.scale);
        return build_mdtest_program(cfg, c.rank, c.job);
      };
    };
    for (const auto& task : io500_tasks()) {
      add(task, task.rfind("ior", 0) == 0 ? WorkloadBuilder(ior_builder(task))
                                          : WorkloadBuilder(mdt_builder(task)));
    }
    add("io500-suite", [](const std::string&, const WorkloadContext& c) {
      // The paper's SII scenario: one application running the 7 IO500 tasks
      // chronologically.  Each phase's setup and body are inlined in order
      // (creates are idempotent, so the suite also loops correctly when
      // used as an interference workload).
      RankProgram suite;
      for (const auto& task : io500_tasks()) {
        RankProgram p = build_named_program(task, c.rank, c.n_ranks, c.job, c.seed, c.scale);
        suite.body.insert(suite.body.end(), p.prologue.begin(), p.prologue.end());
        suite.body.insert(suite.body.end(), p.body.begin(), p.body.end());
        suite.max_slot = std::max(suite.max_slot, p.max_slot);
      }
      return suite;
    });
    for (const char* name : {"dlio-unet3d", "dlio-bert"}) {
      add(name, [name = std::string(name)](const std::string&, const WorkloadContext& c) {
        DlioConfig cfg;
        cfg.model = name == "dlio-unet3d" ? DlioConfig::Model::kUnet3d
                                          : DlioConfig::Model::kBert;
        cfg.steps = scaled(48, c.scale);
        cfg.checkpoint_every = 24;
        return build_dlio_program(cfg, c.rank, c.job, c.seed);
      });
    }
    add("enzo", [](const std::string&, const WorkloadContext& c) {
      EnzoConfig cfg;
      cfg.timesteps = scaled(6, c.scale);
      return build_enzo_program(cfg, c.rank, c.job, c.seed);
    });
    add("amrex", [](const std::string&, const WorkloadContext& c) {
      AmrexConfig cfg;
      cfg.plotfiles = scaled(4, c.scale);
      return build_amrex_program(cfg, c.rank, c.job, c.seed);
    });
    add("openpmd", [](const std::string&, const WorkloadContext& c) {
      OpenPmdConfig cfg;
      cfg.iterations = scaled(10, c.scale);
      return build_openpmd_program(cfg, c.rank, c.job, c.seed);
    });

    add_prefix("trace", "FILE[@original|@asap|@scale=X]", build_replay_rank);
    add_prefix("ckpt", "SIZE,BW,MTTI", build_checkpoint_rank);
    add_prefix("qwp", "FILE", build_qwp_rank);
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_workload(const std::string& name, WorkloadBuilder builder) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.add(name, std::move(builder));
}

void register_workload_prefix(const std::string& prefix, const std::string& arg_help,
                              WorkloadBuilder builder) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.add_prefix(prefix, arg_help, std::move(builder));
}

std::vector<std::string> known_workloads() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.exact.size());
  for (const auto& [name, builder] : r.exact) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, std::string>> known_workload_prefixes() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(r.prefixes.size());
  for (const auto& e : r.prefixes) out.emplace_back(e.prefix, e.arg_help);
  return out;
}

std::vector<std::pair<std::int64_t, std::int64_t>> io500_suite_phase_ranges(
    int n_ranks, std::uint64_t seed, double scale) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::int64_t cursor = 0;
  for (const auto& task : io500_tasks()) {
    // Every non-think op emits exactly one trace record, and the IO500
    // generators contain no think ops, so the per-rank record count is the
    // program length.  Counts are rank-independent for these tasks.
    const RankProgram p = build_named_program(task, 0, n_ranks, 0, seed, scale);
    const auto len =
        static_cast<std::int64_t>(p.prologue.size() + p.body.size());
    ranges.emplace_back(cursor, cursor + len);
    cursor += len;
  }
  return ranges;
}

const std::vector<std::string>& io500_tasks() {
  static const std::vector<std::string> kTasks = {
      "ior-easy-read",  "ior-hard-read",  "mdt-hard-read", "ior-easy-write",
      "ior-hard-write", "mdt-easy-write", "mdt-hard-write",
  };
  return kTasks;
}

bool is_known_workload(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& [n, builder] : r.exact) {
    if (n == name) return true;
  }
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos) return false;
  const std::string prefix = name.substr(0, colon);
  for (const auto& e : r.prefixes) {
    if (e.prefix == prefix) return true;
  }
  return false;
}

std::string workload_name_error(const std::string& name) {
  std::string msg = "unknown workload: '" + name + "' (canonical: ";
  bool first = true;
  for (const auto& n : known_workloads()) {
    msg += (first ? "" : ", ") + n;
    first = false;
  }
  msg += "; parameterized: ";
  first = true;
  for (const auto& [prefix, help] : known_workload_prefixes()) {
    msg += (first ? "" : ", ") + prefix + ":" + help;
    first = false;
  }
  msg += ")";
  return msg;
}

RankProgram build_named_program(const std::string& name, pfs::Rank rank, int n_ranks,
                                std::int32_t job, std::uint64_t seed, double scale) {
  WorkloadBuilder builder;
  std::string arg;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& [n, b] : r.exact) {
      if (n == name) {
        builder = b;
        break;
      }
    }
    if (!builder) {
      const std::size_t colon = name.find(':');
      if (colon != std::string::npos) {
        const std::string prefix = name.substr(0, colon);
        for (const auto& e : r.prefixes) {
          if (e.prefix == prefix) {
            builder = e.builder;
            arg = name.substr(colon + 1);
            break;
          }
        }
      }
    }
  }
  if (!builder) throw std::invalid_argument(workload_name_error(name));
  const WorkloadContext ctx{rank, n_ranks, job, seed, scale};
  // Builders run outside the registry lock: the io500-suite builder (and
  // any user-registered composite) recurses into build_named_program.
  return builder(arg, ctx);
}

}  // namespace qif::workloads
