#include "qif/workloads/checkpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/sim/time.hpp"

namespace qif::workloads {
namespace {

constexpr const char* kArgShape = "ckpt:SIZE,BW,MTTI (e.g. ckpt:4g,2g,3600)";

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error(what); }

int scaled(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

/// Parses "<number><suffix>" where the suffixes scale by `k/m/g/t` binary
/// powers (unit = bytes) or `s/m/h` (unit = seconds).
double parse_suffixed(const std::string& tok, const char* what, bool time_units) {
  if (tok.empty()) fail(std::string("empty ") + what + " in " + kArgShape);
  char* end = nullptr;
  double value = std::strtod(tok.c_str(), &end);
  std::string suffix(end);
  if (!suffix.empty() && suffix.size() == 1) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(suffix[0])));
    if (time_units) {
      if (c == 's') value *= 1.0;
      else if (c == 'm') value *= 60.0;
      else if (c == 'h') value *= 3600.0;
      else end = nullptr;
    } else {
      if (c == 'k') value *= 1024.0;
      else if (c == 'm') value *= 1024.0 * 1024.0;
      else if (c == 'g') value *= 1024.0 * 1024.0 * 1024.0;
      else if (c == 't') value *= 1024.0 * 1024.0 * 1024.0 * 1024.0;
      else end = nullptr;
    }
    if (end != nullptr) suffix.clear();
  }
  if (end == tok.c_str() || !suffix.empty()) {
    fail(std::string("malformed ") + what + " '" + tok + "' in " + kArgShape);
  }
  if (!(value > 0.0)) {
    fail(std::string(what) + " must be positive: '" + tok + "' in " + kArgShape);
  }
  return value;
}

}  // namespace

double daly_optimal_interval_s(double delta_s, double mtti_s) {
  // Daly 2006, eq. (20): below the crossover the higher-order series;
  // at/above it the optimum saturates at the MTTI itself.
  if (delta_s >= 2.0 * mtti_s) return mtti_s;
  const double x = delta_s / (2.0 * mtti_s);
  return std::sqrt(2.0 * delta_s * mtti_s) * (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         delta_s;
}

CheckpointConfig parse_checkpoint_arg(const std::string& arg) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= arg.size()) {
    const std::size_t comma = arg.find(',', begin);
    if (comma == std::string::npos) {
      parts.push_back(arg.substr(begin));
      break;
    }
    parts.push_back(arg.substr(begin, comma - begin));
    begin = comma + 1;
  }
  if (parts.size() != 3) {
    fail("checkpoint workload needs " + std::string(kArgShape) + ": got '" + arg + "'");
  }
  CheckpointConfig cfg;
  cfg.bytes = static_cast<std::int64_t>(
      std::llround(parse_suffixed(parts[0], "checkpoint size", /*time_units=*/false)));
  cfg.bandwidth_Bps = parse_suffixed(parts[1], "checkpoint bandwidth", /*time_units=*/false);
  cfg.mtti_s = parse_suffixed(parts[2], "checkpoint MTTI", /*time_units=*/true);
  if (cfg.bytes <= 0) fail("checkpoint size rounds to zero bytes: '" + parts[0] + "'");
  return cfg;
}

RankProgram build_checkpoint_program(const CheckpointConfig& config, pfs::Rank rank,
                                     std::int32_t job, double scale) {
  if (config.bytes <= 0 || !(config.bandwidth_Bps > 0.0) || !(config.mtti_s > 0.0) ||
      config.transfer <= 0) {
    fail("checkpoint config needs positive size, bandwidth, MTTI and transfer");
  }
  const double delta_s = static_cast<double>(config.bytes) / config.bandwidth_Bps;
  const sim::SimDuration tau =
      sim::from_seconds(daly_optimal_interval_s(delta_s, config.mtti_s));
  const std::string base =
      config.dir + "/job" + std::to_string(job) + ".rank" + std::to_string(rank);
  const int stripe_hint = static_cast<int>(job) * 131 + static_cast<int>(rank);

  RankProgram p;
  p.max_slot = 0;
  const auto transfers = [&](std::vector<OpSpec>& seq, OpSpec::Kind kind) {
    for (std::int64_t off = 0; off < config.bytes; off += config.transfer) {
      OpSpec io;
      io.kind = kind;
      io.slot = 0;
      io.offset = off;
      io.len = std::min<std::int64_t>(config.transfer, config.bytes - off);
      seq.push_back(std::move(io));
    }
  };
  const auto file_op = [&](std::vector<OpSpec>& seq, OpSpec::Kind kind,
                           const std::string& path) {
    OpSpec op;
    op.kind = kind;
    op.path = path;
    op.slot = 0;
    if (kind == OpSpec::Kind::kCreate) {
      op.stripes = 1;  // N-N defensive dumps stripe each rank file once
      op.stripe_hint = stripe_hint;
    }
    seq.push_back(std::move(op));
  };

  // Prologue: the job writes its initial restart dump, then reads it back —
  // the restart-load phase of a checkpoint/restart cycle.
  const std::string restart = base + ".restart";
  file_op(p.prologue, OpSpec::Kind::kCreate, restart);
  transfers(p.prologue, OpSpec::Kind::kWrite);
  file_op(p.prologue, OpSpec::Kind::kClose, "");
  file_op(p.prologue, OpSpec::Kind::kOpen, restart);
  transfers(p.prologue, OpSpec::Kind::kRead);
  file_op(p.prologue, OpSpec::Kind::kClose, "");

  // Body: compute for Daly's tau, dump, repeat.
  const int cycles = scaled(config.cycles, scale);
  for (int k = 0; k < cycles; ++k) {
    OpSpec think;
    think.kind = OpSpec::Kind::kThink;
    think.think = tau;
    p.body.push_back(std::move(think));
    file_op(p.body, OpSpec::Kind::kCreate, base + ".c" + std::to_string(k));
    transfers(p.body, OpSpec::Kind::kWrite);
    file_op(p.body, OpSpec::Kind::kClose, "");
  }
  return p;
}

RankProgram build_checkpoint_rank(const std::string& arg, const WorkloadContext& ctx) {
  return build_checkpoint_program(parse_checkpoint_arg(arg), ctx.rank, ctx.job, ctx.scale);
}

}  // namespace qif::workloads
