// I/O proxies for the paper's three real HPC applications.
//
// The model never sees application physics — only window aggregates of op
// counts, sizes and durations — so each proxy reproduces the app's *I/O
// signature* as the paper characterizes it:
//
//  * Enzo (cosmology AMR): "issues read, write, open, close and stats
//    within the first 50 seconds" — per timestep, a burst that mixes
//    small hierarchy/metadata writes, medium grid-data writes, restart
//    reads and stats, separated by compute.  Data-intensive overall.
//  * AMReX (block-structured AMR): periodic plotfile dumps — per step,
//    each rank streams multi-MiB sequential chunks into its own Cell file
//    under a step directory.  Heavily write-intensive.
//  * OpenPMD (metadata standard tooling): series of iterations dominated
//    by namespace traffic — creates, stats and attribute-sized writes —
//    with very little bulk data.  Metadata-intensive, few samples (the
//    paper notes its dataset is small, and its model is visibly weaker).
#pragma once

#include <cstdint>
#include <string>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

struct EnzoConfig {
  int timesteps = 6;              ///< per body iteration
  int grids_per_rank = 4;         ///< grid files dumped per timestep
  std::string dir = "/enzo";
};
RankProgram build_enzo_program(const EnzoConfig& config, pfs::Rank rank, std::int32_t job,
                               std::uint64_t seed);

struct AmrexConfig {
  int plotfiles = 4;              ///< dumps per body iteration
  std::int64_t bytes_per_rank = 48ll << 20;  ///< data per rank per dump
  std::string dir = "/amrex";
};
RankProgram build_amrex_program(const AmrexConfig& config, pfs::Rank rank, std::int32_t job,
                                std::uint64_t seed);

struct OpenPmdConfig {
  int iterations = 10;            ///< series iterations per body iteration
  int meshes_per_iteration = 6;   ///< record components written per iteration
  std::string dir = "/openpmd";
};
RankProgram build_openpmd_program(const OpenPmdConfig& config, pfs::Rank rank,
                                  std::int32_t job, std::uint64_t seed);

}  // namespace qif::workloads
