// MDTest-style metadata benchmarks, in the two IO500 flavours.
//
//  * easy — every rank works in its own directory on empty files: pure
//           namespace traffic, the MDT is the only contended resource.
//  * hard — all ranks share one directory and every file carries a
//           3901-byte body (the IO500 constant), so each op is a metadata
//           transaction *plus* a tiny synchronous OST data access.  That
//           data tail is what exposes mdtest-hard to data-side interference
//           (Table I row 7: 26x-41x under ior writes).
#pragma once

#include <cstdint>
#include <string>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

struct MdtestConfig {
  bool hard = false;
  enum class Phase { kWrite, kRead } phase = Phase::kWrite;
  int n_files = 120;               ///< per rank per body iteration
  std::int64_t file_bytes = -1;    ///< -1 = mode default (0 easy / 3901 hard)
  std::string dir = "/mdt";
};

RankProgram build_mdtest_program(const MdtestConfig& config, pfs::Rank rank,
                                 std::int32_t job);

}  // namespace qif::workloads
