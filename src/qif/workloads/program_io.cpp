#include "qif/workloads/program_io.hpp"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "qif/trace/text_cursor.hpp"

namespace qif::workloads {
namespace {

using trace::fail_cell;
using trace::FieldCursor;

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Sanity caps: a hostile `ranks`/`slots` count must not turn into a giant
// allocation before the (mandatory) checksum gets a chance to reject the
// file.
constexpr int kMaxRanks = 1'000'000;
constexpr int kMaxSlots = 1'000'000;

struct LineHash {
  std::uint64_t value = kFnvBasis;
  void add(std::string_view bytes) {
    for (const char c : bytes) {
      value ^= static_cast<unsigned char>(c);
      value *= kFnvPrime;
    }
  }
};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool has_whitespace(const std::string& s) {
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return true;
  }
  return s.empty();
}

const char* op_keyword(OpSpec::Kind kind) {
  switch (kind) {
    case OpSpec::Kind::kCreate: return "create";
    case OpSpec::Kind::kOpen: return "open";
    case OpSpec::Kind::kRead: return "read";
    case OpSpec::Kind::kWrite: return "write";
    case OpSpec::Kind::kStat: return "stat";
    case OpSpec::Kind::kClose: return "close";
    case OpSpec::Kind::kUnlink: return "unlink";
    case OpSpec::Kind::kMkdir: return "mkdir";
    case OpSpec::Kind::kThink: return "think";
  }
  return "?";
}

[[noreturn]] void unwritable(const std::string& what) {
  throw std::invalid_argument("qwp: cannot serialize " + what);
}

std::string op_line(const OpSpec& op, int max_slot) {
  const auto need_path = [&] {
    if (has_whitespace(op.path)) {
      unwritable(std::string(op_keyword(op.kind)) + " op with empty or whitespace path '" +
                 op.path + "'");
    }
    return op.path;
  };
  const auto need_slot = [&] {
    if (op.slot < 0 || op.slot > max_slot) {
      unwritable(std::string(op_keyword(op.kind)) + " op with slot " +
                 std::to_string(op.slot) + " outside [0, " + std::to_string(max_slot) + "]");
    }
    return std::to_string(op.slot);
  };
  switch (op.kind) {
    case OpSpec::Kind::kCreate:
      if (op.stripes < 0 || op.stripe_hint < -1) {
        unwritable("create op with stripes " + std::to_string(op.stripes) + ", hint " +
                   std::to_string(op.stripe_hint));
      }
      return "create " + need_path() + ' ' + need_slot() + ' ' + std::to_string(op.stripes) +
             ' ' + std::to_string(op.stripe_hint);
    case OpSpec::Kind::kOpen:
      return "open " + need_path() + ' ' + need_slot();
    case OpSpec::Kind::kRead:
    case OpSpec::Kind::kWrite:
      if (op.offset < 0 || op.len < 0) {
        unwritable(std::string(op_keyword(op.kind)) + " op with negative offset/len");
      }
      return std::string(op_keyword(op.kind)) + ' ' + need_slot() + ' ' +
             std::to_string(op.offset) + ' ' + std::to_string(op.len);
    case OpSpec::Kind::kStat:
    case OpSpec::Kind::kUnlink:
    case OpSpec::Kind::kMkdir:
      return std::string(op_keyword(op.kind)) + ' ' + need_path();
    case OpSpec::Kind::kClose:
      return "close " + need_slot();
    case OpSpec::Kind::kThink:
      if (op.think < 0) unwritable("think op with negative duration");
      return "think " + std::to_string(op.think);
  }
  unwritable("op of unknown kind");
}

[[noreturn]] void fail_line(const std::string& what, std::int64_t line_no) {
  throw std::runtime_error("qwp: " + what + " at line " + std::to_string(line_no));
}

OpSpec parse_op(std::string_view keyword, FieldCursor& f, int max_slot) {
  OpSpec op;
  const auto next_path = [&] { return std::string(f.next_required("qwp path")); };
  const auto next_slot = [&] {
    const int s = f.next_int<int>("qwp slot");
    if (s < 0 || s > max_slot) {
      fail_line("slot " + std::to_string(s) + " out of range [0, " +
                    std::to_string(max_slot) + "]",
                f.line_no);
    }
    return s;
  };
  if (keyword == "create") {
    op.kind = OpSpec::Kind::kCreate;
    op.path = next_path();
    op.slot = next_slot();
    op.stripes = f.next_int<int>("qwp stripes");
    op.stripe_hint = f.next_int<int>("qwp stripe_hint");
    if (op.stripes < 0) fail_line("negative stripe count", f.line_no);
    if (op.stripe_hint < -1) fail_line("bad stripe hint (must be >= -1)", f.line_no);
  } else if (keyword == "open") {
    op.kind = OpSpec::Kind::kOpen;
    op.path = next_path();
    op.slot = next_slot();
  } else if (keyword == "read" || keyword == "write") {
    op.kind = keyword == "read" ? OpSpec::Kind::kRead : OpSpec::Kind::kWrite;
    op.slot = next_slot();
    op.offset = f.next_int<std::int64_t>("qwp offset");
    op.len = f.next_int<std::int64_t>("qwp len");
    if (op.offset < 0 || op.len < 0) fail_line("negative offset/len", f.line_no);
  } else if (keyword == "stat" || keyword == "unlink" || keyword == "mkdir") {
    op.kind = keyword == "stat" ? OpSpec::Kind::kStat
              : keyword == "unlink" ? OpSpec::Kind::kUnlink
                                    : OpSpec::Kind::kMkdir;
    op.path = next_path();
  } else if (keyword == "close") {
    op.kind = OpSpec::Kind::kClose;
    op.slot = next_slot();
  } else if (keyword == "think") {
    op.kind = OpSpec::Kind::kThink;
    op.think = f.next_int<sim::SimDuration>("qwp think_ns");
    if (op.think < 0) fail_line("negative think_ns", f.line_no);
  } else {
    throw std::runtime_error("qwp: unknown op '" + std::string(keyword) + "' at line " +
                             std::to_string(f.line_no) + ", column 1");
  }
  f.expect_exhausted("qwp op");
  return op;
}

}  // namespace

void write_qwp(std::ostream& os, const WorkloadProgram& program) {
  if (program.ranks.empty()) unwritable("a program with no ranks");
  if (!program.workload.empty() && has_whitespace(program.workload)) {
    unwritable("workload name with whitespace: '" + program.workload + "'");
  }
  LineHash hash;
  const auto emit = [&](const std::string& text) {
    os << text << '\n';
    hash.add(text);
    hash.add("\n");
  };
  emit("# qwp qif " + std::to_string(kQwpVersion));
  if (!program.workload.empty()) emit("workload " + program.workload);
  emit("ranks " + std::to_string(program.ranks.size()));
  for (std::size_t r = 0; r < program.ranks.size(); ++r) {
    const RankProgram& rank = program.ranks[r];
    if (rank.max_slot < 0 || rank.max_slot > kMaxSlots) {
      unwritable("rank " + std::to_string(r) + " with max_slot " +
                 std::to_string(rank.max_slot));
    }
    emit("rank " + std::to_string(r));
    emit("slots " + std::to_string(rank.max_slot));
    emit("prologue");
    for (const OpSpec& op : rank.prologue) emit(op_line(op, rank.max_slot));
    emit("body");
    for (const OpSpec& op : rank.body) emit(op_line(op, rank.max_slot));
  }
  os << "checksum " << hex16(hash.value) << '\n';
}

WorkloadProgram read_qwp(std::istream& is) {
  std::string line;
  std::int64_t line_no = 0;
  LineHash hash;

  // Line 1: the version header, matched exactly.
  if (!std::getline(is, line)) {
    throw std::runtime_error("qwp: missing '# qwp qif <version>' header at line 1");
  }
  ++line_no;
  constexpr std::string_view kHeader = "# qwp qif ";
  if (std::string_view(line).substr(0, kHeader.size()) != kHeader) {
    throw std::runtime_error("qwp: missing '# qwp qif <version>' header at line 1");
  }
  const int version = trace::parse_int_cell<int>(std::string_view(line).substr(kHeader.size()),
                                                 "qwp version", 1, 4);
  if (version != kQwpVersion) {
    throw std::runtime_error("qwp: unsupported version " + std::to_string(version) +
                             " at line 1 (reader supports " + std::to_string(kQwpVersion) +
                             ")");
  }
  hash.add(line);
  hash.add("\n");

  enum class St { kPreRanks, kAwaitRank, kAwaitSlots, kAwaitPrologue, kPrologue, kBody };
  const auto expectation = [](St st) -> const char* {
    switch (st) {
      case St::kPreRanks: return "'workload NAME' or 'ranks N'";
      case St::kAwaitRank: return "'rank K'";
      case St::kAwaitSlots: return "'slots N'";
      case St::kAwaitPrologue: return "'prologue'";
      case St::kPrologue: return "an op line or 'body'";
      case St::kBody: return "an op line, 'rank K', or 'checksum'";
    }
    return "?";
  };

  WorkloadProgram out;
  St st = St::kPreRanks;
  int declared_ranks = -1;
  int rank_idx = 0;
  bool have_name = false;
  RankProgram cur;
  bool sealed = false;

  while (std::getline(is, line)) {
    ++line_no;
    FieldCursor f{line, line_no};
    const std::string_view tok = f.next();
    if (tok == "checksum") {
      // The checksum line covers every byte before it, never itself.
      if (st == St::kBody) {
        out.ranks.push_back(std::move(cur));
        ++rank_idx;
      } else if (st != St::kAwaitRank || rank_idx != declared_ranks) {
        fail_line(std::string("expected ") + expectation(st) + ", got 'checksum'", line_no);
      }
      if (declared_ranks < 0 || rank_idx != declared_ranks) {
        fail_line("program declares " + std::to_string(declared_ranks < 0 ? 0 : declared_ranks) +
                      " ranks but contains " + std::to_string(rank_idx),
                  line_no);
      }
      const std::string_view sum = f.next_required("qwp checksum");
      f.expect_exhausted("qwp checksum line");
      if (sum != "-") {
        bool hexy = sum.size() == 16;
        for (const char c : sum) {
          hexy = hexy && ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
        }
        if (!hexy) fail_cell("qwp checksum", sum, line_no, 2);
        std::uint64_t recorded = 0;
        std::from_chars(sum.data(), sum.data() + sum.size(), recorded, 16);
        if (recorded != hash.value) {
          throw std::runtime_error("qwp: checksum mismatch: file says " +
                                   std::string(sum) + ", content hashes to " +
                                   hex16(hash.value) +
                                   " (use 'checksum -' after hand-editing)");
        }
      }
      sealed = true;
      break;
    }
    hash.add(line);
    hash.add("\n");
    if (tok.empty() || tok[0] == '#') continue;  // blank/comment (checksummed)

    switch (st) {
      case St::kPreRanks:
        if (tok == "workload") {
          if (have_name) fail_line("duplicate 'workload' directive", line_no);
          out.workload = std::string(f.next_required("qwp workload name"));
          f.expect_exhausted("qwp workload directive");
          have_name = true;
        } else if (tok == "ranks") {
          declared_ranks = f.next_int<int>("qwp rank count");
          f.expect_exhausted("qwp ranks directive");
          if (declared_ranks < 1 || declared_ranks > kMaxRanks) {
            fail_line("bad rank count " + std::to_string(declared_ranks), line_no);
          }
          st = St::kAwaitRank;
        } else {
          fail_line(std::string("expected ") + expectation(st) + ", got '" +
                        std::string(tok) + "'",
                    line_no);
        }
        break;
      case St::kAwaitRank:
      case St::kBody:
        if (tok == "rank") {
          if (st == St::kBody) {
            out.ranks.push_back(std::move(cur));
            ++rank_idx;
          }
          const int k = f.next_int<int>("qwp rank index");
          f.expect_exhausted("qwp rank directive");
          if (k != rank_idx) {
            fail_line("rank sections out of order: got rank " + std::to_string(k) +
                          ", expected rank " + std::to_string(rank_idx),
                      line_no);
          }
          if (rank_idx >= declared_ranks) {
            fail_line("program declares " + std::to_string(declared_ranks) +
                          " ranks but contains more",
                      line_no);
          }
          cur = RankProgram{};
          st = St::kAwaitSlots;
        } else if (st == St::kBody) {
          cur.body.push_back(parse_op(tok, f, cur.max_slot));
        } else {
          fail_line(std::string("expected ") + expectation(st) + ", got '" +
                        std::string(tok) + "'",
                    line_no);
        }
        break;
      case St::kAwaitSlots:
        if (tok != "slots") {
          fail_line(std::string("expected ") + expectation(st) + ", got '" +
                        std::string(tok) + "'",
                    line_no);
        }
        cur.max_slot = f.next_int<int>("qwp slot count");
        f.expect_exhausted("qwp slots directive");
        if (cur.max_slot < 0 || cur.max_slot > kMaxSlots) {
          fail_line("bad slot count " + std::to_string(cur.max_slot), line_no);
        }
        st = St::kAwaitPrologue;
        break;
      case St::kAwaitPrologue:
        if (tok != "prologue") {
          fail_line(std::string("expected ") + expectation(st) + ", got '" +
                        std::string(tok) + "'",
                    line_no);
        }
        f.expect_exhausted("qwp prologue directive");
        st = St::kPrologue;
        break;
      case St::kPrologue:
        if (tok == "body") {
          f.expect_exhausted("qwp body directive");
          st = St::kBody;
        } else {
          cur.prologue.push_back(parse_op(tok, f, cur.max_slot));
        }
        break;
    }
  }
  if (!sealed) {
    fail_line("truncated program (missing checksum)", line_no + 1);
  }
  if (std::getline(is, line)) {
    fail_line("trailing garbage after checksum", line_no + 1);
  }
  return out;
}

WorkloadProgram read_qwp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open program file " + path);
  try {
    return read_qwp(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace qif::workloads
