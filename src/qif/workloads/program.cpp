#include "qif/workloads/program.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "qif/pfs/cluster.hpp"

namespace qif::workloads {

ProgramExecutor::ProgramExecutor(pfs::PfsClient& client, RankProgram program,
                                 ExecOptions options)
    : client_(client), program_(std::move(program)), options_(std::move(options)) {
  slots_.resize(static_cast<std::size_t>(program_.max_slot) + 1);
  if (program_.prologue.empty()) in_prologue_ = false;
}

void ProgramExecutor::start() {
  assert(!started_ && "executor can only be started once");
  started_ = true;
  step();
}

void ProgramExecutor::finish() {
  if (finished_) return;
  finished_ = true;
  if (options_.on_finish) options_.on_finish();
}

void ProgramExecutor::step() {
  // Honor the horizon before issuing anything new.
  if (clientwise_now() >= options_.stop_at) {
    finish();
    return;
  }
  for (;;) {
    const auto& seq = current_seq();
    if (pc_ < seq.size()) break;
    if (in_prologue_) {
      in_prologue_ = false;
      pc_ = 0;
      body_start_time_ = clientwise_now();
      continue;
    }
    ++iterations_;
    if (!options_.loop) {
      finish();
      return;
    }
    pc_ = 0;
    if (program_.body.empty()) {  // degenerate looping program
      finish();
      return;
    }
  }
  const OpSpec& op = current_seq()[pc_++];
  ++ops_executed_;
  execute(op);
}

void ProgramExecutor::execute(const OpSpec& op) {
  auto next = [this] { step(); };
  switch (op.kind) {
    case OpSpec::Kind::kCreate:
      client_.create(
          op.path, op.stripes,
          [this, slot = op.slot](pfs::FileHandle fh) {
            slots_[static_cast<std::size_t>(slot)] = fh;
            step();
          },
          op.stripe_hint);
      break;
    case OpSpec::Kind::kOpen:
      client_.open(op.path, [this, slot = op.slot](pfs::FileHandle fh) {
        slots_[static_cast<std::size_t>(slot)] = fh;
        step();
      });
      break;
    case OpSpec::Kind::kRead:
      client_.read(slots_[static_cast<std::size_t>(op.slot)], op.offset, op.len, next);
      break;
    case OpSpec::Kind::kWrite:
      client_.write(slots_[static_cast<std::size_t>(op.slot)], op.offset, op.len, next);
      break;
    case OpSpec::Kind::kStat:
      client_.stat(op.path, [this](bool, std::int64_t) { step(); });
      break;
    case OpSpec::Kind::kClose:
      client_.close(slots_[static_cast<std::size_t>(op.slot)], next);
      break;
    case OpSpec::Kind::kUnlink:
      client_.unlink(op.path, next);
      break;
    case OpSpec::Kind::kMkdir:
      client_.mkdir(op.path, next);
      break;
    case OpSpec::Kind::kThink: {
      // Never oversleep the horizon: a think whose gap straddles stop_at —
      // routine for replayed traces, whose inter-op gaps can be long —
      // wakes exactly at stop_at, where step() retires the rank, instead
      // of holding it asleep arbitrarily far past the horizon (and instead
      // of overflowing now + think when stop_at is "never").  step() never
      // dispatches at or past stop_at, so the remaining gap is positive.
      const sim::SimDuration remaining = options_.stop_at - clientwise_now();
      clientwise_schedule(std::min(op.think, remaining), next);
      break;
    }
  }
}

// Small indirections so the executor does not need the full Cluster header
// in its own header.
sim::SimTime ProgramExecutor::clientwise_now() const {
  return client_.sim().now();
}
void ProgramExecutor::clientwise_schedule(sim::SimDuration delay, std::function<void()> fn) {
  client_.sim().schedule_after(delay, std::move(fn));
}

}  // namespace qif::workloads
