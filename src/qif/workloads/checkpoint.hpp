// Checkpoint/restart workload generator with the Daly-optimal interval.
//
// `ckpt:SIZE,BW,MTTI` models a defensive-I/O application in the style of
// CODES' codes-checkpoint-restart: each rank periodically dumps a SIZE-byte
// checkpoint at an interval chosen by Daly's higher-order approximation of
// the optimum for a system with mean time to interrupt MTTI, given that one
// checkpoint costs delta = SIZE / BW seconds to write:
//
//   delta <  2*MTTI:  tau = sqrt(2*delta*MTTI) * [1 + (1/3)*sqrt(delta/(2*MTTI))
//                                                   + (1/9)*(delta/(2*MTTI))]
//                           - delta
//   delta >= 2*MTTI:  tau = MTTI
//
// (J. T. Daly, "A higher order estimate of the optimum checkpoint interval
// for restart dumps", FGCS 2006.)  The compute phase between dumps is a
// think op of tau seconds, so the generator produces the bursty
// write-idle-write signature interference studies care about.
#pragma once

#include <cstdint>
#include <string>

#include "qif/pfs/types.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::workloads {

struct CheckpointConfig {
  std::int64_t bytes = 0;           ///< checkpoint size per rank
  double bandwidth_Bps = 0.0;       ///< assumed sustained write bandwidth
  double mtti_s = 0.0;              ///< mean time to interrupt, seconds
  int cycles = 4;                   ///< checkpoints per body iteration (scaled)
  std::int64_t transfer = 2 << 20;  ///< write chunk size (IOR-style 2 MiB)
  std::string dir = "/ckpt";
};

/// Daly's tau (seconds) for a dump costing `delta_s` on a machine with
/// `mtti_s`.  Pure math — pinned against hand-computed values in tests.
[[nodiscard]] double daly_optimal_interval_s(double delta_s, double mtti_s);

/// Parses "SIZE,BW,MTTI".  SIZE and BW take binary suffixes k/m/g/t
/// (BW is bytes/second); MTTI is seconds with optional s/m/h suffix.
/// All three must be positive.  Throws std::runtime_error on bad input.
[[nodiscard]] CheckpointConfig parse_checkpoint_arg(const std::string& arg);

/// Builds one rank's checkpoint/restart program: a prologue that writes and
/// reads back a restart file, then `cycles` think-tau + dump cycles.
[[nodiscard]] RankProgram build_checkpoint_program(const CheckpointConfig& config,
                                                   pfs::Rank rank, std::int32_t job,
                                                   double scale);

/// The registry's "ckpt:" builder.
[[nodiscard]] RankProgram build_checkpoint_rank(const std::string& arg,
                                                const WorkloadContext& ctx);

}  // namespace qif::workloads
