// Job launch plumbing.
//
// JobInstance runs one workload (all its ranks) on a cluster; the
// InterferenceDriver keeps a configurable number of looping background
// instances alive for the whole horizon — the paper's methodology of
// "each node running interference tasks was configured to ensure 3
// concurrent runs remain active for the entirety of the consecutive runs",
// always on different nodes from the target to avoid client-local
// contention.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "qif/pfs/cluster.hpp"
#include "qif/workloads/program.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::workloads {

struct JobSpec {
  std::string workload;
  std::vector<pfs::NodeId> nodes;  ///< compute nodes hosting the ranks
  int procs_per_node = 1;
  std::int32_t job = 0;            ///< trace tag; must be unique per run
  std::uint64_t seed = 1;
  double scale = 1.0;              ///< op-count multiplier (see registry)

  [[nodiscard]] int n_ranks() const {
    return static_cast<int>(nodes.size()) * procs_per_node;
  }
};

class JobInstance {
 public:
  /// Builds programs and clients for every rank.  `loop` + `stop_at`
  /// configure interference mode; target jobs run once to completion.
  JobInstance(pfs::Cluster& cluster, const JobSpec& spec, bool loop,
              sim::SimTime stop_at = std::numeric_limits<sim::SimTime>::max());

  /// Starts all ranks.  `on_complete` fires when every rank has finished
  /// (for looping jobs: when every rank passed the horizon).
  void start(std::function<void()> on_complete = nullptr);

  [[nodiscard]] bool done() const { return ranks_done_ == executors_.size(); }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] sim::SimTime completion_time() const { return completion_time_; }
  /// Latest rank body-entry time: the start of the job's timed phase.
  [[nodiscard]] sim::SimTime body_start_time() const;
  [[nodiscard]] std::uint64_t total_body_iterations() const;

 private:
  pfs::Cluster& cluster_;
  JobSpec spec_;
  sim::Simulation* job_sim_ = nullptr;  ///< engine of the job's (single) lane
  std::vector<std::unique_ptr<ProgramExecutor>> executors_;
  std::size_t ranks_done_ = 0;
  sim::SimTime completion_time_ = 0;
  std::function<void()> on_complete_;
};

class InterferenceDriver {
 public:
  /// Keeps `instances` copies of `workload` looping on `nodes` until
  /// `stop_at`.  Instance k runs on node nodes[k % nodes.size()] with one
  /// rank, and gets job id `job_base + k` and a distinct seed.
  InterferenceDriver(pfs::Cluster& cluster, const std::string& workload,
                     std::vector<pfs::NodeId> nodes, int instances, sim::SimTime stop_at,
                     std::uint64_t seed, std::int32_t job_base, double scale = 1.0);

  void start();

  [[nodiscard]] const std::vector<std::unique_ptr<JobInstance>>& instances() const {
    return instances_;
  }

 private:
  std::vector<std::unique_ptr<JobInstance>> instances_;
};

}  // namespace qif::workloads
