// IOR-style data benchmarks, in the two IO500 flavours.
//
//  * easy  — file-per-process, large sequential transfers, stripe
//            count 1: the friendliest possible pattern for a PFS.
//  * hard  — single shared file, 47008-byte transfers strided across ranks,
//            striped over every OST: the adversarial pattern IO500 uses to
//            bound worst-case behaviour.
//
// Transfer size defaults follow the IO500 rules (1 MiB easy, 47008 B hard).
#pragma once

#include <cstdint>
#include <string>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

struct IorConfig {
  bool hard = false;
  bool write = true;              ///< false = read phase
  std::int64_t transfer_bytes = 0;  ///< 0 = mode default (1 MiB / 47008 B)
  int n_transfers = 48;           ///< per rank per body iteration
  std::string dir = "/ior";       ///< namespace root for this job's files
};

/// Builds rank `rank`'s program for a job of `n_ranks` ranks tagged `job`
/// (the job id keys the shared-file path so concurrent jobs do not collide).
RankProgram build_ior_program(const IorConfig& config, pfs::Rank rank, int n_ranks,
                              std::int32_t job);

}  // namespace qif::workloads
