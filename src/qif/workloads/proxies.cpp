#include "qif/workloads/proxies.hpp"

#include <algorithm>

#include "qif/sim/rng.hpp"

namespace qif::workloads {
namespace {

OpSpec think_op(double seconds) {
  OpSpec op;
  op.kind = OpSpec::Kind::kThink;
  op.think = sim::from_seconds(seconds);
  return op;
}
OpSpec create_op(std::string path, int slot, int stripes) {
  OpSpec op;
  op.kind = OpSpec::Kind::kCreate;
  op.path = std::move(path);
  op.slot = slot;
  op.stripes = stripes;
  return op;
}
OpSpec open_op(std::string path, int slot) {
  OpSpec op;
  op.kind = OpSpec::Kind::kOpen;
  op.path = std::move(path);
  op.slot = slot;
  return op;
}
OpSpec write_op(int slot, std::int64_t offset, std::int64_t len) {
  OpSpec op;
  op.kind = OpSpec::Kind::kWrite;
  op.slot = slot;
  op.offset = offset;
  op.len = len;
  return op;
}
OpSpec read_op(int slot, std::int64_t offset, std::int64_t len) {
  OpSpec op;
  op.kind = OpSpec::Kind::kRead;
  op.slot = slot;
  op.offset = offset;
  op.len = len;
  return op;
}
OpSpec stat_op(std::string path) {
  OpSpec op;
  op.kind = OpSpec::Kind::kStat;
  op.path = std::move(path);
  return op;
}
OpSpec close_op(int slot) {
  OpSpec op;
  op.kind = OpSpec::Kind::kClose;
  op.slot = slot;
  return op;
}
OpSpec mkdir_op(std::string path) {
  OpSpec op;
  op.kind = OpSpec::Kind::kMkdir;
  op.path = std::move(path);
  return op;
}

}  // namespace

RankProgram build_enzo_program(const EnzoConfig& config, pfs::Rank rank, std::int32_t job,
                               std::uint64_t seed) {
  RankProgram prog;
  sim::Rng rng(sim::Rng::derive_seed(seed, "enzo-r" + std::to_string(rank)));
  const std::string base = config.dir + "/job" + std::to_string(job);

  prog.prologue.push_back(mkdir_op(base));
  // Restart data read back at startup (collapse-test initial conditions).
  prog.prologue.push_back(create_op(base + "/restart_r" + std::to_string(rank), 0, 0));
  prog.prologue.push_back(close_op(0));

  for (int t = 0; t < config.timesteps; ++t) {
    // Compute phase between dumps.
    prog.body.push_back(think_op(rng.uniform(0.15, 0.45)));

    const std::string step = base + "/DD" + std::to_string(t) + "_r" + std::to_string(rank);
    // Hierarchy/bookkeeping: stats on the dump dir, small header writes.
    prog.body.push_back(stat_op(base));
    prog.body.push_back(create_op(step + ".hierarchy", 0, 1));
    for (int h = 0; h < 3; ++h) {
      prog.body.push_back(
          write_op(0, h * 4096, rng.uniform_int(1 << 10, 12 << 10)));
    }
    prog.body.push_back(close_op(0));

    // Grid data: a handful of medium sequential writes per grid file.
    for (int g = 0; g < config.grids_per_rank; ++g) {
      const std::string grid = step + ".cpu" + std::to_string(g);
      prog.body.push_back(create_op(grid, 1, 1));
      const std::int64_t grid_bytes = rng.uniform_int(512 << 10, 3 << 20);
      std::int64_t off = 0;
      while (off < grid_bytes) {
        const std::int64_t chunk = std::min<std::int64_t>(grid_bytes - off, 1 << 20);
        prog.body.push_back(write_op(1, off, chunk));
        off += chunk;
      }
      prog.body.push_back(close_op(1));
      prog.body.push_back(stat_op(grid));
    }

    // Occasional restart-read (AMR regridding pulls earlier-level data).
    if (rng.chance(0.5)) {
      prog.body.push_back(open_op(base + "/restart_r" + std::to_string(rank), 2));
      prog.body.push_back(read_op(2, 0, rng.uniform_int(256 << 10, 1 << 20)));
      prog.body.push_back(close_op(2));
    }
  }
  prog.max_slot = 2;
  return prog;
}

RankProgram build_amrex_program(const AmrexConfig& config, pfs::Rank rank, std::int32_t job,
                                std::uint64_t seed) {
  RankProgram prog;
  sim::Rng rng(sim::Rng::derive_seed(seed, "amrex-r" + std::to_string(rank)));
  const std::string base = config.dir + "/job" + std::to_string(job);
  prog.prologue.push_back(mkdir_op(base));

  for (int p = 0; p < config.plotfiles; ++p) {
    prog.body.push_back(think_op(rng.uniform(0.25, 0.6)));
    const std::string plt = base + "/plt" + std::to_string(p);
    // Rank 0 writes the plotfile header in the real code; every rank here
    // stats the directory (the barrier + header-visibility check).
    prog.body.push_back(mkdir_op(plt));
    prog.body.push_back(stat_op(plt));
    const std::string cell = plt + "/Cell_D_" + std::to_string(rank);
    prog.body.push_back(create_op(cell, 0, 1));
    std::int64_t off = 0;
    while (off < config.bytes_per_rank) {
      const std::int64_t chunk =
          std::min<std::int64_t>(config.bytes_per_rank - off, 4 << 20);
      prog.body.push_back(write_op(0, off, chunk));
      off += chunk;
    }
    prog.body.push_back(close_op(0));
  }
  prog.max_slot = 0;
  return prog;
}

RankProgram build_openpmd_program(const OpenPmdConfig& config, pfs::Rank rank,
                                  std::int32_t job, std::uint64_t seed) {
  RankProgram prog;
  sim::Rng rng(sim::Rng::derive_seed(seed, "openpmd-r" + std::to_string(rank)));
  const std::string base = config.dir + "/job" + std::to_string(job);
  prog.prologue.push_back(mkdir_op(base));

  for (int it = 0; it < config.iterations; ++it) {
    prog.body.push_back(think_op(rng.uniform(0.05, 0.2)));
    const std::string series =
        base + "/series_" + std::to_string(it) + "_r" + std::to_string(rank);
    // Series discovery: the library stats the series pattern and siblings.
    prog.body.push_back(stat_op(base));
    prog.body.push_back(stat_op(series));
    prog.body.push_back(create_op(series, 0, 1));
    for (int m = 0; m < config.meshes_per_iteration; ++m) {
      // Attribute/record-component writes: key-value sized payloads.
      prog.body.push_back(write_op(0, m * (16 << 10), rng.uniform_int(512, 8 << 10)));
      prog.body.push_back(stat_op(series));
    }
    prog.body.push_back(close_op(0));
    // Reader side of the workflow occasionally validates an old iteration.
    if (it > 0 && rng.chance(0.4)) {
      const std::string prev =
          base + "/series_" + std::to_string(it - 1) + "_r" + std::to_string(rank);
      prog.body.push_back(open_op(prev, 1));
      prog.body.push_back(read_op(1, 0, rng.uniform_int(512, 4 << 10)));
      prog.body.push_back(close_op(1));
    }
  }
  prog.max_slot = 1;
  return prog;
}

}  // namespace qif::workloads
