#include "qif/workloads/ior.hpp"

namespace qif::workloads {

RankProgram build_ior_program(const IorConfig& config, pfs::Rank rank, int n_ranks,
                              std::int32_t job) {
  RankProgram prog;
  // easy uses 4 MiB transfers (the common tuned IO500 setting; deep enough
  // to keep several RPCs in flight per stream), hard the mandated 47008 B.
  const std::int64_t xfer =
      config.transfer_bytes > 0 ? config.transfer_bytes : (config.hard ? 47008 : 1 << 20);
  const std::string file = config.hard
                               ? config.dir + "/job" + std::to_string(job) + "/shared"
                               : config.dir + "/job" + std::to_string(job) + "/rank" +
                                     std::to_string(rank);
  // easy: one stripe per file (IO500 sets stripe_count=1 for ior-easy);
  // hard: stripe the shared file across every OST.
  const int stripes = config.hard ? 0 : 1;

  auto emit_transfers = [&](std::vector<OpSpec>& seq, bool write) {
    for (int i = 0; i < config.n_transfers; ++i) {
      OpSpec op;
      op.kind = write ? OpSpec::Kind::kWrite : OpSpec::Kind::kRead;
      op.slot = 0;
      op.len = xfer;
      // easy: sequential within the rank's own file.
      // hard: segmented layout — segment i holds one transfer per rank.
      op.offset = config.hard
                      ? (static_cast<std::int64_t>(i) * n_ranks + rank) * xfer
                      : static_cast<std::int64_t>(i) * xfer;
      seq.push_back(std::move(op));
    }
  };

  // File-per-process runs pin the starting OST (lfs setstripe -i) so the
  // job's own files never bunch; the mix of job and rank also spreads
  // concurrent instances.
  const int hint = config.hard ? -1 : job * 131 + rank;

  if (config.write) {
    OpSpec create;
    create.kind = OpSpec::Kind::kCreate;
    create.path = file;
    create.slot = 0;
    create.stripes = stripes;
    create.stripe_hint = hint;
    prog.body.push_back(create);
    emit_transfers(prog.body, /*write=*/true);
    OpSpec close;
    close.kind = OpSpec::Kind::kClose;
    close.slot = 0;
    prog.body.push_back(close);
  } else {
    // Read phase: the file must exist with a layout before the first open,
    // so the prologue creates (and closes) it once.  The data itself never
    // needs to be written — reads are cold media accesses either way.
    OpSpec create;
    create.kind = OpSpec::Kind::kCreate;
    create.path = file;
    create.slot = 0;
    create.stripes = stripes;
    create.stripe_hint = hint;
    prog.prologue.push_back(create);
    OpSpec close;
    close.kind = OpSpec::Kind::kClose;
    close.slot = 0;
    prog.prologue.push_back(close);

    OpSpec open;
    open.kind = OpSpec::Kind::kOpen;
    open.path = file;
    open.slot = 0;
    prog.body.push_back(open);
    emit_transfers(prog.body, /*write=*/false);
    prog.body.push_back(close);
  }
  prog.max_slot = 0;
  return prog;
}

}  // namespace qif::workloads
