// Data-driven workload programs.
//
// Every workload (IOR, MDTest, DLIO, the application proxies) is expressed
// as a *program*: a per-rank sequence of op specs generated deterministically
// from (config, seed) at build time.  A ProgramExecutor then drives one
// rank's PfsClient through its program, strictly sequentially (as the real
// benchmarks do: one POSIX call per process at a time), with optional
// compute "think" gaps.
//
// Determinism is a load-bearing property: the training pipeline matches ops
// between a baseline run and an interference run by (rank, op_index), which
// works because the same program issues the same op sequence in both runs —
// all randomness is drawn while *building* the program, never while running.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "qif/pfs/client.hpp"
#include "qif/sim/time.hpp"

namespace qif::workloads {

struct OpSpec {
  enum class Kind : std::uint8_t {
    kCreate,  ///< create `path` with `stripes`, store handle in `slot`
    kOpen,    ///< open `path`, store handle in `slot`
    kRead,    ///< read [offset, offset+len) from handle in `slot`
    kWrite,   ///< write [offset, offset+len) to handle in `slot`
    kStat,    ///< stat `path`
    kClose,   ///< close handle in `slot`
    kUnlink,  ///< unlink `path`
    kMkdir,   ///< mkdir `path`
    kThink,   ///< compute for `think` (no I/O, no trace record)
  };
  Kind kind = Kind::kThink;
  std::string path;
  int slot = 0;
  int stripes = 0;
  int stripe_hint = -1;  ///< kCreate: starting OST (-1 = hashed placement)
  std::int64_t offset = 0;
  std::int64_t len = 0;
  sim::SimDuration think = 0;

  friend bool operator==(const OpSpec&, const OpSpec&) = default;
};

/// One rank's program: a run-once prologue (setup such as pre-creating the
/// files a read phase needs) followed by the body, which loops in
/// interference mode.
struct RankProgram {
  std::vector<OpSpec> prologue;
  std::vector<OpSpec> body;
  int max_slot = 0;  ///< highest handle slot used

  friend bool operator==(const RankProgram&, const RankProgram&) = default;
};

/// A whole workload as data: one program per rank.  This is the
/// serializable unit of the `.qwp` IR (program_io.hpp) and the product of
/// trace replay — anything that can produce one of these is a workload.
struct WorkloadProgram {
  std::string workload;  ///< annotation: canonical name or source description
  std::vector<RankProgram> ranks;

  friend bool operator==(const WorkloadProgram&, const WorkloadProgram&) = default;
};

struct ExecOptions {
  bool loop = false;  ///< restart the body when it finishes
  /// No new op starts at or after this time (interference horizon).
  sim::SimTime stop_at = std::numeric_limits<sim::SimTime>::max();
  std::function<void()> on_finish;  ///< fires once, when this rank stops
};

class ProgramExecutor {
 public:
  ProgramExecutor(pfs::PfsClient& client, RankProgram program, ExecOptions options);

  ProgramExecutor(const ProgramExecutor&) = delete;
  ProgramExecutor& operator=(const ProgramExecutor&) = delete;

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::uint64_t body_iterations() const { return iterations_; }
  [[nodiscard]] std::size_t ops_executed() const { return ops_executed_; }
  /// When this rank finished its prologue and entered the (timed) body —
  /// the moral equivalent of the barrier before a benchmark's timed phase.
  [[nodiscard]] sim::SimTime body_start_time() const { return body_start_time_; }

 private:
  void step();
  void execute(const OpSpec& op);
  void finish();
  [[nodiscard]] sim::SimTime clientwise_now() const;
  void clientwise_schedule(sim::SimDuration delay, std::function<void()> fn);
  [[nodiscard]] const std::vector<OpSpec>& current_seq() const {
    return in_prologue_ ? program_.prologue : program_.body;
  }

  pfs::PfsClient& client_;
  RankProgram program_;
  ExecOptions options_;
  std::vector<pfs::FileHandle> slots_;
  std::size_t pc_ = 0;
  bool in_prologue_ = true;
  bool finished_ = false;
  bool started_ = false;
  std::uint64_t iterations_ = 0;
  std::size_t ops_executed_ = 0;
  sim::SimTime body_start_time_ = 0;
};

}  // namespace qif::workloads
