#include "qif/workloads/replay.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qif/trace/dxt.hpp"

namespace qif::workloads {
namespace {

constexpr const char* kArgShape = "trace:FILE[@original|@asap|@scale=X]";

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error(what); }

std::string describe(const trace::OpRecord& r) {
  std::ostringstream os;
  os << "job " << r.job << ", rank " << r.rank << ", op " << r.op_index << ", type "
     << pfs::op_name(r.type);
  return os.str();
}

/// Per-rank program assembly state: the trace's FileIds map onto executor
/// slots on first touch (create/open); data/close ops on a file the dump
/// never opened — including kInvalidFile from originally-degenerate ops —
/// get a fresh untouched slot, whose invalid handle reproduces the
/// degenerate bytes=0 record the original run emitted.
struct RankAssembly {
  RankProgram prog;
  std::unordered_map<pfs::FileId, int> slot_of;
  int next_slot = 0;
  sim::SimTime prev_end = 0;
  std::int64_t next_op_index = 0;

  int slot_for(pfs::FileId file, bool allocate_mapping) {
    if (file != pfs::kInvalidFile) {
      const auto it = slot_of.find(file);
      if (it != slot_of.end()) return it->second;
      if (allocate_mapping) return slot_of[file] = next_slot++;
    }
    return next_slot++;  // throwaway: no create/open will ever fill it
  }
};

void append_gap(RankAssembly& a, const trace::OpRecord& rec, const ReplayOptions& opt) {
  if (opt.timing == ReplayTiming::kAsap) return;
  sim::SimDuration gap = rec.start - a.prev_end;
  if (gap <= 0) return;
  if (opt.timing == ReplayTiming::kScale) {
    gap = static_cast<sim::SimDuration>(
        std::llround(static_cast<double>(gap) * opt.gap_scale));
    if (gap <= 0) return;
  }
  OpSpec think;
  think.kind = OpSpec::Kind::kThink;
  think.think = gap;
  a.prog.body.push_back(std::move(think));
}

std::string need_path(const trace::OpRecord& rec) {
  if (rec.path.empty()) {
    fail("trace op (" + describe(rec) +
         ") has no path metadata — DXT version 1 dumps cannot be replayed; re-dump "
         "the trace with this build to capture paths");
  }
  return rec.path;
}

void append_op(RankAssembly& a, const trace::OpRecord& rec) {
  OpSpec op;
  switch (rec.type) {
    case pfs::OpType::kCreate:
      op.kind = OpSpec::Kind::kCreate;
      op.path = need_path(rec);
      op.slot = a.slot_for(rec.file, /*allocate_mapping=*/true);
      op.stripes = rec.stripes;
      op.stripe_hint = rec.stripe_hint;
      break;
    case pfs::OpType::kOpen:
      op.kind = OpSpec::Kind::kOpen;
      op.path = need_path(rec);
      op.slot = a.slot_for(rec.file, /*allocate_mapping=*/true);
      break;
    case pfs::OpType::kRead:
    case pfs::OpType::kWrite:
      op.kind = rec.type == pfs::OpType::kRead ? OpSpec::Kind::kRead : OpSpec::Kind::kWrite;
      op.slot = a.slot_for(rec.file, /*allocate_mapping=*/false);
      op.offset = rec.offset;
      op.len = rec.bytes;
      break;
    case pfs::OpType::kStat:
      op.kind = OpSpec::Kind::kStat;
      op.path = need_path(rec);
      break;
    case pfs::OpType::kClose:
      op.kind = OpSpec::Kind::kClose;
      op.slot = a.slot_for(rec.file, /*allocate_mapping=*/false);
      break;
    case pfs::OpType::kUnlink:
      op.kind = OpSpec::Kind::kUnlink;
      op.path = need_path(rec);
      break;
    case pfs::OpType::kMkdir:
      op.kind = OpSpec::Kind::kMkdir;
      op.path = need_path(rec);
      break;
  }
  a.prog.body.push_back(std::move(op));
}

}  // namespace

std::pair<std::string, ReplayOptions> parse_replay_arg(const std::string& arg) {
  std::string file = arg;
  ReplayOptions options;
  const std::size_t at = arg.rfind('@');
  if (at != std::string::npos) {
    const std::string policy = arg.substr(at + 1);
    file = arg.substr(0, at);
    if (policy == "original") {
      options.timing = ReplayTiming::kOriginal;
    } else if (policy == "asap") {
      options.timing = ReplayTiming::kAsap;
    } else if (policy.rfind("scale=", 0) == 0) {
      const std::string num = policy.substr(6);
      char* end = nullptr;
      const double x = std::strtod(num.c_str(), &end);
      if (num.empty() || end != num.c_str() + num.size() || !(x > 0.0)) {
        fail("replay gap scale must be a positive number: '" + policy + "' in " +
             kArgShape);
      }
      options.timing = ReplayTiming::kScale;
      options.gap_scale = x;
    } else {
      fail("unknown replay timing '" + policy +
           "' (options: original, asap, scale=X) in " + kArgShape);
    }
  }
  if (file.empty()) fail(std::string("trace replay needs a file: ") + kArgShape);
  return {std::move(file), options};
}

WorkloadProgram build_replay_programs(const trace::TraceLog& log,
                                      const ReplayOptions& options) {
  const std::vector<trace::OpRecord> records = log.sorted_for_job(options.job);
  if (records.empty()) {
    std::set<std::int32_t> jobs;
    for (const auto& r : log.records()) jobs.insert(r.job);
    std::string have;
    for (const auto j : jobs) have += (have.empty() ? "" : ", ") + std::to_string(j);
    fail("trace has no records for job " + std::to_string(options.job) +
         (jobs.empty() ? " (trace is empty)" : " (jobs present: " + have + ")"));
  }

  const int n_ranks = static_cast<int>(records.back().rank) + 1;
  std::vector<RankAssembly> ranks(static_cast<std::size_t>(n_ranks));
  for (const auto& rec : records) {
    if (rec.rank < 0) fail("trace op (" + describe(rec) + ") has a negative rank");
    RankAssembly& a = ranks[static_cast<std::size_t>(rec.rank)];
    if (rec.op_index != a.next_op_index) {
      fail("trace job " + std::to_string(options.job) + " rank " +
           std::to_string(rec.rank) + " has op_index " + std::to_string(rec.op_index) +
           " where " + std::to_string(a.next_op_index) +
           " was expected (truncated or filtered dump)");
    }
    ++a.next_op_index;
    append_gap(a, rec, options);
    append_op(a, rec);
    a.prev_end = rec.end;
  }
  for (int r = 0; r < n_ranks; ++r) {
    if (ranks[static_cast<std::size_t>(r)].next_op_index == 0) {
      fail("trace job " + std::to_string(options.job) + " is missing rank " +
           std::to_string(r));
    }
  }

  WorkloadProgram out;
  out.workload = "trace-replay";
  out.ranks.reserve(ranks.size());
  for (auto& a : ranks) {
    a.prog.max_slot = a.next_slot > 0 ? a.next_slot - 1 : 0;
    out.ranks.push_back(std::move(a.prog));
  }
  return out;
}

RankProgram build_replay_rank(const std::string& arg, const WorkloadContext& ctx) {
  const auto [file, options] = parse_replay_arg(arg);

  // Cache keyed by the file's identity *and* the timing policy, so one
  // campaign replaying the same dump for many ranks/instances parses it
  // once.  Size+mtime in the key makes a rewritten file a cache miss.
  using Key = std::tuple<std::string, std::uintmax_t, std::int64_t, int, double,
                         std::int32_t>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const WorkloadProgram>> cache;

  std::uintmax_t size = 0;
  std::int64_t mtime = 0;
  std::error_code ec;
  size = std::filesystem::file_size(file, ec);
  if (!ec) mtime = std::filesystem::last_write_time(file, ec).time_since_epoch().count();
  const Key key{file, size, mtime, static_cast<int>(options.timing), options.gap_scale,
                options.job};

  std::shared_ptr<const WorkloadProgram> prog;
  {
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) prog = it->second;
  }
  if (!prog) {
    prog = std::make_shared<const WorkloadProgram>(
        build_replay_programs(trace::read_dxt_file(file), options));
    const std::lock_guard<std::mutex> lock(mu);
    cache[key] = prog;
  }

  if (ctx.rank < 0 || static_cast<std::size_t>(ctx.rank) >= prog->ranks.size()) {
    fail("trace replay: '" + file + "' has " + std::to_string(prog->ranks.size()) +
         " rank(s) but rank " + std::to_string(ctx.rank) +
         " was requested — run trace workloads with at most the traced rank count");
  }
  return prog->ranks[static_cast<std::size_t>(ctx.rank)];
}

}  // namespace qif::workloads
