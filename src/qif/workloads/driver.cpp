#include "qif/workloads/driver.hpp"

#include <stdexcept>
#include <string>

namespace qif::workloads {

JobInstance::JobInstance(pfs::Cluster& cluster, const JobSpec& spec, bool loop,
                         sim::SimTime stop_at)
    : cluster_(cluster), spec_(spec) {
  const int n_ranks = spec_.n_ranks();
  // A job's shared completion state (ranks_done_, on_complete_) is plain
  // data, so in lane mode every node the job spans must live in the same
  // event lane — rank completions then all run on one engine.
  if (!spec_.nodes.empty()) {
    const int lane = cluster_.lane_of_node(spec_.nodes.front());
    for (const pfs::NodeId n : spec_.nodes) {
      if (cluster_.lane_of_node(n) != lane) {
        throw std::invalid_argument(
            "job " + std::to_string(spec_.job) + ": nodes span event lanes " +
            std::to_string(lane) + " and " + std::to_string(cluster_.lane_of_node(n)) +
            "; co-locate each job's nodes within one lane");
      }
    }
    job_sim_ = &cluster_.sim_for_node(spec_.nodes.front());
  }
  executors_.reserve(static_cast<std::size_t>(n_ranks));
  for (pfs::Rank r = 0; r < n_ranks; ++r) {
    const pfs::NodeId node = spec_.nodes[static_cast<std::size_t>(r) / spec_.procs_per_node];
    pfs::PfsClient& client = cluster_.make_client(node, r, spec_.job);
    RankProgram prog =
        build_named_program(spec_.workload, r, n_ranks, spec_.job, spec_.seed, spec_.scale);
    ExecOptions opts;
    opts.loop = loop;
    opts.stop_at = stop_at;
    opts.on_finish = [this] {
      ++ranks_done_;
      if (ranks_done_ == executors_.size()) {
        completion_time_ = job_sim_->now();
        if (on_complete_) on_complete_();
      }
    };
    executors_.push_back(
        std::make_unique<ProgramExecutor>(client, std::move(prog), std::move(opts)));
  }
}

void JobInstance::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  for (std::size_t r = 0; r < executors_.size(); ++r) {
    // A rank's kickoff issues its first client ops synchronously from the
    // driver thread (setup-time scheduling).  In lane mode mint those under
    // the rank's node entity context so their keys — and everything
    // downstream — are partition-independent.
    const pfs::NodeId node = spec_.nodes[r / static_cast<std::size_t>(spec_.procs_per_node)];
    if (cluster_.lane_mode()) {
      cluster_.sim_for_node(node).set_context(cluster_.ctx_of_node(node));
    }
    executors_[r]->start();
  }
}

sim::SimTime JobInstance::body_start_time() const {
  sim::SimTime t = 0;
  for (const auto& ex : executors_) t = std::max(t, ex->body_start_time());
  return t;
}

std::uint64_t JobInstance::total_body_iterations() const {
  std::uint64_t n = 0;
  for (const auto& ex : executors_) n += ex->body_iterations();
  return n;
}

InterferenceDriver::InterferenceDriver(pfs::Cluster& cluster, const std::string& workload,
                                       std::vector<pfs::NodeId> nodes, int instances,
                                       sim::SimTime stop_at, std::uint64_t seed,
                                       std::int32_t job_base, double scale) {
  instances_.reserve(static_cast<std::size_t>(instances));
  for (int k = 0; k < instances; ++k) {
    JobSpec spec;
    spec.workload = workload;
    spec.nodes = {nodes[static_cast<std::size_t>(k) % nodes.size()]};
    spec.procs_per_node = 1;
    spec.job = job_base + k;
    spec.seed = sim::Rng::derive_seed(seed, "interf" + std::to_string(k));
    spec.scale = scale;
    instances_.push_back(std::make_unique<JobInstance>(cluster, spec, /*loop=*/true, stop_at));
  }
}

void InterferenceDriver::start() {
  for (auto& inst : instances_) inst->start(nullptr);
}

}  // namespace qif::workloads
