#include "qif/workloads/dlio.hpp"

#include <algorithm>

#include "qif/sim/rng.hpp"

namespace qif::workloads {

RankProgram build_dlio_program(const DlioConfig& config, pfs::Rank rank, std::int32_t job,
                               std::uint64_t seed) {
  RankProgram prog;
  sim::Rng rng(sim::Rng::derive_seed(seed, "dlio-r" + std::to_string(rank)));

  const bool unet = config.model == DlioConfig::Model::kUnet3d;
  const std::int64_t sample_bytes = unet ? (6ll << 20) : (256ll << 10);
  const double think_mean_s = unet ? 0.28 : 0.045;
  const std::string data_file = config.dir + "/job" + std::to_string(job) + "/data_rank" +
                                std::to_string(rank) + (unet ? ".npz" : ".tfrec");
  const std::string ckpt_file = config.dir + "/job" + std::to_string(job) + "/ckpt_rank" +
                                std::to_string(rank);

  // Prologue: the dataset file exists before training starts.
  {
    OpSpec create;
    create.kind = OpSpec::Kind::kCreate;
    create.path = data_file;
    create.slot = 0;
    create.stripes = 0;  // big packed file striped over all OSTs
    prog.prologue.push_back(create);
    OpSpec close;
    close.kind = OpSpec::Kind::kClose;
    close.slot = 0;
    prog.prologue.push_back(close);
  }

  // Body: open, then step loop of (sample read, compute), with periodic
  // checkpoints, then close — one epoch.
  OpSpec open;
  open.kind = OpSpec::Kind::kOpen;
  open.path = data_file;
  open.slot = 0;
  prog.body.push_back(open);

  const std::int64_t n_samples = config.dataset_bytes / sample_bytes;
  std::int64_t seq_cursor = 0;
  for (int s = 0; s < config.steps; ++s) {
    OpSpec read;
    read.kind = OpSpec::Kind::kRead;
    read.slot = 0;
    read.len = sample_bytes;
    if (unet) {
      // Shuffled sample access.
      read.offset = rng.uniform_int(0, n_samples - 1) * sample_bytes;
    } else {
      // Packed records are consumed near-sequentially.
      read.offset = (seq_cursor++ % n_samples) * sample_bytes;
    }
    prog.body.push_back(read);

    OpSpec think;
    think.kind = OpSpec::Kind::kThink;
    think.think = sim::from_seconds(rng.exponential(think_mean_s));
    prog.body.push_back(think);

    if (config.checkpoint_every > 0 && (s + 1) % config.checkpoint_every == 0) {
      OpSpec create;
      create.kind = OpSpec::Kind::kCreate;
      create.path = ckpt_file;
      create.slot = 1;
      create.stripes = 0;
      prog.body.push_back(create);
      const std::int64_t ckpt_bytes = unet ? (96ll << 20) : (48ll << 20);
      for (std::int64_t off = 0; off < ckpt_bytes; off += 8ll << 20) {
        OpSpec write;
        write.kind = OpSpec::Kind::kWrite;
        write.slot = 1;
        write.offset = off;
        write.len = std::min<std::int64_t>(8ll << 20, ckpt_bytes - off);
        prog.body.push_back(write);
      }
      OpSpec close;
      close.kind = OpSpec::Kind::kClose;
      close.slot = 1;
      prog.body.push_back(close);
    }
  }
  OpSpec close;
  close.kind = OpSpec::Kind::kClose;
  close.slot = 0;
  prog.body.push_back(close);

  prog.max_slot = 1;
  return prog;
}

}  // namespace qif::workloads
