// DLIO-style deep-learning I/O (paper's second benchmark dataset).
//
// DLIO replays the data-loader I/O of training jobs: bursts of sample reads
// separated by compute (GPU) think time, with periodic checkpoint writes.
// Two configurations mirror the paper's choices:
//
//  * Unet3d — few, large samples (volumetric .npz): multi-MiB reads at
//    random sample offsets in a big packed dataset file, long compute gaps.
//  * BERT  — many small samples from packed records: 256 KiB batch reads,
//    short compute gaps.
//
// The think-time structure matters: it is why only ~20% of DLIO windows
// are interference-positive in the paper (Figure 3b's class skew).
#pragma once

#include <cstdint>
#include <string>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

struct DlioConfig {
  enum class Model { kUnet3d, kBert } model = Model::kUnet3d;
  int steps = 48;                  ///< loader steps per body iteration
  int checkpoint_every = 24;       ///< steps between checkpoint writes (0 = off)
  std::int64_t dataset_bytes = 2ll << 30;  ///< packed dataset size per rank file
  std::string dir = "/dlio";
};

/// `seed` drives sample order and think times (drawn at build time).
RankProgram build_dlio_program(const DlioConfig& config, pfs::Rank rank, std::int32_t job,
                               std::uint64_t seed);

}  // namespace qif::workloads
