// Workload registry: builds any workload's rank program by name.
//
// Canonical names (the IO500 seven use the paper's Table I labels):
//   ior-easy-read, ior-hard-read, mdt-hard-read, ior-easy-write,
//   ior-hard-write, mdt-easy-write, mdt-hard-write,
//   io500-suite (the 7 tasks chronologically, as one phased application),
//   dlio-unet3d, dlio-bert, enzo, amrex, openpmd
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

/// All canonical workload names, IO500 tasks first in Table I row order.
[[nodiscard]] const std::vector<std::string>& known_workloads();

/// The 7 IO500 task names of Table I, in the paper's row/column order.
[[nodiscard]] const std::vector<std::string>& io500_tasks();

/// Per-rank op-index ranges [begin, end) of each phase of the
/// "io500-suite" workload (the 7 tasks run chronologically, the paper's
/// §II scenario).  Phase p covers ops with op_index in ranges[p].
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> io500_suite_phase_ranges(
    int n_ranks, std::uint64_t seed, double scale);

[[nodiscard]] bool is_known_workload(const std::string& name);

/// Builds rank `rank`'s program for workload `name` in a job of `n_ranks`
/// ranks.  `scale` multiplies the per-iteration op counts (transfers,
/// files, steps), letting campaigns trade run length for coverage.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] RankProgram build_named_program(const std::string& name, pfs::Rank rank,
                                              int n_ranks, std::int32_t job,
                                              std::uint64_t seed, double scale = 1.0);

}  // namespace qif::workloads
