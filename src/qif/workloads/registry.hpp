// Workload registry: builds any workload's rank program by name.
//
// The registry is a pluggable factory: every workload — built-in generator,
// replayed trace, checkpoint model, or serialized `.qwp` program — is a
// *builder* registered under a name, and `build_named_program` is nothing
// but a lookup plus a call.  Two kinds of entries exist:
//
//  * exact names ("enzo", "ior-easy-write", ...): the canonical catalogue,
//  * prefixes ("trace", "ckpt", "qwp"): parameterized families resolved
//    from "<prefix>:<arg>" — e.g. "trace:run.dxt@asap" or
//    "ckpt:4g,2g,3600".
//
// Canonical names (the IO500 seven use the paper's Table I labels):
//   ior-easy-read, ior-hard-read, mdt-hard-read, ior-easy-write,
//   ior-hard-write, mdt-easy-write, mdt-hard-write,
//   io500-suite (the 7 tasks chronologically, as one phased application),
//   dlio-unet3d, dlio-bert, enzo, amrex, openpmd
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "qif/pfs/types.hpp"
#include "qif/workloads/program.hpp"

namespace qif::workloads {

/// Everything a builder may condition on.  The determinism contract holds
/// here: builders draw all randomness from `seed` while constructing the
/// program, never at run time.
struct WorkloadContext {
  pfs::Rank rank = 0;
  int n_ranks = 1;
  std::int32_t job = 0;
  std::uint64_t seed = 0;
  double scale = 1.0;
};

/// Builds one rank's program.  `arg` is the text after the colon for
/// prefix entries ("trace:run.dxt" passes "run.dxt"); always empty for
/// exact-name entries.
using WorkloadBuilder =
    std::function<RankProgram(const std::string& arg, const WorkloadContext& ctx)>;

/// Registers (or replaces) an exact-name workload.  Thread-safe.
void register_workload(const std::string& name, WorkloadBuilder builder);

/// Registers (or replaces) a parameterized family matched as
/// "<prefix>:<arg>".  `arg_help` documents the argument shape in listings
/// and unknown-name errors (e.g. "FILE[@original|@asap|@scale=X]").
void register_workload_prefix(const std::string& prefix, const std::string& arg_help,
                              WorkloadBuilder builder);

/// All exact workload names in registration order — the canonical
/// catalogue first (IO500 tasks in Table I row order), then anything
/// registered afterwards.
[[nodiscard]] std::vector<std::string> known_workloads();

/// All registered prefixes as (prefix, arg_help) pairs.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> known_workload_prefixes();

/// The 7 IO500 task names of Table I, in the paper's row/column order.
[[nodiscard]] const std::vector<std::string>& io500_tasks();

/// Per-rank op-index ranges [begin, end) of each phase of the
/// "io500-suite" workload (the 7 tasks run chronologically, the paper's
/// §II scenario).  Phase p covers ops with op_index in ranges[p].
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> io500_suite_phase_ranges(
    int n_ranks, std::uint64_t seed, double scale);

/// True for an exact registered name, or "<prefix>:<arg>" with a
/// registered prefix (the arg itself is validated at build time).
[[nodiscard]] bool is_known_workload(const std::string& name);

/// The one-stop diagnostic for a name that failed lookup: names the
/// offender and lists every canonical name and parameterized form.
[[nodiscard]] std::string workload_name_error(const std::string& name);

/// Builds rank `rank`'s program for workload `name` in a job of `n_ranks`
/// ranks.  `scale` multiplies the per-iteration op counts (transfers,
/// files, steps), letting campaigns trade run length for coverage.
/// Throws std::invalid_argument (workload_name_error) for unknown names;
/// prefix builders throw std::runtime_error for bad arguments.
[[nodiscard]] RankProgram build_named_program(const std::string& name, pfs::Rank rank,
                                              int n_ranks, std::int32_t job,
                                              std::uint64_t seed, double scale = 1.0);

}  // namespace qif::workloads
