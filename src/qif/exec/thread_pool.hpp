// Fixed-size thread pool for campaign-scale fan-out.
//
// Campaigns are embarrassingly parallel: every scenario owns its own
// sim::Simulation, cluster and derived RNG streams, so tasks never share
// mutable state and results are bit-identical regardless of which worker
// runs them or in what order they finish.  The pool is deliberately
// work-stealing-free: a single FIFO queue guarded by one mutex is ample
// when each task is a multi-millisecond discrete-event simulation, and it
// keeps the execution model simple enough to reason about under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qif::exec {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int n_threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.  Tasks must not throw — wrap fallible work in
  /// for_each_index (which captures exceptions) or catch inside the task.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task.
  void wait_idle();

  /// Runs fn(0) .. fn(n - 1) across the pool and blocks until all complete.
  /// Each index runs exactly once.  If any invocation throws, the exception
  /// thrown for the *lowest* index is rethrown after every task has
  /// finished, so error reporting is deterministic regardless of worker
  /// interleaving.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signalled on submit / stop
  std::condition_variable idle_cv_;   ///< signalled when the pool drains
  std::size_t active_ = 0;            ///< workers currently inside a task
  bool stop_ = false;
};

}  // namespace qif::exec
