#include "qif/exec/parallel_runner.hpp"

#include <cstddef>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "qif/exec/thread_pool.hpp"

namespace qif::exec {

ParallelCampaignRunner::ParallelCampaignRunner(core::CampaignConfig config, int jobs)
    : config_(std::move(config)), jobs_(jobs < 1 ? 1 : jobs) {}

core::CampaignResult ParallelCampaignRunner::run(const CaseSink& sink) const {
  ThreadPool pool(jobs_);

  // Phase 1: every unique baseline, concurrently.  Each slot is written by
  // exactly one task.
  const std::vector<std::uint64_t> seeds = core::campaign_baseline_seeds(config_);
  std::vector<core::CampaignBaseline> baselines(seeds.size());
  pool.for_each_index(seeds.size(), [&](std::size_t i) {
    baselines[i] = core::run_campaign_baseline(config_, seeds[i]);
  });
  std::map<std::uint64_t, const core::CampaignBaseline*> baseline_by_seed;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    baseline_by_seed.emplace(seeds[i], &baselines[i]);
  }

  // Phase 2: fan the cases out.  run_campaign_case captures its own
  // errors, so a throwing scenario fails that case, not the campaign.
  // Each finished case is handed to the sink as soon as its whole ordered
  // prefix is done: done[] marks completions, and whichever worker
  // completes the case at the cursor drains the run of consecutive
  // finished cases under the mutex (so sink calls are serialized and in
  // declaration order while later cases keep simulating).
  std::vector<core::CaseResult> cases(config_.cases.size());
  std::vector<char> done(config_.cases.size(), 0);
  std::size_t next_to_emit = 0;
  std::mutex emit_mutex;
  pool.for_each_index(config_.cases.size(), [&](std::size_t i) {
    const core::CaseSpec& cs = config_.cases[i];
    cases[i] = core::run_campaign_case(config_, cs, *baseline_by_seed.at(cs.seed));
    if (!sink) return;
    const std::lock_guard<std::mutex> lock(emit_mutex);
    done[i] = 1;
    while (next_to_emit < done.size() && done[next_to_emit] != 0) {
      sink(next_to_emit, cases[next_to_emit]);
      ++next_to_emit;
    }
  });

  // Phase 3: stitch shards and outcomes back in declaration order — the
  // invariant that makes the output byte-identical to the sequential path.
  // Same reserve-once block assembly the sequential driver uses.
  return core::stitch_case_results(std::move(cases));
}

core::CampaignResult run_campaign_parallel(const core::CampaignConfig& config,
                                           int jobs) {
  return ParallelCampaignRunner(config, jobs).run();
}

core::CampaignRunFn campaign_runner(int jobs) {
  if (jobs <= 1) {
    return [](const core::CampaignConfig& config) { return core::run_campaign(config); };
  }
  return [jobs](const core::CampaignConfig& config) {
    return run_campaign_parallel(config, jobs);
  };
}

}  // namespace qif::exec
