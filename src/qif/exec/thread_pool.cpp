#include "qif/exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace qif::exec {

ThreadPool::ThreadPool(int n_threads) {
  const int n = std::max(1, n_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  struct BatchState {
    std::vector<std::exception_ptr> errors;
    std::atomic<std::size_t> remaining;
    std::mutex mu;
    std::condition_variable done_cv;
  };
  const auto state = std::make_shared<BatchState>();
  state->errors.resize(n);
  state->remaining.store(n);
  for (std::size_t i = 0; i < n; ++i) {
    submit([state, i, &fn] {
      try {
        fn(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      if (state->remaining.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->remaining.load() == 0; });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace qif::exec
