// Parallel campaign execution.
//
// Fans a campaign's independent scenario simulations across a fixed-size
// ThreadPool: phase 1 runs every unique baseline concurrently, phase 2
// fans the cases out, and collection happens in case-declaration order so
// the dataset and outcome vector are bit-identical to the sequential
// core::run_campaign() path regardless of the job count.  Safe because
// every scenario owns its own sim::Simulation, cluster and derived RNG
// seed — no shared state crosses task boundaries.
#pragma once

#include <cstddef>
#include <functional>

#include "qif/core/campaign.hpp"
#include "qif/core/datasets.hpp"

namespace qif::exec {

/// Ordered streaming hook: invoked once per case, in case-declaration
/// order, as soon as that case AND every earlier case have finished (so a
/// long campaign's results can hit disk incrementally instead of
/// accumulating until the final stitch).  Calls are serialized — at most
/// one sink invocation runs at a time — but they execute on pool worker
/// threads, concurrently with later cases still simulating; the sink must
/// not touch campaign state beyond the result it is handed.
using CaseSink = std::function<void(std::size_t index, const core::CaseResult&)>;

class ParallelCampaignRunner {
 public:
  /// `jobs` is the worker count; values < 1 are clamped to 1 (which is
  /// still the parallel code path, just on a single worker).
  ParallelCampaignRunner(core::CampaignConfig config, int jobs);

  /// Runs the whole campaign.  Failed cases are reported per-case via
  /// CaseOutcome::error; their shards are skipped, exactly as in the
  /// sequential driver.  A non-null `sink` observes every finished case
  /// in declaration order (see CaseSink); the returned result is the same
  /// either way.
  [[nodiscard]] core::CampaignResult run(const CaseSink& sink = {}) const;

  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] const core::CampaignConfig& config() const { return config_; }

 private:
  core::CampaignConfig config_;
  int jobs_;
};

/// Runs `config` with `jobs` workers and returns the stitched result.
[[nodiscard]] core::CampaignResult run_campaign_parallel(
    const core::CampaignConfig& config, int jobs);

/// A DatasetOptions::runner hook: campaigns launched through it execute on
/// `jobs` workers.  With jobs <= 1 the sequential driver is returned, so
/// callers can pass a --jobs value through unconditionally.
[[nodiscard]] core::CampaignRunFn campaign_runner(int jobs);

}  // namespace qif::exec
