// Parallel campaign execution.
//
// Fans a campaign's independent scenario simulations across a fixed-size
// ThreadPool: phase 1 runs every unique baseline concurrently, phase 2
// fans the cases out, and collection happens in case-declaration order so
// the dataset and outcome vector are bit-identical to the sequential
// core::run_campaign() path regardless of the job count.  Safe because
// every scenario owns its own sim::Simulation, cluster and derived RNG
// seed — no shared state crosses task boundaries.
#pragma once

#include "qif/core/campaign.hpp"
#include "qif/core/datasets.hpp"

namespace qif::exec {

class ParallelCampaignRunner {
 public:
  /// `jobs` is the worker count; values < 1 are clamped to 1 (which is
  /// still the parallel code path, just on a single worker).
  ParallelCampaignRunner(core::CampaignConfig config, int jobs);

  /// Runs the whole campaign.  Failed cases are reported per-case via
  /// CaseOutcome::error; their shards are skipped, exactly as in the
  /// sequential driver.
  [[nodiscard]] core::CampaignResult run() const;

  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] const core::CampaignConfig& config() const { return config_; }

 private:
  core::CampaignConfig config_;
  int jobs_;
};

/// Runs `config` with `jobs` workers and returns the stitched result.
[[nodiscard]] core::CampaignResult run_campaign_parallel(
    const core::CampaignConfig& config, int jobs);

/// A DatasetOptions::runner hook: campaigns launched through it execute on
/// `jobs` workers.  With jobs <= 1 the sequential driver is returned, so
/// callers can pass a --jobs value through unconditionally.
[[nodiscard]] core::CampaignRunFn campaign_runner(int jobs);

}  // namespace qif::exec
