// The discrete-event simulation core.
//
// A Simulation owns the virtual clock and a priority queue of pending
// events.  Components schedule closures at absolute or relative times;
// run() pops events in (time, sequence) order so simultaneous events fire
// in their scheduling order, which makes every run fully deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "qif/sim/time.hpp"

namespace qif::sim {

/// Handle for a scheduled event; lets the scheduler cancel it later.
/// Ids are never reused within one Simulation.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `when` (must be
  /// >= now()).  Returns a handle usable with cancel().
  EventId schedule_at(SimTime when, std::function<void()> fn) {
    assert(when >= now_ && "cannot schedule into the past");
    const EventId id = ++next_id_;
    queue_.push(Event{when, id, std::move(fn)});
    ++live_events_;
    return id;
  }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event.  Safe to call with an id that already fired
  /// (it becomes a no-op); this is how timeouts are torn down.
  void cancel(EventId id) {
    if (id != kInvalidEvent) cancelled_.push_back(id);
  }

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events at exactly `until` still fire.  Returns the number of events
  /// executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the event queue drains completely.
  std::uint64_t run_all() { return run_until(std::numeric_limits<SimTime>::max()); }

  /// Number of events that have ever been executed.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (including cancelled-but-unswept).
  [[nodiscard]] std::size_t pending() const { return live_events_; }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  bool is_cancelled(EventId id);

  SimTime now_ = 0;
  EventId next_id_ = kInvalidEvent;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // sorted lazily; small in practice
};

}  // namespace qif::sim
