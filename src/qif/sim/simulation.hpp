// The discrete-event simulation core.
//
// A Simulation owns the virtual clock and a pooled 4-ary min-heap of
// pending events.  Components schedule closures at absolute or relative
// times; run() pops events in (time, sequence) order so simultaneous
// events fire in their scheduling order, which makes every run fully
// deterministic.
//
// Engine layout (the campaign hot path — see DESIGN.md "Event engine
// internals"):
//   * Closures live in InlineTask slots inside a pooled slab; scheduling
//     never heap-allocates in steady state (freed slots are recycled
//     through a free list).
//   * The heap itself holds 24-byte (when, seq, slot) entries, so sift
//     operations move small PODs and comparisons never touch the slab.
//     4-ary layout halves the tree depth vs. a binary heap and keeps the
//     children of a node in one cache line.
//   * cancel() is a true O(log n) heap removal via the slot's back-pointer
//     into the heap — no tombstone list to scan at pop time, and nothing
//     accumulates for ids cancelled after their event already fired.
//   * An EventId packs (slot index + 1, slot generation); a stale id —
//     already fired, already cancelled, or slot since reused — fails the
//     generation check and cancel() is a no-op, preserving the historical
//     "cancel after fire is safe" contract.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "qif/sim/inline_task.hpp"
#include "qif/sim/time.hpp"

namespace qif::sim {

/// Handle for a scheduled event; lets the scheduler cancel it later.
/// Handles are unique within one Simulation until a single slot has been
/// reused 2^32 times (far beyond any campaign's event count).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `when` (must be
  /// >= now()).  Returns a handle usable with cancel().
  EventId schedule_at(SimTime when, InlineTask fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, InlineTask fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event in O(log n).  Safe to call with an id that
  /// already fired or was already cancelled (it becomes a no-op); this is
  /// how timeouts are torn down.
  void cancel(EventId id);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events at exactly `until` still fire.  Returns the number of events
  /// executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the event queue drains completely.
  std::uint64_t run_all() { return run_until(std::numeric_limits<SimTime>::max()); }

  /// Number of events that have ever been executed.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.  Cancelled events leave the queue
  /// immediately, so this is exact (the old engine counted cancelled-but-
  /// unswept tombstones here).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Slots ever allocated (pending + free-listed).  Bounded by the peak
  /// number of simultaneously pending events — exposed so tests can assert
  /// that cancel churn and stale cancels do not grow the engine.
  [[nodiscard]] std::size_t slot_slab_size() const { return slots_.size(); }

  /// Full structural self-check: heap property, back-pointer consistency,
  /// free-list integrity.  O(n); used by tests and debug assertions.
  [[nodiscard]] bool check_invariants() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;  // global scheduling order; FIFO tie-break
    std::uint32_t slot;
  };

  struct Slot {
    InlineTask fn;
    std::uint32_t heap_pos = kNil;  // position in heap_, kNil when free
    std::uint32_t gen = 0;          // bumped on release; validates EventIds
    std::uint32_t next_free = kNil;
  };

  static bool precedes(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;  // FIFO among simultaneous events
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void place(std::uint32_t pos, HeapEntry entry);  // write entry + back-pointer
  void sift_up(std::uint32_t pos, HeapEntry entry);
  void sift_down(std::uint32_t pos, HeapEntry entry);
  void heap_erase(std::uint32_t pos);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
};

}  // namespace qif::sim
