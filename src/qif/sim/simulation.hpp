// The discrete-event simulation core.
//
// A Simulation owns the virtual clock and a pooled 4-ary min-heap of
// pending events.  Components schedule closures at absolute or relative
// times; run() pops events in key order so simultaneous events fire in
// their scheduling order, which makes every run fully deterministic.
//
// Event keys are (when, birth, origin, sub):
//   * `when`   — the firing time.
//   * `birth`  — the clock value at the moment the event was created (the
//                generating event's own firing time; 0 for setup-time
//                scheduling before the clock moves).
//   * `origin` — a creation counter.  In the default (classic) mode it is
//                a single per-engine counter tagged with the engine's lane
//                id in the high bits; with enable_entity_contexts() it is
//                a per-*entity* counter tagged with the entity's id (see
//                below).
//   * `sub`    — 0 for ordinary events; used by cross-lane messages that
//                inherit their parent event's key (see sim/lanes.hpp).
// In classic mode `birth` is non-decreasing and `origin` strictly
// increasing over creation order, so for same-`when` events the key order
// collapses to creation order — exactly the historical (when, seq) FIFO
// contract, byte-identical traces included.
//
// Entity contexts (enable_entity_contexts) exist for the partitioned
// multi-lane engine (sim::LaneGroup).  A global creation counter cannot be
// reconstructed when lanes execute concurrently, so instead every event is
// minted under a *context* — the id of the topology entity (client node,
// OSS port, metadata server) the event runs on behalf of.  The origin
// becomes (context << kLaneShift) | ++seq[context].  Contexts are
// partition-independent: each entity lives on exactly one engine in every
// partition, its counter advances in that engine's deterministic execution
// order, and cross-engine deliveries re-tag the context at the boundary
// (Simulation::inject with an explicit context / schedule_after_ctx).  The
// result: every lane count N >= 1 produces bit-identical merged event
// orders.  The entity-ordered tie-break differs from the classic global
// counter for *cross-entity* ties, so the lane family is internally
// consistent but not byte-identical to the classic engine; run_scenario
// keeps classic as the default (lanes = 0) precisely so existing goldens
// never move.
//
// Engine layout (the campaign hot path — see DESIGN.md "Event engine
// internals"):
//   * Closures live in InlineTask slots inside a pooled slab; scheduling
//     never heap-allocates in steady state (freed slots are recycled
//     through a free list).
//   * The heap itself holds 24-byte (when, seq, slot) entries, so sift
//     operations move small PODs and comparisons never touch the slab.
//     4-ary layout halves the tree depth vs. a binary heap and keeps the
//     children of a node in one cache line.
//   * cancel() is a true O(log n) heap removal via the slot's back-pointer
//     into the heap — no tombstone list to scan at pop time, and nothing
//     accumulates for ids cancelled after their event already fired.
//   * An EventId packs (slot index + 1, slot generation); a stale id —
//     already fired, already cancelled, or slot since reused — fails the
//     generation check and cancel() is a no-op, preserving the historical
//     "cancel after fire is safe" contract.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "qif/sim/inline_task.hpp"
#include "qif/sim/time.hpp"

namespace qif::sim {

/// Handle for a scheduled event; lets the scheduler cancel it later.
/// Handles are unique within one Simulation until a single slot has been
/// reused 2^32 times (far beyond any campaign's event count).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Full ordering key of an event (see the header comment).  Exposed so the
/// lane engine can carry keys across engines as plain data.
struct EventKey {
  SimTime when = 0;
  SimTime birth = 0;
  std::uint64_t origin = 0;
  std::uint32_t sub = 0;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.birth != b.birth) return a.birth < b.birth;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.sub < b.sub;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.when == b.when && a.birth == b.birth && a.origin == b.origin &&
           a.sub == b.sub;
  }
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `when` (must be
  /// >= now()).  Returns a handle usable with cancel().
  EventId schedule_at(SimTime when, InlineTask fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, InlineTask fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event in O(log n).  Safe to call with an id that
  /// already fired or was already cancelled (it becomes a no-op); this is
  /// how timeouts are torn down.
  void cancel(EventId id);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events at exactly `until` still fire.  Returns the number of events
  /// executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the event queue drains completely.
  std::uint64_t run_all() { return run_until(std::numeric_limits<SimTime>::max()); }

  /// Number of events that have ever been executed.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.  Cancelled events leave the queue
  /// immediately, so this is exact (the old engine counted cancelled-but-
  /// unswept tombstones here).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Slots ever allocated (pending + free-listed).  Bounded by the peak
  /// number of simultaneously pending events — exposed so tests can assert
  /// that cancel churn and stale cancels do not grow the engine.
  [[nodiscard]] std::size_t slot_slab_size() const { return slots_.size(); }

  /// Full structural self-check: heap property, back-pointer consistency,
  /// free-list integrity.  O(n); used by tests and debug assertions.
  [[nodiscard]] bool check_invariants() const;

  // --- Lane-engine surface (sim/lanes.hpp). -------------------------------
  // A standalone engine never needs any of these; they default to the
  // historical sequential behaviour (lane 0, no injected events).

  /// Tags every subsequently created origin with `lane` in the high bits so
  /// keys created concurrently in different lanes stay distinct and order
  /// deterministically.  Call once, before any event is scheduled.
  void set_lane(std::uint32_t lane) {
    assert(next_seq_ == 0 && "set_lane must precede all scheduling");
    lane_tag_ = static_cast<std::uint64_t>(lane) << kLaneShift;
  }

  /// Switches origin minting from the engine-global counter to per-entity
  /// counters (see the header comment).  Call once, before any event is
  /// scheduled.  Irreversible for the engine's lifetime.
  void enable_entity_contexts() {
    assert(next_seq_ == 0 && "enable_entity_contexts must precede scheduling");
    entity_mode_ = true;
  }

  /// Entity context used for scheduling done *outside* event execution
  /// (setup-time wiring; re-wiring between run_until calls).  During event
  /// execution the executing event's stored context applies instead.
  /// Sticky until the next call.  Has no effect in classic mode.
  void set_context(std::uint32_t ctx) {
    setup_ctx_ = ctx;
    ctx_ = ctx;
  }

  /// Context currently in effect for minting (the executing event's context
  /// inside an event closure; the setup context otherwise).
  [[nodiscard]] std::uint32_t context() const { return ctx_; }

  /// Consumes one origin value, exactly as scheduling an event here would.
  /// The lane fabric uses this to stamp an outgoing cross-lane message with
  /// the key the equivalent local schedule_after call would have produced.
  [[nodiscard]] std::uint64_t consume_origin() { return mint_origin(); }

  /// Firing time of the earliest pending event, or SimTime max when idle.
  /// The lane group's lower-bound-on-time-stamp computation reads this.
  [[nodiscard]] SimTime next_event_time() const {
    return heap_.empty() ? std::numeric_limits<SimTime>::max() : heap_.front().when;
  }

  /// Schedules `fn` under an externally produced key (a cross-lane message
  /// carrying its creator's stamp).  `key.when` must be >= now().  The
  /// delivered event executes under the context packed into the key's high
  /// origin bits (its creator's context).
  EventId inject(const EventKey& key, InlineTask fn);

  /// Like inject(), but the delivered event executes under `ctx` — the
  /// destination entity's context.  The lane fabric re-tags every delivery
  /// at the engine boundary with this overload so everything the delivered
  /// hop schedules is minted against the destination entity, independent of
  /// which engine the sender lived on.
  EventId inject(const EventKey& key, std::uint32_t ctx, InlineTask fn);

  /// Schedules `fn` to run `delay` from now, executing under `ctx` instead
  /// of inheriting the scheduler's context.  The minted key is identical to
  /// schedule_after's, which is in turn identical to the consume_origin +
  /// inject pair the fabric uses for a cross-engine hop — so a hop delivers
  /// with the same key and context whether or not it crosses engines.
  EventId schedule_after_ctx(SimDuration delay, std::uint32_t ctx, InlineTask fn);

  /// Key of the event currently executing (valid inside an event closure).
  [[nodiscard]] EventKey current_key() const {
    return EventKey{now_, cur_birth_, cur_origin_, cur_sub_};
  }

  /// Key for a zero-delay child that must sort immediately after the
  /// executing event but before every event created later: same (when,
  /// birth, origin), bumped `sub`.  Used for synchronous cross-lane effects
  /// (an MDS size update piggybacking on a client-side completion).  Such a
  /// child must not mint further children of its own — sub is a single
  /// per-parent counter, not a path.
  [[nodiscard]] EventKey child_key() {
    return EventKey{now_, cur_birth_, cur_origin_, ++cur_sub_};
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Origin layout: high bits lane id, low bits the per-engine counter.
  /// 44 bits ≈ 17e12 events per lane before overflow — far beyond any run.
  static constexpr unsigned kLaneShift = 44;

  struct HeapEntry {
    SimTime when;
    SimTime birth;
    std::uint64_t origin;  // lane-tagged creation order; FIFO tie-break
    std::uint32_t slot;
    std::uint32_t sub;
  };

  struct Slot {
    InlineTask fn;
    std::uint32_t heap_pos = kNil;  // position in heap_, kNil when free
    std::uint32_t gen = 0;          // bumped on release; validates EventIds
    std::uint32_t next_free = kNil;
    std::uint32_t ctx = 0;  // entity context the event executes under
  };

  static bool precedes(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    // Among simultaneous events: creation order.  birth is non-decreasing
    // and origin strictly increasing over one engine's creation sequence,
    // so within a single engine this is the historical FIFO tie-break.
    if (a.birth != b.birth) return a.birth < b.birth;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.sub < b.sub;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void place(std::uint32_t pos, HeapEntry entry);  // write entry + back-pointer
  void sift_up(std::uint32_t pos, HeapEntry entry);
  void sift_down(std::uint32_t pos, HeapEntry entry);
  void heap_erase(std::uint32_t pos);

  EventId push_event(const HeapEntry& proto, std::uint32_t ctx, InlineTask fn);

  /// Mints the next origin under the active context (entity mode) or the
  /// engine-global lane-tagged counter (classic mode — byte-identical to
  /// the historical behaviour).
  std::uint64_t mint_origin() {
    if (!entity_mode_) return lane_tag_ | ++next_seq_;
    if (ctx_ >= eseq_.size()) eseq_.resize(static_cast<std::size_t>(ctx_) + 1, 0);
    return (static_cast<std::uint64_t>(ctx_) << kLaneShift) | ++eseq_[ctx_];
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t lane_tag_ = 0;
  std::uint64_t executed_ = 0;
  // Entity-context state (enable_entity_contexts).  ctx_ tracks the minting
  // context: the executing event's context inside run_until, the setup
  // context otherwise.  eseq_ holds one counter per entity; it only grows
  // while new contexts first appear (topology-bounded), never in steady
  // state.
  bool entity_mode_ = false;
  std::uint32_t ctx_ = 0;
  std::uint32_t setup_ctx_ = 0;
  std::vector<std::uint64_t> eseq_;
  // Key of the event currently executing (run_until loads these at pop).
  SimTime cur_birth_ = 0;
  std::uint64_t cur_origin_ = 0;
  std::uint32_t cur_sub_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
};

}  // namespace qif::sim
