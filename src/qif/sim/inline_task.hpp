// Allocation-free type-erased closure for the event engine.
//
// Every scheduled event used to carry a std::function<void()>, which heap-
// allocates for any capture larger than the library's tiny SSO buffer
// (16 bytes on libstdc++) — i.e. for essentially every closure the pfs
// layer schedules.  At millions of events per campaign that is a malloc
// and a free per event, on the system's permanent hot path.
//
// InlineTask stores the callable inline in a fixed 128-byte buffer, sized
// for the largest closure scheduled today (MdtServer::dispatch's
// this + Task ≈ 104 bytes, see DESIGN.md) with headroom.  There is no heap
// fallback *by construction*: a closure that outgrows the buffer is a
// compile error, so the zero-allocation property cannot silently rot.  The
// type is move-only (closures own moved-in state such as std::function
// members) and relocation is a move-construct + destroy pair dispatched
// through a static ops table, never a heap round trip.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace qif::sim {

class InlineTask {
 public:
  /// Inline capture budget.  Raising it is cheap (events live in a pooled
  /// slab, not on the stack); shrinking it below any live closure is a
  /// compile error at the offending schedule site.
  static constexpr std::size_t kStorageBytes = 128;

  InlineTask() noexcept = default;
  InlineTask(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineTask> &&
                                        !std::is_same_v<Fn, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(Fn) <= kStorageBytes,
                  "closure exceeds InlineTask's inline buffer; shrink its "
                  "captures (or box the large member) — there is deliberately "
                  "no heap fallback");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-movable so event slots can be "
                  "relocated without a throwing state");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  InlineTask(InlineTask&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  /// Invokes the stored closure.  Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored closure (if any) and becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static void invoke_impl(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void relocate_impl(void* src, void* dst) noexcept {
    Fn* s = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* p) noexcept {
    static_cast<Fn*>(p)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops kOpsFor{&invoke_impl<Fn>, &relocate_impl<Fn>, &destroy_impl<Fn>};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kStorageBytes];
};

}  // namespace qif::sim
