// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from its own Rng stream,
// seeded explicitly from a (campaign seed, component name) pair.  This keeps
// runs bit-reproducible regardless of the order in which components are
// constructed, which the baseline/interference trace-matching pipeline
// depends on: the target workload must issue the *same* op sequence in both
// runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace qif::sim {

/// xoshiro256** by Blackman & Vigna, seeded through splitmix64.
/// Small, fast, and with far better statistical quality than the historical
/// LCGs; we avoid std::mt19937_64 because its 2.5 kB state is overkill for
/// the thousands of streams a campaign creates.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Derives a child seed from a parent seed and a component label, so that
  /// e.g. every OST's disk jitter stream differs but is stable across runs.
  static std::uint64_t derive_seed(std::uint64_t parent, std::string_view label) {
    // FNV-1a over the label, mixed into the parent via splitmix64.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : label) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    std::uint64_t x = parent ^ h;
    return splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] (inclusive).  Uses Lemire-style rejection to
  /// stay unbiased.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Exponential with the given mean (> 0).  Used for think times and
  /// arrival jitter.
  double exponential(double mean) {
    double u = next_double();
    // Guard u == 0 so log stays finite.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * log_approx(u);
  }

  /// Standard normal via Marsaglia polar method (no cached spare — cheap
  /// enough and keeps the generator state a pure function of draw count).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  static double log_approx(double v);

  std::uint64_t state_[4]{};
};

}  // namespace qif::sim
