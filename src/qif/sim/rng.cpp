#include "qif/sim/rng.hpp"

#include <cmath>

namespace qif::sim {

double Rng::log_approx(double v) { return std::log(v); }

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace qif::sim
