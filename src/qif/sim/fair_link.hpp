// Processor-sharing bandwidth model.
//
// A FairLink models a network port (e.g. a storage server's 1 GB/s NIC)
// whose capacity is shared equally among all in-flight transfers, the way
// long-lived TCP flows converge under a shared bottleneck.  This is the
// mechanism behind network-level I/O interference: every additional
// concurrent client stretches everyone's transfer time.
//
// Implementation: classic fluid-flow event-driven processor sharing.  Each
// transfer tracks its remaining bytes; whenever the active set changes we
// debit elapsed work from every transfer and reschedule the single "next
// completion" event.  O(n) per membership change, exact (integer bytes,
// nanosecond clock) and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

class FairLink {
 public:
  /// `bytes_per_second` is the full-duplex direction capacity of this port.
  FairLink(Simulation& sim, double bytes_per_second)
      : sim_(sim), bytes_per_second_(bytes_per_second) {}

  FairLink(const FairLink&) = delete;
  FairLink& operator=(const FairLink&) = delete;

  /// Starts a transfer of `bytes`; `on_done` fires when the last byte has
  /// been serviced.  Zero-byte transfers complete on the next event cycle.
  void transfer(std::int64_t bytes, std::function<void()> on_done);

  /// Number of transfers currently in flight.
  [[nodiscard]] std::size_t active() const { return flows_.size(); }

  /// Total bytes fully delivered so far (monitoring counter).
  [[nodiscard]] std::int64_t bytes_delivered() const { return bytes_delivered_; }

  /// Instantaneous per-flow rate in bytes/second (capacity / active flows).
  [[nodiscard]] double per_flow_rate() const {
    return flows_.empty() ? bytes_per_second_
                          : bytes_per_second_ / static_cast<double>(flows_.size());
  }

 private:
  struct Flow {
    double remaining;          // bytes left; double because shares are fractional
    std::int64_t total_bytes;  // original size, credited to bytes_delivered()
    std::function<void()> on_done;
  };

  void settle();      // debit elapsed work from all flows
  void reschedule();  // re-arm the next-completion event
  void on_completion();

  Simulation& sim_;
  double bytes_per_second_;
  std::vector<Flow> flows_;
  SimTime last_settle_ = 0;
  EventId pending_event_ = kInvalidEvent;
  std::int64_t bytes_delivered_ = 0;
};

}  // namespace qif::sim
