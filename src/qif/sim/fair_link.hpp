// Processor-sharing bandwidth model.
//
// A FairLink models a network port (e.g. a storage server's 1 GB/s NIC)
// whose capacity is shared equally among all in-flight transfers, the way
// long-lived TCP flows converge under a shared bottleneck.  This is the
// mechanism behind network-level I/O interference: every additional
// concurrent client stretches everyone's transfer time.
//
// Implementation: classic fluid-flow event-driven processor sharing.  Each
// transfer tracks its remaining bytes; whenever the active set changes we
// debit elapsed work from every transfer and re-arm the single "next
// completion" event.  O(n) per membership change, exact (integer bytes,
// nanosecond clock) and deterministic.
//
// Churn reduction (this is the engine's single heaviest cancel customer —
// every arriving transfer used to cancel and re-schedule the completion
// event unconditionally):
//   * the minimum remaining-bytes value is maintained incrementally —
//     settling debits every flow by the same amount, so the min just moves
//     with them and arrivals only take a min() against the new flow;
//   * when the recomputed completion time equals the already-armed one,
//     the pending event is kept instead of being cancelled and re-armed
//     (guarded to strictly-future times so same-tick event ordering, and
//     with it trace bit-identity, is preserved);
//   * the per-completion callback buffer is a reused member, not a fresh
//     vector per completion.
// None of this changes the settle arithmetic, so traces stay bit-identical
// to the pre-rebuild engine (pinned by test_sim_golden).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

class FairLink {
 public:
  /// `bytes_per_second` is the full-duplex direction capacity of this port.
  FairLink(Simulation& sim, double bytes_per_second)
      : sim_(sim), bytes_per_second_(bytes_per_second) {}

  FairLink(const FairLink&) = delete;
  FairLink& operator=(const FairLink&) = delete;

  /// Starts a transfer of `bytes`; `on_done` fires when the last byte has
  /// been serviced.  Zero-byte transfers complete on the next event cycle.
  void transfer(std::int64_t bytes, InlineTask on_done);

  /// Number of transfers currently in flight.
  [[nodiscard]] std::size_t active() const { return flows_.size(); }

  /// Total bytes fully delivered so far (monitoring counter).
  [[nodiscard]] std::int64_t bytes_delivered() const { return bytes_delivered_; }

  /// Completion events skipped because the re-armed deadline would have
  /// been identical (monitoring counter for the churn optimisation).
  [[nodiscard]] std::uint64_t reschedules_elided() const { return reschedules_elided_; }

  /// Fault injection: when set, the gate is consulted on every transfer();
  /// a `true` return drops the message (no link time consumed, `on_done`
  /// destroyed unfired).  Unset by default.
  void set_loss_gate(std::function<bool()> gate) { loss_gate_ = std::move(gate); }
  [[nodiscard]] std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Instantaneous per-flow rate in bytes/second (capacity / active flows).
  [[nodiscard]] double per_flow_rate() const {
    return flows_.empty() ? bytes_per_second_
                          : bytes_per_second_ / static_cast<double>(flows_.size());
  }

 private:
  struct Flow {
    double remaining;          // bytes left; double because shares are fractional
    std::int64_t total_bytes;  // original size, credited to bytes_delivered()
    InlineTask on_done;
  };

  void settle();      // debit elapsed work from all flows
  void reschedule();  // re-arm the next-completion event
  void on_completion();

  Simulation& sim_;
  double bytes_per_second_;
  std::vector<Flow> flows_;
  /// min over flows_ of .remaining; only meaningful while !flows_.empty().
  double min_remaining_ = 0.0;
  SimTime last_settle_ = 0;
  EventId pending_event_ = kInvalidEvent;
  SimTime pending_fire_ = 0;  ///< absolute time pending_event_ fires at
  std::int64_t bytes_delivered_ = 0;
  std::uint64_t reschedules_elided_ = 0;
  std::vector<InlineTask> done_;  ///< reused per-completion callback buffer
  std::function<bool()> loss_gate_;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace qif::sim
