#include "qif/sim/stats.hpp"

#include <algorithm>

namespace qif::sim {

std::vector<double> moving_average(const std::vector<double>& xs, std::size_t window) {
  if (xs.empty() || window <= 1) return xs;
  std::vector<double> out(xs.size());
  const std::size_t half = window / 2;
  double acc = 0.0;
  std::size_t lo = 0, hi = 0;  // [lo, hi) is the current window
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t want_lo = i > half ? i - half : 0;
    const std::size_t want_hi = std::min(xs.size(), i + half + 1);
    while (hi < want_hi) acc += xs[hi++];
    while (lo < want_lo) acc -= xs[lo++];
    out[i] = acc / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace qif::sim
