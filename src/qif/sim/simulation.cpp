#include "qif/sim/simulation.hpp"

#include <algorithm>
#include <limits>

namespace qif::sim {

bool Simulation::is_cancelled(EventId id) {
  if (cancelled_.empty()) return false;
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  // Swap-erase: cancellation lists stay tiny (timeouts that did not fire).
  *it = cancelled_.back();
  cancelled_.pop_back();
  return true;
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    // Move the event out before popping so the closure may schedule freely.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --live_events_;
    if (is_cancelled(ev.id)) continue;
    now_ = ev.when;
    ev.fn();
    ++executed_;
    ++ran;
  }
  // If we stopped because of the horizon (not queue exhaustion), advance the
  // clock to the horizon so back-to-back run_until calls tile cleanly.
  if (!queue_.empty() && until != std::numeric_limits<SimTime>::max() && until > now_) {
    now_ = until;
  }
  return ran;
}

}  // namespace qif::sim
