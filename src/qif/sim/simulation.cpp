#include "qif/sim/simulation.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace qif::sim {

// ---------------------------------------------------------------------------
// Slot slab
// ---------------------------------------------------------------------------

std::uint32_t Simulation::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    return idx;
  }
  assert(slots_.size() < kNil && "slot slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulation::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  s.heap_pos = kNil;
  ++s.gen;  // invalidate every outstanding EventId pointing here
  s.next_free = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// 4-ary heap keyed on (when, birth, origin, sub)
// ---------------------------------------------------------------------------

void Simulation::place(std::uint32_t pos, HeapEntry entry) {
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = pos;
}

void Simulation::sift_up(std::uint32_t pos, HeapEntry entry) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!precedes(entry, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, entry);
}

void Simulation::sift_down(std::uint32_t pos, HeapEntry entry) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t first = std::uint64_t{pos} * 4 + 1;
    if (first >= n) break;
    std::uint32_t best = static_cast<std::uint32_t>(first);
    const auto last = static_cast<std::uint32_t>(std::min<std::uint64_t>(first + 4, n));
    for (std::uint32_t c = best + 1; c < last; ++c) {
      if (precedes(heap_[c], heap_[best])) best = c;
    }
    if (!precedes(heap_[best], entry)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, entry);
}

void Simulation::heap_erase(std::uint32_t pos) {
  assert(pos < heap_.size());
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // erased the last entry
  // Re-seat the tail entry at `pos`; it may need to move either direction.
  if (pos > 0 && precedes(tail, heap_[(pos - 1) / 4])) {
    sift_up(pos, tail);
  } else {
    sift_down(pos, tail);
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

EventId Simulation::push_event(const HeapEntry& proto, std::uint32_t ctx,
                               InlineTask fn) {
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.ctx = ctx;
  HeapEntry entry = proto;
  entry.slot = idx;
  heap_.emplace_back();  // sift_up writes the real entry
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1), entry);
  return (static_cast<EventId>(idx) + 1) << 32 | s.gen;
}

EventId Simulation::schedule_at(SimTime when, InlineTask fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return push_event(HeapEntry{when, now_, mint_origin(), 0, 0}, ctx_,
                    std::move(fn));
}

EventId Simulation::schedule_after_ctx(SimDuration delay, std::uint32_t ctx,
                                       InlineTask fn) {
  return push_event(HeapEntry{now_ + delay, now_, mint_origin(), 0, 0}, ctx,
                    std::move(fn));
}

EventId Simulation::inject(const EventKey& key, InlineTask fn) {
  return inject(key, static_cast<std::uint32_t>(key.origin >> kLaneShift),
                std::move(fn));
}

EventId Simulation::inject(const EventKey& key, std::uint32_t ctx, InlineTask fn) {
  assert(key.when >= now_ && "cannot inject into the past");
  return push_event(HeapEntry{key.when, key.birth, key.origin, 0, key.sub}, ctx,
                    std::move(fn));
}

void Simulation::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const auto idx = static_cast<std::uint32_t>((id >> 32) - 1);
  if (idx >= slots_.size()) return;  // never a live handle of this engine
  Slot& s = slots_[idx];
  if (s.gen != static_cast<std::uint32_t>(id)) return;  // fired/cancelled/reused
  assert(s.heap_pos != kNil && "live generation must be queued");
  heap_erase(s.heap_pos);
  release_slot(idx);
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    const std::uint32_t idx = heap_.front().slot;
    now_ = heap_.front().when;
    cur_birth_ = heap_.front().birth;
    cur_origin_ = heap_.front().origin;
    cur_sub_ = heap_.front().sub;
    ctx_ = slots_[idx].ctx;  // mint everything this event schedules under it
    // Move the closure out and retire the slot *before* firing so the
    // closure may freely schedule, cancel, and reuse this very slot.  Its
    // own id dies with the generation bump, so self-cancel is a no-op.
    InlineTask fn = std::move(slots_[idx].fn);
    heap_erase(0);
    release_slot(idx);
    fn();
    ++executed_;
    ++ran;
  }
  // If we stopped because of the horizon (not queue exhaustion), advance the
  // clock to the horizon so back-to-back run_until calls tile cleanly.
  if (!heap_.empty() && until != std::numeric_limits<SimTime>::max() && until > now_) {
    now_ = until;
  }
  ctx_ = setup_ctx_;  // driver-thread scheduling resumes under the setup context
  return ran;
}

bool Simulation::check_invariants() const {
  // Heap property + back-pointers.
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (i > 0 && precedes(heap_[i], heap_[(i - 1) / 4])) return false;
    const HeapEntry& e = heap_[i];
    if (e.slot >= slots_.size()) return false;
    if (slots_[e.slot].heap_pos != i) return false;
  }
  // Free list: every entry unqueued, no cycles, and the counts add up.
  std::size_t free_count = 0;
  for (std::uint32_t idx = free_head_; idx != kNil; idx = slots_[idx].next_free) {
    if (idx >= slots_.size() || slots_[idx].heap_pos != kNil) return false;
    if (++free_count > slots_.size()) return false;  // cycle
  }
  return heap_.size() + free_count == slots_.size();
}

}  // namespace qif::sim
