#include "qif/sim/lanes.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace qif::sim {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
}  // namespace

LaneGroup::LaneGroup(int data_lanes, SimDuration lookahead)
    : n_(data_lanes), lookahead_(lookahead) {
  assert(data_lanes >= 1 && "need at least one data lane");
  assert(lookahead > 0 && "conservative synchronization needs lookahead > 0");
  const auto total = static_cast<std::size_t>(n_) + 1;
  sims_ = std::vector<Simulation>(total);
  for (std::size_t i = 0; i < total; ++i) {
    // Entity-context minting makes the merged event order independent of
    // the partition (see simulation.hpp).  The default setup context is the
    // lane index so raw LaneGroup users get distinct origins per lane; the
    // cluster overrides it per entity while wiring.
    sims_[i].enable_entity_contexts();
    sims_[i].set_context(static_cast<std::uint32_t>(i));
  }
  outbox_.resize(total);
  for (auto& row : outbox_) row.resize(total);
  active_.assign(total, 0);
  ran_.assign(total, 0);
  // Lane 0 and the meta lane run on the driver thread; lanes 1.. get a
  // persistent worker each, parked on the round counter between windows.
  workers_.reserve(static_cast<std::size_t>(n_ > 1 ? n_ - 1 : 0));
  for (int i = 1; i < n_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

LaneGroup::~LaneGroup() {
  stop_.store(true, std::memory_order_relaxed);
  round_.fetch_add(1, std::memory_order_release);
  round_.notify_all();
  for (auto& t : workers_) t.join();
}

void LaneGroup::worker_main(int lane) {
  const auto li = static_cast<std::size_t>(lane);
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t r = round_.load(std::memory_order_acquire);
    while (r == seen) {
      round_.wait(r, std::memory_order_acquire);
      r = round_.load(std::memory_order_acquire);
    }
    seen = r;
    if (stop_.load(std::memory_order_relaxed)) return;
    if (active_[li] != 0) {
      ran_[li] += sims_[li].run_until(bound_);
    }
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_all();
  }
}

void LaneGroup::deliver_all() {
  for (auto& row : outbox_) {
    for (std::size_t dst = 0; dst < row.size(); ++dst) {
      auto& box = row[dst];
      for (LaneMessage& m : box) {
        sims_[dst].inject(m.key, m.ctx, std::move(m.fn));
      }
      box.clear();  // keep capacity — steady-state posting stays alloc-free
    }
  }
}

void LaneGroup::run_window_stage_a() {
  // Workers exist only for lanes 1..n_-1; skip the wake-up entirely when
  // none of them has work this window (small clusters spend most windows
  // in one or two lanes).
  bool any_worker = false;
  for (int i = 1; i < n_; ++i) {
    any_worker |= active_[static_cast<std::size_t>(i)] != 0;
  }
  if (any_worker) {
    done_.store(0, std::memory_order_relaxed);
    round_.fetch_add(1, std::memory_order_release);
    round_.notify_all();
  }
  if (active_[0] != 0) {
    ran_[0] += sims_[0].run_until(bound_);
  }
  if (any_worker) {
    const auto expected = static_cast<std::uint32_t>(workers_.size());
    for (;;) {
      const std::uint32_t d = done_.load(std::memory_order_acquire);
      if (d == expected) break;
      done_.wait(d, std::memory_order_acquire);
    }
  }
}

std::uint64_t LaneGroup::run_until(SimTime until) {
  const std::uint64_t before = events_executed();
  for (;;) {
    deliver_all();
    SimTime min_nt = kNever;
    for (const Simulation& s : sims_) min_nt = std::min(min_nt, s.next_event_time());
    if (min_nt == kNever) break;  // fully drained — clocks stay put
    if (min_nt > until) {
      // Stopped by the horizon: advance every lane's clock so back-to-back
      // run_until calls tile exactly like the sequential engine's.
      for (Simulation& s : sims_) s.run_until(until);
      break;
    }
    // Conservative window: every message created in [min_nt, bound] arrives
    // at or after min_nt + lookahead == bound + 1 (except inherited-key
    // messages, which only target the meta lane and are delivered between
    // the stages).
    bound_ = std::min(until == kNever ? kNever : until,
                      min_nt + lookahead_ - 1);
    for (int i = 0; i < n_; ++i) {
      active_[static_cast<std::size_t>(i)] =
          sims_[static_cast<std::size_t>(i)].next_event_time() <= bound_ ? 1 : 0;
    }
    run_window_stage_a();
    // Stage B: drain stage-A output (the zero-delay meta messages must land
    // before the meta lane runs their timestamps), then run the meta lane.
    deliver_all();
    if (sims_[static_cast<std::size_t>(n_)].next_event_time() <= bound_) {
      ran_[static_cast<std::size_t>(n_)] +=
          sims_[static_cast<std::size_t>(n_)].run_until(bound_);
    }
  }
  return events_executed() - before;
}

SimTime LaneGroup::now() const {
  SimTime t = 0;
  for (const Simulation& s : sims_) t = std::max(t, s.now());
  return t;
}

std::size_t LaneGroup::pending() const {
  std::size_t p = 0;
  for (const Simulation& s : sims_) p += s.pending();
  for (const auto& row : outbox_) {
    for (const auto& box : row) p += box.size();
  }
  return p;
}

std::uint64_t LaneGroup::events_executed() const {
  std::uint64_t e = 0;
  for (const Simulation& s : sims_) e += s.events_executed();
  return e;
}

}  // namespace qif::sim
