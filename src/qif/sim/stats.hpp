// Small online statistics helpers shared across modules.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace qif::sim {

/// Welford online mean/variance accumulator.  Used wherever the monitors
/// need mean and standard deviation over the per-second samples of a window
/// without storing them (the paper aggregates sum, mean, std per window).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;  // population variance
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Centered moving-average smoothing, as used for the Figure 1 series
/// ("All results are smoothed using a moving window").
std::vector<double> moving_average(const std::vector<double>& xs, std::size_t window);

}  // namespace qif::sim
