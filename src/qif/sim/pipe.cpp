#include "qif/sim/pipe.hpp"

#include <cmath>
#include <utility>

namespace qif::sim {

void Pipe::ring_push(Message msg) {
  if (count_ == ring_.size()) {
    // Grow once and re-pack in FIFO order; steady state never re-enters.
    std::vector<Message> bigger;
    bigger.reserve(ring_.empty() ? 16 : ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    }
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = std::move(msg);
  ++count_;
}

Pipe::Message Pipe::ring_pop() {
  Message msg = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return msg;
}

void Pipe::send(std::int64_t bytes, std::int32_t route_tag, InlineTask on_delivered) {
  if (loss_gate_ && loss_gate_()) {
    ++messages_dropped_;
    return;  // dropped on the wire: no link time, callback never fires
  }
  ring_push(Message{bytes < 0 ? 0 : bytes, route_tag, std::move(on_delivered)});
  if (!busy_) start_next();
}

void Pipe::start_next() {
  if (count_ == 0) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Message msg = ring_pop();
  current_bytes_ = msg.bytes;
  current_tag_ = msg.route_tag;
  current_done_ = std::move(msg.on_delivered);
  const auto serialize = static_cast<SimDuration>(
      std::ceil(static_cast<double>(current_bytes_) / bytes_per_second_ * 1e9));
  // The pipe frees up after serialization; propagation overlaps with the
  // next message (cut-through at the far end).
  sim_.schedule_after(serialize, [this] { on_serialized(); });
}

void Pipe::on_serialized() {
  bytes_sent_ += current_bytes_;
  if (route_) {
    // Cross-lane delivery: the lane fabric turns the callback into a
    // timestamped message keyed exactly like the local delivery event the
    // classic branch below would have scheduled.
    route_(latency_, current_tag_, std::move(current_done_));
    start_next();
    return;
  }
  // Park the callback in a pooled slot; the delivery event then only needs
  // {this, slot}, independent of pipe state (multiple deliveries overlap).
  std::uint32_t slot;
  if (!delivery_free_.empty()) {
    slot = delivery_free_.back();
    delivery_free_.pop_back();
    delivery_pool_[slot] = std::move(current_done_);
  } else {
    slot = static_cast<std::uint32_t>(delivery_pool_.size());
    delivery_pool_.push_back(std::move(current_done_));
  }
  // Deliver after the propagation latency, independently of pipe state.
  sim_.schedule_after(latency_, [this, slot] {
    InlineTask fn = std::move(delivery_pool_[slot]);
    delivery_free_.push_back(slot);
    if (fn) fn();
  });
  start_next();
}

}  // namespace qif::sim
