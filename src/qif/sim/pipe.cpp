#include "qif/sim/pipe.hpp"

#include <cmath>
#include <utility>

namespace qif::sim {

void Pipe::send(std::int64_t bytes, std::function<void()> on_delivered) {
  queue_.push_back(Message{bytes < 0 ? 0 : bytes, std::move(on_delivered)});
  if (!busy_) start_next();
}

void Pipe::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  const auto serialize =
      static_cast<SimDuration>(std::ceil(static_cast<double>(msg.bytes) / bytes_per_second_ * 1e9));
  // The pipe frees up after serialization; propagation overlaps with the
  // next message (cut-through at the far end).
  sim_.schedule_after(serialize, [this, msg = std::move(msg)]() mutable {
    bytes_sent_ += msg.bytes;
    // Deliver after the propagation latency, independently of pipe state.
    sim_.schedule_after(latency_, [fn = std::move(msg.on_delivered)] {
      if (fn) fn();
    });
    start_next();
  });
}

}  // namespace qif::sim
