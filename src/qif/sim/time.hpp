// Simulated-time primitives.
//
// The whole simulator runs on a single signed 64-bit nanosecond clock.
// Nanoseconds give ~292 years of range, which is far beyond any campaign we
// run, while keeping every duration computation exact and deterministic
// (no floating-point clock drift between runs).
#pragma once

#include <cstdint>

namespace qif::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Builds a duration from seconds expressed as a double (e.g. "0.0085 s
/// seek").  Rounds to the nearest nanosecond.
constexpr SimDuration from_seconds(double seconds) {
  return static_cast<SimDuration>(seconds * 1e9 + (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts a simulated duration to seconds for reporting / feature math.
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

/// Converts a simulated duration to milliseconds for reporting.
constexpr double to_millis(SimDuration d) { return static_cast<double>(d) * 1e-6; }

}  // namespace qif::sim
