#include "qif/sim/fair_link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace qif::sim {

void FairLink::transfer(std::int64_t bytes, std::function<void()> on_done) {
  settle();
  const std::int64_t clamped = std::max<std::int64_t>(bytes, 0);
  flows_.push_back(Flow{static_cast<double>(clamped), clamped, std::move(on_done)});
  reschedule();
}

void FairLink::settle() {
  const SimTime now = sim_.now();
  if (now == last_settle_ || flows_.empty()) {
    last_settle_ = now;
    return;
  }
  const double elapsed_s = to_seconds(now - last_settle_);
  const double per_flow = elapsed_s * bytes_per_second_ / static_cast<double>(flows_.size());
  for (auto& f : flows_) f.remaining = std::max(0.0, f.remaining - per_flow);
  last_settle_ = now;
}

void FairLink::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (flows_.empty()) return;
  double min_remaining = flows_.front().remaining;
  for (const auto& f : flows_) min_remaining = std::min(min_remaining, f.remaining);
  const double per_flow_bps = bytes_per_second_ / static_cast<double>(flows_.size());
  const double eta_s = min_remaining / per_flow_bps;
  // Ceil to whole nanoseconds so the flow is guaranteed drained at the event.
  const auto delay = static_cast<SimDuration>(std::ceil(eta_s * 1e9));
  pending_event_ = sim_.schedule_after(delay, [this] { on_completion(); });
}

void FairLink::on_completion() {
  pending_event_ = kInvalidEvent;
  settle();
  // Collect every flow that has drained (several may finish simultaneously).
  // Epsilon covers the sub-nanosecond residue left by the ceil in reschedule.
  constexpr double kEps = 1e-6;
  std::vector<std::function<void()>> done;
  for (std::size_t i = 0; i < flows_.size();) {
    if (flows_[i].remaining <= kEps) {
      bytes_delivered_ += flows_[i].total_bytes;
      done.push_back(std::move(flows_[i].on_done));
      flows_[i] = std::move(flows_.back());
      flows_.pop_back();
    } else {
      ++i;
    }
  }
  reschedule();
  // Fire callbacks after internal state is consistent; callbacks routinely
  // start new transfers on this same link.
  for (auto& fn : done) {
    if (fn) fn();
  }
}

}  // namespace qif::sim
