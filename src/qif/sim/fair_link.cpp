#include "qif/sim/fair_link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace qif::sim {

void FairLink::transfer(std::int64_t bytes, InlineTask on_done) {
  if (loss_gate_ && loss_gate_()) {
    ++messages_dropped_;
    return;  // dropped on the wire: no link time, callback never fires
  }
  settle();
  const std::int64_t clamped = std::max<std::int64_t>(bytes, 0);
  const double remaining = static_cast<double>(clamped);
  flows_.push_back(Flow{remaining, clamped, std::move(on_done)});
  // Incremental min maintenance: an arrival can only lower the minimum.
  min_remaining_ = flows_.size() == 1 ? remaining : std::min(min_remaining_, remaining);
  reschedule();
}

void FairLink::settle() {
  const SimTime now = sim_.now();
  if (now == last_settle_ || flows_.empty()) {
    last_settle_ = now;
    return;
  }
  const double elapsed_s = to_seconds(now - last_settle_);
  const double per_flow = elapsed_s * bytes_per_second_ / static_cast<double>(flows_.size());
  for (auto& f : flows_) f.remaining = std::max(0.0, f.remaining - per_flow);
  // Every flow was debited by the same amount through the same expression,
  // and x -> max(0, x - p) is monotone, so the minimum moves with its flow:
  // this stays bit-identical to a full rescan.
  min_remaining_ = std::max(0.0, min_remaining_ - per_flow);
  last_settle_ = now;
}

void FairLink::reschedule() {
  if (flows_.empty()) {
    if (pending_event_ != kInvalidEvent) {
      sim_.cancel(pending_event_);
      pending_event_ = kInvalidEvent;
    }
    return;
  }
  const double per_flow_bps = bytes_per_second_ / static_cast<double>(flows_.size());
  const double eta_s = min_remaining_ / per_flow_bps;
  // Ceil to whole nanoseconds so the flow is guaranteed drained at the event.
  const auto delay = static_cast<SimDuration>(std::ceil(eta_s * 1e9));
  const SimTime fire = sim_.now() + delay;
  if (pending_event_ != kInvalidEvent) {
    // Keep the armed event when the deadline did not move.  Restricted to
    // strictly-future deadlines: re-arming a same-tick event would give it
    // a fresh (larger) sequence number, so keeping the old one could fire
    // it earlier among simultaneous events — only elide when no other
    // event can legally sit between the two deadlines.
    if (fire == pending_fire_ && fire > sim_.now()) {
      ++reschedules_elided_;
      return;
    }
    sim_.cancel(pending_event_);
  }
  pending_fire_ = fire;
  pending_event_ = sim_.schedule_after(delay, [this] { on_completion(); });
}

void FairLink::on_completion() {
  pending_event_ = kInvalidEvent;
  settle();
  // Collect every flow that has drained (several may finish simultaneously)
  // into the reused callback buffer.  Epsilon covers the sub-nanosecond
  // residue left by the ceil in reschedule.
  constexpr double kEps = 1e-6;
  done_.clear();
  for (std::size_t i = 0; i < flows_.size();) {
    if (flows_[i].remaining <= kEps) {
      bytes_delivered_ += flows_[i].total_bytes;
      done_.push_back(std::move(flows_[i].on_done));
      flows_[i] = std::move(flows_.back());
      flows_.pop_back();
    } else {
      ++i;
    }
  }
  // The drained flows were the minimum; rescan the survivors once.
  if (!flows_.empty()) {
    double m = flows_.front().remaining;
    for (const auto& f : flows_) m = std::min(m, f.remaining);
    min_remaining_ = m;
  }
  reschedule();
  // Fire callbacks after internal state is consistent; callbacks routinely
  // start new transfers on this same link (they never re-enter this method
  // synchronously — completions only run from the event loop).
  for (auto& fn : done_) {
    if (fn) fn();
  }
  done_.clear();  // destroy captured state promptly; keeps capacity
}

}  // namespace qif::sim
