// FIFO store-and-forward resource.
//
// A Pipe serializes messages one at a time at a fixed byte rate with a fixed
// per-message latency — the model we use for a client host's NIC egress and
// for RPC framing overhead.  Unlike FairLink (which models converged fair
// sharing at a contended port), a Pipe preserves strict arrival order, which
// matters for per-rank op streams: a rank's requests may not overtake each
// other.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

class Pipe {
 public:
  /// `bytes_per_second` — serialization rate; `latency` — fixed per-message
  /// propagation delay added after serialization.
  Pipe(Simulation& sim, double bytes_per_second, SimDuration latency)
      : sim_(sim), bytes_per_second_(bytes_per_second), latency_(latency) {}

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Enqueues a message; `on_delivered` fires once the message has fully
  /// serialized (in FIFO order) and propagated.
  void send(std::int64_t bytes, std::function<void()> on_delivered);

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Message {
    std::int64_t bytes;
    std::function<void()> on_delivered;
  };

  void start_next();

  Simulation& sim_;
  double bytes_per_second_;
  SimDuration latency_;
  std::deque<Message> queue_;
  bool busy_ = false;
  std::int64_t bytes_sent_ = 0;
};

}  // namespace qif::sim
