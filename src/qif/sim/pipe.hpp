// FIFO store-and-forward resource.
//
// A Pipe serializes messages one at a time at a fixed byte rate with a fixed
// per-message latency — the model we use for a client host's NIC egress and
// for RPC framing overhead.  Unlike FairLink (which models converged fair
// sharing at a contended port), a Pipe preserves strict arrival order, which
// matters for per-rank op streams: a rank's requests may not overtake each
// other.
//
// Allocation discipline: the waiting queue is a grow-once ring buffer (a
// deque would allocate/free blocks as it marches), and delivery callbacks
// park in a pooled slot so the in-flight delivery event captures only
// {this, slot index} instead of the full closure.  After warm-up a pipe
// performs zero heap allocations per message (asserted by test_sim_alloc).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

class Pipe {
 public:
  /// `bytes_per_second` — serialization rate; `latency` — fixed per-message
  /// propagation delay added after serialization.
  Pipe(Simulation& sim, double bytes_per_second, SimDuration latency)
      : sim_(sim), bytes_per_second_(bytes_per_second), latency_(latency) {}

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Enqueues a message; `on_delivered` fires once the message has fully
  /// serialized (in FIFO order) and propagated.  `route_tag` is opaque to
  /// the pipe: it is handed to the delivery route (lane mode) so the fabric
  /// knows which lane the far end lives in; untagged sends carry -1.
  void send(std::int64_t bytes, InlineTask on_delivered) {
    send(bytes, -1, std::move(on_delivered));
  }
  void send(std::int64_t bytes, std::int32_t route_tag, InlineTask on_delivered);

  [[nodiscard]] std::size_t queue_depth() const { return count_ + (busy_ ? 1 : 0); }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }

  /// Fault injection: when set, the gate is consulted on every send(); a
  /// `true` return drops the message on the floor (no link time consumed,
  /// the delivery callback is destroyed unfired).  Unset by default — the
  /// healthy path takes no branch cost beyond one bool test.
  void set_loss_gate(std::function<bool()> gate) { loss_gate_ = std::move(gate); }
  [[nodiscard]] std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Lane mode: when the far end of this pipe may live in a different event
  /// lane, the delivery callback must become a cross-lane message instead of
  /// a local event.  The route is invoked at serialization end with the
  /// propagation latency, the message's route tag, and the callback; it
  /// must either schedule locally (same lane) or hand the callback to the
  /// lane fabric, which stamps the key from this pipe's engine and posts
  /// it.  Unset by default — the classic path schedules locally.
  using DeliveryRoute =
      std::function<void(SimDuration latency, std::int32_t route_tag, InlineTask fn)>;
  void set_delivery_route(DeliveryRoute route) { route_ = std::move(route); }

 private:
  struct Message {
    std::int64_t bytes;
    std::int32_t route_tag;
    InlineTask on_delivered;
  };

  void start_next();
  void on_serialized();
  void ring_push(Message msg);
  Message ring_pop();

  Simulation& sim_;
  double bytes_per_second_;
  SimDuration latency_;

  // Ring buffer of waiting messages (head_ = oldest, count_ live entries).
  std::vector<Message> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;

  // The message currently serializing (busy_ == true).
  std::int64_t current_bytes_ = 0;
  std::int32_t current_tag_ = -1;
  InlineTask current_done_;

  // Pooled parking slots for callbacks riding out the propagation delay;
  // several deliveries can be in flight at once (cut-through overlap).
  std::vector<InlineTask> delivery_pool_;
  std::vector<std::uint32_t> delivery_free_;

  bool busy_ = false;
  std::int64_t bytes_sent_ = 0;
  std::function<bool()> loss_gate_;
  DeliveryRoute route_;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace qif::sim
