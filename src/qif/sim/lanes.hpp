// Conservative multi-lane discrete-event engine (barrier-window LBTS).
//
// A LaneGroup partitions one logical simulation across several Simulation
// engines ("lanes") so a single big scenario can use several cores.  Lanes
// 0..data_lanes()-1 hold disjoint slices of the cluster (client nodes plus
// the OSS groups they are partitioned with); one extra *meta* lane holds
// the metadata server.  Every cross-lane interaction travels as a
// timestamped LaneMessage carrying a full EventKey plus the destination
// entity's context, and all engines mint keys under entity contexts
// (simulation.hpp), so the merged execution order — and therefore every
// trace, counter, and RNG draw sequence — is deterministic and identical
// for every lane count; `data_lanes == 1` is the sequential reference (see
// DESIGN.md "Parallel event lanes" for the exact contract).
//
// Synchronization is a conservative barrier window, not null messages:
//   safe  = min over all lanes of next_event_time() + lookahead
//   bound = min(safe - 1, caller horizon)
// where `lookahead` is the fabric link latency — the minimum delay of any
// cross-lane message *except* the zero-delay parent-keyed kind (below).
// Each window runs two stages:
//   stage A: every data lane with work at or before `bound` runs
//            concurrently to `bound`; outgoing messages accumulate in
//            per-(src,dst) outboxes owned by the posting thread.
//   stage B: the driver drains all outboxes, then runs the meta lane to the
//            same `bound` on its own thread.
// Any message created at time t in the window has t >= min next_event_time,
// so its delivery time t + lookahead >= safe > bound: it can only land in a
// *later* window, which stage-A lanes have not started — no lane ever
// receives an event in its past.  The one exception is a zero-delay message
// that inherits its creator's key (Simulation::child_key — the MDS size
// update a client completion performs synchronously in the sequential
// engine).  Those always flow data lane -> meta lane, and stage B runs
// after every data lane has finished the window, so they too are delivered
// before the receiving engine passes their timestamp.
//
// The trade against null-message synchronization: windows cost two barrier
// rounds each, but the window size adapts to the earliest pending event, so
// quiet stretches are skipped in one hop and the cost amortizes over every
// event in a busy window.  Null messages would let a lane run ahead of a
// quiet peer without a global barrier, but with an all-to-all fabric every
// lane borders every other, so the null-message graph is dense and its
// per-edge timestamped traffic costs more than the two barriers — and a
// global window keeps the deterministic-merge contract trivially auditable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

/// One cross-lane message: run `fn` in the destination lane as an event
/// with the carried key, executing under entity context `ctx` (the
/// destination entity — deliveries re-tag the context at the boundary).
struct LaneMessage {
  EventKey key;
  std::uint32_t ctx;
  InlineTask fn;
};

class LaneGroup {
 public:
  /// `data_lanes` >= 1 engine lanes plus one meta lane.  `lookahead` is the
  /// minimum delay of every non-inherited cross-lane message (the fabric
  /// link latency); it must be > 0.
  LaneGroup(int data_lanes, SimDuration lookahead);
  LaneGroup(const LaneGroup&) = delete;
  LaneGroup& operator=(const LaneGroup&) = delete;
  ~LaneGroup();

  [[nodiscard]] int data_lanes() const { return n_; }
  /// Index of the meta lane (== data_lanes()).
  [[nodiscard]] int meta_lane() const { return n_; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  /// Lane engines.  Index data_lanes() is the meta lane.
  [[nodiscard]] Simulation& lane(int i) { return sims_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Simulation& lane(int i) const {
    return sims_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Simulation& meta() { return sims_[static_cast<std::size_t>(n_)]; }

  /// Posts a cross-lane message.  Must be called either from code executing
  /// inside lane `src`'s current window (the posting thread owns that
  /// outbox row until the window barrier) or from the driver thread between
  /// run_until calls.  `key.when` must be >= safe for fabric messages, or
  /// carry an inherited child key targeting the meta lane.  `ctx` is the
  /// entity context the delivered event executes under (the destination
  /// entity's id).
  void post(int src, int dst, const EventKey& key, std::uint32_t ctx,
            InlineTask fn) {
    outbox_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)]
        .push_back(LaneMessage{key, ctx, std::move(fn)});
  }

  /// Runs every lane to `until` in conservative windows.  Events at exactly
  /// `until` still fire.  Returns the number of events executed across all
  /// lanes by this call.
  std::uint64_t run_until(SimTime until);

  /// Frontier clock: the farthest any lane has advanced.  After run_until
  /// stopped at its horizon this equals the horizon, mirroring the
  /// sequential engine's tiling contract.
  [[nodiscard]] SimTime now() const;

  /// Pending events across all lanes plus undelivered cross-lane messages.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] std::uint64_t events_executed() const;

 private:
  void deliver_all();
  void worker_main(int lane);
  void run_window_stage_a();

  int n_;
  SimDuration lookahead_;
  std::vector<Simulation> sims_;  // n_ data lanes + meta at index n_
  // outbox_[src][dst]: written only by the thread running lane `src` during
  // a window (or the driver between windows); drained by the driver while
  // every worker is parked.  clear() keeps capacity, so steady-state
  // posting never allocates.
  std::vector<std::vector<std::vector<LaneMessage>>> outbox_;

  // Window barrier.  The driver publishes (bound_, active_) and bumps
  // round_ (release); workers acquire round_, run their lane if active, and
  // ack on done_ (release) which the driver acquires — that pair is the
  // happens-before edge for all lane state and outboxes.
  std::vector<std::thread> workers_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint64_t> ran_;
  SimTime bound_ = 0;
  std::atomic<std::uint64_t> round_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace qif::sim
