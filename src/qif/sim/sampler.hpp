// Periodic sampling process.
//
// Both monitors in the paper record once per second ("All metrics in this
// section are recorded once every second") and aggregate per time window.
// Sampler is that once-per-period heartbeat: it re-arms itself until
// stopped, always firing at exact multiples of the period so samples from
// different servers line up.
#pragma once

#include <functional>
#include <utility>

#include "qif/sim/simulation.hpp"

namespace qif::sim {

class Sampler {
 public:
  /// `fn(tick_index)` fires at period, 2*period, ... until stop().
  Sampler(Simulation& sim, SimDuration period, std::function<void(std::uint64_t)> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return tick_; }

 private:
  void arm() {
    pending_ = sim_.schedule_after(period_, [this] {
      if (!running_) return;
      ++tick_;
      fn_(tick_);
      if (running_) arm();
    });
  }

  Simulation& sim_;
  SimDuration period_;
  std::function<void(std::uint64_t)> fn_;
  bool running_ = false;
  std::uint64_t tick_ = 0;
  EventId pending_ = kInvalidEvent;
};

}  // namespace qif::sim
