#include "qif/ctrl/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace qif::ctrl {
namespace {

/// EWMA smoothing for the per-port latency signal: heavy enough that one
/// fast cache hit cannot unflag a contended port, light enough to react
/// within a handful of chunks.
constexpr double kSignalAlpha = 0.3;
/// Hysteresis: a hot port cools only after dropping below threshold/2.
constexpr double kCoolFraction = 0.5;
/// Decay on the probing controller's best-throughput memory, so a stale
/// optimum from a quieter phase is forgotten and the walk re-probes.
constexpr double kBestDecay = 0.9;
/// Upward probes must beat the best by this margin to be adopted.
constexpr double kUpMargin = 0.05;

[[noreturn]] void bad_spec(const std::string& spec, const std::string& what) {
  throw std::invalid_argument("bad --mitigate spec '" + spec + "': " + what);
}

double parse_num(const std::string& spec, const std::string& key,
                 const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    bad_spec(spec, "key '" + key + "' needs a number, got '" + value + "'");
  }
  if (used != value.size()) {
    bad_spec(spec, "key '" + key + "' needs a number, got '" + value + "'");
  }
  return v;
}

}  // namespace

MitigationConfig parse_mitigation(const std::string& spec) {
  MitigationConfig cfg;
  if (spec.empty() || spec == "off") return cfg;
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "token") {
    cfg.policy = Policy::kTokenBucket;
  } else if (kind == "probe") {
    cfg.policy = Policy::kProbing;
  } else {
    bad_spec(spec, "unknown policy '" + kind + "' (expected off, token or probe)");
  }
  if (colon == std::string::npos) return cfg;

  std::istringstream rest(spec.substr(colon + 1));
  std::string kv;
  while (std::getline(rest, kv, ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) bad_spec(spec, "expected key=value, got '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "epoch") {
      const double s = parse_num(spec, key, value);
      if (s <= 0) bad_spec(spec, "epoch must be > 0 seconds");
      cfg.epoch = static_cast<sim::SimDuration>(s * static_cast<double>(sim::kSecond));
    } else if (key == "scope") {
      if (value == "noise") {
        cfg.scope = Scope::kNoise;
      } else if (value == "all") {
        cfg.scope = Scope::kAll;
      } else {
        bad_spec(spec, "scope must be noise or all, got '" + value + "'");
      }
    } else if (key == "rate") {
      const double mib = parse_num(spec, key, value);
      if (mib <= 0) bad_spec(spec, "rate must be > 0 MiB/s");
      cfg.rate_bytes_per_s = static_cast<std::int64_t>(mib * (1 << 20));
    } else if (key == "burst") {
      const double mib = parse_num(spec, key, value);
      if (mib <= 0) bad_spec(spec, "burst must be > 0 MiB");
      cfg.burst_bytes = static_cast<std::int64_t>(mib * (1 << 20));
    } else if (key == "cut") {
      cfg.cut = parse_num(spec, key, value);
      if (cfg.cut <= 0 || cfg.cut > 1) bad_spec(spec, "cut must be in (0, 1]");
    } else if (key == "flag") {
      cfg.flag_ns_per_byte = parse_num(spec, key, value);
      if (cfg.flag_ns_per_byte <= 0) bad_spec(spec, "flag must be > 0 ns/byte");
    } else if (key == "init") {
      cfg.probe_init = static_cast<int>(parse_num(spec, key, value));
    } else if (key == "min") {
      cfg.probe_min = static_cast<int>(parse_num(spec, key, value));
    } else if (key == "max") {
      cfg.probe_max = static_cast<int>(parse_num(spec, key, value));
    } else if (key == "step") {
      cfg.probe_step = static_cast<int>(parse_num(spec, key, value));
      if (cfg.probe_step < 1) bad_spec(spec, "step must be >= 1");
    } else if (key == "tol") {
      cfg.probe_tol = parse_num(spec, key, value);
      if (cfg.probe_tol < 0 || cfg.probe_tol >= 1) bad_spec(spec, "tol must be in [0, 1)");
    } else {
      bad_spec(spec, "unknown key '" + key + "'");
    }
  }
  if (cfg.probe_min < 1 || cfg.probe_max < cfg.probe_min) {
    bad_spec(spec, "need 1 <= min <= max");
  }
  if (cfg.probe_init < cfg.probe_min || cfg.probe_init > cfg.probe_max) {
    bad_spec(spec, "need min <= init <= max");
  }
  return cfg;
}

std::string to_spec(const MitigationConfig& config) {
  if (config.empty()) return "off";
  char buf[256];
  const double epoch_s =
      static_cast<double>(config.epoch) / static_cast<double>(sim::kSecond);
  const char* scope = config.scope == Scope::kNoise ? "noise" : "all";
  if (config.policy == Policy::kTokenBucket) {
    std::snprintf(buf, sizeof(buf), "token:rate=%g,burst=%g,cut=%g,flag=%g,epoch=%g,scope=%s",
                  static_cast<double>(config.rate_bytes_per_s) / (1 << 20),
                  static_cast<double>(config.burst_bytes) / (1 << 20), config.cut,
                  config.flag_ns_per_byte, epoch_s, scope);
  } else {
    std::snprintf(buf, sizeof(buf), "probe:init=%d,min=%d,max=%d,step=%d,tol=%g,epoch=%g,scope=%s",
                  config.probe_init, config.probe_min, config.probe_max,
                  config.probe_step, config.probe_tol, epoch_s, scope);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Controller base: shared epoch accounting and the self latency signal.
// ---------------------------------------------------------------------------

Controller::Controller(const MitigationConfig& config, int n_ports, sim::SimTime /*now*/)
    : config_(config), ports_(static_cast<std::size_t>(n_ports)) {}

void Controller::on_chunk_complete(int oss_port, std::int64_t bytes,
                                   sim::SimDuration rtt) {
  cur_.completed_bytes += bytes;
  if (oss_port < 0 || static_cast<std::size_t>(oss_port) >= ports_.size() || bytes <= 0) {
    return;
  }
  PortSignal& p = ports_[static_cast<std::size_t>(oss_port)];
  const double sample = static_cast<double>(rtt) / static_cast<double>(bytes);
  p.ewma_ns_per_byte =
      p.seeded ? kSignalAlpha * sample + (1.0 - kSignalAlpha) * p.ewma_ns_per_byte
               : sample;
  p.seeded = true;
  if (p.hot) {
    if (p.ewma_ns_per_byte < kCoolFraction * config_.flag_ns_per_byte) p.hot = false;
  } else if (p.ewma_ns_per_byte > config_.flag_ns_per_byte) {
    p.hot = true;
  }
}

bool Controller::interference_flagged() const {
  if (board_ != nullptr) {
    for (std::size_t port = 0; port < ports_.size(); ++port) {
      if (board_->flagged(static_cast<int>(port))) return true;
    }
    return false;
  }
  for (const PortSignal& p : ports_) {
    if (p.hot) return true;
  }
  return false;
}

void Controller::finish_epoch(int admission_level, bool flagged) {
  cur_.epoch = static_cast<std::int64_t>(log_.size());
  cur_.admission_level = admission_level;
  cur_.flagged = flagged;
  log_.push_back(cur_);
  cur_ = EpochRow{};
}

// ---------------------------------------------------------------------------
// Token-bucket policy.
// ---------------------------------------------------------------------------

TokenBucketController::TokenBucketController(const MitigationConfig& config,
                                             int n_ports, sim::SimTime now)
    : Controller(config, n_ports, now),
      bucket_(config.burst_bytes, config.rate_bytes_per_s, now) {}

sim::SimDuration TokenBucketController::acquire(int /*oss_port*/, std::int64_t bytes,
                                                sim::SimTime now) {
  // A chunk larger than the burst allowance could never be served whole;
  // meter it as one full burst (cannot happen with sane configs — chunks
  // are capped at max_rpc_bytes, far below the burst size).
  const std::int64_t ask = std::min(bytes, bucket_.capacity());
  if (bucket_.try_consume(ask, now)) {
    cur_.admitted_bytes += bytes;
    return 0;
  }
  const sim::SimDuration wait = bucket_.wait_for(ask, now);
  ++cur_.throttle_waits;
  cur_.throttled_bytes += bytes;
  cur_.throttle_delay += wait;
  return wait;
}

int TokenBucketController::concurrency_cap() const {
  return std::numeric_limits<int>::max();  // rate-metered, not count-capped
}

void TokenBucketController::on_epoch(sim::SimTime now) {
  const bool flagged = interference_flagged();
  if (flagged != flagged_) {
    flagged_ = flagged;
    const double scaled = static_cast<double>(config_.rate_bytes_per_s) *
                          (flagged ? config_.cut : 1.0);
    bucket_.set_rate(std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled)), now);
  }
  finish_epoch(/*admission_level=*/0, flagged);
}

// ---------------------------------------------------------------------------
// Probing (hill-climb concurrency) policy.
// ---------------------------------------------------------------------------

ProbingController::ProbingController(const MitigationConfig& config, int n_ports,
                                     sim::SimTime now, std::uint64_t seed)
    : Controller(config, n_ports, now),
      level_(config.probe_init), stable_(config.probe_init), rng_(seed) {
  level_ = clamp_level(level_);
  stable_ = level_;
}

int ProbingController::clamp_level(int level) const {
  return std::clamp(level, config_.probe_min, config_.probe_max);
}

sim::SimDuration ProbingController::acquire(int /*oss_port*/, std::int64_t bytes,
                                            sim::SimTime /*now*/) {
  cur_.admitted_bytes += bytes;  // probing caps concurrency, never delays
  return 0;
}

void ProbingController::on_epoch(sim::SimTime /*now*/) {
  const double tput = static_cast<double>(cur_.completed_bytes);
  if (cur_.completed_bytes == 0 && cur_.admitted_bytes == 0) {
    // Idle epoch (think time, setup): no evidence, no move, no RNG draw —
    // the exploration stream advances only on observed epochs.
    finish_epoch(level_, interference_flagged());
    return;
  }
  if (level_ > stable_) {
    // Upward probe: adopt only a strict improvement — more outstanding
    // RPCs must buy real throughput, or they just deepen server queues.
    if (tput > best_ * (1.0 + kUpMargin)) {
      stable_ = level_;
      best_ = tput;
    }
  } else if (level_ < stable_) {
    // Downward probe: adopt when throughput held (within tol) — the same
    // bandwidth from less concurrency is a strictly better operating
    // point.  Under a saturated flat curve this walks to probe_min.
    if (tput >= best_ * (1.0 - config_.probe_tol)) {
      stable_ = level_;
      if (tput > best_) best_ = tput;
    }
  } else if (tput > best_) {
    best_ = tput;
  }
  best_ *= kBestDecay;
  const int dir = rng_.next_double() < 0.5 ? -1 : 1;
  const int probed = clamp_level(stable_ + dir * config_.probe_step);
  level_ = probed;
  finish_epoch(level_, interference_flagged());
}

std::unique_ptr<Controller> make_controller(const MitigationConfig& config,
                                            int n_ports, sim::SimTime now,
                                            std::uint64_t seed) {
  switch (config.policy) {
    case Policy::kTokenBucket:
      return std::make_unique<TokenBucketController>(config, n_ports, now);
    case Policy::kProbing:
      return std::make_unique<ProbingController>(config, n_ports, now, seed);
    case Policy::kOff:
      break;
  }
  throw std::invalid_argument("make_controller: policy is off");
}

}  // namespace qif::ctrl
