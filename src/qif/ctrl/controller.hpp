// Closed-loop interference mitigation policies (ROADMAP item 1).
//
// A Controller is one client's admission policy: it sits behind the
// pfs::AdmissionGate hook on the client's data-RPC path and makes a
// decision once per epoch on the simulation clock.  Two policies share the
// interface:
//
//  * TokenBucketController — meters admitted bytes through an exact-
//    arithmetic TokenBucket (token_bucket.hpp).  The refill rate drops to
//    `cut` of the healthy rate while the client's OSS groups are flagged
//    as interference windows — by an external predictor (FlagBoard, the
//    OnlinePredictor wiring) or, by default, by the client's own DIAL-style
//    latency signal: an EWMA of observed ns-per-byte per OSS port, flagged
//    above `flag_ns_per_byte` with 2x hysteresis.
//
//  * ProbingController — MongoDB-throughput_probing-style hill climb on
//    the client's outstanding-RPC concurrency.  Each epoch it probes one
//    step up or down from the stable level (direction drawn from the
//    controller's own seeded RNG stream — deterministic exploration),
//    adopts downward probes that keep throughput within `tol` of the best
//    seen and upward probes only on strict improvement, so under a flat
//    (saturated) throughput curve the walk settles at the least
//    concurrency that sustains the optimum.
//
// Determinism: a controller's state is touched only from its client's own
// engine (acquire/on_chunk_complete run inside the client's events; the
// epoch tick is scheduled under the client's entity context), and its RNG
// stream is derived from stable ids — so mitigated traces are bit-identical
// across every --jobs and --lanes partition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qif/ctrl/token_bucket.hpp"
#include "qif/pfs/admission.hpp"
#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::ctrl {

enum class Policy : std::uint8_t { kOff, kTokenBucket, kProbing };

/// Which clients get a controller.  kNoise gates only background jobs
/// (job != 0) — the facility throttles the aggressors it can slow down,
/// never the monitored application; kAll is DIAL's every-client-tunes-
/// itself mode.
enum class Scope : std::uint8_t { kNoise, kAll };

struct MitigationConfig {
  Policy policy = Policy::kOff;
  Scope scope = Scope::kNoise;
  /// Decision-epoch length (aligned with the monitor window by default).
  sim::SimDuration epoch = sim::kSecond;

  // -- token-bucket policy knobs -------------------------------------------
  std::int64_t rate_bytes_per_s = 256ll << 20;  ///< healthy per-client rate
  std::int64_t burst_bytes = 8ll << 20;         ///< bucket capacity
  double cut = 1.0 / 16.0;      ///< flagged-window rate multiplier, (0, 1]
  /// Self-signal latency threshold.  The testbed's disks stream ~5.5
  /// ns/byte uncontended and >= 12 under heavy sharing, so 9 separates the
  /// two regimes with margin on both sides.
  double flag_ns_per_byte = 9.0;

  // -- probing policy knobs ------------------------------------------------
  int probe_init = 8;
  int probe_min = 1;
  int probe_max = 8;
  int probe_step = 1;
  double probe_tol = 0.10;  ///< accepted throughput slack on downward probes

  [[nodiscard]] bool empty() const { return policy == Policy::kOff; }
};

/// Parses a `--mitigate` spec:
///
///   spec  := 'off' | kind (':' key '=' value (',' key '=' value)*)?
///   kind  := 'token' | 'probe'
///
///   common: epoch=<seconds>, scope=noise|all
///   token:  rate=<MiB/s>, burst=<MiB>, cut=<float in (0,1]>,
///           flag=<ns-per-byte>
///   probe:  init/min/max/step=<int>, tol=<float>
///
/// Example: "token:rate=128,cut=0.125,scope=all".  Throws
/// std::invalid_argument naming the offending token.
[[nodiscard]] MitigationConfig parse_mitigation(const std::string& spec);

/// Canonical spec string (round-trips through parse_mitigation).
[[nodiscard]] std::string to_spec(const MitigationConfig& config);

/// Per-OSS-port interference flags published by an external predictor
/// (the OnlinePredictor bridge).  When attached, it replaces every
/// controller's self-signal.  Classic (single-engine) mode only: the board
/// is shared mutable state, which lanes would race on.
struct FlagBoard {
  std::vector<std::uint8_t> flags;  ///< one per OSS port, 1 = interference
  [[nodiscard]] bool flagged(int port) const {
    return port >= 0 && static_cast<std::size_t>(port) < flags.size() &&
           flags[static_cast<std::size_t>(port)] != 0;
  }
};

/// One decision epoch's accounting, in the order the epochs closed.
struct EpochRow {
  std::int64_t epoch = 0;              ///< index (0 = first epoch)
  std::int64_t throttle_waits = 0;     ///< acquire() calls that had to wait
  std::int64_t throttled_bytes = 0;    ///< bytes across those waits
  sim::SimDuration throttle_delay = 0; ///< sum of returned waits
  std::int64_t admitted_bytes = 0;
  std::int64_t completed_bytes = 0;
  int admission_level = 0;             ///< concurrency cap at epoch close
  bool flagged = false;                ///< interference window was in effect
};

class Controller : public pfs::AdmissionGate {
 public:
  Controller(const MitigationConfig& config, int n_ports, sim::SimTime now);
  ~Controller() override = default;

  /// Decision-epoch boundary; called on the owning client's engine.
  virtual void on_epoch(sim::SimTime now) = 0;
  [[nodiscard]] virtual const char* policy_name() const = 0;

  void on_chunk_complete(int oss_port, std::int64_t bytes,
                         sim::SimDuration rtt) override;

  /// Attaches the external predictor flags (overrides the self-signal).
  void set_flag_board(const FlagBoard* board) { board_ = board; }

  [[nodiscard]] const std::vector<EpochRow>& epochs() const { return log_; }

 protected:
  /// Self-signal: true when any OSS port this client has touched sits
  /// above the latency threshold (or the external board flags it).
  [[nodiscard]] bool interference_flagged() const;
  /// Closes the accumulating epoch row.
  void finish_epoch(int admission_level, bool flagged);

  MitigationConfig config_;
  EpochRow cur_;              ///< the epoch being accumulated
  std::vector<EpochRow> log_;

 private:
  struct PortSignal {
    double ewma_ns_per_byte = 0.0;
    bool seeded = false;  ///< first sample initializes the EWMA
    bool hot = false;     ///< above threshold (with hysteresis)
  };
  std::vector<PortSignal> ports_;
  const FlagBoard* board_ = nullptr;
};

class TokenBucketController final : public Controller {
 public:
  TokenBucketController(const MitigationConfig& config, int n_ports, sim::SimTime now);

  sim::SimDuration acquire(int oss_port, std::int64_t bytes, sim::SimTime now) override;
  [[nodiscard]] int concurrency_cap() const override;
  void on_epoch(sim::SimTime now) override;
  [[nodiscard]] const char* policy_name() const override { return "token"; }

  [[nodiscard]] TokenBucket& bucket() { return bucket_; }

 private:
  TokenBucket bucket_;
  bool flagged_ = false;
};

class ProbingController final : public Controller {
 public:
  ProbingController(const MitigationConfig& config, int n_ports, sim::SimTime now,
                    std::uint64_t seed);

  sim::SimDuration acquire(int oss_port, std::int64_t bytes, sim::SimTime now) override;
  [[nodiscard]] int concurrency_cap() const override { return level_; }
  void on_epoch(sim::SimTime now) override;
  [[nodiscard]] const char* policy_name() const override { return "probe"; }

  [[nodiscard]] int stable_level() const { return stable_; }

 private:
  [[nodiscard]] int clamp_level(int level) const;

  int level_;       ///< cap in effect (the probe under evaluation)
  int stable_;      ///< last adopted level
  double best_ = 0.0;  ///< decayed best epoch throughput seen
  sim::Rng rng_;       ///< seeded exploration: probe-direction draws
};

/// Factory keyed on config.policy; `seed` feeds the probing RNG stream.
[[nodiscard]] std::unique_ptr<Controller> make_controller(
    const MitigationConfig& config, int n_ports, sim::SimTime now,
    std::uint64_t seed);

}  // namespace qif::ctrl
