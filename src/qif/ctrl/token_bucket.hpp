// Deterministic token bucket for client admission control.
//
// The bucket meters bytes: tokens refill continuously at `rate` bytes per
// simulated second up to `capacity` (the burst allowance).  All arithmetic
// is exact 128-bit integer math over nanosecond timestamps — the fractional
// token remainder is carried in byte-nanosecond units, so the total volume
// admitted over any span equals floor(rate * elapsed / 1s) exactly, no
// matter how the span is partitioned into refill calls.  That exactness is
// what the controller's determinism contract rides on: a mitigated run must
// replay bit-identically at every --jobs / --lanes count, which rules out
// floating-point refill accumulation (whose rounding depends on call
// cadence).
#pragma once

#include <cstdint>

#include "qif/sim/simulation.hpp"

namespace qif::ctrl {

class TokenBucket {
 public:
  /// Starts full at `now`.  `capacity` and `rate` must be > 0.
  TokenBucket(std::int64_t capacity_bytes, std::int64_t rate_bytes_per_s,
              sim::SimTime now);

  /// Refills to `now`, then atomically consumes `bytes` if available.
  /// Returns true on success; on failure consumes nothing.
  bool try_consume(std::int64_t bytes, sim::SimTime now);

  /// Refills to `now`, then returns the exact additional wait until
  /// `bytes` tokens will be available (0 = available now).  The bound is
  /// tight: at now + wait a try_consume(bytes) succeeds, at any earlier
  /// instant it fails.  `bytes` above capacity can never be served; the
  /// wait is computed as if the cap were absent (callers clamp requests to
  /// the capacity — data-op chunks are capped at max_rpc_bytes, far below
  /// any sane burst size).
  [[nodiscard]] sim::SimDuration wait_for(std::int64_t bytes, sim::SimTime now);

  /// Refills to `now` and changes the refill rate.  The tokens accrued so
  /// far (including the fractional carry) are kept, so a rate change is a
  /// kink in the refill curve, not a reset.
  void set_rate(std::int64_t rate_bytes_per_s, sim::SimTime now);

  /// Refills to `now` and returns the whole tokens available.
  [[nodiscard]] std::int64_t available(sim::SimTime now);

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t rate() const { return rate_; }

 private:
  void refill(sim::SimTime now);

  std::int64_t capacity_;
  std::int64_t rate_;
  std::int64_t tokens_;  ///< whole bytes available
  std::int64_t carry_;   ///< fractional remainder in byte-nanoseconds, < 1s
  sim::SimTime last_;    ///< clock position the balance is settled to
};

}  // namespace qif::ctrl
