#include "qif/ctrl/token_bucket.hpp"

#include <cassert>

namespace qif::ctrl {

TokenBucket::TokenBucket(std::int64_t capacity_bytes, std::int64_t rate_bytes_per_s,
                         sim::SimTime now)
    : capacity_(capacity_bytes), rate_(rate_bytes_per_s), tokens_(capacity_bytes),
      carry_(0), last_(now) {
  assert(capacity_ > 0 && "token bucket capacity must be positive");
  assert(rate_ > 0 && "token bucket rate must be positive");
}

void TokenBucket::refill(sim::SimTime now) {
  if (now <= last_) return;
  // Accrued volume since the last settle, in byte-nanoseconds.  128-bit:
  // rate (up to ~1e10 B/s) times a multi-day span overflows 64 bits.
  const __int128 acc =
      static_cast<__int128>(rate_) * (now - last_) + carry_;
  tokens_ += static_cast<std::int64_t>(acc / sim::kSecond);
  carry_ = static_cast<std::int64_t>(acc % sim::kSecond);
  if (tokens_ >= capacity_) {
    // A full bucket stops accruing — the fractional carry is surplus too.
    tokens_ = capacity_;
    carry_ = 0;
  }
  last_ = now;
}

bool TokenBucket::try_consume(std::int64_t bytes, sim::SimTime now) {
  refill(now);
  if (bytes > tokens_) return false;
  tokens_ -= bytes;
  return true;
}

sim::SimDuration TokenBucket::wait_for(std::int64_t bytes, sim::SimTime now) {
  refill(now);
  if (bytes <= tokens_) return 0;
  // Need `deficit` more whole bytes; the carry already covers part of the
  // first one.  ceil((deficit * 1s - carry) / rate) is the exact first
  // instant the balance reaches `bytes`.
  const __int128 need =
      static_cast<__int128>(bytes - tokens_) * sim::kSecond - carry_;
  return static_cast<sim::SimDuration>((need + rate_ - 1) / rate_);
}

void TokenBucket::set_rate(std::int64_t rate_bytes_per_s, sim::SimTime now) {
  assert(rate_bytes_per_s > 0 && "token bucket rate must be positive");
  refill(now);  // settle the balance under the old rate first
  rate_ = rate_bytes_per_s;
}

std::int64_t TokenBucket::available(sim::SimTime now) {
  refill(now);
  return tokens_;
}

}  // namespace qif::ctrl
