#include "qif/ctrl/mitigator.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace qif::ctrl {
namespace {

/// Self-rescheduling decision tick on the client's engine.  The tick event
/// is minted under the client's entity context (schedule_after_ctx), so in
/// lane mode its key — and the key of everything the decision causes — is
/// partition-independent.
void schedule_tick(sim::Simulation& s, std::uint32_t ctx, Controller* c,
                   sim::SimDuration epoch) {
  s.schedule_after_ctx(epoch, ctx, [&s, ctx, c, epoch] {
    c->on_epoch(s.now());
    schedule_tick(s, ctx, c, epoch);
  });
}

double p99_ms(std::vector<sim::SimDuration>& durations) {
  if (durations.empty()) return 0.0;
  std::sort(durations.begin(), durations.end());
  return sim::to_millis(durations[(durations.size() - 1) * 99 / 100]);
}

}  // namespace

Mitigator::Mitigator(pfs::Cluster& cluster, const MitigationConfig& config)
    : cluster_(cluster), config_(config) {
  if (config_.empty()) {
    throw std::invalid_argument("Mitigator: policy is off (gate on config.empty())");
  }
  cluster_.set_gate_factory([this](pfs::PfsClient& client) -> pfs::AdmissionGate* {
    if (config_.scope == Scope::kNoise && client.job() == 0) return nullptr;
    return attach(client);
  });
}

Mitigator::~Mitigator() { cluster_.set_gate_factory(nullptr); }

pfs::AdmissionGate* Mitigator::attach(pfs::PfsClient& client) {
  sim::Simulation& s = client.sim();
  // Per-client exploration stream, derived from stable ids — identical for
  // every --jobs / --lanes partition of the same scenario.
  const std::uint64_t seed = sim::Rng::derive_seed(
      cluster_.config().seed, "ctrl/n" + std::to_string(client.node()) + "/r" +
                                  std::to_string(client.rank()) + "/j" +
                                  std::to_string(client.job()));
  Slot slot;
  slot.controller = make_controller(config_, cluster_.config().n_oss, s.now(), seed);
  slot.node = client.node();
  slot.job = client.job();
  if (board_active_) slot.controller->set_flag_board(&board_);
  Controller* c = slot.controller.get();
  slots_.push_back(std::move(slot));
  const std::uint32_t ctx = cluster_.ctx_of_node(client.node());
  // Setup-time scheduling: the first tick's key must be minted under the
  // client's entity counter (schedule_after_ctx only sets the *execution*
  // context; the mint uses the engine's current one — the JobInstance
  // kickoff pattern).  Later ticks reschedule from inside the tick event,
  // where the executing context is already the client's.
  if (cluster_.lane_mode()) s.set_context(ctx);
  schedule_tick(s, ctx, c, config_.epoch);
  return c;
}

void Mitigator::set_external_flags(std::vector<std::uint8_t> per_port_flags) {
  if (cluster_.lane_mode()) {
    throw std::logic_error(
        "Mitigator::set_external_flags: the shared flag board is classic-mode "
        "only (lane partitions would race on it); lane runs use the per-client "
        "self-signal");
  }
  board_.flags = std::move(per_port_flags);
  if (!board_active_) {
    board_active_ = true;
    for (Slot& slot : slots_) slot.controller->set_flag_board(&board_);
  }
}

MitigationReport Mitigator::report(const trace::TraceLog& trace,
                                   sim::SimDuration window) const {
  MitigationReport r;
  r.policy = to_spec(config_);
  r.controllers = static_cast<int>(slots_.size());

  std::map<std::int64_t, WindowCtrl> windows;
  std::int64_t level_sum = 0;
  std::int64_t level_rows = 0;
  std::map<std::int64_t, std::int64_t> window_level_sum;
  std::map<std::int64_t, std::int64_t> window_level_rows;
  for (const Slot& slot : slots_) {
    for (const EpochRow& row : slot.controller->epochs()) {
      // Epoch i closes at (i + 1) * epoch; assign it to the monitor window
      // containing its last instant (identity when epoch == window).
      const std::int64_t w = ((row.epoch + 1) * config_.epoch - 1) / window;
      WindowCtrl& cell = windows[w];
      cell.window_index = w;
      cell.throttle_waits += row.throttle_waits;
      cell.throttled_bytes += row.throttled_bytes;
      cell.throttle_delay_s += sim::to_seconds(row.throttle_delay);
      if (row.flagged) ++cell.flagged_controllers;
      window_level_sum[w] += row.admission_level;
      ++window_level_rows[w];
      r.throttle_waits += row.throttle_waits;
      r.throttled_bytes += row.throttled_bytes;
      r.throttle_delay_s += sim::to_seconds(row.throttle_delay);
      level_sum += row.admission_level;
      ++level_rows;
    }
  }
  r.mean_admission_level =
      level_rows > 0 ? static_cast<double>(level_sum) / static_cast<double>(level_rows)
                     : 0.0;

  // Victim latency: the monitored job's op durations, whole-run and per
  // window (grouped by completion time).
  std::vector<sim::SimDuration> all;
  std::map<std::int64_t, std::vector<sim::SimDuration>> per_window;
  for (const trace::OpRecord& rec : trace.records()) {
    if (rec.job != 0) continue;
    all.push_back(rec.duration());
    per_window[rec.end / window].push_back(rec.duration());
  }
  r.victim_p99_ms = p99_ms(all);
  for (auto& [w, durations] : per_window) {
    WindowCtrl& cell = windows[w];  // may create a victim-only row
    cell.window_index = w;
    cell.victim_p99_ms = p99_ms(durations);
  }
  for (auto& [w, cell] : windows) {
    const std::int64_t rows = window_level_rows[w];
    cell.mean_admission_level =
        rows > 0 ? static_cast<double>(window_level_sum[w]) / static_cast<double>(rows)
                 : 0.0;
    r.windows.push_back(cell);
  }
  return r;
}

double Mitigator::victim_p99_ms(const trace::TraceLog& trace, std::int32_t job) {
  std::vector<sim::SimDuration> durations;
  for (const trace::OpRecord& rec : trace.records()) {
    if (rec.job == job) durations.push_back(rec.duration());
  }
  return p99_ms(durations);
}

}  // namespace qif::ctrl
