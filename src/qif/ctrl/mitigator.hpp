// Mitigator: arms a MitigationConfig against a live cluster.
//
// One mitigator per run, constructed after the Cluster and before any
// workload starts (the fault-injector pattern).  It installs an admission-
// gate factory on the cluster, so every client created by the workload
// layer gets its own Controller (scope decides whether the monitored job 0
// is gated too), and schedules each controller's decision-epoch tick on
// the owning client's engine under the client's entity context — in lane
// mode the whole control loop therefore lives on the client's lane, and
// mitigated traces stay bit-identical at every --lanes count.
//
// An *empty* config constructs nothing: no factory, no controllers, no
// tick events, no RNG draws — a mitigation-off run is byte-identical to a
// pre-mitigation build, which is what the committed goldens pin.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qif/ctrl/controller.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::ctrl {

/// One monitor window's controller columns (the per-window mitigation
/// telemetry `qif run/campaign --mitigate` prints and exports).
struct WindowCtrl {
  std::int64_t window_index = 0;
  std::int64_t throttle_waits = 0;
  std::int64_t throttled_bytes = 0;
  double throttle_delay_s = 0.0;
  /// Mean concurrency cap over the controllers that closed an epoch in the
  /// window (probing policy; 0 for the rate-metered token policy).
  double mean_admission_level = 0.0;
  int flagged_controllers = 0;
  /// p99 latency (ms) of the monitored job's ops completing in the window.
  double victim_p99_ms = 0.0;
};

struct MitigationReport {
  std::string policy;  ///< canonical spec (to_spec), "off" when inactive
  int controllers = 0;
  std::int64_t throttle_waits = 0;
  std::int64_t throttled_bytes = 0;
  double throttle_delay_s = 0.0;
  double mean_admission_level = 0.0;
  double victim_p99_ms = 0.0;  ///< whole-run p99 of the victim's op latency
  std::vector<WindowCtrl> windows;
  [[nodiscard]] bool active() const { return controllers > 0; }
};

class Mitigator {
 public:
  /// Installs the gate factory; throws std::invalid_argument on an empty
  /// config (callers gate on config.empty(), like the fault injector).
  Mitigator(pfs::Cluster& cluster, const MitigationConfig& config);
  ~Mitigator();

  Mitigator(const Mitigator&) = delete;
  Mitigator& operator=(const Mitigator&) = delete;

  [[nodiscard]] const MitigationConfig& config() const { return config_; }
  [[nodiscard]] std::size_t n_controllers() const { return slots_.size(); }

  /// Publishes external per-OSS-port interference flags (the
  /// OnlinePredictor bridge) to every controller, replacing their
  /// self-signals.  Classic (single-engine) mode only — the board is
  /// shared mutable state that lane partitions would race on.
  void set_external_flags(std::vector<std::uint8_t> per_port_flags);

  /// Aggregates every controller's epoch log into per-window rows and
  /// computes the victim (job 0) latency percentiles from the merged
  /// trace.  Call after the run completes.
  [[nodiscard]] MitigationReport report(const trace::TraceLog& trace,
                                        sim::SimDuration window) const;

  /// p99 latency in ms over `job`'s op records (0 when the job has none).
  [[nodiscard]] static double victim_p99_ms(const trace::TraceLog& trace,
                                            std::int32_t job = 0);

 private:
  /// Creates the client's controller, schedules its tick, returns its gate.
  pfs::AdmissionGate* attach(pfs::PfsClient& client);

  struct Slot {
    std::unique_ptr<Controller> controller;
    pfs::NodeId node = 0;
    std::int32_t job = 0;
  };

  pfs::Cluster& cluster_;
  MitigationConfig config_;
  FlagBoard board_;
  bool board_active_ = false;
  std::vector<Slot> slots_;
};

}  // namespace qif::ctrl
