// DXT-style per-operation trace records.
//
// The paper's client-side monitor is a modified Darshan with DXT extended
// tracing: one record per POSIX-level I/O operation with sub-microsecond
// start/end stamps.  These records are the ground truth everything else is
// derived from — the client-side window features, the Figure 1 series, and
// the degradation labels (by matching records between a baseline run and an
// interference run).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qif/pfs/types.hpp"
#include "qif/sim/time.hpp"

namespace qif::trace {

struct OpRecord {
  std::int32_t job = 0;           ///< workload instance id within the run
  pfs::Rank rank = 0;             ///< issuing process
  std::int64_t op_index = 0;      ///< per-rank monotonically increasing index
  pfs::OpType type = pfs::OpType::kRead;
  pfs::FileId file = pfs::kInvalidFile;
  std::int64_t offset = 0;        ///< file offset (data ops)
  std::int64_t bytes = 0;         ///< payload size (data ops)
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  /// Servers this op touched: OST ids for data ops; kMdtTarget for metadata.
  std::vector<std::int32_t> targets;
  // Fault-injection outcome (all zero/false on healthy runs; populated only
  // when the client timeout/retry machinery is enabled).
  std::int32_t retries = 0;   ///< RPC attempts re-issued after a timeout
  std::int32_t timeouts = 0;  ///< deadline expiries observed by this op
  bool failed = false;        ///< retries exhausted — op surfaced EIO
  // Replay metadata (the DXT v2 columns): the namespace path a metadata op
  // addressed and the layout request of a create.  These let trace replay
  // re-issue the op stream against a fresh cluster; they are deliberately
  // excluded from trace_fingerprint(), which covers the semantic op stream
  // the golden pins are stated in.
  std::string path;               ///< create/open/stat/unlink/mkdir target path
  std::int32_t stripes = 0;       ///< kCreate: requested stripe count (0 = all OSTs)
  std::int32_t stripe_hint = -1;  ///< kCreate: requested starting OST (-1 = hashed)

  [[nodiscard]] sim::SimDuration duration() const { return end - start; }
};

/// Sentinel "server id" for the metadata target in `targets` and in the
/// per-server feature vectors (OSTs use their dense ids 0..n-1; the MDT is
/// appended after them by the cluster, so this constant is resolved against
/// a concrete cluster via Cluster::mdt_server_index()).
inline constexpr std::int32_t kMdtTarget = -1;

/// An append-only in-memory trace log for one run.  Completion-ordered.
class TraceLog {
 public:
  using Observer = std::function<void(const OpRecord&)>;

  void record(OpRecord rec) {
    if (observer_) observer_(rec);
    records_.push_back(std::move(rec));
  }

  /// Installs a streaming observer invoked for every record as it is
  /// emitted — the hook the client-side monitor attaches to (the moral
  /// equivalent of Darshan's shared-memory ring being drained by the
  /// aggregator process).
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  [[nodiscard]] const std::vector<OpRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Records of one job sorted by (rank, op_index) — the canonical order
  /// used for baseline/interference matching.
  [[nodiscard]] std::vector<OpRecord> sorted_for_job(std::int32_t job) const;

 private:
  std::vector<OpRecord> records_;
  Observer observer_;
};

/// FNV-1a fingerprint over the full record stream in completion (log)
/// order, covering every semantic field of every record (the replay
/// metadata — path/stripes/stripe_hint — is excluded so pre-metadata
/// golden fingerprints stay valid).  Two runs with equal
/// fingerprints produced byte-identical op streams — the equality the
/// lane engine's bit-identity contract is stated in (test_sim_lanes pins
/// it across lane counts; `qif run --lanes N` prints it so scripts can
/// assert the same equality end to end).
[[nodiscard]] std::uint64_t trace_fingerprint(const TraceLog& log);

}  // namespace qif::trace
