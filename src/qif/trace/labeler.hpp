// Degradation labelling.
//
// Implements the paper's ground-truth equation
//
//     Level_degrade = Avg_{i in IORequests} iotime_interference^i / iotime_base^i
//
// over the matched ops falling inside each time window of the interference
// run, then bins the level with configurable thresholds: {2} for the binary
// model ("at least 2x slower or not"), {2, 5} for the 3-class model
// (mild / moderate / severe, after Lu et al.'s Perseus taxonomy).
#pragma once

#include <cstdint>
#include <vector>

#include "qif/sim/time.hpp"
#include "qif/trace/matcher.hpp"

namespace qif::trace {

struct LabelerConfig {
  sim::SimDuration window = 1 * sim::kSecond;  ///< aggregation window size
  std::vector<double> bin_thresholds = {2.0};  ///< ascending class boundaries
  std::size_t min_ops_per_window = 1;          ///< windows with fewer ops are dropped
};

struct WindowLabel {
  std::int64_t window_index = 0;   ///< interference-run window number
  double degradation = 1.0;        ///< Level_degrade for this window
  int label = 0;                   ///< bin index: 0 .. bin_thresholds.size()
  std::size_t n_ops = 0;           ///< matched ops contributing
  std::size_t n_failed = 0;        ///< matched ops that surfaced EIO (faults)
};

class Labeler {
 public:
  explicit Labeler(LabelerConfig config) : config_(std::move(config)) {}

  /// Buckets matched ops by the window containing the op's start time in
  /// the interference run and computes the per-window degradation label.
  /// Windows containing fewer than `min_ops_per_window` ops are dropped.
  [[nodiscard]] std::vector<WindowLabel> label(const std::vector<MatchedOp>& matched) const;

  /// Bin index for one degradation level under this config's thresholds.
  [[nodiscard]] int bin_of(double degradation) const;

  [[nodiscard]] int num_classes() const {
    return static_cast<int>(config_.bin_thresholds.size()) + 1;
  }
  [[nodiscard]] const LabelerConfig& config() const { return config_; }

 private:
  LabelerConfig config_;
};

}  // namespace qif::trace
