#include "qif/trace/labeler.hpp"

#include <algorithm>
#include <map>

namespace qif::trace {

int Labeler::bin_of(double degradation) const {
  int bin = 0;
  for (const double t : config_.bin_thresholds) {
    if (degradation >= t) ++bin;
  }
  return bin;
}

std::vector<WindowLabel> Labeler::label(const std::vector<MatchedOp>& matched) const {
  struct Acc {
    double ratio_sum = 0.0;
    std::size_t n = 0;
    std::size_t n_failed = 0;
  };
  std::map<std::int64_t, Acc> windows;
  for (const MatchedOp& m : matched) {
    const std::int64_t w = m.interference.start / config_.window;
    // Clamp the baseline duration to one tick so instantaneous cache hits
    // cannot produce infinite ratios.
    const double base = static_cast<double>(std::max<sim::SimDuration>(m.base.duration(), 1));
    const double noisy =
        static_cast<double>(std::max<sim::SimDuration>(m.interference.duration(), 1));
    auto& acc = windows[w];
    acc.ratio_sum += noisy / base;
    acc.n += 1;
    if (m.interference.failed) acc.n_failed += 1;
  }

  std::vector<WindowLabel> out;
  out.reserve(windows.size());
  for (const auto& [w, acc] : windows) {
    if (acc.n < config_.min_ops_per_window) continue;
    WindowLabel lbl;
    lbl.window_index = w;
    lbl.degradation = acc.ratio_sum / static_cast<double>(acc.n);
    lbl.label = bin_of(lbl.degradation);
    lbl.n_ops = acc.n;
    lbl.n_failed = acc.n_failed;
    out.push_back(lbl);
  }
  return out;
}

}  // namespace qif::trace
