// DXT-style per-op trace dumps: the text interchange format for TraceLogs.
//
// This is the single strict DXT parser in the tree, shared by the monitor
// export surface (`qif dump-trace`) and the trace-replay workload (the
// `trace:FILE` builder) — one grammar, one set of line/column diagnostics.
//
// Two versions, selected by the `# DXT qif N` header line (a headerless
// dump is read as version 1 for compatibility with old files):
//
//   v1:  job rank op_index type offset bytes start_ns end_ns targets...
//   v2:  job rank op_index type file offset bytes start_ns end_ns
//        path stripes hint targets...
//
// Version 2 adds the fields replay needs to reconstruct the op stream
// bit-identically: the file id (associating data ops with the create/open
// that produced their handle), the namespace path of metadata ops, and the
// layout request of a create (stripe count + starting-OST hint).  An empty
// path is written as "-"; paths must contain no whitespace (the writer
// rejects them).  The writer emits version 2; version 1 stays readable but
// carries too little to replay.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "qif/trace/op_record.hpp"

namespace qif::trace {

/// The DXT version write_dxt emits.
inline constexpr int kDxtVersion = 2;

/// Writes one op per line in the version-2 format above, with a `# DXT`
/// comment header.  Stable, diffable, grep-friendly.  Throws
/// std::invalid_argument when a record's path contains whitespace.
void write_dxt(std::ostream& os, const TraceLog& log);

/// Reads a dump produced by write_dxt (either version; headerless input is
/// parsed as version 1).  Throws std::runtime_error on malformed input —
/// unknown version, bad cells, trailing garbage — with line/column
/// diagnostics.
[[nodiscard]] TraceLog read_dxt(std::istream& is);

/// Opens and reads a DXT dump from `path`; throws std::runtime_error with
/// the file name on open failure or any parse error.
[[nodiscard]] TraceLog read_dxt_file(const std::string& path);

}  // namespace qif::trace
