#include "qif/trace/matcher.hpp"

#include <algorithm>

namespace qif::trace {

std::vector<MatchedOp> TraceMatcher::match(const TraceLog& base_log,
                                           const TraceLog& interf_log, std::int32_t job,
                                           MatchStats* stats) {
  const std::vector<OpRecord> base = base_log.sorted_for_job(job);
  const std::vector<OpRecord> noisy = interf_log.sorted_for_job(job);

  MatchStats local;
  std::vector<MatchedOp> out;
  out.reserve(std::min(base.size(), noisy.size()));

  // Both vectors are sorted by (rank, op_index); a single merge pass pairs
  // them in O(n).
  std::size_t i = 0, j = 0;
  auto key_less = [](const OpRecord& a, const OpRecord& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.op_index < b.op_index;
  };
  while (i < base.size() && j < noisy.size()) {
    if (key_less(base[i], noisy[j])) {
      ++local.unmatched_base;
      ++i;
    } else if (key_less(noisy[j], base[i])) {
      ++local.unmatched_interf;
      ++j;
    } else {
      if (base[i].type == noisy[j].type && base[i].bytes == noisy[j].bytes) {
        out.push_back(MatchedOp{base[i], noisy[j]});
        ++local.matched;
      } else {
        ++local.mismatched;
      }
      ++i;
      ++j;
    }
  }
  local.unmatched_base += base.size() - i;
  local.unmatched_interf += noisy.size() - j;

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace qif::trace
