// Shared strict text-parsing helpers for the line-oriented formats (DXT op
// dumps, .qwp workload programs, dataset CSV).
//
// Every reader built on these helpers rejects malformed input with a
// diagnostic naming the exact line and field — the same discipline as the
// fault-spec grammar.  `line` is 1-based; `column` is the 1-based field
// index (whitespace/comma fields, not characters).
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qif::trace {

[[noreturn]] inline void fail_cell(const char* what, std::string_view cell,
                                   std::int64_t line, std::int64_t column) {
  throw std::runtime_error(std::string("malformed ") + what + " cell: '" +
                           std::string(cell) + "' at line " + std::to_string(line) +
                           ", column " + std::to_string(column));
}

// Strict cell parsers: every byte of the cell must be consumed, so a
// corrupted "12x7" or empty cell throws instead of silently becoming 0.
template <typename Int>
Int parse_int_cell(std::string_view cell, const char* what, std::int64_t line,
                   std::int64_t column) {
  Int value{};
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    fail_cell(what, cell, line, column);
  }
  return value;
}

inline double parse_double_cell(std::string_view cell, const char* what,
                                std::int64_t line, std::int64_t column) {
  // strtod + end-pointer check: from_chars<double> is used nowhere else in
  // the tree and strtod matches the writers' formatting exactly.
  const std::string buf(cell);
  if (buf.empty()) {
    throw std::runtime_error(std::string("empty ") + what + " cell at line " +
                             std::to_string(line) + ", column " + std::to_string(column));
  }
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    fail_cell(what, cell, line, column);
  }
  return value;
}

/// Whitespace tokenizer over one line that knows which 1-based field it is
/// on, so every parse failure can be located exactly.
struct FieldCursor {
  std::string_view line;
  std::int64_t line_no;
  std::size_t pos = 0;
  std::int64_t column = 0;  // of the most recently returned token

  /// Next whitespace-delimited token; empty when the line is exhausted.
  std::string_view next() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t begin = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > begin) ++column;
    return line.substr(begin, pos - begin);
  }

  template <typename Int>
  Int next_int(const char* what) {
    const std::string_view tok = next();
    if (tok.empty()) {
      throw std::runtime_error(std::string("missing ") + what + " field at line " +
                               std::to_string(line_no) + ", column " +
                               std::to_string(column + 1));
    }
    return parse_int_cell<Int>(tok, what, line_no, column);
  }

  std::string_view next_required(const char* what) {
    const std::string_view tok = next();
    if (tok.empty()) {
      throw std::runtime_error(std::string("missing ") + what + " field at line " +
                               std::to_string(line_no) + ", column " +
                               std::to_string(column + 1));
    }
    return tok;
  }

  /// Rejects any token left on the line (strict trailing-garbage check).
  void expect_exhausted(const char* format) {
    const std::string_view tok = next();
    if (!tok.empty()) {
      throw std::runtime_error(std::string("trailing garbage in ") + format + ": '" +
                               std::string(tok) + "' at line " + std::to_string(line_no) +
                               ", column " + std::to_string(column));
    }
  }
};

}  // namespace qif::trace
