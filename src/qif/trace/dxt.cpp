#include "qif/trace/dxt.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "qif/pfs/types.hpp"
#include "qif/trace/text_cursor.hpp"

namespace qif::trace {
namespace {

pfs::OpType op_from_name(std::string_view name, std::int64_t line, std::int64_t column) {
  for (int i = 0; i < pfs::kNumOpTypes; ++i) {
    const auto t = static_cast<pfs::OpType>(i);
    if (name == pfs::op_name(t)) return t;
  }
  throw std::runtime_error("unknown op type in DXT dump: '" + std::string(name) +
                           "' at line " + std::to_string(line) + ", column " +
                           std::to_string(column));
}

// An empty path serializes as "-" so the column count stays fixed; a real
// path must be whitespace-free for the same reason.
constexpr std::string_view kEmptyPath = "-";

void check_path_writable(const std::string& path) {
  for (const char c : path) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      throw std::invalid_argument("DXT path contains whitespace: '" + path + "'");
    }
  }
}

}  // namespace

void write_dxt(std::ostream& os, const TraceLog& log) {
  os << "# DXT qif " << kDxtVersion << "\n";
  os << "# job rank op_index type file offset bytes start_ns end_ns path stripes hint"
        " targets...\n";
  for (const OpRecord& r : log.records()) {
    check_path_writable(r.path);
    os << r.job << ' ' << r.rank << ' ' << r.op_index << ' ' << pfs::op_name(r.type)
       << ' ' << r.file << ' ' << r.offset << ' ' << r.bytes << ' ' << r.start << ' '
       << r.end << ' ' << (r.path.empty() ? kEmptyPath : std::string_view(r.path)) << ' '
       << r.stripes << ' ' << r.stripe_hint;
    for (const auto t : r.targets) os << ' ' << t;
    os << '\n';
  }
}

trace::TraceLog read_dxt(std::istream& is) {
  TraceLog log;
  std::string line;
  std::int64_t line_no = 0;
  int version = 1;  // headerless dumps predate the version header
  bool saw_line = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // The version header must precede every record to take effect; a
      // late or repeated one on already-parsed input is still just a
      // comment if it matches the current version, but a conflicting one
      // mid-file is a malformed dump.
      constexpr std::string_view kHeader = "# DXT qif ";
      if (std::string_view(line).substr(0, kHeader.size()) == kHeader) {
        const std::string_view ver = std::string_view(line).substr(kHeader.size());
        const int v = parse_int_cell<int>(ver, "DXT version", line_no, 4);
        if (v != 1 && v != 2) {
          throw std::runtime_error("unsupported DXT version " + std::to_string(v) +
                                   " at line " + std::to_string(line_no) +
                                   " (reader supports 1 and 2)");
        }
        if (saw_line && v != version) {
          throw std::runtime_error("conflicting DXT version header at line " +
                                   std::to_string(line_no));
        }
        version = v;
      }
      continue;
    }
    saw_line = true;
    FieldCursor fields{line, line_no};
    OpRecord r;
    r.job = fields.next_int<std::int32_t>("DXT job");
    r.rank = fields.next_int<pfs::Rank>("DXT rank");
    r.op_index = fields.next_int<std::int64_t>("DXT op_index");
    const std::string_view type = fields.next();
    if (type.empty()) {
      throw std::runtime_error("missing DXT op type field at line " +
                               std::to_string(line_no) + ", column " +
                               std::to_string(fields.column + 1));
    }
    r.type = op_from_name(type, line_no, fields.column);
    if (version >= 2) r.file = fields.next_int<pfs::FileId>("DXT file");
    r.offset = fields.next_int<std::int64_t>("DXT offset");
    r.bytes = fields.next_int<std::int64_t>("DXT bytes");
    r.start = fields.next_int<sim::SimTime>("DXT start");
    r.end = fields.next_int<sim::SimTime>("DXT end");
    if (version >= 2) {
      const std::string_view path = fields.next_required("DXT path");
      if (path != kEmptyPath) r.path = std::string(path);
      r.stripes = fields.next_int<std::int32_t>("DXT stripes");
      r.stripe_hint = fields.next_int<std::int32_t>("DXT stripe_hint");
    }
    // Every remaining token is a target server id; "1 2 x" must throw with
    // the position of "x", not drop it.
    for (std::string_view tok = fields.next(); !tok.empty(); tok = fields.next()) {
      r.targets.push_back(
          parse_int_cell<std::int32_t>(tok, "DXT target", line_no, fields.column));
    }
    log.record(std::move(r));
  }
  return log;
}

trace::TraceLog read_dxt_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file " + path);
  return read_dxt(in);
}

}  // namespace qif::trace
