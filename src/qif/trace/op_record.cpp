#include "qif/trace/op_record.hpp"

#include <algorithm>

namespace qif::trace {

std::vector<OpRecord> TraceLog::sorted_for_job(std::int32_t job) const {
  std::vector<OpRecord> out;
  for (const auto& r : records_) {
    if (r.job == job) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const OpRecord& a, const OpRecord& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.op_index < b.op_index;
  });
  return out;
}

std::uint64_t trace_fingerprint(const TraceLog& log) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const OpRecord& r : log.records()) {
    mix(r.job);
    mix(r.rank);
    mix(r.op_index);
    mix(static_cast<std::int64_t>(r.type));
    mix(r.file);
    mix(r.offset);
    mix(r.bytes);
    mix(r.start);
    mix(r.end);
    mix(r.retries);
    mix(r.timeouts);
    mix(r.failed ? 1 : 0);
    for (const auto t : r.targets) mix(t);
  }
  return h;
}

}  // namespace qif::trace
