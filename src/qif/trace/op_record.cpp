#include "qif/trace/op_record.hpp"

#include <algorithm>

namespace qif::trace {

std::vector<OpRecord> TraceLog::sorted_for_job(std::int32_t job) const {
  std::vector<OpRecord> out;
  for (const auto& r : records_) {
    if (r.job == job) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const OpRecord& a, const OpRecord& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.op_index < b.op_index;
  });
  return out;
}

}  // namespace qif::trace
